file(REMOVE_RECURSE
  "CMakeFiles/importance_test.dir/importance_test.cpp.o"
  "CMakeFiles/importance_test.dir/importance_test.cpp.o.d"
  "importance_test"
  "importance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/importance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
