# Empty compiler generated dependencies file for importance_test.
# This may be replaced when dependencies are built.
