# Empty compiler generated dependencies file for risk_measures_test.
# This may be replaced when dependencies are built.
