file(REMOVE_RECURSE
  "CMakeFiles/risk_measures_test.dir/risk_measures_test.cpp.o"
  "CMakeFiles/risk_measures_test.dir/risk_measures_test.cpp.o.d"
  "risk_measures_test"
  "risk_measures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_measures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
