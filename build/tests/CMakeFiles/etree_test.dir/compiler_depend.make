# Empty compiler generated dependencies file for etree_test.
# This may be replaced when dependencies are built.
