file(REMOVE_RECURSE
  "CMakeFiles/etree_test.dir/etree_test.cpp.o"
  "CMakeFiles/etree_test.dir/etree_test.cpp.o.d"
  "etree_test"
  "etree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
