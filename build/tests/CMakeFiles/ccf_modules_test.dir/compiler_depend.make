# Empty compiler generated dependencies file for ccf_modules_test.
# This may be replaced when dependencies are built.
