# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ccf_modules_test.
