file(REMOVE_RECURSE
  "CMakeFiles/ccf_modules_test.dir/ccf_modules_test.cpp.o"
  "CMakeFiles/ccf_modules_test.dir/ccf_modules_test.cpp.o.d"
  "ccf_modules_test"
  "ccf_modules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
