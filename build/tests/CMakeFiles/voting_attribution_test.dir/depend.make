# Empty dependencies file for voting_attribution_test.
# This may be replaced when dependencies are built.
