file(REMOVE_RECURSE
  "CMakeFiles/voting_attribution_test.dir/voting_attribution_test.cpp.o"
  "CMakeFiles/voting_attribution_test.dir/voting_attribution_test.cpp.o.d"
  "voting_attribution_test"
  "voting_attribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_attribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
