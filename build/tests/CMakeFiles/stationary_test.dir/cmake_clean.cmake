file(REMOVE_RECURSE
  "CMakeFiles/stationary_test.dir/stationary_test.cpp.o"
  "CMakeFiles/stationary_test.dir/stationary_test.cpp.o.d"
  "stationary_test"
  "stationary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
