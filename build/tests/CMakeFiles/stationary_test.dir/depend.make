# Empty dependencies file for stationary_test.
# This may be replaced when dependencies are built.
