# Empty dependencies file for ctmc_test.
# This may be replaced when dependencies are built.
