
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ctmc_test.cpp" "tests/CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o" "gcc" "tests/CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/etree/CMakeFiles/sdft_etree.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/sdft_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/product/CMakeFiles/sdft_product.dir/DependInfo.cmake"
  "/root/repo/build/src/sdft/CMakeFiles/sdft_sdft.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/sdft_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/mcs/CMakeFiles/sdft_mcs.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/sdft_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/sdft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
