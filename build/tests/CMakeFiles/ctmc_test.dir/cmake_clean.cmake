file(REMOVE_RECURSE
  "CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o"
  "CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o.d"
  "ctmc_test"
  "ctmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
