# Empty compiler generated dependencies file for product_test.
# This may be replaced when dependencies are built.
