file(REMOVE_RECURSE
  "CMakeFiles/product_test.dir/product_test.cpp.o"
  "CMakeFiles/product_test.dir/product_test.cpp.o.d"
  "product_test"
  "product_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
