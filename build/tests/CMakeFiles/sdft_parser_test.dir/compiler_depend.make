# Empty compiler generated dependencies file for sdft_parser_test.
# This may be replaced when dependencies are built.
