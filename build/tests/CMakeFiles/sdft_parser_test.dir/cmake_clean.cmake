file(REMOVE_RECURSE
  "CMakeFiles/sdft_parser_test.dir/sdft_parser_test.cpp.o"
  "CMakeFiles/sdft_parser_test.dir/sdft_parser_test.cpp.o.d"
  "sdft_parser_test"
  "sdft_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
