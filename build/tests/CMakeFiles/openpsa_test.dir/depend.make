# Empty dependencies file for openpsa_test.
# This may be replaced when dependencies are built.
