file(REMOVE_RECURSE
  "CMakeFiles/openpsa_test.dir/openpsa_test.cpp.o"
  "CMakeFiles/openpsa_test.dir/openpsa_test.cpp.o.d"
  "openpsa_test"
  "openpsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openpsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
