file(REMOVE_RECURSE
  "CMakeFiles/ft_test.dir/ft_test.cpp.o"
  "CMakeFiles/ft_test.dir/ft_test.cpp.o.d"
  "ft_test"
  "ft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
