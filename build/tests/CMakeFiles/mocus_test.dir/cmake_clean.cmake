file(REMOVE_RECURSE
  "CMakeFiles/mocus_test.dir/mocus_test.cpp.o"
  "CMakeFiles/mocus_test.dir/mocus_test.cpp.o.d"
  "mocus_test"
  "mocus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
