# Empty compiler generated dependencies file for mocus_test.
# This may be replaced when dependencies are built.
