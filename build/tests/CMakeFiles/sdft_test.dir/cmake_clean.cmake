file(REMOVE_RECURSE
  "CMakeFiles/sdft_test.dir/sdft_test.cpp.o"
  "CMakeFiles/sdft_test.dir/sdft_test.cpp.o.d"
  "sdft_test"
  "sdft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
