# Empty dependencies file for sdft_test.
# This may be replaced when dependencies are built.
