# Empty dependencies file for emergency_cooling.
# This may be replaced when dependencies are built.
