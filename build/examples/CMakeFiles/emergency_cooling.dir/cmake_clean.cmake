file(REMOVE_RECURSE
  "CMakeFiles/emergency_cooling.dir/emergency_cooling.cpp.o"
  "CMakeFiles/emergency_cooling.dir/emergency_cooling.cpp.o.d"
  "emergency_cooling"
  "emergency_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
