file(REMOVE_RECURSE
  "CMakeFiles/psa_workflow.dir/psa_workflow.cpp.o"
  "CMakeFiles/psa_workflow.dir/psa_workflow.cpp.o.d"
  "psa_workflow"
  "psa_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
