# Empty dependencies file for psa_workflow.
# This may be replaced when dependencies are built.
