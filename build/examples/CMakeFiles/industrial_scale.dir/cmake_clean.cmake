file(REMOVE_RECURSE
  "CMakeFiles/industrial_scale.dir/industrial_scale.cpp.o"
  "CMakeFiles/industrial_scale.dir/industrial_scale.cpp.o.d"
  "industrial_scale"
  "industrial_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
