# Empty compiler generated dependencies file for industrial_scale.
# This may be replaced when dependencies are built.
