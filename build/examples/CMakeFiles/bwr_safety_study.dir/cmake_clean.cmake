file(REMOVE_RECURSE
  "CMakeFiles/bwr_safety_study.dir/bwr_safety_study.cpp.o"
  "CMakeFiles/bwr_safety_study.dir/bwr_safety_study.cpp.o.d"
  "bwr_safety_study"
  "bwr_safety_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwr_safety_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
