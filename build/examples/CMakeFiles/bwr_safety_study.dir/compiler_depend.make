# Empty compiler generated dependencies file for bwr_safety_study.
# This may be replaced when dependencies are built.
