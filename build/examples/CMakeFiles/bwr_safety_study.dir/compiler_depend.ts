# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bwr_safety_study.
