file(REMOVE_RECURSE
  "libsdft_etree.a"
)
