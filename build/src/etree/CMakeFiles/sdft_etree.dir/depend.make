# Empty dependencies file for sdft_etree.
# This may be replaced when dependencies are built.
