file(REMOVE_RECURSE
  "CMakeFiles/sdft_etree.dir/event_tree.cpp.o"
  "CMakeFiles/sdft_etree.dir/event_tree.cpp.o.d"
  "libsdft_etree.a"
  "libsdft_etree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_etree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
