file(REMOVE_RECURSE
  "libsdft_sim.a"
)
