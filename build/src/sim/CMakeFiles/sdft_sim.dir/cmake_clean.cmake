file(REMOVE_RECURSE
  "CMakeFiles/sdft_sim.dir/simulator.cpp.o"
  "CMakeFiles/sdft_sim.dir/simulator.cpp.o.d"
  "libsdft_sim.a"
  "libsdft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
