# Empty compiler generated dependencies file for sdft_sim.
# This may be replaced when dependencies are built.
