file(REMOVE_RECURSE
  "libsdft_gen.a"
)
