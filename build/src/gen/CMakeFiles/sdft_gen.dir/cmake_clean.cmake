file(REMOVE_RECURSE
  "CMakeFiles/sdft_gen.dir/bwr.cpp.o"
  "CMakeFiles/sdft_gen.dir/bwr.cpp.o.d"
  "CMakeFiles/sdft_gen.dir/industrial.cpp.o"
  "CMakeFiles/sdft_gen.dir/industrial.cpp.o.d"
  "libsdft_gen.a"
  "libsdft_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
