# Empty dependencies file for sdft_gen.
# This may be replaced when dependencies are built.
