# Empty compiler generated dependencies file for sdft_bdd.
# This may be replaced when dependencies are built.
