file(REMOVE_RECURSE
  "libsdft_bdd.a"
)
