file(REMOVE_RECURSE
  "CMakeFiles/sdft_bdd.dir/bdd.cpp.o"
  "CMakeFiles/sdft_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/sdft_bdd.dir/ft_bdd.cpp.o"
  "CMakeFiles/sdft_bdd.dir/ft_bdd.cpp.o.d"
  "libsdft_bdd.a"
  "libsdft_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
