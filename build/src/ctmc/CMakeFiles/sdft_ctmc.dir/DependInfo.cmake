
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/ctmc.cpp" "src/ctmc/CMakeFiles/sdft_ctmc.dir/ctmc.cpp.o" "gcc" "src/ctmc/CMakeFiles/sdft_ctmc.dir/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/stationary.cpp" "src/ctmc/CMakeFiles/sdft_ctmc.dir/stationary.cpp.o" "gcc" "src/ctmc/CMakeFiles/sdft_ctmc.dir/stationary.cpp.o.d"
  "/root/repo/src/ctmc/transient.cpp" "src/ctmc/CMakeFiles/sdft_ctmc.dir/transient.cpp.o" "gcc" "src/ctmc/CMakeFiles/sdft_ctmc.dir/transient.cpp.o.d"
  "/root/repo/src/ctmc/triggered.cpp" "src/ctmc/CMakeFiles/sdft_ctmc.dir/triggered.cpp.o" "gcc" "src/ctmc/CMakeFiles/sdft_ctmc.dir/triggered.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
