# Empty dependencies file for sdft_ctmc.
# This may be replaced when dependencies are built.
