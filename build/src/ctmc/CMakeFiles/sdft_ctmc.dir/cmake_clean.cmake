file(REMOVE_RECURSE
  "CMakeFiles/sdft_ctmc.dir/ctmc.cpp.o"
  "CMakeFiles/sdft_ctmc.dir/ctmc.cpp.o.d"
  "CMakeFiles/sdft_ctmc.dir/stationary.cpp.o"
  "CMakeFiles/sdft_ctmc.dir/stationary.cpp.o.d"
  "CMakeFiles/sdft_ctmc.dir/transient.cpp.o"
  "CMakeFiles/sdft_ctmc.dir/transient.cpp.o.d"
  "CMakeFiles/sdft_ctmc.dir/triggered.cpp.o"
  "CMakeFiles/sdft_ctmc.dir/triggered.cpp.o.d"
  "libsdft_ctmc.a"
  "libsdft_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
