file(REMOVE_RECURSE
  "libsdft_ctmc.a"
)
