# Empty compiler generated dependencies file for sdft_sdft.
# This may be replaced when dependencies are built.
