
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdft/classify.cpp" "src/sdft/CMakeFiles/sdft_sdft.dir/classify.cpp.o" "gcc" "src/sdft/CMakeFiles/sdft_sdft.dir/classify.cpp.o.d"
  "/root/repo/src/sdft/parser.cpp" "src/sdft/CMakeFiles/sdft_sdft.dir/parser.cpp.o" "gcc" "src/sdft/CMakeFiles/sdft_sdft.dir/parser.cpp.o.d"
  "/root/repo/src/sdft/sd_fault_tree.cpp" "src/sdft/CMakeFiles/sdft_sdft.dir/sd_fault_tree.cpp.o" "gcc" "src/sdft/CMakeFiles/sdft_sdft.dir/sd_fault_tree.cpp.o.d"
  "/root/repo/src/sdft/translate.cpp" "src/sdft/CMakeFiles/sdft_sdft.dir/translate.cpp.o" "gcc" "src/sdft/CMakeFiles/sdft_sdft.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/sdft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/sdft_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
