file(REMOVE_RECURSE
  "CMakeFiles/sdft_sdft.dir/classify.cpp.o"
  "CMakeFiles/sdft_sdft.dir/classify.cpp.o.d"
  "CMakeFiles/sdft_sdft.dir/parser.cpp.o"
  "CMakeFiles/sdft_sdft.dir/parser.cpp.o.d"
  "CMakeFiles/sdft_sdft.dir/sd_fault_tree.cpp.o"
  "CMakeFiles/sdft_sdft.dir/sd_fault_tree.cpp.o.d"
  "CMakeFiles/sdft_sdft.dir/translate.cpp.o"
  "CMakeFiles/sdft_sdft.dir/translate.cpp.o.d"
  "libsdft_sdft.a"
  "libsdft_sdft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_sdft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
