file(REMOVE_RECURSE
  "libsdft_sdft.a"
)
