# Empty dependencies file for sdft_util.
# This may be replaced when dependencies are built.
