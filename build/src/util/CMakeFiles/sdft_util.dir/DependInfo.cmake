
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/fox_glynn.cpp" "src/util/CMakeFiles/sdft_util.dir/fox_glynn.cpp.o" "gcc" "src/util/CMakeFiles/sdft_util.dir/fox_glynn.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/sdft_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/sdft_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/sdft_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/sdft_util.dir/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/sdft_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/sdft_util.dir/thread_pool.cpp.o.d"
  "/root/repo/src/util/xml.cpp" "src/util/CMakeFiles/sdft_util.dir/xml.cpp.o" "gcc" "src/util/CMakeFiles/sdft_util.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
