file(REMOVE_RECURSE
  "libsdft_util.a"
)
