file(REMOVE_RECURSE
  "CMakeFiles/sdft_util.dir/fox_glynn.cpp.o"
  "CMakeFiles/sdft_util.dir/fox_glynn.cpp.o.d"
  "CMakeFiles/sdft_util.dir/rng.cpp.o"
  "CMakeFiles/sdft_util.dir/rng.cpp.o.d"
  "CMakeFiles/sdft_util.dir/table.cpp.o"
  "CMakeFiles/sdft_util.dir/table.cpp.o.d"
  "CMakeFiles/sdft_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sdft_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/sdft_util.dir/xml.cpp.o"
  "CMakeFiles/sdft_util.dir/xml.cpp.o.d"
  "libsdft_util.a"
  "libsdft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
