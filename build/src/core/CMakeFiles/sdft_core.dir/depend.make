# Empty dependencies file for sdft_core.
# This may be replaced when dependencies are built.
