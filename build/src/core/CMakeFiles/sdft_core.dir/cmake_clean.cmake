file(REMOVE_RECURSE
  "CMakeFiles/sdft_core.dir/analyzer.cpp.o"
  "CMakeFiles/sdft_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/sdft_core.dir/mcs_model.cpp.o"
  "CMakeFiles/sdft_core.dir/mcs_model.cpp.o.d"
  "CMakeFiles/sdft_core.dir/risk_measures.cpp.o"
  "CMakeFiles/sdft_core.dir/risk_measures.cpp.o.d"
  "libsdft_core.a"
  "libsdft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
