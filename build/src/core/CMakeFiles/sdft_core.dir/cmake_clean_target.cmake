file(REMOVE_RECURSE
  "libsdft_core.a"
)
