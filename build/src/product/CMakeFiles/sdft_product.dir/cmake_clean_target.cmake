file(REMOVE_RECURSE
  "libsdft_product.a"
)
