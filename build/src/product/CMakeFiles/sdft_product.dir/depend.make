# Empty dependencies file for sdft_product.
# This may be replaced when dependencies are built.
