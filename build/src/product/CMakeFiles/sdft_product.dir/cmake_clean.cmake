file(REMOVE_RECURSE
  "CMakeFiles/sdft_product.dir/product_ctmc.cpp.o"
  "CMakeFiles/sdft_product.dir/product_ctmc.cpp.o.d"
  "libsdft_product.a"
  "libsdft_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
