file(REMOVE_RECURSE
  "libsdft_mcs.a"
)
