
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcs/cutset.cpp" "src/mcs/CMakeFiles/sdft_mcs.dir/cutset.cpp.o" "gcc" "src/mcs/CMakeFiles/sdft_mcs.dir/cutset.cpp.o.d"
  "/root/repo/src/mcs/importance.cpp" "src/mcs/CMakeFiles/sdft_mcs.dir/importance.cpp.o" "gcc" "src/mcs/CMakeFiles/sdft_mcs.dir/importance.cpp.o.d"
  "/root/repo/src/mcs/mocus.cpp" "src/mcs/CMakeFiles/sdft_mcs.dir/mocus.cpp.o" "gcc" "src/mcs/CMakeFiles/sdft_mcs.dir/mocus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/sdft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
