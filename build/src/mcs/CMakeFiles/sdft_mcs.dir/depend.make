# Empty dependencies file for sdft_mcs.
# This may be replaced when dependencies are built.
