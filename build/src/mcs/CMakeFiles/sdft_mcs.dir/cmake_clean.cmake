file(REMOVE_RECURSE
  "CMakeFiles/sdft_mcs.dir/cutset.cpp.o"
  "CMakeFiles/sdft_mcs.dir/cutset.cpp.o.d"
  "CMakeFiles/sdft_mcs.dir/importance.cpp.o"
  "CMakeFiles/sdft_mcs.dir/importance.cpp.o.d"
  "CMakeFiles/sdft_mcs.dir/mocus.cpp.o"
  "CMakeFiles/sdft_mcs.dir/mocus.cpp.o.d"
  "libsdft_mcs.a"
  "libsdft_mcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_mcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
