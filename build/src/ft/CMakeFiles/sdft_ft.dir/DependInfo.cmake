
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/ccf.cpp" "src/ft/CMakeFiles/sdft_ft.dir/ccf.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/ccf.cpp.o.d"
  "/root/repo/src/ft/fault_tree.cpp" "src/ft/CMakeFiles/sdft_ft.dir/fault_tree.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/fault_tree.cpp.o.d"
  "/root/repo/src/ft/modules.cpp" "src/ft/CMakeFiles/sdft_ft.dir/modules.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/modules.cpp.o.d"
  "/root/repo/src/ft/openpsa.cpp" "src/ft/CMakeFiles/sdft_ft.dir/openpsa.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/openpsa.cpp.o.d"
  "/root/repo/src/ft/parser.cpp" "src/ft/CMakeFiles/sdft_ft.dir/parser.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/parser.cpp.o.d"
  "/root/repo/src/ft/voting.cpp" "src/ft/CMakeFiles/sdft_ft.dir/voting.cpp.o" "gcc" "src/ft/CMakeFiles/sdft_ft.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
