file(REMOVE_RECURSE
  "libsdft_ft.a"
)
