# Empty dependencies file for sdft_ft.
# This may be replaced when dependencies are built.
