file(REMOVE_RECURSE
  "CMakeFiles/sdft_ft.dir/ccf.cpp.o"
  "CMakeFiles/sdft_ft.dir/ccf.cpp.o.d"
  "CMakeFiles/sdft_ft.dir/fault_tree.cpp.o"
  "CMakeFiles/sdft_ft.dir/fault_tree.cpp.o.d"
  "CMakeFiles/sdft_ft.dir/modules.cpp.o"
  "CMakeFiles/sdft_ft.dir/modules.cpp.o.d"
  "CMakeFiles/sdft_ft.dir/openpsa.cpp.o"
  "CMakeFiles/sdft_ft.dir/openpsa.cpp.o.d"
  "CMakeFiles/sdft_ft.dir/parser.cpp.o"
  "CMakeFiles/sdft_ft.dir/parser.cpp.o.d"
  "CMakeFiles/sdft_ft.dir/voting.cpp.o"
  "CMakeFiles/sdft_ft.dir/voting.cpp.o.d"
  "libsdft_ft.a"
  "libsdft_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
