# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_analyze_cooling "/root/repo/build/tools/sdft" "analyze" "/root/repo/data/cooling.sdft" "--horizon" "24")
set_tests_properties(cli_analyze_cooling PROPERTIES  PASS_REGULAR_EXPRESSION "failure probability \\(p_rea\\): 3\\.5" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exact_cooling "/root/repo/build/tools/sdft" "exact" "/root/repo/data/cooling.sdft" "--horizon" "24")
set_tests_properties(cli_exact_cooling PROPERTIES  PASS_REGULAR_EXPRESSION "exact failure probability: 3\\.5" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_classify_sequential "/root/repo/build/tools/sdft" "classify" "/root/repo/data/sequential_trains.sdft")
set_tests_properties(cli_classify_sequential PROPERTIES  PASS_REGULAR_EXPRESSION "static-branching" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_static_plant "/root/repo/build/tools/sdft" "static" "/root/repo/data/static_plant.sdft")
set_tests_properties(cli_static_plant PROPERTIES  PASS_REGULAR_EXPRESSION "exact \\(BDD\\):" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mcs_plant "/root/repo/build/tools/sdft" "mcs" "/root/repo/data/static_plant.sdft" "--cutoff" "1e-12")
set_tests_properties(cli_mcs_plant PROPERTIES  PASS_REGULAR_EXPRESSION "minimal cutsets" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_importance_cooling "/root/repo/build/tools/sdft" "importance" "/root/repo/data/cooling.sdft" "--top" "3")
set_tests_properties(cli_importance_cooling PROPERTIES  PASS_REGULAR_EXPRESSION "dynamic" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_convert_roundtrip "/root/repo/build/tools/sdft" "convert" "/root/repo/data/cooling.sdft")
set_tests_properties(cli_convert_roundtrip PROPERTIES  PASS_REGULAR_EXPRESSION "trigger PUMP1 d" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/tools/sdft" "analyze" "/nonexistent.sdft")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
