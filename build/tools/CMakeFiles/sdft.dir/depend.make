# Empty dependencies file for sdft.
# This may be replaced when dependencies are built.
