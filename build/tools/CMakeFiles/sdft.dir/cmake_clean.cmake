file(REMOVE_RECURSE
  "CMakeFiles/sdft.dir/sdft_cli.cpp.o"
  "CMakeFiles/sdft.dir/sdft_cli.cpp.o.d"
  "sdft"
  "sdft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
