# Empty compiler generated dependencies file for bench_trigger_classes.
# This may be replaced when dependencies are built.
