file(REMOVE_RECURSE
  "CMakeFiles/bench_trigger_classes.dir/bench_trigger_classes.cpp.o"
  "CMakeFiles/bench_trigger_classes.dir/bench_trigger_classes.cpp.o.d"
  "bench_trigger_classes"
  "bench_trigger_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trigger_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
