file(REMOVE_RECURSE
  "CMakeFiles/bench_bwr_triggers.dir/bench_bwr_triggers.cpp.o"
  "CMakeFiles/bench_bwr_triggers.dir/bench_bwr_triggers.cpp.o.d"
  "bench_bwr_triggers"
  "bench_bwr_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bwr_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
