# Empty compiler generated dependencies file for bench_bwr_triggers.
# This may be replaced when dependencies are built.
