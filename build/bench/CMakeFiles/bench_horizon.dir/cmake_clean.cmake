file(REMOVE_RECURSE
  "CMakeFiles/bench_horizon.dir/bench_horizon.cpp.o"
  "CMakeFiles/bench_horizon.dir/bench_horizon.cpp.o.d"
  "bench_horizon"
  "bench_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
