# Empty compiler generated dependencies file for bench_horizon.
# This may be replaced when dependencies are built.
