# Empty compiler generated dependencies file for bench_industrial_params.
# This may be replaced when dependencies are built.
