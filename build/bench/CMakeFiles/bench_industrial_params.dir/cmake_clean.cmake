file(REMOVE_RECURSE
  "CMakeFiles/bench_industrial_params.dir/bench_industrial_params.cpp.o"
  "CMakeFiles/bench_industrial_params.dir/bench_industrial_params.cpp.o.d"
  "bench_industrial_params"
  "bench_industrial_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_industrial_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
