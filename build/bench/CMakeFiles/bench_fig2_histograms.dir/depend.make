# Empty dependencies file for bench_fig2_histograms.
# This may be replaced when dependencies are built.
