file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_histograms.dir/bench_fig2_histograms.cpp.o"
  "CMakeFiles/bench_fig2_histograms.dir/bench_fig2_histograms.cpp.o.d"
  "bench_fig2_histograms"
  "bench_fig2_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
