file(REMOVE_RECURSE
  "CMakeFiles/bench_phases.dir/bench_phases.cpp.o"
  "CMakeFiles/bench_phases.dir/bench_phases.cpp.o.d"
  "bench_phases"
  "bench_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
