file(REMOVE_RECURSE
  "CMakeFiles/bench_dyn_fraction.dir/bench_dyn_fraction.cpp.o"
  "CMakeFiles/bench_dyn_fraction.dir/bench_dyn_fraction.cpp.o.d"
  "bench_dyn_fraction"
  "bench_dyn_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dyn_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
