# Empty compiler generated dependencies file for bench_dyn_fraction.
# This may be replaced when dependencies are built.
