// A complete miniature PSA workflow across the library's substrates:
//
//   1. build system fault trees with voting gates and CCF groups,
//   2. arrange them in an event tree (IE, then two safety functions),
//   3. quantify the core-damage end state exactly (BDD, success branches)
//      and coherently (MCS pipeline),
//   4. enrich the study with dynamic pump behaviour along the event
//      tree's demand order (triggers) and run the SD pipeline,
//   5. cross-check with the Monte-Carlo simulator and report importance.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/analyzer.hpp"
#include "core/risk_measures.hpp"
#include "ctmc/triggered.hpp"
#include "etree/event_tree.hpp"
#include "ft/ccf.hpp"
#include "ft/voting.hpp"
#include "mcs/mocus.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace sdft;

  // --- Static study ------------------------------------------------------
  fault_tree ft;
  ft.add_basic_event("IE_TRANSIENT", 5e-3);

  // High-pressure injection: 2-out-of-3 pumps must run; pumps form a CCF
  // group (beta factor).
  std::vector<node_index> hp_pumps;
  for (int i = 0; i < 3; ++i) {
    hp_pumps.push_back(
        ft.add_basic_event("HP_PUMP" + std::to_string(i), 4e-3));
  }
  const node_index hp_f = add_voting_gate(ft, "HP_F", 2, hp_pumps);

  // Auxiliary feedwater: two trains, each pump with start + run failures.
  std::vector<node_index> afw_trains;
  for (int i = 0; i < 2; ++i) {
    const std::string t = std::to_string(i);
    afw_trains.push_back(ft.add_gate(
        "AFW_T" + t, gate_type::or_gate,
        {ft.add_basic_event("AFW_FTS" + t, 2e-3),
         ft.add_basic_event("AFW_FIO" + t, 1.2e-2)}));  // lambda*t, 24h
  }
  const node_index afw_f =
      ft.add_gate("AFW_F", gate_type::and_gate, afw_trains);
  ft.set_top(ft.add_gate("ANY", gate_type::or_gate, {hp_f, afw_f}));

  ccf_group pumps_ccf;
  pumps_ccf.name = "HP_PUMPS";
  pumps_ccf.members = hp_pumps;
  pumps_ccf.beta = 0.08;
  const fault_tree expanded = expand_ccf(ft, {pumps_ccf});

  // --- Event tree over the expanded study ---------------------------------
  event_tree et(expanded, expanded.find("IE_TRANSIENT"), "TRANS");
  et.add_functional_event("AFW", expanded.find("AFW_F"));
  et.add_functional_event("HP", expanded.find("HP_F"));
  et.add_sequence({branch_outcome::success, branch_outcome::bypass}, "OK");
  et.add_sequence({branch_outcome::failure, branch_outcome::success}, "OK");
  et.add_sequence({branch_outcome::failure, branch_outcome::failure}, "CD");
  et.validate();

  std::printf("exact CD frequency (BDD, success branches): %s\n",
              sci(end_state_probability_exact(et, "CD")).c_str());
  const fault_tree cd = end_state_fault_tree(et, "CD");
  const auto mcs = mocus(cd);
  std::printf("coherent CD tree: %zu MCS, rare-event %s\n\n",
              mcs.cutsets.size(),
              sci(rare_event_probability(cd, mcs.cutsets)).c_str());

  // --- Dynamic enrichment along the demand order ---------------------------
  // AFW is demanded first; its failure triggers the HP pumps' run-failures.
  sd_fault_tree tree(cd);
  const double lambda = 5e-4;  // per hour
  for (node_index b : tree.structure().basic_events()) {
    const std::string& name = tree.structure().node(b).name;
    if (name.rfind("AFW_FIO", 0) == 0) {
      tree.make_dynamic(b, make_erlang_active(1, lambda, 2e-2));
    }
  }
  // HP pump independent parts become triggered chains started by AFW_F.
  const node_index afw_gate = tree.structure().find("AFW_F");
  for (int i = 0; i < 3; ++i) {
    const node_index b =
        tree.structure().find("HP_PUMP" + std::to_string(i) + "_I");
    if (b == fault_tree::npos) continue;
    tree.make_dynamic(b, make_erlang_triggered(1, lambda, 2e-2, 100.0));
    tree.set_trigger(afw_gate, b);
  }
  tree.validate();

  analysis_options opts;
  opts.horizon = 24.0;
  const analysis_result result = analyze(tree, opts);
  std::printf("SD pipeline CD frequency (24h): %s  (%zu dynamic MCS)\n",
              sci(result.failure_probability).c_str(),
              result.num_dynamic_cutsets);

  simulation_options sopts;
  sopts.runs = 400'000;
  const simulation_result sim =
      simulate_failure_probability(tree, opts.horizon, sopts);
  std::printf("Monte-Carlo check: %s  95%% CI [%s, %s]\n\n",
              sci(sim.estimate).c_str(), sci(sim.ci_low).c_str(),
              sci(sim.ci_high).c_str());

  const auto fv = fussell_vesely_sd(tree, result);
  text_table table({"event", "FV"});
  std::vector<std::pair<double, node_index>> ranked;
  for (const auto& [event, value] : fv) ranked.emplace_back(value, event);
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < ranked.size() && i < 6; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%.4f", ranked[i].first);
    table.add_row({tree.structure().node(ranked[i].second).name, buf});
  }
  std::printf("top importance contributors:\n%s", table.str().c_str());
  return 0;
}
