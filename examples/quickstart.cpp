// Quickstart: the paper's running example (Examples 1-7) end to end.
//
// Builds the two-pump emergency cooling system, first as a classic static
// fault tree (minimal cutsets, rare-event approximation, exact BDD
// probability), then as an SD fault tree where the pumps' failures in
// operation are repairable Markov chains and the spare pump is triggered
// by the failure of the first one — and runs the paper's analysis pipeline
// on it.

#include <cstdio>

#include "bdd/ft_bdd.hpp"
#include "core/analyzer.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/triggered.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/table.hpp"

namespace {

/// The triggered chain of the spare pump (paper Example 2): off/on pairs of
/// ok/fail states; it fails only while running and is repaired either way.
sdft::triggered_ctmc spare_pump(double failure_rate, double repair_rate) {
  sdft::triggered_ctmc m;
  m.chain = sdft::ctmc(4);  // 0 off-ok, 1 off-fail, 2 on-ok, 3 on-fail
  m.chain.set_initial(0, 1.0);
  m.chain.set_failed(3);
  m.chain.add_rate(2, 3, failure_rate);
  m.chain.add_rate(3, 2, repair_rate);
  m.chain.add_rate(1, 0, repair_rate);
  m.on_state = {0, 0, 1, 1};
  m.to_on = {2, 3, 0, 0};
  m.to_off = {0, 0, 0, 1};
  return m;
}

}  // namespace

int main() {
  using namespace sdft;

  // --- Static fault tree (paper Example 1) -----------------------------
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", 3e-3);  // pump 1 fails to start
  const node_index b = ft.add_basic_event("b", 1e-3);  // pump 1 fails running
  const node_index c = ft.add_basic_event("c", 3e-3);  // pump 2 fails to start
  const node_index d = ft.add_basic_event("d", 1e-3);  // pump 2 fails running
  const node_index e = ft.add_basic_event("e", 3e-6);  // water tank
  const node_index pump1 = ft.add_gate("PUMP1", gate_type::or_gate, {a, b});
  const node_index pump2 = ft.add_gate("PUMP2", gate_type::or_gate, {c, d});
  const node_index pumps =
      ft.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
  ft.set_top(ft.add_gate("COOLING", gate_type::or_gate, {e, pumps}));

  std::printf("== static analysis ==\n");
  const mocus_result mcs = mocus(ft);
  std::printf("minimal cutsets (%zu):\n", mcs.cutsets.size());
  for (const auto& cut : mcs.cutsets) {
    std::printf("  {");
    for (std::size_t i = 0; i < cut.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", ft.node(cut[i]).name.c_str());
    }
    std::printf("}  p = %s\n", sci(cutset_probability(ft, cut)).c_str());
  }
  std::printf("rare-event approximation: %s\n",
              sci(rare_event_probability(ft, mcs.cutsets)).c_str());
  std::printf("exact (BDD):              %s\n\n",
              sci(ft_bdd(ft).probability()).c_str());

  // --- SD fault tree (paper Example 3) ---------------------------------
  sd_fault_tree tree;
  const node_index sa = tree.add_static_event("a", 3e-3);
  const node_index sb =
      tree.add_dynamic_event("b", make_repairable(1e-3, 5e-2));
  const node_index sc = tree.add_static_event("c", 3e-3);
  const node_index sd_ = tree.add_dynamic_event("d", spare_pump(1e-3, 5e-2));
  const node_index se = tree.add_static_event("e", 3e-6);
  const node_index p1 = tree.add_gate("PUMP1", gate_type::or_gate, {sa, sb});
  const node_index p2 = tree.add_gate("PUMP2", gate_type::or_gate, {sc, sd_});
  const node_index ps = tree.add_gate("PUMPS", gate_type::and_gate, {p1, p2});
  tree.set_top(tree.add_gate("COOLING", gate_type::or_gate, {se, ps}));
  tree.set_trigger(p1, sd_);  // pump 1's failure starts the spare
  tree.validate();

  std::printf("== SD analysis (repairs + triggered spare) ==\n");
  text_table table({"horizon", "p_rea (pipeline)", "exact (product CTMC)",
                    "dynamic MCSs"});
  for (double horizon : {6.0, 24.0, 48.0, 96.0}) {
    analysis_options opts;
    opts.horizon = horizon;
    const analysis_result result = analyze(tree, opts);
    const double exact = exact_failure_probability(tree, horizon);
    table.add_row({std::to_string(static_cast<int>(horizon)) + "h",
                   sci(result.failure_probability), sci(exact),
                   std::to_string(result.num_dynamic_cutsets) + "/" +
                       std::to_string(result.num_cutsets)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "The pipeline's rare-event sum tracks the exact product-chain\n"
      "probability while only ever solving per-cutset Markov chains.\n");
  return 0;
}
