// The fictive boiling-water-reactor safety study of the paper's §VI-A:
// five cooling-related systems (ECC, EFW, RHR + the CCW and SWS support
// chain), two pump trains each, FEED&BLEED recovery, enriched step by step
// with repairs and trigger dependencies.

#include <cstdio>

#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "mcs/mocus.hpp"
#include "sdft/classify.hpp"
#include "sdft/translate.hpp"
#include "util/table.hpp"

int main() {
  using namespace sdft;

  // The legacy static study ("no timing").
  const sd_fault_tree static_model = make_bwr_model({});
  const auto& ft = static_model.structure();
  mocus_options mopts;
  mopts.cutoff = 1e-15;
  const mocus_result static_mcs = mocus(ft, mopts);
  std::printf("model: %zu basic events, %zu gates, %zu minimal cutsets\n",
              ft.num_basic_events(), ft.num_gates(),
              static_mcs.cutsets.size());
  std::printf("static core damage frequency (rare-event): %s\n\n",
              sci(rare_event_probability(ft, static_mcs.cutsets)).c_str());

  // Dynamic enrichment: repairable pumps, then the trigger chain of the
  // paper's table, cumulatively.
  text_table table({"setting", "failure freq.", "dyn. MCSs", "time",
                    "cache hits"});
  const char* labels[] = {"+FEED&BLEED trigger", "+RHR trigger",
                          "+EFW trigger",        "+ECC trigger",
                          "+SWS trigger",        "+CCW trigger"};
  analysis_options aopts;
  aopts.horizon = 24.0;
  aopts.cutoff = 1e-15;
  aopts.keep_cutset_details = false;
  // One engine across the cumulative rows: each row only changes a few
  // triggers, so most per-MCS transient solves are reused from the cache.
  analysis_engine engine(aopts);

  for (int triggers = 0; triggers <= bwr_num_triggers; ++triggers) {
    bwr_options opts;
    opts.dynamic_events = true;
    opts.repair_rate = 1.0 / 100.0;
    opts = with_bwr_triggers(opts, triggers);
    const sd_fault_tree model = make_bwr_model(opts);
    const analysis_result result = engine.run(model);
    table.add_row(
        {triggers == 0 ? "repair rate 1/100h" : labels[triggers - 1],
         sci(result.failure_probability),
         std::to_string(result.num_dynamic_cutsets),
         duration_str(result.total_seconds),
         std::to_string(result.stats.cache_hits)});
  }
  std::printf("%s\n", table.str().c_str());

  // Show the triggering structure of the fully dynamic model.
  bwr_options full;
  full.dynamic_events = true;
  full.repair_rate = 0.01;
  full = with_bwr_triggers(full, bwr_num_triggers);
  const sd_fault_tree model = make_bwr_model(full);
  std::printf("trigger gates of the fully dynamic model:\n");
  for (const auto& entry : analyze_triggers(model).gates) {
    std::printf("  %-10s -> %zu event(s), class=%s\n",
                model.structure().node(entry.gate).name.c_str(),
                model.triggered_events(entry.gate).size(),
                to_string(entry.cls).c_str());
  }
  return 0;
}
