// Industrial-scale run: generate a synthetic PSA study (the stand-in for
// the paper's proprietary §VI-B plant models), rank events by
// Fussell-Vesely importance, enrich the top slice with dynamic behaviour
// and trigger chains, and run the full SD analysis pipeline.

#include <cstdio>
#include <cstring>

#include "engine/engine.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sdft;

  industrial_options gopts;
  gopts.seed = 2015;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      // Paper-order sizing (§VI-B Model 1 territory); takes much longer.
      gopts.num_frontline_systems = 60;
      gopts.num_support_systems = 12;
      gopts.num_initiating_events = 30;
      gopts.sequences_per_ie = 10;
      gopts.components_per_train = 8;
    }
  }

  stopwatch timer;
  const industrial_model model = generate_industrial(gopts);
  std::printf("generated: %zu basic events, %zu gates (%.1fs)\n",
              model.ft.num_basic_events(), model.ft.num_gates(),
              timer.seconds());

  timer.reset();
  mocus_options mopts;
  mopts.cutoff = 1e-15;
  const mocus_result mcs = mocus(model.ft, mopts);
  std::printf("minimal cutsets above 1e-15: %zu (%.1fs, %zu partials)\n",
              mcs.cutsets.size(), mcs.seconds, mcs.partials_processed);
  std::printf("static frequency: %s\n\n",
              sci(rare_event_probability(model.ft, mcs.cutsets)).c_str());

  const auto ranked = rank_by_fussell_vesely(model.ft, mcs.cutsets);

  // One engine across all runs: its quantification cache is keyed by the
  // structural signature of each per-MCS model, so later (larger) dynamic
  // fractions reuse the transient solves of earlier ones.
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-15;
  opts.keep_cutset_details = false;
  analysis_engine engine(opts);

  text_table table({"% dyn. FIO", "failure freq.", "dyn. MCS",
                    "mean dyn. events", "analysis time", "cache hit rate"});
  for (double fraction : {0.1, 0.3, 0.5, 1.0}) {
    annotation_options aopts;
    aopts.dynamic_fraction = fraction;
    aopts.trigger_fraction = 0.1;
    const sd_fault_tree tree = annotate_dynamic(model, ranked, aopts);

    const analysis_result result = engine.run(tree);
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.2f", result.mean_dynamic_events);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f%%",
                  100.0 * result.stats.cache_hit_rate());
    table.add_row({std::to_string(static_cast<int>(fraction * 100)),
                   sci(result.failure_probability),
                   std::to_string(result.num_dynamic_cutsets), mean,
                   duration_str(result.total_seconds), rate});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Dynamic modelling of the most important events lowers the computed\n"
      "frequency; the per-cutset Markov chains stay small, so the\n"
      "quantification scales with the cutset list, not the state space —\n"
      "and the engine's memoisation collapses structurally identical\n"
      "chains (%zu cached solves served %zu quantifications).\n",
      engine.cache().size(), engine.cache().hits() + engine.cache().misses());
  return 0;
}
