// Emergency cooling with sequential redundancy: how static analysis
// overestimates risk for long mission times (the paper's motivating
// scenario from §I).
//
// A cooled-and-stable state must be maintained for up to a week. The
// cooling function has three redundant pump trains used *sequentially*:
// train 2 starts when train 1 fails, train 3 when train 2 fails. Each pump
// can fail to start (static, per demand) and fail in operation
// (dynamic, repairable while running).
//
// A legacy static study has to assume all three pumps run for the whole
// mission ("the pumps work all the time and no repairs are possible",
// paper §I); the SD analysis uses the sequence and the repairs.

#include <cmath>
#include <cstdio>

#include "core/analyzer.hpp"
#include "ctmc/triggered.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/mocus.hpp"
#include "sdft/classify.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/table.hpp"

namespace {

constexpr double fts = 2e-3;          // failure to start, per demand
constexpr double fio_rate = 8e-4;     // failure in operation, per hour
constexpr double repair_rate = 5e-2;  // 20 h mean time to repair

/// Static variant: fail-in-operation becomes 1 - e^{-lambda t}.
sdft::fault_tree static_study(double horizon) {
  using namespace sdft;
  fault_tree ft;
  const double p_fio = 1.0 - std::exp(-fio_rate * horizon);
  std::vector<node_index> trains;
  for (int i = 1; i <= 3; ++i) {
    const std::string t = std::to_string(i);
    const node_index start = ft.add_basic_event("P" + t + "_FTS", fts);
    const node_index run = ft.add_basic_event("P" + t + "_FIO", p_fio);
    trains.push_back(
        ft.add_gate("TRAIN" + t, gate_type::or_gate, {start, run}));
  }
  ft.set_top(ft.add_gate("COOLING", gate_type::and_gate, trains));
  return ft;
}

/// SD variant: train i+1's running failure is triggered by train i's gate.
sdft::sd_fault_tree sd_study() {
  using namespace sdft;
  sd_fault_tree tree;
  std::vector<node_index> trains;
  node_index previous = fault_tree::npos;
  for (int i = 1; i <= 3; ++i) {
    const std::string t = std::to_string(i);
    const node_index start = tree.add_static_event("P" + t + "_FTS", fts);
    node_index run;
    if (previous == fault_tree::npos) {
      run = tree.add_dynamic_event(
          "P" + t + "_FIO", make_erlang_active(1, fio_rate, repair_rate));
    } else {
      run = tree.add_dynamic_event(
          "P" + t + "_FIO",
          make_erlang_triggered(1, fio_rate, repair_rate,
                                /*passive_factor=*/100.0));
    }
    const node_index train =
        tree.add_gate("TRAIN" + t, gate_type::or_gate, {start, run});
    if (previous != fault_tree::npos) tree.set_trigger(previous, run);
    previous = train;
    trains.push_back(train);
  }
  tree.set_top(tree.add_gate("COOLING", gate_type::and_gate, trains));
  tree.validate();
  return tree;
}

}  // namespace

int main() {
  using namespace sdft;

  const sd_fault_tree tree = sd_study();
  const trigger_report report = analyze_triggers(tree);
  std::printf("trigger gates: %zu, all efficient: %s\n\n",
              report.gates.size(), report.efficient ? "yes" : "no");
  for (const auto& entry : report.gates) {
    std::printf("  %-8s class=%s uniform=%s\n",
                tree.structure().node(entry.gate).name.c_str(),
                to_string(entry.cls).c_str(),
                entry.uniform_triggering ? "yes" : "no");
  }

  text_table table(
      {"mission", "static p_rea", "SD p_rea", "conservatism factor"});
  for (double horizon : {24.0, 72.0, 168.0}) {
    const fault_tree legacy = static_study(horizon);
    const double p_static =
        rare_event_probability(legacy, mocus(legacy).cutsets);

    analysis_options opts;
    opts.horizon = horizon;
    const double p_sd = analyze(tree, opts).failure_probability;
    char factor[32];
    std::snprintf(factor, sizeof factor, "%.1fx", p_static / p_sd);
    table.add_row({std::to_string(static_cast<int>(horizon)) + "h",
                   sci(p_static), sci(p_sd), factor});
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf(
      "The static study's conservatism grows with the mission time: it\n"
      "charges every train for the full horizon, while the SD analysis\n"
      "lets standby trains age slowly and repaired trains return.\n");
  return 0;
}
