#include "core/mcs_model.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "ctmc/transient.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "util/error.hpp"
#include "util/sorted_set.hpp"

namespace sdft {

namespace {

/// Incremental FT_C construction state.
class ftc_builder {
 public:
  ftc_builder(const sd_fault_tree& source, const cutset& c, approx_mode mode)
      : source_(source), mode_(mode) {
    for (node_index b : c) {
      require_model(source_.structure().is_basic(b),
                    "mcs_model: cutset contains a non-basic node");
      if (source_.is_dynamic(b)) {
        in_cutset_.insert(b);
        result_.cutset_dynamic.push_back(b);
      } else {
        in_cutset_.insert(b);
        cutset_static_.push_back(b);
        result_.static_factor *= source_.structure().node(b).probability;
      }
    }
    require_model(!result_.cutset_dynamic.empty(),
                  "mcs_model: cutset has no dynamic events");
  }

  mcs_model build() {
    // Step 1: top AND over the cutset's dynamic events.
    std::vector<node_index> top_inputs;
    for (node_index e : result_.cutset_dynamic) {
      top_inputs.push_back(add_event(e));
    }
    const node_index top =
        result_.tree.add_gate("MCS_TOP", gate_type::and_gate, top_inputs);
    result_.tree.set_top(top);

    // Steps 2-3: model triggering logic, breadth-first so cutset events
    // (enqueued first) are processed before recursion-added ones.
    while (!pending_.empty()) {
      const node_index event = pending_.front();
      pending_.pop_front();
      model_trigger_of(event);
    }
    result_.tree.validate();
    return std::move(result_);
  }

 private:
  /// Maps a source basic event into FT_C, creating it on first use. Newly
  /// added triggered events are queued for trigger modelling.
  node_index add_event(node_index b) {
    auto it = event_map_.find(b);
    if (it != event_map_.end()) return it->second;
    const auto& node = source_.structure().node(b);
    node_index idx;
    if (source_.is_dynamic(b)) {
      const dynamic_model& model = source_.model_of(b);
      if (std::holds_alternative<triggered_ctmc>(model)) {
        idx = result_.tree.add_dynamic_event(node.name,
                                             std::get<triggered_ctmc>(model));
        pending_.push_back(b);
      } else {
        idx = result_.tree.add_dynamic_event(node.name, std::get<ctmc>(model));
      }
      if (!in_cutset_.count(b)) result_.added_dynamic.push_back(b);
    } else {
      idx = result_.tree.add_static_event(node.name, node.probability);
      result_.added_static.push_back(b);
    }
    event_map_.emplace(b, idx);
    return idx;
  }

  /// Models the triggering gate of `event` (a triggered dynamic event
  /// already present in FT_C) per paper §V-C step 2, or reuses an
  /// already-modelled gate (step 3).
  void model_trigger_of(node_index event) {
    const node_index gate = source_.trigger_gate_of(event);
    auto it = gate_map_.find(gate);
    if (it != gate_map_.end()) {
      result_.tree.set_trigger(it->second, event_map_.at(event));
      return;
    }

    // Determine the modelling class. Cutset events use the class their
    // gate satisfies; recursion-added events fall back to the general case
    // (paper §V-C step 3). The approximation modes override this.
    trigger_class cls;
    if (mode_ == approx_mode::under_approximate) {
      cls = trigger_class::static_branching;
    } else if (in_cutset_.count(event)) {
      cls = classify_trigger_gate(source_, gate);
    } else {
      cls = trigger_class::general;
    }
    if (mode_ == approx_mode::over_approximate &&
        cls == trigger_class::general) {
      cls = trigger_class::static_joins;
    }
    result_.used_classes.push_back(cls);

    // Partition the subtree's basic events.
    std::vector<node_index> sub_static;
    std::vector<node_index> sub_dynamic;
    for (node_index n : source_.structure().descendants(gate)) {
      if (!source_.structure().is_basic(n)) continue;
      (source_.is_dynamic(n) ? sub_dynamic : sub_static).push_back(n);
    }

    // Rel_a and the boolean assumptions (paper §V-C step 2).
    std::vector<node_index> rel;
    std::vector<node_index> assumed_failed;
    for (node_index s : sub_static) {
      if (in_cutset_.count(s)) {
        assumed_failed.push_back(s);
      } else if (cls == trigger_class::general) {
        rel.push_back(s);
      } else if (mode_ == approx_mode::over_approximate) {
        // Interference "irrespective of static basic events": guards are
        // assumed failed so triggers fire at least as early as exactly.
        assumed_failed.push_back(s);
      }
    }
    for (node_index d : sub_dynamic) {
      if (cls == trigger_class::static_branching) {
        if (in_cutset_.count(d)) rel.push_back(d);
      } else {
        rel.push_back(d);
      }
    }

    std::vector<node_index> assumed_working;
    {
      std::vector<node_index> all = sub_static;
      all.insert(all.end(), sub_dynamic.begin(), sub_dynamic.end());
      sorted_set::normalize(all);
      std::vector<node_index> keep = rel;
      keep.insert(keep.end(), assumed_failed.begin(), assumed_failed.end());
      sorted_set::normalize(keep);
      assumed_working = sorted_set::set_difference(all, keep);
    }

    // Minimal trigger sets A_1..A_k over Rel_a.
    mocus_options opts;
    opts.assume_failed = assumed_failed;
    opts.assume_working = assumed_working;
    const mocus_result sets = mocus_from(source_.structure(), gate, opts);

    // Build the trigger model: OR of ANDs (constants via zero-input gates).
    const std::string base = "trig::" + source_.structure().node(gate).name;
    node_index model_gate;
    if (sets.cutsets.size() == 1 && sets.cutsets.front().empty()) {
      // Already failed under the static assumptions: constant TRUE, the
      // event is switched on from time 0.
      model_gate = result_.tree.add_gate(base, gate_type::and_gate);
    } else {
      model_gate = result_.tree.add_gate(base, gate_type::or_gate);
      std::size_t i = 0;
      for (const cutset& a : sets.cutsets) {
        if (a.size() == 1) {
          result_.tree.add_input(model_gate, add_event(a.front()));
        } else {
          const node_index conj = result_.tree.add_gate(
              base + "::" + std::to_string(i), gate_type::and_gate);
          for (node_index b : a) {
            result_.tree.add_input(conj, add_event(b));
          }
          result_.tree.add_input(model_gate, conj);
        }
        ++i;
      }
      // An empty OR (sets.cutsets empty) is constant FALSE: the trigger can
      // never fire, so the event stays off. This cannot arise for cutsets
      // produced from FT-bar but is well-defined for hand-built cutsets.
    }
    gate_map_.emplace(gate, model_gate);
    result_.tree.set_trigger(model_gate, event_map_.at(event));
  }

  const sd_fault_tree& source_;
  const approx_mode mode_;
  mcs_model result_;
  std::vector<node_index> cutset_static_;
  std::unordered_set<node_index> in_cutset_;
  std::unordered_map<node_index, node_index> event_map_;  // source -> FT_C
  std::unordered_map<node_index, node_index> gate_map_;   // source -> FT_C
  std::deque<node_index> pending_;  // triggered events awaiting modelling
};

}  // namespace

mcs_model build_mcs_model(const sd_fault_tree& tree, const cutset& c,
                          approx_mode mode) {
  return ftc_builder(tree, c, mode).build();
}

double quantify_mcs_model(const mcs_model& model, double t, double epsilon,
                          std::size_t max_product_states,
                          std::size_t* chain_states) {
  product_options opts;
  opts.max_states = max_product_states;
  const product_ctmc product = build_product_ctmc(model.tree, opts);
  if (chain_states != nullptr) *chain_states = product.num_states();
  return reach_failed_probability(product.chain, t, epsilon) *
         model.static_factor;
}

}  // namespace sdft
