#pragma once

#include <vector>

#include "mcs/cutset.hpp"
#include "sdft/classify.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// How trigger-gate subtrees are modelled when building per-cutset models.
enum class approx_mode {
  /// Paper §V-C: use the class each triggering gate actually satisfies
  /// (static branching / static joins / general).
  as_classified,

  /// Paper §VIII (future work), under-approximation: always use the
  /// static-branching rule Rel_a = Dyn_a ∩ C, disregarding the interplay of
  /// dynamic events outside the cutset. Cheaper, may miss failure runs.
  under_approximate,

  /// Paper §VIII (future work), over-approximation: let dynamic events
  /// interfere irrespective of static events — the general case's static
  /// guards are assumed failed, so triggers fire at least as early as in
  /// the exact semantics.
  over_approximate,
};

/// The small SD fault tree FT_C quantifying one minimal cutset
/// (paper §V-C), with bookkeeping for the statistics the paper reports.
struct mcs_model {
  /// FT_C: top AND over the cutset's dynamic events, plus the triggering
  /// logic (OR-of-ANDs per modelled triggering gate) with trigger edges.
  sd_fault_tree tree;

  /// prod of p(a) over static events of the cutset (factored out of the
  /// Markov analysis, paper §V-C).
  double static_factor = 1.0;

  /// Dynamic events of the cutset itself (original-tree indices).
  std::vector<node_index> cutset_dynamic;

  /// Dynamic events added by the triggering logic (original-tree indices);
  /// the paper's "events added because triggering gates do not have static
  /// branching" statistic.
  std::vector<node_index> added_dynamic;

  /// Static events added by general-case triggering logic ("guards").
  std::vector<node_index> added_static;

  /// Trigger classes actually used, one per modelled triggering gate.
  std::vector<trigger_class> used_classes;
};

/// Builds FT_C for cutset `c` of `tree` following paper §V-C:
///  1. top gate = AND of the dynamic events of `c`;
///  2. for each triggered event, model its triggering gate over the
///     relevant events Rel_a of its class, as the OR of the minimal trigger
///     sets A_1..A_k (computed with the cutset's static events assumed
///     failed);
///  3. close recursively over newly added triggered events, reusing
///     already-modelled triggering gates and falling back to the general
///     case otherwise.
///
/// Requires `c` to contain at least one dynamic event (purely static
/// cutsets are quantified directly as their probability product).
mcs_model build_mcs_model(const sd_fault_tree& tree, const cutset& c,
                          approx_mode mode = approx_mode::as_classified);

/// Pr[Reach<=t(Failed(C))] ~ failure probability of the FT_C product chain
/// times the static factor (paper §V-C). `chain_states` (optional out)
/// receives the product chain size.
double quantify_mcs_model(const mcs_model& model, double t,
                          double epsilon = 1e-10,
                          std::size_t max_product_states = 2'000'000,
                          std::size_t* chain_states = nullptr);

}  // namespace sdft
