#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/analyzer.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Fussell-Vesely importance of every basic event from a quantified SD
/// analysis: FV(a) = sum of p-tilde(C) over cutsets containing a, divided
/// by the total. The paper's concluding remark points out that importance
/// analyses re-evaluate the quantified cutset list — no further Markov
/// chains need to be solved.
///
/// Requires `result` to have been produced with keep_cutset_details on.
std::unordered_map<node_index, double> fussell_vesely_sd(
    const sd_fault_tree& tree, const analysis_result& result);

/// Risk-decrease importance: the failure probability with basic event `a`
/// assumed perfect (its cutsets removed), from the quantified list.
double risk_without_event(const analysis_result& result, node_index event);

/// Options of the Monte-Carlo parametric uncertainty analysis.
struct uncertainty_options {
  std::size_t samples = 1000;
  std::uint64_t seed = 1;

  /// Lognormal error factor EF = p95 / median applied to every basic
  /// event's failure data (the standard parametric uncertainty model of
  /// nuclear PSA). Must be >= 1.
  double error_factor = 3.0;
};

/// Result of the uncertainty analysis: statistics of the failure
/// probability over the sampled parameter sets.
struct uncertainty_result {
  double mean = 0;
  double median = 0;
  double p05 = 0;
  double p95 = 0;
  double point_estimate = 0;  ///< the unsampled p_rea, for reference
  std::vector<double> samples;  ///< sorted sample values
};

/// Monte-Carlo uncertainty propagation over the quantified cutset list
/// (paper §VI concluding remark): each sample draws one lognormal
/// multiplier per basic event (median 1) and re-evaluates every cutset as
/// p-tilde(C) * prod of its members' multipliers, i.e. first-order
/// scaling in each member's failure data. For purely static cutsets this
/// is exact; for dynamic cutsets it is the standard cutset-level
/// approximation (the per-cutset Markov chains are not re-solved).
///
/// Requires `result` to have been produced with keep_cutset_details on.
uncertainty_result uncertainty_analysis(const analysis_result& result,
                                        const uncertainty_options& options);

}  // namespace sdft
