#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/mcs_model.hpp"
#include "mcs/cutset.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Options of the SD fault tree analysis pipeline (paper §V).
struct analysis_options {
  /// Mission time / analysis horizon t in hours (paper uses 24h..96h).
  double horizon = 24.0;

  /// Relevance cutoff c* applied both while generating minimal cutsets on
  /// FT-bar (conservative, paper eq. (1)) and when summing quantified
  /// cutsets. 0 disables truncation.
  double cutoff = 0.0;

  /// Numerical accuracy of the transient analyses.
  double epsilon = 1e-10;

  /// Worker threads for per-cutset quantification; 0 = hardware threads.
  /// Cutset quantifications are independent (paper §VI concluding remark).
  std::size_t threads = 0;

  /// Trigger modelling mode (exact per classification, or the paper's
  /// §VIII approximation variants).
  approx_mode mode = approx_mode::as_classified;

  /// Per-cutset product chain size cap; larger cutsets are reported as
  /// failed quantifications with their conservative FT-bar probability.
  std::size_t max_product_states = 2'000'000;

  /// Retain the per-cutset breakdown in the result (disable to save memory
  /// on very large runs).
  bool keep_cutset_details = true;

  /// Use the dynamic events' reference static probabilities (when set)
  /// instead of their worst-case probabilities while generating cutsets on
  /// FT-bar — the paper's "static cutoff" (§VI), which keeps the cutset
  /// list independent of the dynamic models.
  bool reference_cutoff = false;
};

/// Outcome of quantifying one minimal cutset.
struct cutset_result {
  cutset events;           ///< original-tree basic-event indices
  double probability = 0;  ///< p-tilde(C)
  bool dynamic = false;    ///< quantified via a Markov chain (vs static product)
  std::size_t num_dynamic = 0;        ///< dynamic events in C
  std::size_t num_added_dynamic = 0;  ///< dynamic events added by triggering
  std::size_t chain_states = 0;       ///< product chain size (dynamic only)
  double seconds = 0;                 ///< quantification wall time
  std::string error;  ///< non-empty if quantification fell back (see above)
};

/// Result of the full SD analysis.
struct analysis_result {
  /// Rare-event approximation over relevant cutsets (paper §V, p_rea).
  double failure_probability = 0;

  std::size_t num_cutsets = 0;          ///< relevant MCSs found on FT-bar
  std::size_t num_dynamic_cutsets = 0;  ///< MCSs quantified dynamically

  double translate_seconds = 0;  ///< FT-bar construction + worst-case p(a)
  double mcs_seconds = 0;        ///< MOCUS on FT-bar
  double quantify_seconds = 0;   ///< summed wall time of the pipeline stage
  double total_seconds = 0;

  std::size_t mocus_partials = 0;
  std::size_t mocus_discarded = 0;

  /// Per-cutset details (empty if keep_cutset_details is false).
  std::vector<cutset_result> cutsets;

  /// Histogram over the number of dynamic events per *dynamic* cutset,
  /// counting both cutset events and events added by trigger modelling —
  /// the quantity behind the paper's Figure 2. Index = count.
  std::vector<std::size_t> dynamic_events_histogram;

  /// Mean dynamic events per dynamic cutset, and the mean number of those
  /// that were added by triggering (paper §VI-A reports 3.02 / 1.78).
  double mean_dynamic_events = 0;
  double mean_added_dynamic_events = 0;
};

/// Runs the full pipeline of the paper (§V): translate to FT-bar with
/// worst-case probabilities, generate relevant minimal cutsets with MOCUS,
/// quantify each cutset on its small product Markov chain (in parallel),
/// and sum the rare-event approximation.
analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options = {});

}  // namespace sdft
