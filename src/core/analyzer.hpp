#pragma once

// Compatibility shim: the analysis pipeline moved to the engine layer.
// analysis_options, analysis_result, cutset_result and analyze() now live
// in engine/engine.hpp; include that directly in new code.
#include "engine/engine.hpp"
