#include "core/analyzer.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "mcs/mocus.hpp"
#include "sdft/translate.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// Quantifies one cutset (already mapped to original-tree indices).
cutset_result quantify_cutset(const sd_fault_tree& tree, cutset c,
                              const static_translation& translation,
                              const analysis_options& options) {
  const stopwatch timer;
  cutset_result out;
  out.events = std::move(c);

  bool has_dynamic = false;
  for (node_index b : out.events) {
    if (tree.is_dynamic(b)) has_dynamic = true;
  }

  if (!has_dynamic) {
    double p = 1.0;
    for (node_index b : out.events) {
      p *= tree.structure().node(b).probability;
    }
    out.probability = p;
    out.seconds = timer.seconds();
    return out;
  }

  out.dynamic = true;
  try {
    const mcs_model model = build_mcs_model(tree, out.events, options.mode);
    out.num_dynamic = model.cutset_dynamic.size();
    out.num_added_dynamic = model.added_dynamic.size();
    out.probability =
        quantify_mcs_model(model, options.horizon, options.epsilon,
                           options.max_product_states, &out.chain_states);
  } catch (const error& e) {
    // Conservative fallback: the FT-bar product of worst-case
    // probabilities bounds p-tilde(C) from above (paper eq. (1)).
    out.error = e.what();
    double p = 1.0;
    for (node_index b : out.events) {
      if (tree.is_dynamic(b)) {
        p *= translation.worst_case.at(b);
      } else {
        p *= tree.structure().node(b).probability;
      }
    }
    out.probability = p;
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace

analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options) {
  const stopwatch total_timer;
  analysis_result result;

  // Stage 1: FT-bar with worst-case probabilities (paper §V-B).
  stopwatch stage_timer;
  const static_translation translation =
      translate_to_static(tree, options.horizon, options.epsilon,
                          options.reference_cutoff);
  result.translate_seconds = stage_timer.seconds();

  // Stage 2: relevant minimal cutsets via MOCUS (paper §V-B).
  stage_timer.reset();
  mocus_options mopts;
  mopts.cutoff = options.cutoff;
  const mocus_result mcs = mocus(translation.ft_bar, mopts);
  result.mcs_seconds = stage_timer.seconds();
  result.mocus_partials = mcs.partials_processed;
  result.mocus_discarded = mcs.cutoff_discarded;
  result.num_cutsets = mcs.cutsets.size();

  // Map cutsets back to original-tree indices.
  std::vector<cutset> cutsets;
  cutsets.reserve(mcs.cutsets.size());
  for (const cutset& c : mcs.cutsets) {
    cutset mapped;
    mapped.reserve(c.size());
    for (node_index b : c) mapped.push_back(translation.to_sd.at(b));
    std::sort(mapped.begin(), mapped.end());
    cutsets.push_back(std::move(mapped));
  }

  // Stage 3: per-cutset quantification, in parallel (paper §V-C).
  stage_timer.reset();
  std::vector<cutset_result> quantified(cutsets.size());
  {
    thread_pool pool(options.threads);
    parallel_for(pool, cutsets.size(), [&](std::size_t i) {
      quantified[i] =
          quantify_cutset(tree, std::move(cutsets[i]), translation, options);
    });
  }
  result.quantify_seconds = stage_timer.seconds();

  // Stage 4: rare-event sum over relevant cutsets plus statistics.
  std::size_t dynamic_events_total = 0;
  std::size_t added_dynamic_total = 0;
  for (auto& q : quantified) {
    if (options.cutoff > 0.0 && q.probability <= options.cutoff) continue;
    result.failure_probability += q.probability;
  }
  for (auto& q : quantified) {
    if (!q.dynamic) continue;
    ++result.num_dynamic_cutsets;
    const std::size_t events = q.num_dynamic + q.num_added_dynamic;
    if (result.dynamic_events_histogram.size() <= events) {
      result.dynamic_events_histogram.resize(events + 1, 0);
    }
    ++result.dynamic_events_histogram[events];
    dynamic_events_total += events;
    added_dynamic_total += q.num_added_dynamic;
  }
  if (result.num_dynamic_cutsets > 0) {
    result.mean_dynamic_events =
        static_cast<double>(dynamic_events_total) /
        static_cast<double>(result.num_dynamic_cutsets);
    result.mean_added_dynamic_events =
        static_cast<double>(added_dynamic_total) /
        static_cast<double>(result.num_dynamic_cutsets);
  }
  if (options.keep_cutset_details) {
    result.cutsets = std::move(quantified);
  }
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace sdft
