#include "core/risk_measures.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/sorted_set.hpp"

namespace sdft {

std::unordered_map<node_index, double> fussell_vesely_sd(
    const sd_fault_tree& tree, const analysis_result& result) {
  require_model(!result.cutsets.empty() || result.num_cutsets == 0,
                "fussell_vesely_sd: analysis was run without cutset details");
  std::unordered_map<node_index, double> with;
  double total = 0.0;
  for (const auto& q : result.cutsets) {
    total += q.probability;
    for (node_index b : q.events) with[b] += q.probability;
  }
  std::unordered_map<node_index, double> out;
  for (node_index b : tree.structure().basic_events()) {
    auto it = with.find(b);
    out[b] = (it != with.end() && total > 0.0) ? it->second / total : 0.0;
  }
  return out;
}

double risk_without_event(const analysis_result& result, node_index event) {
  double total = 0.0;
  for (const auto& q : result.cutsets) {
    if (!sorted_set::contains(q.events, event)) total += q.probability;
  }
  return total;
}

uncertainty_result uncertainty_analysis(const analysis_result& result,
                                        const uncertainty_options& options) {
  require_model(options.samples > 0,
                "uncertainty_analysis: need at least one sample");
  require_model(options.error_factor >= 1.0,
                "uncertainty_analysis: error factor must be >= 1");
  require_model(!result.cutsets.empty() || result.num_cutsets == 0,
                "uncertainty_analysis: analysis was run without details");

  // Lognormal with median 1 and EF = p95/median: sigma = ln(EF) / z95.
  const double sigma = std::log(options.error_factor) / 1.6448536269514722;

  // Collect the events appearing in cutsets; each gets one multiplier per
  // sample (fully correlated across the cutsets it appears in, as in PSA
  // practice for a single data entry).
  std::vector<node_index> events;
  for (const auto& q : result.cutsets) {
    for (node_index b : q.events) events.push_back(b);
  }
  sorted_set::normalize(events);
  std::unordered_map<node_index, std::size_t> position;
  for (std::size_t i = 0; i < events.size(); ++i) position[events[i]] = i;

  rng random(options.seed);
  uncertainty_result out;
  out.point_estimate = result.failure_probability;
  out.samples.reserve(options.samples);
  std::vector<double> multiplier(events.size());
  for (std::size_t s = 0; s < options.samples; ++s) {
    for (double& m : multiplier) {
      // Box-Muller normal deviate -> lognormal multiplier with median 1.
      const double u1 = random.uniform();
      const double u2 = random.uniform();
      const double z =
          std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
      m = std::exp(sigma * z);
    }
    double total = 0.0;
    for (const auto& q : result.cutsets) {
      double p = q.probability;
      for (node_index b : q.events) p *= multiplier[position[b]];
      total += std::min(p, 1.0);
    }
    out.samples.push_back(total);
    out.mean += total;
  }
  out.mean /= static_cast<double>(options.samples);
  std::sort(out.samples.begin(), out.samples.end());
  const auto at = [&](double quantile) {
    const auto idx = static_cast<std::size_t>(
        quantile * static_cast<double>(out.samples.size() - 1));
    return out.samples[idx];
  };
  out.median = at(0.5);
  out.p05 = at(0.05);
  out.p95 = at(0.95);
  return out;
}

}  // namespace sdft
