#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace sdft::obs {

#if SDFT_OBS

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_ambient_parent{0};
std::atomic<std::uint32_t> g_next_tid{1};

/// Innermost live span on this thread (0 when none).
thread_local std::uint64_t tls_current_span = 0;

using clock = std::chrono::steady_clock;

std::int64_t to_ns(clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

std::uint64_t ns_between(clock::time_point from, clock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

/// Recorder epoch in steady-clock nanoseconds; an atomic so finishing
/// spans never touch the global recorder mutex.
std::atomic<std::int64_t> g_epoch_ns{to_ns(clock::now())};

/// Per-thread span sink. The owner appends under the buffer's own mutex
/// (never contended unless a snapshot is in flight), so threads never
/// serialise against each other while recording.
struct thread_buffer {
  mutable std::mutex mutex;
  std::vector<span_record> spans;
  std::uint32_t tid = 0;
  std::string label;
};

struct recorder_state {
  mutable std::mutex mutex;  ///< guards the buffer list
  std::vector<std::shared_ptr<thread_buffer>> buffers;
};

recorder_state& state() {
  static recorder_state* s = new recorder_state();  // leaked: outlives threads
  return *s;
}

thread_buffer& local_buffer() {
  thread_local std::shared_ptr<thread_buffer> buf = [] {
    auto b = std::make_shared<thread_buffer>();
    b->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(state().mutex);
    state().buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// span_scope

span_scope::span_scope(const char* name, const char* category)
    : span_scope(name, category, /*parent=*/0) {}

span_scope::span_scope(const char* name, const char* category,
                       std::uint64_t parent) {
  if (!enabled()) return;
  active_ = true;
  rec_.name = name;
  rec_.category = category;
  rec_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  if (parent != 0) {
    rec_.parent = parent;
  } else if (tls_current_span != 0) {
    rec_.parent = tls_current_span;
  } else {
    rec_.parent = g_ambient_parent.load(std::memory_order_acquire);
  }
  saved_current_ = tls_current_span;
  tls_current_span = rec_.id;
  start_ = std::chrono::steady_clock::now();
}

span_scope::~span_scope() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  tls_current_span = saved_current_;
  thread_buffer& buf = local_buffer();
  rec_.tid = buf.tid;
  const std::int64_t since_epoch =
      to_ns(start_) - g_epoch_ns.load(std::memory_order_relaxed);
  rec_.start_ns = since_epoch > 0 ? static_cast<std::uint64_t>(since_epoch) : 0;
  rec_.duration_ns = ns_between(start_, end);
  std::lock_guard lock(buf.mutex);
  buf.spans.push_back(rec_);
}

// ---------------------------------------------------------------------------
// ambient parent

ambient_parent_scope::ambient_parent_scope(std::uint64_t parent)
    : saved_(g_ambient_parent.exchange(parent, std::memory_order_acq_rel)) {}

ambient_parent_scope::~ambient_parent_scope() {
  g_ambient_parent.store(saved_, std::memory_order_release);
}

void set_thread_label(const std::string& label) {
  thread_buffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  buf.label = label;
}

// ---------------------------------------------------------------------------
// trace_recorder

trace_recorder& trace_recorder::instance() {
  static trace_recorder r;
  return r;
}

void trace_recorder::clear() {
  recorder_state& s = state();
  std::lock_guard lock(s.mutex);
  for (auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    buf->spans.clear();
  }
  g_epoch_ns.store(to_ns(clock::now()), std::memory_order_relaxed);
}

std::vector<span_record> trace_recorder::snapshot() const {
  recorder_state& s = state();
  std::vector<span_record> out;
  {
    std::lock_guard lock(s.mutex);
    for (const auto& buf : s.buffers) {
      std::lock_guard buf_lock(buf->mutex);
      out.insert(out.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const span_record& a, const span_record& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>>
trace_recorder::thread_labels() const {
  recorder_state& s = state();
  std::vector<std::pair<std::uint32_t, std::string>> out;
  std::lock_guard lock(s.mutex);
  for (const auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    if (!buf->label.empty()) out.emplace_back(buf->tid, buf->label);
  }
  return out;
}

std::size_t trace_recorder::size() const {
  recorder_state& s = state();
  std::size_t n = 0;
  std::lock_guard lock(s.mutex);
  for (const auto& buf : s.buffers) {
    std::lock_guard buf_lock(buf->mutex);
    n += buf->spans.size();
  }
  return n;
}

void trace_recorder::write_chrome_json(std::ostream& out) const {
  const std::vector<span_record> spans = snapshot();
  const auto labels = thread_labels();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, label] : labels) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"";
    json_escape(out, label);
    out << "\"}}";
  }
  out.precision(3);
  out << std::fixed;
  for (const auto& s : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    json_escape(out, s.name);
    out << "\",\"cat\":\"";
    json_escape(out, s.category);
    out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
        << ",\"ts\":" << static_cast<double>(s.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(s.duration_ns) / 1e3
        << ",\"id\":\"" << s.id << "\",\"args\":{\"span_id\":" << s.id
        << ",\"parent_id\":" << s.parent;
    for (std::size_t i = 0; i < s.args.count; ++i) {
      out << ",\"";
      json_escape(out, s.args.keys[i]);
      out << "\":" << std::defaultfloat << s.args.values[i] << std::fixed;
    }
    out << "}}";
  }
  out << "]}";
}

#else  // SDFT_OBS == 0

void trace_recorder::write_chrome_json(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
}

#endif  // SDFT_OBS

// ---------------------------------------------------------------------------
// histogram

void histogram::observe(double v) {
  if (v < 0.0) v = 0.0;
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
  // min/max start at +/-infinity, so plain monotone CAS loops are exact
  // under concurrent observers.
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
  std::size_t bucket = 0;
  while (bucket + 1 < num_buckets &&
         v >= static_cast<double>(std::uint64_t{1} << bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

double histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// metrics_registry

struct metrics_registry::impl {
  mutable std::mutex mutex;
  // node-based maps: references into the mapped values are stable.
  std::map<std::string, counter> counters;
  std::map<std::string, gauge> gauges;
  std::map<std::string, histogram> histograms;
  std::map<std::string, std::string> labels;
};

metrics_registry::metrics_registry() : impl_(new impl()) {}

metrics_registry::~metrics_registry() { delete impl_; }

metrics_registry& metrics_registry::global() {
  static metrics_registry* r = new metrics_registry();  // leaked on purpose
  return *r;
}

counter& metrics_registry::get_counter(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  return impl_->counters[name];
}

gauge& metrics_registry::get_gauge(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  return impl_->gauges[name];
}

histogram& metrics_registry::get_histogram(const std::string& name) {
  std::lock_guard lock(impl_->mutex);
  return impl_->histograms[name];
}

void metrics_registry::set_label(const std::string& name,
                                 const std::string& value) {
  std::lock_guard lock(impl_->mutex);
  impl_->labels[name] = value;
}

std::string metrics_registry::label(const std::string& name) const {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->labels.find(name);
  return it == impl_->labels.end() ? std::string() : it->second;
}

void metrics_registry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
  impl_->labels.clear();
}

std::vector<std::string> metrics_registry::names() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::string> out;
  for (const auto& [name, v] : impl_->counters) out.push_back(name);
  for (const auto& [name, v] : impl_->gauges) out.push_back(name);
  for (const auto& [name, v] : impl_->histograms) out.push_back(name);
  for (const auto& [name, v] : impl_->labels) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string metrics_registry::to_json() const {
  std::lock_guard lock(impl_->mutex);
  std::string out = "{";
  bool first = true;
  char buf[64];
  const auto key = [&](const std::string& name) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;  // metric names are plain identifiers; no escaping needed
    out += "\":";
  };
  for (const auto& [name, c] : impl_->counters) {
    key(name);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(c.value()));
    out += buf;
  }
  for (const auto& [name, g] : impl_->gauges) {
    key(name);
    std::snprintf(buf, sizeof buf, "%.17g", g.value());
    out += buf;
  }
  for (const auto& [name, h] : impl_->histograms) {
    key(name);
    std::snprintf(buf, sizeof buf,
                  "{\"count\":%llu,\"sum\":%.17g,\"min\":%.17g,",
                  static_cast<unsigned long long>(h.count()), h.sum(),
                  h.min());
    out += buf;
    std::snprintf(buf, sizeof buf, "\"max\":%.17g,\"mean\":%.17g}", h.max(),
                  h.mean());
    out += buf;
  }
  for (const auto& [name, value] : impl_->labels) {
    key(name);
    out += "\"";
    out += value;  // labels are backend names etc.; no escaping needed
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace sdft::obs
