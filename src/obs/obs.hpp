#pragma once

// Lightweight observability layer: thread-safe span tracing plus a named
// metrics registry, shared by the analysis engine, the MOCUS driver, the
// quantifier and the CLI (exported as Chrome trace_event JSON and a flat
// metrics JSON).
//
// Two switches control the cost:
//   * compile time — build with -DSDFT_OBS=0 and every recording call
//     compiles to nothing (span_scope is an empty struct, counters are
//     no-ops);
//   * run time — obs::set_enabled(false) (the default) turns every
//     recording call into a single relaxed atomic load and branch, so
//     instrumented hot paths stay within noise of uninstrumented builds.
//
// Span taxonomy and metric names are documented in DESIGN.md §11.

#ifndef SDFT_OBS
#define SDFT_OBS 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace sdft::obs {

// ---------------------------------------------------------------------------
// Runtime switch

#if SDFT_OBS
/// True when recording is both compiled in and enabled at run time.
bool enabled();
/// Turns recording on or off process-wide (spans and live counters).
void set_enabled(bool on);
#else
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// True when the layer is compiled in at all (SDFT_OBS != 0).
constexpr bool compiled_in() { return SDFT_OBS != 0; }

// ---------------------------------------------------------------------------
// Spans

/// Small fixed set of numeric key/value annotations on a span. Keys must
/// be string literals (or otherwise outlive the trace recorder snapshot).
struct span_args {
  static constexpr std::size_t capacity = 6;
  std::array<const char*, capacity> keys{};
  std::array<double, capacity> values{};
  std::size_t count = 0;

  void add(const char* key, double value) {
    if (count < capacity) {
      keys[count] = key;
      values[count] = value;
      ++count;
    }
  }
};

/// One finished span as held by the trace recorder.
struct span_record {
  const char* name = "";      ///< static-lifetime span name
  const char* category = "";  ///< static-lifetime category ("engine", ...)
  std::uint64_t id = 0;       ///< unique, process-wide, never 0
  std::uint64_t parent = 0;   ///< enclosing span id; 0 for roots
  std::uint64_t start_ns = 0; ///< monotonic, relative to the recorder epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;      ///< small per-thread id (see thread_label)
  span_args args;
};

#if SDFT_OBS

/// RAII span: records one span_record from construction to destruction on
/// the calling thread's buffer. When recording is disabled the constructor
/// reduces to one relaxed atomic load.
class span_scope {
 public:
  explicit span_scope(const char* name, const char* category = "engine");
  /// Span with an explicit parent id (for cross-thread parentage when the
  /// ambient parent is not enough).
  span_scope(const char* name, const char* category, std::uint64_t parent);
  ~span_scope();

  span_scope(const span_scope&) = delete;
  span_scope& operator=(const span_scope&) = delete;

  /// Attaches a numeric annotation; ignored when the span is inactive.
  void arg(const char* key, double value) {
    if (active_) rec_.args.add(key, value);
  }

  /// Id of this span (0 when recording is off).
  std::uint64_t id() const { return active_ ? rec_.id : 0; }
  bool active() const { return active_; }

 private:
  bool active_ = false;
  span_record rec_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t saved_current_ = 0;
};

/// Sets the cross-thread fallback parent: spans started on threads with no
/// enclosing span (e.g. pool workers) attach to the ambient span. Nests.
class ambient_parent_scope {
 public:
  explicit ambient_parent_scope(std::uint64_t parent);
  ~ambient_parent_scope();
  ambient_parent_scope(const ambient_parent_scope&) = delete;
  ambient_parent_scope& operator=(const ambient_parent_scope&) = delete;

 private:
  std::uint64_t saved_;
};

/// Names the calling thread in trace exports (e.g. "pool-worker-3").
void set_thread_label(const std::string& label);

/// Process-wide sink of finished spans. Each thread appends to its own
/// registered buffer (uncontended mutex), so recording never serialises
/// the workers; snapshot() and clear() walk all buffers.
class trace_recorder {
 public:
  static trace_recorder& instance();

  /// Drops all recorded spans and restarts the time epoch.
  void clear();

  /// All finished spans so far, ordered by start time.
  std::vector<span_record> snapshot() const;

  /// Labels assigned via set_thread_label, keyed by small thread id.
  std::vector<std::pair<std::uint32_t, std::string>> thread_labels() const;

  /// Writes the Chrome trace_event JSON ("traceEvents" array of complete
  /// "X" events plus thread_name metadata), loadable in chrome://tracing
  /// and Perfetto.
  void write_chrome_json(std::ostream& out) const;

  std::size_t size() const;
};

#else  // SDFT_OBS == 0: every recording construct is a no-op.

class span_scope {
 public:
  explicit span_scope(const char*, const char* = "engine") {}
  span_scope(const char*, const char*, std::uint64_t) {}
  void arg(const char*, double) {}
  std::uint64_t id() const { return 0; }
  bool active() const { return false; }
};

class ambient_parent_scope {
 public:
  explicit ambient_parent_scope(std::uint64_t) {}
};

inline void set_thread_label(const std::string&) {}

class trace_recorder {
 public:
  static trace_recorder& instance() {
    static trace_recorder r;
    return r;
  }
  void clear() {}
  std::vector<span_record> snapshot() const { return {}; }
  std::vector<std::pair<std::uint32_t, std::string>> thread_labels() const {
    return {};
  }
  void write_chrome_json(std::ostream& out) const;
  std::size_t size() const { return 0; }
};

#endif  // SDFT_OBS

// ---------------------------------------------------------------------------
// Metrics

/// Monotonic (between resets) event counter.
class counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins numeric observation (occupancy, seconds, sizes).
class gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming histogram over non-negative samples: count, sum, min, max
/// plus power-of-two magnitude buckets (bucket i counts samples in
/// [2^(i-1), 2^i), bucket 0 counts samples < 1).
class histogram {
 public:
  static constexpr std::size_t num_buckets = 48;

  void observe(double v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
};

/// Named counters, gauges, histograms and string labels. Lookup returns a
/// stable reference (instruments are never removed, reset() only zeroes
/// them), so hot paths resolve a name once and keep the handle:
///
///   static obs::counter& c =
///       obs::metrics_registry::global().get_counter("mocus.tasks");
///   c.add(1);
class metrics_registry {
 public:
  static metrics_registry& global();

  counter& get_counter(const std::string& name);
  gauge& get_gauge(const std::string& name);
  histogram& get_histogram(const std::string& name);

  /// Convenience setters (resolve + write in one call; not for hot paths).
  void set_gauge(const std::string& name, double v) { get_gauge(name).set(v); }
  void set_counter(const std::string& name, std::uint64_t v) {
    get_counter(name).set(v);
  }
  void set_label(const std::string& name, const std::string& value);
  std::string label(const std::string& name) const;

  /// Zeroes every instrument and drops labels; registrations (and thus
  /// previously returned references) stay valid.
  void reset();

  /// Flat machine-readable dump: one JSON object whose keys are metric
  /// names; counters are integers, gauges doubles, labels strings and
  /// histograms objects with count/sum/min/max/mean.
  std::string to_json() const;

  /// Sorted names of all registered instruments (all four kinds).
  std::vector<std::string> names() const;

  metrics_registry();
  ~metrics_registry();
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

 private:
  struct impl;
  impl* impl_;
};

}  // namespace sdft::obs
