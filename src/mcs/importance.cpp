#include "mcs/importance.hpp"

#include <algorithm>
#include <limits>

namespace sdft {

std::unordered_map<node_index, importance_measures> importance_analysis(
    const fault_tree& ft, const std::vector<cutset>& cutsets) {
  const double total = rare_event_probability(ft, cutsets);

  // For each event a:
  //   with_a    = sum of p(C) over cutsets containing a,
  //   partial_a = sum of p(C \ {a}) over the same cutsets (= d total/d p(a)).
  std::unordered_map<node_index, importance_measures> out;
  std::unordered_map<node_index, double> with_a;
  std::unordered_map<node_index, double> partial_a;
  for (const auto& c : cutsets) {
    const double pc = cutset_probability(ft, c);
    for (node_index b : c) {
      with_a[b] += pc;
      const double pb = ft.node(b).probability;
      // p(C \ {a}); guard the degenerate p(a)=0 cutset (pc is then 0 too).
      double rest;
      if (pb > 0.0) {
        rest = pc / pb;
      } else {
        rest = 1.0;
        for (node_index other : c) {
          if (other != b) rest *= ft.node(other).probability;
        }
      }
      partial_a[b] += rest;
    }
  }

  for (node_index b : ft.basic_events()) {
    importance_measures m;
    const double wa = with_a.count(b) ? with_a[b] : 0.0;
    const double pa = partial_a.count(b) ? partial_a[b] : 0.0;
    m.birnbaum = pa;
    if (total > 0.0) {
      m.fussell_vesely = wa / total;
      // total with p(a) := 1 is total - wa + pa; with p(a) := 0 it is
      // total - wa.
      m.raw = (total - wa + pa) / total;
      const double without = total - wa;
      m.rrw = without > 0.0 ? total / without
                            : std::numeric_limits<double>::infinity();
    } else {
      // Degenerate top probability: no event contributes anything
      // (FV = 0), and neither forcing an event on nor off changes a
      // probability that is already 0 (RAW = RRW = 1).
      m.fussell_vesely = 0.0;
      m.raw = 1.0;
      m.rrw = 1.0;
    }
    out.emplace(b, m);
  }
  return out;
}

std::vector<node_index> rank_by_fussell_vesely(
    const fault_tree& ft, const std::vector<cutset>& cutsets) {
  auto measures = importance_analysis(ft, cutsets);
  std::vector<node_index> events = ft.basic_events();
  std::sort(events.begin(), events.end(), [&](node_index a, node_index b) {
    const double fa = measures[a].fussell_vesely;
    const double fb = measures[b].fussell_vesely;
    // Explicit index tie-break: deterministic whatever order
    // basic_events() returns.
    return fa != fb ? fa > fb : a < b;
  });
  return events;
}

}  // namespace sdft
