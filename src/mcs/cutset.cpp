#include "mcs/cutset.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "util/bitset.hpp"
#include "util/error.hpp"

namespace sdft {

double cutset_probability(const fault_tree& ft, const cutset& c) {
  double p = 1.0;
  for (node_index b : c) p *= ft.node(b).probability;
  return p;
}

double rare_event_probability(const fault_tree& ft,
                              const std::vector<cutset>& cutsets) {
  double total = 0.0;
  for (const auto& c : cutsets) total += cutset_probability(ft, c);
  return total;
}

double min_cut_upper_bound(const fault_tree& ft,
                           const std::vector<cutset>& cutsets) {
  double survive = 1.0;
  for (const auto& c : cutsets) survive *= 1.0 - cutset_probability(ft, c);
  return 1.0 - survive;
}

std::vector<cutset> minimize_cutsets(std::vector<cutset> sets,
                                     minimize_stats* stats) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());

  // The empty cutset (a constant-failed tree) subsumes everything; the
  // subset scheme below cannot see it because it has no members.
  if (!sets.empty() && sets.front().empty()) return {cutset{}};

  // Dense event universe: cutsets touch only a fraction of the tree's
  // index space, so the bitsets pack the distinct members, in index order
  // (which preserves "first element" == "minimum element").
  std::vector<node_index> universe;
  for (const cutset& c : sets) universe.insert(universe.end(), c.begin(), c.end());
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()), universe.end());
  const auto dense = [&](node_index e) {
    return static_cast<std::size_t>(
        std::lower_bound(universe.begin(), universe.end(), e) -
        universe.begin());
  };
  if (stats != nullptr) {
    stats->universe_words =
        std::max(stats->universe_words,
                 (universe.size() + packed_bitset::bits_per_word - 1) /
                     packed_bitset::bits_per_word);
  }

  // Candidates arrive in (size, content) order, so every possible subsumer
  // is already kept when its supersets are tested. A kept subset of the
  // candidate necessarily contains some member of the candidate as its
  // *minimum*, so sharding the kept sets under their first member bounds
  // the word-loop subset tests to plausible subsumers only.
  std::vector<cutset> kept;
  std::vector<packed_bitset> kept_bits;
  std::vector<std::vector<std::uint32_t>> by_min(universe.size());
  std::size_t subset_tests = 0;
  packed_bitset cand_bits(universe.size());
  std::vector<std::size_t> cand_dense;
  for (auto& cand : sets) {
    cand_dense.clear();
    for (node_index b : cand) cand_dense.push_back(dense(b));
    for (std::size_t d : cand_dense) cand_bits.set(d);
    bool subsumed = false;
    for (std::size_t d : cand_dense) {
      for (std::uint32_t k : by_min[d]) {
        // Equal-size sets are distinct after dedup, so only strictly
        // smaller kept sets can be proper subsets.
        if (kept[k].size() >= cand.size()) continue;
        ++subset_tests;
        if (kept_bits[k].is_subset_of(cand_bits)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) break;
    }
    if (!subsumed) {
      by_min[cand_dense.front()].push_back(
          static_cast<std::uint32_t>(kept.size()));
      kept_bits.push_back(cand_bits);
      kept.push_back(std::move(cand));
    }
    for (std::size_t d : cand_dense) cand_bits.reset(d);
  }
  if (stats != nullptr) stats->subset_tests += subset_tests;
  return kept;
}

std::vector<cutset> minimize_cutsets_reference(std::vector<cutset> sets) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());

  // The empty cutset (a constant-failed tree) subsumes everything; the
  // counting scheme below cannot see it because it has no members.
  if (!sets.empty() && sets.front().empty()) return {cutset{}};

  // Per-event index over kept cutsets: a candidate is subsumed iff some kept
  // cutset is counted |kept| times across the candidate's member lists.
  std::vector<cutset> kept;
  std::unordered_map<node_index, std::vector<std::size_t>> by_event;
  std::unordered_map<std::size_t, std::size_t> hits;
  for (auto& cand : sets) {
    hits.clear();
    bool subsumed = false;
    for (node_index b : cand) {
      auto it = by_event.find(b);
      if (it == by_event.end()) continue;
      for (std::size_t k : it->second) {
        if (++hits[k] == kept[k].size()) {
          subsumed = true;
          break;
        }
      }
      if (subsumed) break;
    }
    if (subsumed) continue;
    const std::size_t id = kept.size();
    for (node_index b : cand) by_event[b].push_back(id);
    kept.push_back(std::move(cand));
  }
  return kept;
}

bool are_minimal_cutsets(const fault_tree& ft,
                         const std::vector<cutset>& sets) {
  std::vector<char> scenario(ft.size(), 0);
  for (const auto& c : sets) {
    for (node_index b : c) {
      if (!ft.is_basic(b)) return false;
      scenario[b] = 1;
    }
    const bool is_cut = ft.fails(ft.top(), scenario);
    bool strictly_minimal = true;
    if (is_cut) {
      // Coherence makes single-removal checks complete: if any proper subset
      // were a cutset, so would be some |C|-1 subset.
      for (node_index b : c) {
        scenario[b] = 0;
        if (ft.fails(ft.top(), scenario)) {
          strictly_minimal = false;
        }
        scenario[b] = 1;
        if (!strictly_minimal) break;
      }
    }
    for (node_index b : c) scenario[b] = 0;
    if (!is_cut || !strictly_minimal) return false;
  }
  return true;
}

std::vector<cutset> minimal_cutsets_brute_force(const fault_tree& ft) {
  const auto events = ft.basic_events();
  require_model(events.size() <= 20,
                "minimal_cutsets_brute_force limited to 20 basic events");
  std::vector<cutset> cuts;
  std::vector<char> scenario(ft.size(), 0);
  const std::size_t combos = std::size_t{1} << events.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    cutset c;
    for (std::size_t b = 0; b < events.size(); ++b) {
      scenario[events[b]] = (mask >> b) & 1U ? 1 : 0;
      if (scenario[events[b]]) c.push_back(events[b]);
    }
    std::sort(c.begin(), c.end());
    if (ft.fails(ft.top(), scenario)) cuts.push_back(std::move(c));
  }
  return minimize_cutsets(std::move(cuts));
}

}  // namespace sdft
