#pragma once

#include <unordered_map>
#include <vector>

#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

/// MCS-based importance measures for one basic event.
///
/// All measures are computed from a (relevant) minimal-cutset list with the
/// rare-event approximation, which is how industrial PSA tools report them
/// and how the paper selects events for dynamic modelling (§VI-B uses the
/// Fussell–Vesely factor).
struct importance_measures {
  double fussell_vesely = 0.0;  ///< sum of p(C) over C containing a / p_rea
  double birnbaum = 0.0;        ///< d p_rea / d p(a)
  double raw = 0.0;             ///< risk achievement worth: p_rea[p(a)=1]/p_rea
  double rrw = 1.0;             ///< risk reduction worth:  p_rea/p_rea[p(a)=0]
};

/// Computes importance measures for every basic event appearing in
/// `cutsets`. Events absent from all cutsets get all-zero measures
/// (raw = rrw = 1). When the top probability itself is 0 (no cutsets, or
/// every cutset has probability 0) the measures are defined explicitly as
/// FV = 0, RAW = 1, RRW = 1 for every event. Returns a map keyed by
/// basic-event index.
std::unordered_map<node_index, importance_measures> importance_analysis(
    const fault_tree& ft, const std::vector<cutset>& cutsets);

/// Basic events of `ft` ordered by decreasing Fussell–Vesely importance
/// (ties broken by node index for determinism). Events not appearing in any
/// cutset come last. This is the ranking the paper uses to choose which
/// events to model dynamically (§VI-B).
std::vector<node_index> rank_by_fussell_vesely(
    const fault_tree& ft, const std::vector<cutset>& cutsets);

}  // namespace sdft
