#include "mcs/mocus.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "obs/obs.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"
#include "util/sorted_set.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// A partial cutset: basic events already chosen plus gates still to fail
/// (paper §IV-B). Both sets are kept sorted for cheap dedup and hashing.
struct partial_cutset {
  std::vector<node_index> events;
  std::vector<node_index> gates;
  double probability = 1.0;  // product over chosen events, in sorted order
};

/// Key identifying a partial for the visited-set: one packed bitset over
/// the tree's node-index space. Basic events and gates live in disjoint
/// index sets, so marking both in the same width-ft.size() bitset loses
/// nothing, and hashing/equality become word loops (util/bitset.hpp)
/// instead of element walks over two sorted vectors.
using partial_key = packed_bitset;
using partial_key_hash = packed_bitset_hash;

partial_key make_key(const partial_cutset& p, std::size_t width) {
  partial_key key(width);
  for (node_index b : p.events) key.set(b);
  for (node_index g : p.gates) key.set(g);
  return key;
}

enum class event_mode : char { free_event, forced_failed, forced_working };

/// The expansion core shared by the serial and the parallel driver: the
/// forced-event modes, the cutoff/order pruning and the single-gate
/// expansion step. Stateless apart from the read-only inputs, so the
/// parallel driver calls it from every worker without synchronisation.
struct expansion {
  const fault_tree& ft;
  const mocus_options& opt;
  std::vector<event_mode> mode;

  expansion(const fault_tree& tree, const mocus_options& options)
      : ft(tree), opt(options), mode(tree.size(), event_mode::free_event) {
    for (node_index b : opt.assume_failed) {
      require_model(b < ft.size() && ft.is_basic(b),
                    "mocus: assume_failed entry is not a basic event");
      mode[b] = event_mode::forced_failed;
    }
    for (node_index b : opt.assume_working) {
      require_model(b < ft.size() && ft.is_basic(b),
                    "mocus: assume_working entry is not a basic event");
      require_model(mode[b] != event_mode::forced_failed,
                    "mocus: event both assumed failed and assumed working");
      mode[b] = event_mode::forced_working;
    }
  }

  /// Canonical probability of an event set: the product in sorted-index
  /// order. Recomputed from scratch on every insertion so the value (and
  /// thus every cutoff decision) depends only on the set, never on the
  /// expansion path that assembled it — the keystone of the bit-identical
  /// serial/parallel guarantee.
  double event_product(const std::vector<node_index>& events) const {
    double p = 1.0;
    for (node_index b : events) p *= ft.node(b).probability;
    return p;
  }

  /// Adds `child` (a basic event) to the partial; returns false if the
  /// partial dies (forced-working child of an AND, cutoff, order).
  bool add_event(partial_cutset& p, node_index child,
                 std::size_t& discarded) const {
    switch (mode[child]) {
      case event_mode::forced_failed:
        return true;  // satisfied for free
      case event_mode::forced_working:
        return false;
      case event_mode::free_event:
        break;
    }
    if (sorted_set::contains(p.events, child)) return true;
    sorted_set::insert(p.events, child);
    p.probability = event_product(p.events);
    if (p.events.size() > opt.max_order ||
        (opt.cutoff > 0.0 && p.probability < opt.cutoff)) {
      ++discarded;
      return false;
    }
    return true;
  }

  /// Expands one partial with a non-empty gate set by one gate, appending
  /// the surviving children to `out`.
  void expand(partial_cutset&& p, std::vector<partial_cutset>& out,
              std::size_t& discarded) const {
    // Expand an AND gate if available (it only constrains, never branches,
    // so the cutoff prunes earlier); otherwise the first OR gate.
    std::size_t pick = 0;
    for (std::size_t i = 0; i < p.gates.size(); ++i) {
      if (ft.node(p.gates[i]).type == gate_type::and_gate) {
        pick = i;
        break;
      }
    }
    const node_index g = p.gates[pick];
    p.gates.erase(p.gates.begin() + static_cast<std::ptrdiff_t>(pick));
    const ft_node& gate = ft.node(g);

    if (gate.type == gate_type::and_gate) {
      bool alive = true;
      for (node_index child : gate.inputs) {
        if (ft.is_basic(child)) {
          if (!add_event(p, child, discarded)) {
            alive = false;
            break;
          }
        } else {
          sorted_set::insert(p.gates, child);
        }
      }
      if (alive) out.push_back(std::move(p));
    } else {
      // If any input is certainly failed the gate is satisfied outright;
      // branching would only create subsumed supersets.
      for (node_index child : gate.inputs) {
        if (ft.is_basic(child) && mode[child] == event_mode::forced_failed) {
          out.push_back(std::move(p));
          return;
        }
      }
      for (node_index child : gate.inputs) {
        partial_cutset branch = p;
        if (ft.is_basic(child)) {
          if (!add_event(branch, child, discarded)) continue;
        } else {
          sorted_set::insert(branch.gates, child);
        }
        out.push_back(std::move(branch));
      }
    }
  }

  /// Builds the seed partial for `root`. Returns false when the root can
  /// never fail (no cutsets at all); `*seed` is valid only on true.
  bool seed(node_index root, partial_cutset* out) const {
    partial_cutset seed;
    if (ft.is_basic(root)) {
      switch (mode[root]) {
        case event_mode::free_event:
          seed.events.push_back(root);
          seed.probability = ft.node(root).probability;
          break;
        case event_mode::forced_failed:
          break;  // empty cutset: root already failed
        case event_mode::forced_working:
          return false;
      }
    } else {
      seed.gates.push_back(root);
    }
    if (seed.probability < opt.cutoff && opt.cutoff != 0.0) return false;
    *out = std::move(seed);
    return true;
  }
};

/// The original single-threaded driver: an explicit DFS stack and one
/// visited set cleared at dedup_limit.
mocus_result run_serial(const expansion& ex, partial_cutset seed) {
  obs::span_scope span("mocus.serial", "mocus");
  const std::size_t width = ex.ft.size();
  mocus_result result;
  result.key_words = partial_key(width).num_words();
  std::vector<partial_cutset> stack;
  std::unordered_set<partial_key, partial_key_hash> visited;
  std::vector<cutset> raw_cutsets;

  visited.insert(make_key(seed, width));
  stack.push_back(std::move(seed));

  std::vector<partial_cutset> children;
  while (!stack.empty()) {
    partial_cutset p = std::move(stack.back());
    stack.pop_back();
    ++result.partials_processed;
    if (result.partials_processed > ex.opt.max_partials) {
      throw numeric_error("mocus: partial cutset limit exceeded");
    }

    if (p.gates.empty()) {
      raw_cutsets.push_back(std::move(p.events));
      continue;
    }
    children.clear();
    ex.expand(std::move(p), children, result.cutoff_discarded);
    for (auto& c : children) {
      if (visited.size() >= ex.opt.dedup_limit) {
        // Clearing at the bound keeps memory flat, but a bare clear also
        // forgets the partials still awaiting expansion: a shared subtree
        // reached again would re-admit a partial that is already on the
        // stack (in the worst case the seed itself) and re-expand its
        // whole region once per clear. Re-priming with the live stack
        // keys makes a clear forget only *finished* work.
        visited.clear();
        for (const partial_cutset& live : stack) {
          visited.insert(make_key(live, width));
        }
      }
      if (visited.insert(make_key(c, width)).second) {
        stack.push_back(std::move(c));
      }
    }
  }

  span.arg("partials", static_cast<double>(result.partials_processed));
  span.arg("cutsets", static_cast<double>(raw_cutsets.size()));
  minimize_stats min_stats;
  result.cutsets = minimize_cutsets(std::move(raw_cutsets), &min_stats);
  result.subset_tests = min_stats.subset_tests;
  return result;
}

/// The parallel driver: the pool's work-stealing deques act as the shared
/// frontier of partial cutsets. Each task runs a local DFS, spilling
/// breadth-side partials back to the pool for thieves; duplicates are
/// filtered through a sharded visited cache; results and discard counters
/// accumulate in per-worker buffers merged after wait_idle(). The raw
/// cutset *set* is identical to the serial driver's (dedup and scheduling
/// only affect which duplicates get re-expanded), and minimize_cutsets()
/// canonicalises the final order, so the output is bit-identical to the
/// serial path for every thread count.
class parallel_mocus {
 public:
  parallel_mocus(const expansion& ex, thread_pool& pool)
      : ex_(ex),
        pool_(pool),
        shard_limit_(std::max<std::size_t>(1, ex.opt.dedup_limit / num_shards)),
        locals_(pool.size()) {}

  mocus_result run(partial_cutset seed) {
    mocus_result result;
    result.key_words = partial_key(ex_.ft.size()).num_words();
    mark_visited(seed);
    pool_.submit([this, p = std::move(seed)]() mutable { run_task(std::move(p)); });
    pool_.wait_idle();  // rethrows the numeric_error of a tripped valve

    std::vector<cutset> raw;
    for (local_buffers& local : locals_) {
      result.cutoff_discarded += local.discarded;
      raw.insert(raw.end(), std::make_move_iterator(local.raw.begin()),
                 std::make_move_iterator(local.raw.end()));
    }
    result.partials_processed = processed_.load(std::memory_order_relaxed);
    result.threads_used = pool_.size();
    minimize_stats min_stats;
    result.cutsets = minimize_cutsets(std::move(raw), &min_stats);
    result.subset_tests = min_stats.subset_tests;
    return result;
  }

 private:
  static constexpr std::size_t num_shards = 64;
  /// Partials kept on the local run before breadth-side work is spilled to
  /// the pool for stealing.
  static constexpr std::size_t spill_threshold = 4;

  struct alignas(64) visited_shard {
    std::mutex mutex;
    std::unordered_set<partial_key, partial_key_hash> set;
  };

  struct alignas(64) local_buffers {
    std::vector<cutset> raw;
    std::size_t discarded = 0;
  };

  bool mark_visited(const partial_cutset& p) {
    partial_key key = make_key(p, ex_.ft.size());
    const std::size_t h = partial_key_hash{}(key);
    visited_shard& shard = shards_[h % num_shards];
    std::lock_guard lock(shard.mutex);
    // A shard clear can re-admit partials still queued on other workers'
    // deques (they are unreachable from here); unlike the serial driver
    // the duplicate work is bounded by shard_limit_ re-expansions and the
    // result set is unaffected — minimize_cutsets() dedups.
    if (shard.set.size() >= shard_limit_) shard.set.clear();
    return shard.set.insert(std::move(key)).second;
  }

  void run_task(partial_cutset p) {
    obs::span_scope span("mocus.task", "mocus");
    std::size_t batch_partials = 0;
    std::size_t batch_spilled = 0;
    local_buffers& local = locals_[pool_.worker_index()];
    std::deque<partial_cutset> todo;
    todo.push_back(std::move(p));
    std::vector<partial_cutset> children;
    while (!todo.empty()) {
      if (aborted_.load(std::memory_order_relaxed)) return;
      partial_cutset cur = std::move(todo.back());
      todo.pop_back();
      ++batch_partials;
      if (processed_.fetch_add(1, std::memory_order_relaxed) >=
          ex_.opt.max_partials) {
        aborted_.store(true, std::memory_order_relaxed);
        throw numeric_error("mocus: partial cutset limit exceeded");
      }
      if (cur.gates.empty()) {
        local.raw.push_back(std::move(cur.events));
        continue;
      }
      children.clear();
      ex_.expand(std::move(cur), children, local.discarded);
      for (auto& c : children) {
        if (mark_visited(c)) todo.push_back(std::move(c));
      }
      // Keep the depth-side tail local; hand the breadth side (the oldest,
      // largest unexplored partials) to the pool for other workers.
      while (todo.size() > spill_threshold) {
        pool_.submit([this, sp = std::move(todo.front())]() mutable {
          run_task(std::move(sp));
        });
        todo.pop_front();
        ++batch_spilled;
      }
    }
    span.arg("partials", static_cast<double>(batch_partials));
    span.arg("spilled", static_cast<double>(batch_spilled));
  }

  const expansion& ex_;
  thread_pool& pool_;
  const std::size_t shard_limit_;
  std::array<visited_shard, num_shards> shards_;
  std::vector<local_buffers> locals_;
  std::atomic<std::size_t> processed_{0};
  std::atomic<bool> aborted_{false};
};

}  // namespace

mocus_result mocus_from(const fault_tree& ft, node_index root,
                        const mocus_options& opt) {
  require_model(root < ft.size(), "mocus: root index out of range");
  for (node_index n = 0; n < ft.size(); ++n) {
    require_model(!ft.is_gate(n) ||
                      ft.node(n).type != gate_type::atleast_gate,
                  "mocus: tree contains atleast gate '" + ft.node(n).name +
                      "'; lower voting gates first (prep normalization or "
                      "add_voting_gate)");
  }
  const stopwatch timer;
  const expansion ex(ft, opt);

  partial_cutset seed;
  if (!ex.seed(root, &seed)) {
    mocus_result result;
    result.seconds = timer.seconds();
    return result;
  }

  // The parallel driver needs a pool with at least two workers and must not
  // be entered from a job already running on that pool (its wait_idle()
  // would stall the worker the caller occupies).
  thread_pool* pool = opt.pool;
  const bool parallel =
      pool != nullptr && pool->size() > 1 && pool->worker_index() == thread_pool::npos;

  mocus_result result = parallel ? parallel_mocus(ex, *pool).run(std::move(seed))
                                 : run_serial(ex, std::move(seed));
  result.seconds = timer.seconds();
  return result;
}

mocus_result mocus(const fault_tree& ft, const mocus_options& opt) {
  require_model(ft.top() != fault_tree::npos, "mocus: fault tree has no top");
  return mocus_from(ft, ft.top(), opt);
}

}  // namespace sdft
