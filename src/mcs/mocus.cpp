#include "mcs/mocus.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"
#include "util/sorted_set.hpp"
#include "util/stopwatch.hpp"

namespace sdft {

namespace {

/// A partial cutset: basic events already chosen plus gates still to fail
/// (paper §IV-B). Both sets are kept sorted for cheap dedup and hashing.
struct partial_cutset {
  std::vector<node_index> events;
  std::vector<node_index> gates;
  double probability = 1.0;  // product over chosen events
};

/// Key identifying a partial for the visited-set: events, separator, gates.
using partial_key = std::vector<node_index>;

struct partial_key_hash {
  std::size_t operator()(const partial_key& k) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (node_index v : k) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

partial_key make_key(const partial_cutset& p) {
  partial_key key;
  key.reserve(p.events.size() + p.gates.size() + 1);
  key.insert(key.end(), p.events.begin(), p.events.end());
  key.push_back(fault_tree::npos);
  key.insert(key.end(), p.gates.begin(), p.gates.end());
  return key;
}

enum class event_mode : char { free_event, forced_failed, forced_working };

}  // namespace

mocus_result mocus_from(const fault_tree& ft, node_index root,
                        const mocus_options& opt) {
  require_model(root < ft.size(), "mocus: root index out of range");
  const stopwatch timer;
  mocus_result result;

  std::vector<event_mode> mode(ft.size(), event_mode::free_event);
  for (node_index b : opt.assume_failed) {
    require_model(b < ft.size() && ft.is_basic(b),
                  "mocus: assume_failed entry is not a basic event");
    mode[b] = event_mode::forced_failed;
  }
  for (node_index b : opt.assume_working) {
    require_model(b < ft.size() && ft.is_basic(b),
                  "mocus: assume_working entry is not a basic event");
    require_model(mode[b] != event_mode::forced_failed,
                  "mocus: event both assumed failed and assumed working");
    mode[b] = event_mode::forced_working;
  }

  std::vector<partial_cutset> stack;
  std::unordered_set<partial_key, partial_key_hash> visited;
  std::vector<cutset> raw_cutsets;

  // Seed with the root.
  {
    partial_cutset seed;
    if (ft.is_basic(root)) {
      switch (mode[root]) {
        case event_mode::free_event:
          seed.events.push_back(root);
          seed.probability = ft.node(root).probability;
          break;
        case event_mode::forced_failed:
          break;  // empty cutset: root already failed
        case event_mode::forced_working:
          // Root can never fail: no cutsets at all.
          result.seconds = timer.seconds();
          return result;
      }
    } else {
      seed.gates.push_back(root);
    }
    if (seed.probability >= opt.cutoff || opt.cutoff == 0.0) {
      visited.insert(make_key(seed));
      stack.push_back(std::move(seed));
    }
  }

  // Adds `child` (a basic event) to the partial; returns false if the
  // partial dies (forced-working child of an AND, cutoff, order).
  const auto add_event = [&](partial_cutset& p, node_index child) -> bool {
    switch (mode[child]) {
      case event_mode::forced_failed:
        return true;  // satisfied for free
      case event_mode::forced_working:
        return false;
      case event_mode::free_event:
        break;
    }
    if (sorted_set::contains(p.events, child)) return true;
    sorted_set::insert(p.events, child);
    p.probability *= ft.node(child).probability;
    if (p.events.size() > opt.max_order ||
        (opt.cutoff > 0.0 && p.probability < opt.cutoff)) {
      ++result.cutoff_discarded;
      return false;
    }
    return true;
  };

  const auto push_if_new = [&](partial_cutset&& p) {
    if (visited.size() >= opt.dedup_limit) visited.clear();
    if (visited.insert(make_key(p)).second) stack.push_back(std::move(p));
  };

  while (!stack.empty()) {
    partial_cutset p = std::move(stack.back());
    stack.pop_back();
    ++result.partials_processed;
    if (result.partials_processed > opt.max_partials) {
      throw numeric_error("mocus: partial cutset limit exceeded");
    }

    if (p.gates.empty()) {
      raw_cutsets.push_back(std::move(p.events));
      continue;
    }

    // Expand an AND gate if available (it only constrains, never branches,
    // so the cutoff prunes earlier); otherwise the first OR gate.
    std::size_t pick = 0;
    for (std::size_t i = 0; i < p.gates.size(); ++i) {
      if (ft.node(p.gates[i]).type == gate_type::and_gate) {
        pick = i;
        break;
      }
    }
    const node_index g = p.gates[pick];
    p.gates.erase(p.gates.begin() + static_cast<std::ptrdiff_t>(pick));
    const ft_node& gate = ft.node(g);

    if (gate.type == gate_type::and_gate) {
      bool alive = true;
      for (node_index child : gate.inputs) {
        if (ft.is_basic(child)) {
          if (!add_event(p, child)) {
            alive = false;
            break;
          }
        } else {
          sorted_set::insert(p.gates, child);
        }
      }
      if (alive) push_if_new(std::move(p));
    } else {
      // If any input is certainly failed the gate is satisfied outright;
      // branching would only create subsumed supersets.
      bool satisfied = false;
      for (node_index child : gate.inputs) {
        if (ft.is_basic(child) && mode[child] == event_mode::forced_failed) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        push_if_new(std::move(p));
        continue;
      }
      for (node_index child : gate.inputs) {
        partial_cutset branch = p;
        if (ft.is_basic(child)) {
          if (!add_event(branch, child)) continue;
        } else {
          sorted_set::insert(branch.gates, child);
        }
        push_if_new(std::move(branch));
      }
    }
  }

  result.cutsets = minimize_cutsets(std::move(raw_cutsets));
  result.seconds = timer.seconds();
  return result;
}

mocus_result mocus(const fault_tree& ft, const mocus_options& opt) {
  require_model(ft.top() != fault_tree::npos, "mocus: fault tree has no top");
  return mocus_from(ft, ft.top(), opt);
}

}  // namespace sdft
