#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

class thread_pool;

/// Options for the MOCUS minimal-cutset generator (paper §IV-B).
struct mocus_options {
  /// Partial cutsets whose basic-event probability product falls below this
  /// are discarded (the paper's cutoff constant c*, e.g. 1e-15). 0 disables.
  /// The product is always evaluated over the partial's *sorted* event set,
  /// so the cutoff decision for a partial depends only on which events it
  /// contains — never on the expansion path that reached it. This keeps the
  /// generated cutset list identical between the serial and the parallel
  /// driver (and across thread counts).
  double cutoff = 0.0;

  /// Maximum number of basic events per cutset; larger partials are
  /// discarded. Mirrors the order cutoff of industrial PSA tools.
  std::size_t max_order = std::numeric_limits<std::size_t>::max();

  /// Safety valve on the number of partial cutsets processed; exceeding it
  /// throws numeric_error rather than exhausting memory. Enforced with a
  /// relaxed shared counter in the parallel driver, so it trips promptly
  /// regardless of thread count.
  std::size_t max_partials = 100'000'000;

  /// Size bound of the duplicate-partial cache. Deduplication is a pure
  /// optimisation (duplicates expand to identical cutsets), so the cache
  /// is cleared when it reaches this bound: memory stays bounded on huge
  /// models at the price of occasionally re-expanding a shared partial.
  /// The parallel driver shards the cache and bounds each shard at
  /// dedup_limit / #shards.
  std::size_t dedup_limit = 4'000'000;

  /// Worker pool for parallel partial-cutset expansion. nullptr (or a pool
  /// with a single worker, or a call made from within a worker job of this
  /// very pool) runs the serial driver. The produced cutset list is
  /// bit-identical either way.
  thread_pool* pool = nullptr;

  /// Basic events assumed certainly failed (boolean TRUE). They satisfy
  /// gates but never appear in the produced cutsets. Used by the per-MCS
  /// model construction where static events of the cutset are conditioned
  /// on (paper §V-C step 2).
  std::vector<node_index> assume_failed;

  /// Basic events assumed certainly working (boolean FALSE); branches
  /// through them are pruned. Used to restrict the trigger-set computation
  /// to the relevant events Rel_a (paper §V-C step 2).
  std::vector<node_index> assume_working;
};

/// Result of a MOCUS run: the minimal cutsets plus bookkeeping counters.
struct mocus_result {
  /// Minimal cutsets over the free (non-assumed) basic events, sorted by
  /// (size, content). May contain the empty cutset when the root is failed
  /// by the assumptions alone.
  std::vector<cutset> cutsets;

  std::size_t partials_processed = 0;  ///< partial cutsets expanded
  std::size_t cutoff_discarded = 0;    ///< partials dropped by cutoff/order
  std::size_t threads_used = 1;        ///< workers of the driver that ran
  std::size_t subset_tests = 0;  ///< packed subsumption tests in minimize
  std::size_t key_words = 0;     ///< 64-bit words per visited-set key
  double seconds = 0.0;          ///< wall-clock generation time
};

/// Runs MOCUS from the top gate of `ft`.
mocus_result mocus(const fault_tree& ft, const mocus_options& opt = {});

/// Runs MOCUS from an arbitrary root node of `ft` (a gate or basic event).
/// The per-MCS model construction uses this on trigger-gate subtrees.
mocus_result mocus_from(const fault_tree& ft, node_index root,
                        const mocus_options& opt = {});

}  // namespace sdft
