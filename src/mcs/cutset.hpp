#pragma once

#include <cstddef>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// A cutset: a sorted, duplicate-free set of basic-event indices whose joint
/// failure fails the top gate (paper §IV-A).
using cutset = std::vector<node_index>;

/// Product of the probabilities of the events in `c` (paper §IV-A, p(C)).
double cutset_probability(const fault_tree& ft, const cutset& c);

/// Rare-event approximation: sum of cutset probabilities (paper §IV-A iii).
double rare_event_probability(const fault_tree& ft,
                              const std::vector<cutset>& cutsets);

/// Min-cut upper bound: 1 - prod(1 - p(C)). Tighter than the rare-event
/// approximation and still an upper bound for coherent trees with
/// independent events.
double min_cut_upper_bound(const fault_tree& ft,
                           const std::vector<cutset>& cutsets);

/// Removes non-minimal sets: keeps exactly those sets with no proper subset
/// in the input. Also deduplicates. The result is sorted by (size, content).
std::vector<cutset> minimize_cutsets(std::vector<cutset> sets);

/// True iff every member of `sets` is a cutset of `ft` (fails the top gate)
/// and no proper subset of it is. Exponential-free check used by tests.
bool are_minimal_cutsets(const fault_tree& ft, const std::vector<cutset>& sets);

/// Brute-force minimal cutsets by scenario enumeration; a test oracle for
/// trees with few basic events.
std::vector<cutset> minimal_cutsets_brute_force(const fault_tree& ft);

}  // namespace sdft
