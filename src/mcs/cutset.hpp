#pragma once

#include <cstddef>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// A cutset: a sorted, duplicate-free set of basic-event indices whose joint
/// failure fails the top gate (paper §IV-A).
using cutset = std::vector<node_index>;

/// Product of the probabilities of the events in `c` (paper §IV-A, p(C)).
double cutset_probability(const fault_tree& ft, const cutset& c);

/// Rare-event approximation: sum of cutset probabilities (paper §IV-A iii).
double rare_event_probability(const fault_tree& ft,
                              const std::vector<cutset>& cutsets);

/// Min-cut upper bound: 1 - prod(1 - p(C)). Tighter than the rare-event
/// approximation and still an upper bound for coherent trees with
/// independent events.
double min_cut_upper_bound(const fault_tree& ft,
                           const std::vector<cutset>& cutsets);

/// Counters of one minimize_cutsets() run, for engine_stats/--stats.
struct minimize_stats {
  std::size_t subset_tests = 0;    ///< packed word-loop subset tests run
  std::size_t universe_words = 0;  ///< 64-bit words per cutset bitset
};

/// Removes non-minimal sets: keeps exactly those sets with no proper subset
/// in the input. Also deduplicates. The result is sorted by (size, content).
/// Runs on the packed-bitset kernel (util/bitset.hpp): cutsets are mapped
/// onto a dense event universe and subsumption is decided by word-level
/// subset tests, sharded under the minimum member so only plausible
/// subsumers are touched. `stats`, when non-null, accumulates the kernel
/// counters.
std::vector<cutset> minimize_cutsets(std::vector<cutset> sets,
                                     minimize_stats* stats = nullptr);

/// The pre-bitset element-wise implementation (sorted vectors + per-event
/// counting), kept verbatim as the differential reference for tests and
/// for the packed-vs-vector kernel benchmarks. Output is bit-identical to
/// minimize_cutsets().
std::vector<cutset> minimize_cutsets_reference(std::vector<cutset> sets);

/// True iff every member of `sets` is a cutset of `ft` (fails the top gate)
/// and no proper subset of it is. Exponential-free check used by tests.
bool are_minimal_cutsets(const fault_tree& ft, const std::vector<cutset>& sets);

/// Brute-force minimal cutsets by scenario enumeration; a test oracle for
/// trees with few basic events.
std::vector<cutset> minimal_cutsets_brute_force(const fault_tree& ft);

}  // namespace sdft
