#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "ft/fault_tree.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Outcome of one functional event along an accident sequence.
enum class branch_outcome : std::uint8_t {
  failure,   ///< the safety function fails (its fault-tree gate is failed)
  success,   ///< the safety function succeeds (negated gate)
  bypass,    ///< the function is not demanded in this sequence
};

/// An event tree: the higher-level PSA formalism that orders the demands
/// on safety functions after an initiating event (paper §V-A). Each
/// functional event is backed by a gate of a fault tree (the failure
/// criterion of that safety function); each sequence assigns an outcome to
/// every functional event and ends in an end state (e.g. "OK", "CD").
///
/// The event tree references an external fault_tree (or the structure of
/// an sd_fault_tree) that must outlive it.
class event_tree {
 public:
  /// `initiating_event` is a basic event of `ft` (its probability is the
  /// IE frequency per mission).
  event_tree(const fault_tree& ft, node_index initiating_event,
             std::string name = "ET");

  /// Declares a functional event backed by `gate`, demanded after all
  /// previously added ones. Returns its index.
  std::size_t add_functional_event(std::string name, node_index gate);

  /// Adds a sequence: `outcomes[i]` is the branch taken at functional
  /// event i (must cover all functional events), `end_state` labels the
  /// consequence. Returns the sequence index.
  std::size_t add_sequence(std::vector<branch_outcome> outcomes,
                           std::string end_state);

  std::size_t num_functional_events() const { return functional_.size(); }
  std::size_t num_sequences() const { return sequences_.size(); }
  const std::string& name() const { return name_; }
  const fault_tree& ft() const { return ft_; }
  node_index initiating_event() const { return initiating_; }
  node_index functional_gate(std::size_t i) const {
    return functional_[i].gate;
  }
  const std::string& functional_name(std::size_t i) const {
    return functional_[i].name;
  }
  const std::vector<branch_outcome>& sequence_outcomes(std::size_t s) const {
    return sequences_[s].outcomes;
  }
  const std::string& end_state(std::size_t s) const {
    return sequences_[s].end_state;
  }

  /// Checks that every sequence covers every functional event and that the
  /// sequences form a valid branch set (no two sequences with identical
  /// outcomes). Throws model_error.
  void validate() const;

 private:
  struct functional_event {
    std::string name;
    node_index gate;
  };
  struct sequence {
    std::vector<branch_outcome> outcomes;
    std::string end_state;
  };

  const fault_tree& ft_;
  node_index initiating_;
  std::string name_;
  std::vector<functional_event> functional_;
  std::vector<sequence> sequences_;
};

/// Multi-root BDD compilation of every fault-tree node an event tree
/// references: one manager, one variable order (discovery order over the
/// IE then the functional gates — deterministic), one memo shared by all
/// gates. Sequence BDDs are built as prefix products (IE ∧ outcome_0 ∧ …)
/// and memoised per (partial product, functional event, outcome), so
/// sequences differing in one late branch reuse the common prefix. BDD
/// operations are canonical, so a probability read off a shared
/// compilation is bit-identical to a one-shot compilation of the same
/// sequence — the contract the scenario engine's one-pass mode relies on.
///
/// Compilation (sequence()/end_state()) mutates the manager and is not
/// thread-safe; probability() is const and safe to call concurrently once
/// compilation is done.
class event_tree_bdd {
 public:
  explicit event_tree_bdd(const event_tree& et);

  /// BDD of sequence `s`: IE and the outcome of every demanded functional
  /// event (success branches negated — exact, not rare-event).
  bdd_ref sequence(std::size_t s);

  /// BDD of the union of all sequences whose end state is `end_state`.
  bdd_ref end_state(const std::string& end_state);

  /// Probability of `f` under the referenced tree's own probabilities.
  double probability(bdd_ref f) const;

  /// Probability of `f` with per-node probability overrides indexed by
  /// node_index of the referenced tree (only basic events reachable from
  /// the event tree's roots are read).
  double probability(bdd_ref f, const std::vector<double>& node_probs) const;

  std::size_t num_variables() const { return var_to_event_.size(); }
  std::size_t nodes() const { return manager_.size(); }
  std::size_t gates_compiled() const { return gates_compiled_; }
  std::size_t prefix_hits() const { return prefix_hits_; }

 private:
  bdd_ref compile(node_index n);

  const event_tree& et_;
  bdd_manager manager_;
  std::vector<node_index> var_to_event_;
  std::unordered_map<node_index, std::uint32_t> event_to_var_;
  std::unordered_map<node_index, bdd_ref> memo_;
  std::unordered_map<std::uint64_t, bdd_ref> prefix_;
  std::size_t gates_compiled_ = 0;
  std::size_t prefix_hits_ = 0;
};

/// Exact probability of sequence `s`: P[IE and the outcome of every
/// functional event], evaluated on a BDD of the underlying fault tree so
/// success branches (negations) are handled exactly. Exponential only in
/// BDD size, not in basic events. Validates the event tree.
double sequence_probability_exact(const event_tree& et, std::size_t s);

/// Exact probability of reaching any sequence whose end state equals
/// `end_state`. Validates the event tree.
double end_state_probability_exact(const event_tree& et,
                                   const std::string& end_state);

/// Compiles the sequences with end state `end_state` into a coherent
/// fault tree suitable for the MCS pipeline: top = OR over sequences,
/// sequence = AND(IE, failed functional gates). Success branches are
/// dropped (the standard conservative "delete-term-free" treatment in PSA
/// tools, valid for rare events). The returned tree owns copies of the
/// referenced subtrees. Synthesized gate names are deduplicated against
/// the copied nodes (a pre-existing "<et>::SEQ0" node gets out of the
/// way, not a duplicate-name error).
fault_tree end_state_fault_tree(const event_tree& et,
                                const std::string& end_state);

/// A demand-ordering trigger suggestion (paper §V-A: "event trees usually
/// capture the order in which safety functions are demanded... offering a
/// possibility for long triggering chains"): for each consecutive pair of
/// functional events (i, i+1), propose that the failure of event i's gate
/// triggers the untriggered dynamic basic events under event i+1's gate.
struct trigger_suggestion {
  node_index trigger_gate;            ///< gate of functional event i
  std::vector<node_index> events;     ///< dynamic events under event i+1
};

std::vector<trigger_suggestion> suggest_demand_triggers(
    const event_tree& et, const sd_fault_tree& tree);

}  // namespace sdft
