#include "etree/event_tree.hpp"

#include <algorithm>
#include <functional>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace sdft {

event_tree::event_tree(const fault_tree& ft, node_index initiating_event,
                       std::string name)
    : ft_(ft), initiating_(initiating_event), name_(std::move(name)) {
  require_model(initiating_ < ft_.size() && ft_.is_basic(initiating_),
                "event_tree: initiating event must be a basic event");
}

std::size_t event_tree::add_functional_event(std::string name,
                                             node_index gate) {
  require_model(gate < ft_.size() && ft_.is_gate(gate),
                "event_tree: functional event must be backed by a gate");
  functional_.push_back({std::move(name), gate});
  return functional_.size() - 1;
}

std::size_t event_tree::add_sequence(std::vector<branch_outcome> outcomes,
                                     std::string end_state) {
  require_model(outcomes.size() == functional_.size(),
                "event_tree: sequence must cover every functional event");
  sequences_.push_back({std::move(outcomes), std::move(end_state)});
  return sequences_.size() - 1;
}

void event_tree::validate() const {
  require_model(!functional_.empty(), "event_tree: no functional events");
  require_model(!sequences_.empty(), "event_tree: no sequences");
  for (std::size_t a = 0; a < sequences_.size(); ++a) {
    for (std::size_t b = a + 1; b < sequences_.size(); ++b) {
      require_model(sequences_[a].outcomes != sequences_[b].outcomes,
                    "event_tree: duplicate sequence outcomes");
    }
  }
}

namespace {

/// Multi-root BDD compilation of the fault tree nodes an event tree
/// references, sharing one variable order and one manager.
class et_bdd {
 public:
  explicit et_bdd(const event_tree& et) : et_(et) {
    assign_vars(et_.initiating_event());
    for (std::size_t i = 0; i < et_.num_functional_events(); ++i) {
      assign_vars(et_.functional_gate(i));
    }
  }

  /// BDD of one sequence: IE and each functional outcome.
  bdd_ref sequence(std::size_t s) {
    bdd_ref f = compile(et_.initiating_event());
    const auto& outcomes = et_.sequence_outcomes(s);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i] == branch_outcome::bypass) continue;
      const bdd_ref gate = compile(et_.functional_gate(i));
      f = manager_.bdd_and(f, outcomes[i] == branch_outcome::failure
                                  ? gate
                                  : manager_.bdd_not(gate));
    }
    return f;
  }

  bdd_ref bdd_or(bdd_ref a, bdd_ref b) { return manager_.bdd_or(a, b); }
  bdd_ref zero() { return manager_.zero(); }

  double probability(bdd_ref f) {
    std::vector<double> probs(var_to_event_.size());
    for (std::size_t v = 0; v < var_to_event_.size(); ++v) {
      probs[v] = et_.ft().node(var_to_event_[v]).probability;
    }
    return manager_.probability(f, probs);
  }

 private:
  void assign_vars(node_index root) {
    const std::function<void(node_index)> visit = [&](node_index n) {
      if (et_.ft().is_basic(n)) {
        if (event_to_var_.emplace(n, var_to_event_.size()).second) {
          var_to_event_.push_back(n);
        }
        return;
      }
      for (node_index child : et_.ft().node(n).inputs) visit(child);
    };
    visit(root);
  }

  bdd_ref compile(node_index n) {
    auto it = memo_.find(n);
    if (it != memo_.end()) return it->second;
    bdd_ref ref;
    if (et_.ft().is_basic(n)) {
      ref = manager_.var(event_to_var_.at(n));
    } else {
      const auto& gate = et_.ft().node(n);
      const bool is_and = gate.type == gate_type::and_gate;
      ref = is_and ? manager_.one() : manager_.zero();
      for (node_index child : gate.inputs) {
        const bdd_ref c = compile(child);
        ref = is_and ? manager_.bdd_and(ref, c) : manager_.bdd_or(ref, c);
      }
    }
    memo_.emplace(n, ref);
    return ref;
  }

  const event_tree& et_;
  bdd_manager manager_;
  std::vector<node_index> var_to_event_;
  std::unordered_map<node_index, std::uint32_t> event_to_var_;
  std::unordered_map<node_index, bdd_ref> memo_;
};

}  // namespace

double sequence_probability_exact(const event_tree& et, std::size_t s) {
  require_model(s < et.num_sequences(), "event_tree: sequence out of range");
  et_bdd compiled(et);
  return compiled.probability(compiled.sequence(s));
}

double end_state_probability_exact(const event_tree& et,
                                   const std::string& end_state) {
  et_bdd compiled(et);
  bdd_ref any = compiled.zero();
  for (std::size_t s = 0; s < et.num_sequences(); ++s) {
    if (et.end_state(s) == end_state) {
      any = compiled.bdd_or(any, compiled.sequence(s));
    }
  }
  return compiled.probability(any);
}

fault_tree end_state_fault_tree(const event_tree& et,
                                const std::string& end_state) {
  et.validate();
  fault_tree out;
  std::unordered_map<node_index, node_index> copied;
  const std::function<node_index(node_index)> copy =
      [&](node_index n) -> node_index {
    auto it = copied.find(n);
    if (it != copied.end()) return it->second;
    const auto& node = et.ft().node(n);
    node_index mapped;
    if (et.ft().is_basic(n)) {
      mapped = out.add_basic_event(node.name, node.probability);
    } else {
      std::vector<node_index> inputs;
      inputs.reserve(node.inputs.size());
      for (node_index child : node.inputs) inputs.push_back(copy(child));
      mapped = out.add_gate(node.name, node.type, inputs);
    }
    copied.emplace(n, mapped);
    return mapped;
  };

  std::vector<node_index> sequence_gates;
  for (std::size_t s = 0; s < et.num_sequences(); ++s) {
    if (et.end_state(s) != end_state) continue;
    std::vector<node_index> inputs{copy(et.initiating_event())};
    const auto& outcomes = et.sequence_outcomes(s);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      // Success branches are dropped: the coherent, conservative
      // approximation used for MCS generation in PSA practice.
      if (outcomes[i] == branch_outcome::failure) {
        inputs.push_back(copy(et.functional_gate(i)));
      }
    }
    sequence_gates.push_back(out.add_gate(
        et.name() + "::SEQ" + std::to_string(s), gate_type::and_gate,
        inputs));
  }
  require_model(!sequence_gates.empty(),
                "event_tree: no sequence has end state '" + end_state + "'");
  out.set_top(out.add_gate(et.name() + "::" + end_state, gate_type::or_gate,
                           sequence_gates));
  out.validate();
  return out;
}

std::vector<trigger_suggestion> suggest_demand_triggers(
    const event_tree& et, const sd_fault_tree& tree) {
  std::vector<trigger_suggestion> out;
  for (std::size_t i = 0; i + 1 < et.num_functional_events(); ++i) {
    trigger_suggestion suggestion;
    suggestion.trigger_gate = et.functional_gate(i);
    const node_index next = et.functional_gate(i + 1);
    for (node_index n : tree.structure().descendants(next)) {
      if (tree.structure().is_basic(n) && tree.is_dynamic(n) &&
          tree.trigger_gate_of(n) == fault_tree::npos) {
        suggestion.events.push_back(n);
      }
    }
    // Events also living under the triggering gate would deadlock; the
    // acyclicity check of set_trigger would reject them, so filter here.
    const auto under_trigger =
        tree.structure().descendants(suggestion.trigger_gate);
    std::erase_if(suggestion.events, [&](node_index e) {
      return std::find(under_trigger.begin(), under_trigger.end(), e) !=
             under_trigger.end();
    });
    if (!suggestion.events.empty()) out.push_back(suggestion);
  }
  return out;
}

}  // namespace sdft
