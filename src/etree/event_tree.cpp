#include "etree/event_tree.hpp"

#include <algorithm>
#include <functional>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace sdft {

event_tree::event_tree(const fault_tree& ft, node_index initiating_event,
                       std::string name)
    : ft_(ft), initiating_(initiating_event), name_(std::move(name)) {
  require_model(initiating_ < ft_.size() && ft_.is_basic(initiating_),
                "event_tree: initiating event must be a basic event");
}

std::size_t event_tree::add_functional_event(std::string name,
                                             node_index gate) {
  require_model(gate < ft_.size() && ft_.is_gate(gate),
                "event_tree: functional event must be backed by a gate");
  functional_.push_back({std::move(name), gate});
  return functional_.size() - 1;
}

std::size_t event_tree::add_sequence(std::vector<branch_outcome> outcomes,
                                     std::string end_state) {
  require_model(outcomes.size() == functional_.size(),
                "event_tree: sequence must cover every functional event");
  sequences_.push_back({std::move(outcomes), std::move(end_state)});
  return sequences_.size() - 1;
}

void event_tree::validate() const {
  require_model(!functional_.empty(), "event_tree: no functional events");
  require_model(!sequences_.empty(), "event_tree: no sequences");
  for (std::size_t a = 0; a < sequences_.size(); ++a) {
    for (std::size_t b = a + 1; b < sequences_.size(); ++b) {
      require_model(sequences_[a].outcomes != sequences_[b].outcomes,
                    "event_tree: duplicate sequence outcomes");
    }
  }
}

event_tree_bdd::event_tree_bdd(const event_tree& et) : et_(et) {
  // Variable order: basic-event discovery order over a DFS of the IE and
  // then each functional gate — a pure function of the event tree, so
  // every compilation of the same tree agrees variable for variable.
  const std::function<void(node_index)> visit = [&](node_index n) {
    if (et_.ft().is_basic(n)) {
      if (event_to_var_.emplace(n, var_to_event_.size()).second) {
        var_to_event_.push_back(n);
      }
      return;
    }
    for (node_index child : et_.ft().node(n).inputs) visit(child);
  };
  visit(et_.initiating_event());
  for (std::size_t i = 0; i < et_.num_functional_events(); ++i) {
    visit(et_.functional_gate(i));
  }
}

bdd_ref event_tree_bdd::compile(node_index n) {
  auto it = memo_.find(n);
  if (it != memo_.end()) return it->second;
  bdd_ref ref;
  if (et_.ft().is_basic(n)) {
    ref = manager_.var(event_to_var_.at(n));
  } else {
    const auto& gate = et_.ft().node(n);
    ++gates_compiled_;
    if (gate.type == gate_type::atleast_gate) {
      // Threshold DP over the inputs, exactly as bdd/ft_bdd.cpp lowers
      // voting gates: at_least[j] after i children is "at least j of the
      // first i are failed". Polynomial in k * N, no C(N, k) expansion.
      // (Treating the gate as an OR here used to corrupt every exact
      // sequence probability under a k-of-n functional event.)
      std::vector<bdd_ref> at_least(gate.k + 1, manager_.zero());
      at_least[0] = manager_.one();
      for (node_index child : gate.inputs) {
        const bdd_ref c = compile(child);
        for (std::uint32_t j = gate.k; j >= 1; --j) {
          at_least[j] = manager_.bdd_or(
              at_least[j], manager_.bdd_and(c, at_least[j - 1]));
        }
      }
      ref = at_least[gate.k];
    } else {
      const bool is_and = gate.type == gate_type::and_gate;
      ref = is_and ? manager_.one() : manager_.zero();
      for (node_index child : gate.inputs) {
        const bdd_ref c = compile(child);
        ref = is_and ? manager_.bdd_and(ref, c) : manager_.bdd_or(ref, c);
      }
    }
  }
  memo_.emplace(n, ref);
  return ref;
}

bdd_ref event_tree_bdd::sequence(std::size_t s) {
  require_model(s < et_.num_sequences(), "event_tree: sequence out of range");
  bdd_ref f = compile(et_.initiating_event());
  const auto& outcomes = et_.sequence_outcomes(s);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i] == branch_outcome::bypass) continue;
    // Prefix-product cache: sequences sharing (partial product, demanded
    // event, outcome) reuse the product instead of re-running the BDD
    // apply. Key packs (ref, event index, outcome) into 64 bits.
    const std::uint64_t key = static_cast<std::uint64_t>(f) |
                              (static_cast<std::uint64_t>(i) << 32) |
                              (static_cast<std::uint64_t>(outcomes[i]) << 56);
    auto it = prefix_.find(key);
    if (it != prefix_.end()) {
      ++prefix_hits_;
      f = it->second;
      continue;
    }
    const bdd_ref gate = compile(et_.functional_gate(i));
    const bdd_ref next =
        manager_.bdd_and(f, outcomes[i] == branch_outcome::failure
                                ? gate
                                : manager_.bdd_not(gate));
    prefix_.emplace(key, next);
    f = next;
  }
  return f;
}

bdd_ref event_tree_bdd::end_state(const std::string& end_state) {
  bdd_ref any = manager_.zero();
  for (std::size_t s = 0; s < et_.num_sequences(); ++s) {
    if (et_.end_state(s) == end_state) {
      any = manager_.bdd_or(any, sequence(s));
    }
  }
  return any;
}

double event_tree_bdd::probability(bdd_ref f) const {
  std::vector<double> probs(var_to_event_.size());
  for (std::size_t v = 0; v < var_to_event_.size(); ++v) {
    probs[v] = et_.ft().node(var_to_event_[v]).probability;
  }
  return manager_.probability(f, probs);
}

double event_tree_bdd::probability(
    bdd_ref f, const std::vector<double>& node_probs) const {
  std::vector<double> probs(var_to_event_.size());
  for (std::size_t v = 0; v < var_to_event_.size(); ++v) {
    const node_index n = var_to_event_[v];
    require_model(n < node_probs.size(),
                  "event_tree: probability vector does not cover the tree");
    probs[v] = node_probs[n];
  }
  return manager_.probability(f, probs);
}

double sequence_probability_exact(const event_tree& et, std::size_t s) {
  et.validate();
  require_model(s < et.num_sequences(), "event_tree: sequence out of range");
  event_tree_bdd compiled(et);
  return compiled.probability(compiled.sequence(s));
}

double end_state_probability_exact(const event_tree& et,
                                   const std::string& end_state) {
  et.validate();
  event_tree_bdd compiled(et);
  return compiled.probability(compiled.end_state(end_state));
}

fault_tree end_state_fault_tree(const event_tree& et,
                                const std::string& end_state) {
  et.validate();
  fault_tree out;
  std::unordered_map<node_index, node_index> copied;
  const std::function<node_index(node_index)> copy =
      [&](node_index n) -> node_index {
    auto it = copied.find(n);
    if (it != copied.end()) return it->second;
    const auto& node = et.ft().node(n);
    node_index mapped;
    if (et.ft().is_basic(n)) {
      mapped = out.add_basic_event(node.name, node.probability);
    } else {
      std::vector<node_index> inputs;
      inputs.reserve(node.inputs.size());
      for (node_index child : node.inputs) inputs.push_back(copy(child));
      mapped = node.type == gate_type::atleast_gate
                   ? out.add_atleast_gate(node.name, node.k, std::move(inputs))
                   : out.add_gate(node.name, node.type, std::move(inputs));
    }
    copied.emplace(n, mapped);
    return mapped;
  };

  // Copy every referenced subtree first, then synthesize the sequence and
  // top gates: the synthesized names are deduplicated against everything
  // already in `out`, so a model that happens to contain a node named
  // "<et>::SEQ0" (or the end state itself) cannot collide — in either
  // direction — with the gates we make up here.
  struct sequence_plan {
    std::size_t s;
    std::vector<node_index> inputs;
  };
  std::vector<sequence_plan> plans;
  for (std::size_t s = 0; s < et.num_sequences(); ++s) {
    if (et.end_state(s) != end_state) continue;
    std::vector<node_index> inputs{copy(et.initiating_event())};
    const auto& outcomes = et.sequence_outcomes(s);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      // Success branches are dropped: the coherent, conservative
      // approximation used for MCS generation in PSA practice.
      if (outcomes[i] == branch_outcome::failure) {
        inputs.push_back(copy(et.functional_gate(i)));
      }
    }
    plans.push_back({s, std::move(inputs)});
  }
  require_model(!plans.empty(),
                "event_tree: no sequence has end state '" + end_state + "'");

  const auto unique_name = [&out](std::string base) {
    if (out.find(base) == fault_tree::npos) return base;
    for (int suffix = 2;; ++suffix) {
      std::string candidate = base + "#" + std::to_string(suffix);
      if (out.find(candidate) == fault_tree::npos) return candidate;
    }
  };
  std::vector<node_index> sequence_gates;
  sequence_gates.reserve(plans.size());
  for (auto& plan : plans) {
    sequence_gates.push_back(out.add_gate(
        unique_name(et.name() + "::SEQ" + std::to_string(plan.s)),
        gate_type::and_gate, std::move(plan.inputs)));
  }
  out.set_top(out.add_gate(unique_name(et.name() + "::" + end_state),
                           gate_type::or_gate, sequence_gates));
  out.validate();
  return out;
}

std::vector<trigger_suggestion> suggest_demand_triggers(
    const event_tree& et, const sd_fault_tree& tree) {
  std::vector<trigger_suggestion> out;
  for (std::size_t i = 0; i + 1 < et.num_functional_events(); ++i) {
    trigger_suggestion suggestion;
    suggestion.trigger_gate = et.functional_gate(i);
    const node_index next = et.functional_gate(i + 1);
    for (node_index n : tree.structure().descendants(next)) {
      if (tree.structure().is_basic(n) && tree.is_dynamic(n) &&
          tree.trigger_gate_of(n) == fault_tree::npos) {
        suggestion.events.push_back(n);
      }
    }
    // Events also living under the triggering gate would deadlock; the
    // acyclicity check of set_trigger would reject them, so filter here.
    const auto under_trigger =
        tree.structure().descendants(suggestion.trigger_gate);
    std::erase_if(suggestion.events, [&](node_index e) {
      return std::find(under_trigger.begin(), under_trigger.end(), e) !=
             under_trigger.end();
    });
    if (!suggestion.events.empty()) out.push_back(suggestion);
  }
  return out;
}

}  // namespace sdft
