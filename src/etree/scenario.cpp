#include "etree/scenario.hpp"

#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "sdft/parser.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace sdft {

namespace {

constexpr const char* parse_error_prefix = "scenario parse error";

/// Wraps `what` with the parse prefix and `line` — exactly once, like the
/// SD parser's fail(): inner wrap sites keep the most precise line number.
[[noreturn]] void fail(std::size_t line, const std::string& what) {
  if (what.rfind(parse_error_prefix, 0) == 0) throw model_error(what);
  throw model_error(std::string(parse_error_prefix) + ", line " +
                    std::to_string(line) + ": " + what);
}

double parse_number(const std::string& tok, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line, "trailing characters in number");
    return v;
  } catch (const model_error&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "cannot parse number '" + tok + "'");
  }
}

branch_outcome parse_outcome(const std::string& tok, std::size_t line) {
  if (tok == "F") return branch_outcome::failure;
  if (tok == "S") return branch_outcome::success;
  if (tok == "-") return branch_outcome::bypass;
  fail(line, "outcome must be F, S or - (got '" + tok + "')");
}

std::vector<double> parse_alpha_list(const std::string& tok,
                                     std::size_t line) {
  std::vector<double> alpha;
  std::string item;
  std::istringstream in(tok);
  while (std::getline(in, item, ',')) {
    alpha.push_back(parse_number(item, line));
  }
  if (alpha.empty()) fail(line, "empty alpha-factor list");
  return alpha;
}

}  // namespace

scenario_model parse_scenario(std::istream& in) {
  // Split the file at the `etree` line: everything before is the SD
  // fault-tree section (delegated verbatim, so its parse errors keep
  // their own line numbers — the section is a prefix of the file).
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::size_t etree_line = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto tok = tokenize_line(lines[i]);
    if (!tok.empty() && tok[0] == "etree") {
      etree_line = i;
      break;
    }
  }
  if (etree_line == lines.size()) {
    fail(lines.size(), "missing 'etree <name>' section");
  }

  std::string ft_text;
  for (std::size_t i = 0; i < etree_line; ++i) {
    ft_text += lines[i];
    ft_text += '\n';
  }

  scenario_model model;
  model.tree = parse_sd_fault_tree_string(ft_text);
  scenario_description& et = model.scenario;

  for (std::size_t i = etree_line; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const auto tok = tokenize_line(lines[i]);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "etree") {
      if (i != etree_line) fail(line_no, "more than one etree section");
      if (tok.size() != 2) fail(line_no, "usage: etree <name>");
      et.name = tok[1];
    } else if (cmd == "initiating") {
      if (tok.size() != 2) fail(line_no, "usage: initiating <basic-event>");
      if (!et.initiating_event.empty()) {
        fail(line_no, "more than one initiating event");
      }
      et.initiating_event = tok[1];
    } else if (cmd == "functional") {
      if (tok.size() != 3) fail(line_no, "usage: functional <name> <gate>");
      for (const auto& f : et.functional) {
        if (f.name == tok[1]) {
          fail(line_no, "duplicate functional event '" + tok[1] + "'");
        }
      }
      et.functional.push_back({tok[1], tok[2]});
    } else if (cmd == "sequence") {
      if (tok.size() < 3) {
        fail(line_no, "usage: sequence <end-state> <F|S|-> ...");
      }
      scenario_description::sequence seq;
      seq.end_state = tok[1];
      for (std::size_t t = 2; t < tok.size(); ++t) {
        seq.outcomes.push_back(parse_outcome(tok[t], line_no));
      }
      if (seq.outcomes.size() != et.functional.size()) {
        fail(line_no, "sequence has " + std::to_string(seq.outcomes.size()) +
                          " outcomes for " +
                          std::to_string(et.functional.size()) +
                          " functional events");
      }
      et.sequences.push_back(std::move(seq));
    } else if (cmd == "ccf-beta") {
      if (tok.size() < 5) {
        fail(line_no, "usage: ccf-beta <group> <beta> <member> <member> ...");
      }
      ccf_group_description group;
      group.name = tok[1];
      group.model = ccf_group::parametric_model::beta_factor;
      group.beta = parse_number(tok[2], line_no);
      group.members.assign(tok.begin() + 3, tok.end());
      et.ccf.push_back(std::move(group));
    } else if (cmd == "ccf-alpha") {
      if (tok.size() < 5) {
        fail(line_no,
             "usage: ccf-alpha <group> <a1,...,an> <member> ... (n members)");
      }
      ccf_group_description group;
      group.name = tok[1];
      group.model = ccf_group::parametric_model::alpha_factor;
      group.alpha = parse_alpha_list(tok[2], line_no);
      group.members.assign(tok.begin() + 3, tok.end());
      if (group.alpha.size() != group.members.size()) {
        fail(line_no, "alpha-factor list has " +
                          std::to_string(group.alpha.size()) +
                          " entries for " +
                          std::to_string(group.members.size()) + " members");
      }
      et.ccf.push_back(std::move(group));
    } else if (cmd == "dist") {
      if (tok.size() < 3) {
        fail(line_no, "usage: dist <event> lognormal <EF> | uniform <lo> "
                      "<hi> | point");
      }
      parameter_distribution dist;
      dist.event = tok[1];
      const std::string& kind = tok[2];
      if (kind == "lognormal") {
        if (tok.size() != 4) {
          fail(line_no, "usage: dist <event> lognormal <error-factor>");
        }
        dist.model = parameter_distribution::kind::lognormal;
        dist.error_factor = parse_number(tok[3], line_no);
        if (dist.error_factor < 1.0) {
          fail(line_no, "lognormal error factor must be >= 1");
        }
      } else if (kind == "uniform") {
        if (tok.size() != 5) {
          fail(line_no, "usage: dist <event> uniform <lo> <hi>");
        }
        dist.model = parameter_distribution::kind::uniform;
        dist.lo = parse_number(tok[3], line_no);
        dist.hi = parse_number(tok[4], line_no);
        if (!(dist.lo <= dist.hi) || dist.lo < 0.0 || dist.hi > 1.0) {
          fail(line_no, "uniform bounds must satisfy 0 <= lo <= hi <= 1");
        }
      } else if (kind == "point") {
        if (tok.size() != 3) fail(line_no, "usage: dist <event> point");
        dist.model = parameter_distribution::kind::point;
      } else {
        fail(line_no, "unknown distribution '" + kind + "'");
      }
      for (const auto& d : et.distributions) {
        if (d.event == dist.event) {
          fail(line_no, "duplicate distribution for '" + dist.event + "'");
        }
      }
      et.distributions.push_back(std::move(dist));
    } else {
      fail(line_no, "unknown directive '" + cmd + "'");
    }
  }

  if (et.initiating_event.empty()) {
    fail(lines.size(), "etree section has no initiating event");
  }
  if (et.functional.empty()) {
    fail(lines.size(), "etree section has no functional events");
  }
  if (et.sequences.empty()) {
    fail(lines.size(), "etree section has no sequences");
  }
  return model;
}

scenario_model parse_scenario_string(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

}  // namespace sdft
