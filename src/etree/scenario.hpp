#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "etree/event_tree.hpp"
#include "ft/ccf.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Uncertainty distribution over one basic event's probability, used by
/// the scenario engine's Monte-Carlo parameter propagation (one draw per
/// sample, full scenario re-quantification off the cached structure).
struct parameter_distribution {
  enum class kind {
    point,      ///< no uncertainty: the tree's probability as-is
    lognormal,  ///< median = tree probability, spread by an error factor
    uniform,    ///< uniform on [lo, hi]
  };

  std::string event;  ///< basic event of the (pre-CCF) tree
  kind model = kind::point;

  /// Lognormal error factor, the PSA convention: EF = p95 / median, i.e.
  /// sigma = ln(EF) / 1.645 (matches core/risk_measures.hpp).
  double error_factor = 3.0;

  /// Uniform bounds.
  double lo = 0.0;
  double hi = 0.0;
};

/// A CCF group as the user wrote it — member *names*, resolved against a
/// concrete tree when the scenario is compiled (ccf_group in ft/ccf.hpp is
/// the index-based form). The split keeps the error taxonomy clean: parse
/// errors are syntax, resolution errors are model errors.
struct ccf_group_description {
  std::string name;
  ccf_group::parametric_model model = ccf_group::parametric_model::beta_factor;
  double beta = 0.1;           ///< beta-factor model
  std::vector<double> alpha;   ///< alpha-factor model (size = member count)
  std::vector<std::string> members;
};

/// An event tree as written: the initiating event, functional events and
/// sequences by name, plus optional CCF groups and parameter
/// distributions. Compiled against the accompanying fault tree by the
/// scenario engine (engine/scenario.hpp).
struct scenario_description {
  std::string name = "ET";
  std::string initiating_event;

  struct functional_event {
    std::string name;  ///< display name of the safety function
    std::string gate;  ///< fault-tree gate backing it (failure criterion)
  };
  std::vector<functional_event> functional;

  struct sequence {
    std::string end_state;
    std::vector<branch_outcome> outcomes;  ///< one per functional event
  };
  std::vector<sequence> sequences;

  std::vector<ccf_group_description> ccf;
  std::vector<parameter_distribution> distributions;

  bool empty() const { return functional.empty() && sequences.empty(); }
};

/// A parsed scenario file: the fault tree plus the event tree over it.
struct scenario_model {
  sd_fault_tree tree;
  scenario_description scenario;
};

/// Parses the scenario text format: a full SD fault-tree section (see
/// sdft/parser.hpp) followed by one event-tree section,
///
/// ```
/// etree      <name>
/// initiating <basic-event>
/// functional <name> <gate>
/// sequence   <end-state> <F|S|-> ...    # one outcome per functional event
/// ccf-beta   <group> <beta> <member> <member> ...
/// ccf-alpha  <group> <a1,a2,...,an> <member> ... (n members)
/// dist       <event> lognormal <error-factor>
/// dist       <event> uniform <lo> <hi>
/// dist       <event> point
/// ```
///
/// Outcomes: F = the safety function fails, S = it succeeds (negated gate,
/// exact), - = not demanded. Syntax errors throw model_error with a line
/// number; name resolution against the tree happens when the scenario
/// engine compiles the model.
scenario_model parse_scenario(std::istream& in);
scenario_model parse_scenario_string(const std::string& text);

}  // namespace sdft
