#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Options bounding the product construction.
struct product_options {
  /// Hard cap on consistent product states; exceeded -> numeric_error.
  std::size_t max_states = 2'000'000;

  /// Hard cap on initial-support combinations (they multiply over events
  /// with more than one initially-supported local state).
  std::size_t max_initial_support = 1'000'000;
};

/// The product Markov chain C_FT of an SD fault tree (paper §III-C):
/// one CTMC state per *consistent* reachable product of local basic-event
/// states, with trigger updates folded into transitions and into the
/// initial distribution.
struct product_ctmc {
  ctmc chain;

  /// Component order: events[i] is the SD-tree basic event whose local
  /// state occupies position i of every product state.
  std::vector<node_index> events;

  /// states[s][i] is the local chain state of events[i] in product state s.
  std::vector<std::vector<std::uint16_t>> states;

  std::size_t num_states() const { return states.size(); }
};

/// Builds the reachable consistent product chain of `tree`. Static basic
/// events participate as two-state zero-rate chains (paper §III-C); their
/// initial randomness multiplies into the initial distribution.
product_ctmc build_product_ctmc(const sd_fault_tree& tree,
                                const product_options& options = {});

/// The exact semantics of an SD fault tree: Pr[Reach<=t(F)] in the product
/// chain (paper §III-C2). This is the reference the MCS-based analysis is
/// validated against; it is exponential in the number of basic events.
double exact_failure_probability(const sd_fault_tree& tree, double t,
                                 double epsilon = 1e-10,
                                 const product_options& options = {});

/// Attribution of the *first* system failure within the horizon: for each
/// basic event, the probability that the transition completing the failure
/// (the last event to fail, in the order-aware sense of minimal cut
/// sequences) belongs to that event. Computed exactly on a product chain
/// whose failed states are split into per-cause absorbing sinks.
struct attribution_result {
  /// completing event -> probability its transition caused first failure.
  std::unordered_map<node_index, double> by_event;

  /// Probability the tree is already failed at time 0 (static failures
  /// and instantly-triggered failures in the initial state).
  double initially_failed = 0;

  /// Total = initially_failed + sum of by_event
  ///       = Pr[Reach<=t(F)] up to numerical accuracy.
  double total = 0;
};

attribution_result failure_attribution(const sd_fault_tree& tree, double t,
                                       double epsilon = 1e-10,
                                       const product_options& options = {});

}  // namespace sdft
