#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Options bounding and tuning the product construction.
struct product_options {
  /// Hard cap on consistent product states; exceeded -> numeric_error.
  std::size_t max_states = 2'000'000;

  /// Hard cap on initial-support combinations (they multiply over events
  /// with more than one initially-supported local state).
  std::size_t max_initial_support = 1'000'000;

  /// Key the exploration's state index by the packed 64-bit encoding when
  /// the per-component local-state bits fit into one word; falls back to
  /// the vector key automatically when they overflow 64 bits.
  bool packed_state_keys = true;

  /// Lump exchangeable components: byte-identical local chains sitting in
  /// symmetric positions (same parent gates, same trigger gate or both
  /// untriggered) are explored up to permutation, i.e. the state space is
  /// the quotient keyed by per-orbit local-state counts. Turns the
  /// exponential product over k identical trains into a polynomial one.
  /// Ignored in attribution mode, which needs per-component identity for
  /// its cause-split sinks.
  bool lump_symmetry = true;
};

/// The product Markov chain C_FT of an SD fault tree (paper §III-C):
/// one CTMC state per *consistent* reachable product of local basic-event
/// states (per orbit-count class of those when symmetry lumping applies),
/// with trigger updates folded into transitions and into the initial
/// distribution.
struct product_ctmc {
  ctmc chain;

  /// Component order: events[i] is the SD-tree basic event whose local
  /// state occupies position i of every product state.
  std::vector<node_index> events;

  /// Arena-backed local-state storage: product state s occupies
  /// locals[s * stride .. (s + 1) * stride). Attribution sinks hold the
  /// sentinel 0xffff in every slot (local chains are capped below 0xffff
  /// states, so the sentinel never collides with a real local state).
  std::vector<std::uint16_t> locals;
  std::size_t stride = 0;

  // Construction instrumentation.
  bool packed_keys = false;           ///< exploration used the 64-bit key
  std::size_t lumped_orbits = 0;      ///< orbits with >= 2 members
  std::size_t lumped_components = 0;  ///< components inside those orbits

  std::size_t num_states() const { return chain.num_states(); }

  /// The local states of product state s (length stride).
  const std::uint16_t* state(state_index s) const {
    return locals.data() + static_cast<std::size_t>(s) * stride;
  }

  std::vector<std::uint16_t> state_vector(state_index s) const {
    const std::uint16_t* p = state(s);
    return std::vector<std::uint16_t>(p, p + stride);
  }

  /// True for the per-component absorbing sinks of attribution mode.
  bool is_sink(state_index s) const {
    return stride > 0 && state(s)[0] == 0xffff;
  }
};

/// Builds the reachable consistent product chain of `tree`. Static basic
/// events participate as two-state zero-rate chains (paper §III-C); their
/// initial randomness multiplies into the initial distribution.
product_ctmc build_product_ctmc(const sd_fault_tree& tree,
                                const product_options& options = {});

/// The exact semantics of an SD fault tree: Pr[Reach<=t(F)] in the product
/// chain (paper §III-C2). This is the reference the MCS-based analysis is
/// validated against; it is exponential in the number of basic events
/// (polynomial in each orbit of exchangeable ones when lumping applies).
double exact_failure_probability(const sd_fault_tree& tree, double t,
                                 double epsilon = 1e-10,
                                 const product_options& options = {});

/// Attribution of the *first* system failure within the horizon: for each
/// basic event, the probability that the transition completing the failure
/// (the last event to fail, in the order-aware sense of minimal cut
/// sequences) belongs to that event. Computed exactly on a product chain
/// whose failed states are split into per-cause absorbing sinks. Symmetry
/// lumping is always disabled here (sinks are per concrete component);
/// exchangeable components therefore receive identical masses.
struct attribution_result {
  /// completing event -> probability its transition caused first failure.
  std::unordered_map<node_index, double> by_event;

  /// Probability the tree is already failed at time 0 (static failures
  /// and instantly-triggered failures in the initial state).
  double initially_failed = 0;

  /// Total = initially_failed + sum of by_event
  ///       = Pr[Reach<=t(F)] up to numerical accuracy.
  double total = 0;
};

attribution_result failure_attribution(const sd_fault_tree& tree, double t,
                                       double epsilon = 1e-10,
                                       const product_options& options = {});

}  // namespace sdft
