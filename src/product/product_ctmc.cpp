#include "product/product_ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>

#include "ctmc/transient.hpp"
#include "ft/evaluator.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/fox_glynn.hpp"

namespace sdft {

namespace {

using local_state = std::uint16_t;
using product_state = std::vector<local_state>;

/// Attribution sinks carry this in every arena slot; local chains are
/// capped at 0xffff states, so no real local state reaches it.
constexpr local_state sink_sentinel = 0xffff;

struct product_state_hash {
  std::size_t operator()(const product_state& s) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (local_state v : s) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// splitmix64 finaliser: the packed key concentrates its entropy in the
/// low bits of each component field, so mix before bucketing.
struct packed_key_hash {
  std::size_t operator()(std::uint64_t x) const {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

// Byte serialisation for the exchangeability signature (mirrors the
// quantification-cache encoding: equal bytes <=> equal stochastic model).
void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_f64(std::string& out, double v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_chain(std::string& out, const ctmc& chain) {
  put_u32(out, static_cast<std::uint32_t>(chain.num_states()));
  for (state_index s = 0; s < chain.num_states(); ++s) {
    put_f64(out, chain.initial(s));
    out.push_back(chain.failed(s) ? 'F' : '.');
    const auto& row = chain.transitions_from(s);
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const auto& [target, rate] : row) {
      put_u32(out, target);
      put_f64(out, rate);
    }
  }
}

/// Per-component view used during exploration. Static events own a local
/// two-state chain; dynamic events reference their model inside the tree.
struct component {
  node_index event;
  const ctmc* chain;
  // Trigger data; trigger_gate == npos for untriggered components.
  node_index trigger_gate = fault_tree::npos;
  const std::vector<char>* on_state = nullptr;
  const std::vector<state_index>* to_on = nullptr;
  const std::vector<state_index>* to_off = nullptr;
};

constexpr std::size_t no_orbit = static_cast<std::size_t>(-1);

class builder {
 public:
  /// With `attribute` set, failed states reached by a transition are
  /// replaced by one absorbing sink per causing component (and failed
  /// states are never expanded), enabling first-failure attribution.
  builder(const sd_fault_tree& tree, const product_options& options,
          bool attribute = false)
      : tree_(tree), options_(options), attribute_(attribute) {
    const fault_tree& ft = tree_.structure();
    for (node_index b : ft.basic_events()) {
      component comp;
      comp.event = b;
      if (tree_.is_dynamic(b)) {
        const dynamic_model& model = tree_.model_of(b);
        if (const auto* trig = std::get_if<triggered_ctmc>(&model)) {
          comp.chain = &trig->chain;
          comp.trigger_gate = tree_.trigger_gate_of(b);
          comp.on_state = &trig->on_state;
          comp.to_on = &trig->to_on;
          comp.to_off = &trig->to_off;
        } else {
          comp.chain = &std::get<ctmc>(model);
        }
      } else {
        static_chains_.push_back(make_static_event(ft.node(b).probability));
      }
      components_.push_back(comp);
    }
    // Vector growth above invalidates pointers; bind static chains now.
    std::size_t next_static = 0;
    for (auto& comp : components_) {
      if (!tree_.is_dynamic(comp.event)) {
        comp.chain = &static_chains_[next_static++];
      }
      require_model(comp.chain->num_states() <= 0xffff,
                    "product: component chain exceeds 65535 states");
    }
    failed_basic_.assign(ft.size(), 0);
    node_failed_.assign(ft.size(), 0);

    // settle() only needs the sub-DAG feeding the trigger gates and
    // is_failed() only the one feeding the top gate; everything else of
    // the tree never influences either answer.
    std::vector<node_index> trigger_targets;
    for (const auto& comp : components_) {
      if (comp.trigger_gate != fault_tree::npos) {
        trigger_targets.push_back(comp.trigger_gate);
      }
    }
    has_triggers_ = !trigger_targets.empty();
    trigger_eval_.emplace(ft, trigger_targets);
    top_eval_.emplace(ft, std::vector<node_index>{ft.top()});

    detect_orbits();
    setup_state_codec();
  }

  product_ctmc build() {
    seed_initial();
    if (attribute_) {
      // One absorbing failed sink per component; regular product states
      // keep their failed flag off so only sinks (and initially failed
      // states) carry failure mass.
      sinks_.resize(components_.size());
      for (std::size_t i = 0; i < components_.size(); ++i) {
        sinks_[i] = result_.chain.add_state();
        result_.chain.set_failed(sinks_[i]);
        result_.locals.insert(result_.locals.end(), result_.stride,
                              sink_sentinel);
      }
    }
    // BFS over consistent (canonical) states; chain rows grow as states
    // intern. The arena grows too, so each state is copied out first.
    const std::size_t stride = result_.stride;
    for (std::size_t s = 0; s < result_.num_states(); ++s) {
      if (attribute_ &&
          (is_sink_slot(s) ||
           result_.chain.failed(static_cast<state_index>(s)))) {
        continue;  // sinks and initially-failed states are absorbing
      }
      current_.assign(result_.locals.begin() + s * stride,
                      result_.locals.begin() + (s + 1) * stride);
      for (std::size_t i = 0; i < components_.size(); ++i) {
        // Orbit members holding the same local state are exchangeable:
        // the first of each equal-value run moves on behalf of all of
        // them (rate times the run length); the others are skipped.
        double multiplicity = 1.0;
        if (comp_orbit_[i] != no_orbit) {
          const auto& members = orbits_[comp_orbit_[i]];
          const std::size_t pos = comp_orbit_pos_[i];
          if (pos > 0 && current_[members[pos - 1]] == current_[i]) {
            continue;
          }
          for (std::size_t j = pos + 1; j < members.size() &&
                                        current_[members[j]] == current_[i];
               ++j) {
            multiplicity += 1.0;
          }
        }
        for (const auto& [target, rate] :
             components_[i].chain->transitions_from(current_[i])) {
          next_.assign(current_.begin(), current_.end());
          next_[i] = static_cast<local_state>(target);
          settle(next_);
          canonicalize(next_);
          if (attribute_ && is_failed(next_)) {
            result_.chain.add_rate(static_cast<state_index>(s), sinks_[i],
                                   rate);
            continue;
          }
          const state_index to = intern(next_);
          if (to != s) {
            result_.chain.add_rate(static_cast<state_index>(s), to,
                                   rate * multiplicity);
          }
        }
      }
    }
    return std::move(result_);
  }

  /// Sink state of component position i (attribution mode only).
  state_index sink(std::size_t i) const { return sinks_[i]; }

 private:
  /// Groups components into orbits of exchangeable positions: identical
  /// local chains (byte-equal, including switching maps), the same
  /// trigger gate (or both untriggered), and the same parent-gate
  /// multiset. Swapping two such components is an automorphism of the SD
  /// tree, so the product chain is lumpable by per-orbit state counts —
  /// realised here by exploring only canonical representatives (orbit
  /// slots sorted ascending).
  void detect_orbits() {
    comp_orbit_.assign(components_.size(), no_orbit);
    comp_orbit_pos_.assign(components_.size(), 0);
    if (!options_.lump_symmetry || attribute_) return;
    const fault_tree& ft = tree_.structure();

    std::unordered_map<node_index, std::vector<node_index>> parents;
    for (node_index n = 0; n < ft.size(); ++n) {
      const ft_node& node = ft.node(n);
      if (node.kind != node_kind::gate) continue;
      for (node_index child : node.inputs) {
        if (ft.is_basic(child)) parents[child].push_back(n);
      }
    }

    std::unordered_map<std::string, std::size_t> groups;
    std::vector<std::vector<std::size_t>> raw;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const component& comp = components_[i];
      std::string sig;
      put_chain(sig, *comp.chain);
      if (comp.trigger_gate != fault_tree::npos) {
        sig.push_back('T');
        put_u32(sig, comp.trigger_gate);
        for (char on : *comp.on_state) sig.push_back(on ? '1' : '0');
        for (state_index s : *comp.to_on) put_u32(sig, s);
        for (state_index s : *comp.to_off) put_u32(sig, s);
      }
      sig.push_back('P');
      if (auto it = parents.find(comp.event); it != parents.end()) {
        std::vector<node_index> ps = it->second;
        std::sort(ps.begin(), ps.end());
        for (node_index p : ps) put_u32(sig, p);
      }
      const auto [it, inserted] = groups.emplace(sig, raw.size());
      if (inserted) raw.emplace_back();
      raw[it->second].push_back(i);
    }

    for (const auto& members : raw) {
      if (members.size() < 2) continue;
      for (std::size_t m = 0; m < members.size(); ++m) {
        comp_orbit_[members[m]] = orbits_.size();
        comp_orbit_pos_[members[m]] = m;
      }
      orbits_.push_back(members);
      result_.lumped_components += members.size();
    }
    result_.lumped_orbits = orbits_.size();
  }

  /// Chooses between the packed 64-bit key and the vector key: each
  /// component claims bit_width(num_states - 1) bits of the word.
  void setup_state_codec() {
    std::size_t total_bits = 0;
    bits_.resize(components_.size());
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const std::size_t ns = components_[i].chain->num_states();
      unsigned b = 1;
      while ((std::size_t{1} << b) < ns) ++b;
      bits_[i] = b;
      total_bits += b;
    }
    packed_ = options_.packed_state_keys && total_bits <= 64;
    result_.packed_keys = packed_;
  }

  std::uint64_t encode(const product_state& s) const {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      key = (key << bits_[i]) | s[i];
    }
    return key;
  }

  /// Sorts each orbit's slots ascending: the canonical representative of
  /// the state's symmetry class. No-op without orbits.
  void canonicalize(product_state& s) {
    for (const auto& members : orbits_) {
      orbit_vals_.clear();
      for (std::size_t m : members) orbit_vals_.push_back(s[m]);
      std::sort(orbit_vals_.begin(), orbit_vals_.end());
      for (std::size_t j = 0; j < members.size(); ++j) {
        s[members[j]] = orbit_vals_[j];
      }
    }
  }

  bool is_sink_slot(std::size_t s) const {
    return result_.stride > 0 &&
           result_.locals[s * result_.stride] == sink_sentinel;
  }

  /// Applies trigger updates until the state is consistent (paper §III-C1b).
  /// Acyclic triggering bounds the number of sweeps by the trigger depth.
  void settle(product_state& s) {
    if (!has_triggers_) return;
    const std::size_t limit = components_.size() + 2;
    for (std::size_t round = 0; round <= limit; ++round) {
      for (std::size_t i = 0; i < components_.size(); ++i) {
        failed_basic_[components_[i].event] =
            components_[i].chain->failed(s[i]) ? 1 : 0;
      }
      trigger_eval_->evaluate(failed_basic_, node_failed_);
      bool changed = false;
      for (std::size_t i = 0; i < components_.size(); ++i) {
        const component& comp = components_[i];
        if (comp.trigger_gate == fault_tree::npos) continue;
        const bool demanded = node_failed_[comp.trigger_gate] != 0;
        const bool on = (*comp.on_state)[s[i]] != 0;
        if (demanded && !on) {
          s[i] = static_cast<local_state>((*comp.to_on)[s[i]]);
          changed = true;
        } else if (!demanded && on) {
          s[i] = static_cast<local_state>((*comp.to_off)[s[i]]);
          changed = true;
        }
      }
      if (!changed) return;
    }
    throw model_error("product: trigger updates did not stabilise");
  }

  /// Whether a (consistent) product state fails the top gate.
  bool is_failed(const product_state& s) {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      failed_basic_[components_[i].event] =
          components_[i].chain->failed(s[i]) ? 1 : 0;
    }
    top_eval_->evaluate(failed_basic_, node_failed_);
    return node_failed_[tree_.structure().top()] != 0;
  }

  /// Index of a canonical consistent state, interning it (arena slot,
  /// chain state and failure flag) on first sight.
  state_index intern(const product_state& s) {
    if (packed_) {
      const std::uint64_t key = encode(s);
      if (const auto it = packed_index_.find(key);
          it != packed_index_.end()) {
        return it->second;
      }
      const state_index idx = intern_new(s);
      packed_index_.emplace(key, idx);
      return idx;
    }
    if (const auto it = vector_index_.find(s); it != vector_index_.end()) {
      return it->second;
    }
    const state_index idx = intern_new(s);
    vector_index_.emplace(s, idx);
    return idx;
  }

  state_index intern_new(const product_state& s) {
    if (result_.num_states() >= options_.max_states) {
      throw numeric_error("product: state-space limit exceeded");
    }
    const auto idx = static_cast<state_index>(result_.num_states());
    result_.locals.insert(result_.locals.end(), s.begin(), s.end());
    result_.chain.add_state();
    result_.chain.set_failed(idx, is_failed(s));
    return idx;
  }

  /// Number of distinct orderings collapsing onto the (orbit-sorted)
  /// assignment `s`: the product of per-orbit multinomials k!/prod c!.
  double orbit_multiplicity(const product_state& s) const {
    double log_m = 0.0;
    for (const auto& members : orbits_) {
      log_m += log_factorial(members.size());
      std::size_t run = 1;
      for (std::size_t j = 1; j <= members.size(); ++j) {
        if (j < members.size() && s[members[j]] == s[members[j - 1]]) {
          ++run;
          continue;
        }
        log_m -= log_factorial(run);
        run = 1;
      }
    }
    if (log_m == 0.0) return 1.0;
    const double m = std::exp(log_m);
    // Multinomials are integers; recover exactness lost in log space.
    return m < 9e15 ? std::round(m) : m;
  }

  /// Enumerates the product of the per-component initial supports,
  /// normalising each combination to its consistent canonical state
  /// (paper §III-C1). Inside an orbit only non-decreasing assignments are
  /// enumerated; the collapsed orderings return via the multinomial
  /// multiplicity, so k identical events cost C(k+m-1, m-1) combinations
  /// instead of m^k.
  void seed_initial() {
    for (const auto& comp : components_) {
      result_.events.push_back(comp.event);
    }
    result_.stride = components_.size();
    product_state partial(components_.size(), 0);
    std::size_t combos = 0;
    const std::function<void(std::size_t, double)> expand =
        [&](std::size_t i, double p) {
          if (i == components_.size()) {
            if (++combos > options_.max_initial_support) {
              throw numeric_error("product: initial support limit exceeded");
            }
            const double multiplicity = orbit_multiplicity(partial);
            next_.assign(partial.begin(), partial.end());
            settle(next_);
            canonicalize(next_);
            const state_index idx = intern(next_);
            result_.chain.set_initial(
                idx, result_.chain.initial(idx) + p * multiplicity);
            return;
          }
          const ctmc& chain = *components_[i].chain;
          state_index first = 0;
          if (comp_orbit_[i] != no_orbit && comp_orbit_pos_[i] > 0) {
            const auto& members = orbits_[comp_orbit_[i]];
            first = partial[members[comp_orbit_pos_[i] - 1]];
          }
          for (state_index l = first; l < chain.num_states(); ++l) {
            const double pl = chain.initial(l);
            if (pl == 0.0) continue;
            partial[i] = static_cast<local_state>(l);
            expand(i + 1, p * pl);
          }
        };
    expand(0, 1.0);
  }

  const sd_fault_tree& tree_;
  const product_options options_;
  const bool attribute_ = false;
  std::vector<state_index> sinks_;
  std::vector<component> components_;
  std::vector<ctmc> static_chains_;

  bool has_triggers_ = false;
  std::optional<subtree_evaluator> trigger_eval_;
  std::optional<subtree_evaluator> top_eval_;
  std::vector<char> failed_basic_;
  std::vector<char> node_failed_;

  std::vector<std::vector<std::size_t>> orbits_;  ///< member positions
  std::vector<std::size_t> comp_orbit_;      ///< component -> orbit/no_orbit
  std::vector<std::size_t> comp_orbit_pos_;  ///< index within the orbit
  std::vector<local_state> orbit_vals_;      ///< canonicalize scratch

  std::vector<unsigned> bits_;  ///< packed-key bit width per component
  bool packed_ = false;
  std::unordered_map<std::uint64_t, state_index, packed_key_hash>
      packed_index_;
  std::unordered_map<product_state, state_index, product_state_hash>
      vector_index_;

  product_state current_;  ///< BFS scratch (arena grows during expansion)
  product_state next_;     ///< transition-target scratch

  product_ctmc result_;
};

}  // namespace

product_ctmc build_product_ctmc(const sd_fault_tree& tree,
                                const product_options& options) {
  obs::span_scope span("product.build", "product");
  tree.validate();
  product_ctmc out = builder(tree, options).build();
  span.arg("states", static_cast<double>(out.num_states()));
  span.arg("lumped_orbits", static_cast<double>(out.lumped_orbits));
  span.arg("packed", out.packed_keys ? 1.0 : 0.0);
  return out;
}

double exact_failure_probability(const sd_fault_tree& tree, double t,
                                 double epsilon,
                                 const product_options& options) {
  const product_ctmc product = build_product_ctmc(tree, options);
  return reach_failed_probability(product.chain, t, epsilon);
}

attribution_result failure_attribution(const sd_fault_tree& tree, double t,
                                       double epsilon,
                                       const product_options& options) {
  tree.validate();
  builder b(tree, options, /*attribute=*/true);
  const product_ctmc product = b.build();

  // Every failed state (sinks and initially-failed states) is absorbing
  // by construction, so the plain transient distribution carries exactly
  // the first-failure mass.
  const auto dist = transient_distribution(product.chain, t, epsilon);
  attribution_result out;
  for (std::size_t i = 0; i < product.events.size(); ++i) {
    const double mass = dist[b.sink(i)];
    if (mass > 0.0) out.by_event[product.events[i]] = mass;
    out.total += mass;
  }
  for (state_index s = 0; s < product.num_states(); ++s) {
    if (!product.is_sink(s) && product.chain.failed(s)) {
      out.initially_failed += dist[s];
    }
  }
  out.total += out.initially_failed;
  return out;
}

}  // namespace sdft
