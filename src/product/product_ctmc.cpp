#include "product/product_ctmc.hpp"

#include <functional>
#include <unordered_map>
#include <utility>
#include <variant>

#include "ctmc/transient.hpp"
#include "ft/evaluator.hpp"
#include "util/error.hpp"

namespace sdft {

namespace {

using local_state = std::uint16_t;
using product_state = std::vector<local_state>;

struct product_state_hash {
  std::size_t operator()(const product_state& s) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (local_state v : s) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// Per-component view used during exploration. Static events own a local
/// two-state chain; dynamic events reference their model inside the tree.
struct component {
  node_index event;
  const ctmc* chain;
  // Trigger data; trigger_gate == npos for untriggered components.
  node_index trigger_gate = fault_tree::npos;
  const std::vector<char>* on_state = nullptr;
  const std::vector<state_index>* to_on = nullptr;
  const std::vector<state_index>* to_off = nullptr;
};

class builder {
 public:
  /// With `attribute` set, failed states reached by a transition are
  /// replaced by one absorbing sink per causing component (and failed
  /// states are never expanded), enabling first-failure attribution.
  builder(const sd_fault_tree& tree, const product_options& options,
          bool attribute = false)
      : tree_(tree), options_(options), attribute_(attribute),
        eval_(tree.structure()) {
    const fault_tree& ft = tree_.structure();
    for (node_index b : ft.basic_events()) {
      component comp;
      comp.event = b;
      if (tree_.is_dynamic(b)) {
        const dynamic_model& model = tree_.model_of(b);
        if (const auto* trig = std::get_if<triggered_ctmc>(&model)) {
          comp.chain = &trig->chain;
          comp.trigger_gate = tree_.trigger_gate_of(b);
          comp.on_state = &trig->on_state;
          comp.to_on = &trig->to_on;
          comp.to_off = &trig->to_off;
        } else {
          comp.chain = &std::get<ctmc>(model);
        }
      } else {
        static_chains_.push_back(make_static_event(ft.node(b).probability));
      }
      components_.push_back(comp);
    }
    // Vector growth above invalidates pointers; bind static chains now.
    std::size_t next_static = 0;
    for (auto& comp : components_) {
      if (!tree_.is_dynamic(comp.event)) {
        comp.chain = &static_chains_[next_static++];
      }
      require_model(comp.chain->num_states() <= 0xffff,
                    "product: component chain exceeds 65535 states");
    }
    failed_basic_.assign(ft.size(), 0);
  }

  product_ctmc build() {
    seed_initial();
    if (attribute_) {
      // One absorbing failed sink per component; regular product states
      // keep their failed flag off so only sinks (and initially failed
      // states) carry failure mass.
      sinks_.resize(components_.size());
      for (std::size_t i = 0; i < components_.size(); ++i) {
        sinks_[i] = result_.chain.add_state();
        result_.chain.set_failed(sinks_[i]);
        result_.states.emplace_back();  // keep states_ aligned with chain
      }
    }
    // BFS over consistent states; result_.chain rows grow as states intern.
    for (std::size_t s = 0; s < result_.states.size(); ++s) {
      if (attribute_ && (result_.states[s].empty() ||
                         result_.chain.failed(static_cast<state_index>(s)))) {
        continue;  // sinks and initially-failed states are absorbing
      }
      const product_state current = result_.states[s];  // copy: vector grows
      if (current.empty()) continue;  // a sink slot
      for (std::size_t i = 0; i < components_.size(); ++i) {
        for (const auto& [target, rate] :
             components_[i].chain->transitions_from(current[i])) {
          product_state next = current;
          next[i] = static_cast<local_state>(target);
          settle(next);
          if (attribute_ && is_failed(next)) {
            result_.chain.add_rate(static_cast<state_index>(s), sinks_[i],
                                   rate);
            continue;
          }
          const state_index to = intern(next);
          if (to != s) {
            result_.chain.add_rate(static_cast<state_index>(s), to, rate);
          }
        }
      }
    }
    return std::move(result_);
  }

  /// Sink state of component position i (attribution mode only).
  state_index sink(std::size_t i) const { return sinks_[i]; }

 private:
  /// Applies trigger updates until the state is consistent (paper §III-C1b).
  /// Acyclic triggering bounds the number of sweeps by the trigger depth.
  void settle(product_state& s) {
    const std::size_t limit = components_.size() + 2;
    for (std::size_t round = 0; round <= limit; ++round) {
      for (std::size_t i = 0; i < components_.size(); ++i) {
        failed_basic_[components_[i].event] =
            components_[i].chain->failed(s[i]) ? 1 : 0;
      }
      eval_.evaluate(failed_basic_, node_failed_);
      bool changed = false;
      for (std::size_t i = 0; i < components_.size(); ++i) {
        const component& comp = components_[i];
        if (comp.trigger_gate == fault_tree::npos) continue;
        const bool demanded = node_failed_[comp.trigger_gate] != 0;
        const bool on = (*comp.on_state)[s[i]] != 0;
        if (demanded && !on) {
          s[i] = static_cast<local_state>((*comp.to_on)[s[i]]);
          changed = true;
        } else if (!demanded && on) {
          s[i] = static_cast<local_state>((*comp.to_off)[s[i]]);
          changed = true;
        }
      }
      if (!changed) return;
    }
    throw model_error("product: trigger updates did not stabilise");
  }

  /// Whether a (consistent) product state fails the top gate.
  bool is_failed(const product_state& s) {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      failed_basic_[components_[i].event] =
          components_[i].chain->failed(s[i]) ? 1 : 0;
    }
    eval_.evaluate(failed_basic_, node_failed_);
    return node_failed_[tree_.structure().top()] != 0;
  }

  /// Index of a consistent state, interning it (and its failure flag) on
  /// first sight.
  state_index intern(const product_state& s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    if (result_.states.size() >= options_.max_states) {
      throw numeric_error("product: state-space limit exceeded");
    }
    const auto idx = static_cast<state_index>(result_.states.size());
    index_.emplace(s, idx);
    result_.states.push_back(s);
    result_.chain.add_state();
    result_.chain.set_failed(idx, is_failed(s));
    return idx;
  }

  /// Enumerates the product of the per-component initial supports,
  /// normalising each combination to its consistent state (paper §III-C1).
  void seed_initial() {
    for (const auto& comp : components_) {
      result_.events.push_back(comp.event);
    }
    std::unordered_map<product_state, double, product_state_hash> initial;
    product_state partial(components_.size(), 0);
    std::size_t combos = 0;
    const std::function<void(std::size_t, double)> expand =
        [&](std::size_t i, double p) {
          if (i == components_.size()) {
            if (++combos > options_.max_initial_support) {
              throw numeric_error("product: initial support limit exceeded");
            }
            product_state s = partial;
            settle(s);
            initial[s] += p;
            return;
          }
          const ctmc& chain = *components_[i].chain;
          for (state_index l = 0; l < chain.num_states(); ++l) {
            const double pl = chain.initial(l);
            if (pl == 0.0) continue;
            partial[i] = static_cast<local_state>(l);
            expand(i + 1, p * pl);
          }
        };
    expand(0, 1.0);
    for (const auto& [s, p] : initial) {
      result_.chain.set_initial(intern(s), p);
    }
  }

  const sd_fault_tree& tree_;
  const product_options options_;
  const bool attribute_ = false;
  std::vector<state_index> sinks_;
  ft_evaluator eval_;
  std::vector<component> components_;
  std::vector<ctmc> static_chains_;
  std::vector<char> failed_basic_;
  std::vector<char> node_failed_;
  std::unordered_map<product_state, state_index, product_state_hash> index_;
  product_ctmc result_;
};

}  // namespace

product_ctmc build_product_ctmc(const sd_fault_tree& tree,
                                const product_options& options) {
  tree.validate();
  return builder(tree, options).build();
}

double exact_failure_probability(const sd_fault_tree& tree, double t,
                                 double epsilon,
                                 const product_options& options) {
  const product_ctmc product = build_product_ctmc(tree, options);
  return reach_failed_probability(product.chain, t, epsilon);
}

attribution_result failure_attribution(const sd_fault_tree& tree, double t,
                                       double epsilon,
                                       const product_options& options) {
  tree.validate();
  builder b(tree, options, /*attribute=*/true);
  const product_ctmc product = b.build();

  // Every failed state (sinks and initially-failed states) is absorbing
  // by construction, so the plain transient distribution carries exactly
  // the first-failure mass.
  const auto dist = transient_distribution(product.chain, t, epsilon);
  attribution_result out;
  for (std::size_t i = 0; i < product.events.size(); ++i) {
    const double mass = dist[b.sink(i)];
    if (mass > 0.0) out.by_event[product.events[i]] = mass;
    out.total += mass;
  }
  for (state_index s = 0; s < product.num_states(); ++s) {
    if (!product.states[s].empty() && product.chain.failed(s)) {
      out.initially_failed += dist[s];
    }
  }
  out.total += out.initially_failed;
  return out;
}

}  // namespace sdft
