#pragma once

#include <cstdint>
#include <vector>

#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Options of the Monte-Carlo simulator.
struct simulation_options {
  std::size_t runs = 100'000;
  std::uint64_t seed = 1;

  /// Global stream offset: run i draws from the counter-based substream
  /// keyed by (seed, first_trajectory + i), never from a shared sequential
  /// stream. Campaigns [0, n) and [n, n + m) therefore concatenate to
  /// exactly the campaign [0, n + m), and per-run results are independent
  /// of how many runs came before.
  std::size_t first_trajectory = 0;

  /// Bound on trigger-update sweeps per instantaneous step (acyclic
  /// triggering settles within the trigger depth; exceeding this indicates
  /// a broken model and throws).
  std::size_t max_update_sweeps = 64;
};

/// Result of a simulation campaign: a binomial estimate of the failure
/// probability with its standard error and a 95% confidence interval.
struct simulation_result {
  double estimate = 0;
  double std_error = 0;
  double ci_low = 0;
  double ci_high = 0;
  std::size_t runs = 0;
  std::size_t failures = 0;

  /// True iff `p` lies within the 95% confidence interval.
  bool consistent_with(double p) const { return p >= ci_low && p <= ci_high; }
};

/// Estimates Pr[Reach<=t(F)] of the SD fault tree semantics (paper §III-C)
/// by discrete-event simulation: each run samples every basic event's
/// trajectory (static events fail at time 0 or never; dynamic chains jump
/// with exponential holding times; trigger switches are applied
/// instantaneously whenever gate states change) and reports whether the
/// top gate ever failed before the horizon.
///
/// Unlike the exact product chain this never builds a global state space,
/// so it validates the analysis pipeline on models far beyond product-CTMC
/// reach (e.g. the fully dynamic BWR study).
simulation_result simulate_failure_probability(
    const sd_fault_tree& tree, double horizon,
    const simulation_options& options = {});

}  // namespace sdft
