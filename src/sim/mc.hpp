#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sdft/sd_fault_tree.hpp"
#include "util/thread_pool.hpp"

namespace sdft::sim {

/// Monte-Carlo estimator family (DESIGN.md §15).
enum class mc_method : std::uint8_t {
  crude,     ///< plain sampling under the nominal law
  forcing,   ///< importance sampling: rare static events biased up,
             ///< unbiasedness restored by likelihood-ratio weights
  splitting  ///< fixed-effort RESTART over the importance function
};

std::string to_string(mc_method method);

/// Parses "crude" / "forcing" / "splitting"; returns false on anything else.
bool parse_mc_method(std::string_view text, mc_method& out);

/// Options of a Monte-Carlo estimation campaign.
struct mc_options {
  mc_method method = mc_method::forcing;

  /// Total trajectory budget. Splitting divides it across
  /// replications x levels stages (effort per stage), so campaigns with
  /// equal `trajectories` are comparable across methods.
  std::size_t trajectories = 100'000;

  std::uint64_t seed = 1;

  /// Trajectories per pool task (crude/forcing). Purely a scheduling
  /// knob: results are bit-identical for any batch size and thread count
  /// because streams are keyed by global trajectory index and batch
  /// partials are reduced in index order.
  std::size_t batch = 4096;

  /// Splitting levels; 0 derives them from the importance-function depth
  /// (the engine passes the prep workgraph depth-to-top here).
  std::size_t levels = 0;

  /// Splitting replications: independent RESTART runs whose means form
  /// the confidence interval.
  std::size_t replications = 32;

  /// Forcing: target expected number of forced static failures per
  /// trajectory. Biased probability q_e = clamp(p_e * mass / sum_p, p_e,
  /// max(max_bias, p_e)); on non-rare models the clamp at p_e makes
  /// forcing degrade to crude exactly. Keep the target moderate: with many
  /// biased events an aggressive boost makes the likelihood-ratio weights
  /// heavy-tailed, and the sample variance (hence the CI) no longer sees
  /// the unsampled tail mass.
  double forcing_mass = 2.0;

  /// Forcing: upper clamp on biased static probabilities. Also the
  /// rareness threshold — events with p_e >= max_bias are never biased.
  /// The low default bounds the per-event weight factor (1-p)/(1-q) and
  /// keeps the weight distribution well-conditioned on wide models.
  double max_bias = 0.1;

  /// Global stream offset: trajectory i draws from substream(seed,
  /// first_trajectory + i). Campaigns [0, n) and [n, n + m) concatenate
  /// to exactly the campaign [0, n + m) — the stream-additivity contract.
  std::size_t first_trajectory = 0;

  /// Bound on trigger-update sweeps per instantaneous step.
  std::size_t max_update_sweeps = 64;
};

/// Result of a Monte-Carlo campaign: a point estimate with a normal 95%
/// confidence interval from the weighted-sample variance (crude/forcing)
/// or the replication means (splitting).
struct mc_result {
  double estimate = 0;
  double std_error = 0;
  double ci_low = 0;
  double ci_high = 0;
  double ci_half_width = 0;
  /// ci_half_width / estimate; 0 when the estimate is 0 (empty campaign).
  double relative_error = 0;

  /// Trajectories actually consumed (splitting rounds the budget down to
  /// replications x levels x effort).
  std::size_t trajectories = 0;
  /// Raw hit count: failed trajectories (crude/forcing) or final-level
  /// crossings summed over replications (splitting).
  std::size_t failures = 0;
  std::size_t levels_used = 0;
  std::size_t replications = 0;
  mc_method method = mc_method::crude;

  /// True iff no trajectory ever hit the failure set — the "empty CI"
  /// signature of crude MC on a rare event.
  bool empty() const { return failures == 0; }

  /// True iff `p` lies within the 95% confidence interval.
  bool consistent_with(double p) const { return p >= ci_low && p <= ci_high; }
};

/// Runs a Monte-Carlo estimation campaign for Pr[Reach<=horizon(F)] of the
/// SD fault tree. Batches are fanned out over `pool` when given (falling
/// back to the calling thread otherwise); results are bit-identical for
/// any pool size because every random draw comes from a counter-based
/// substream keyed by (seed, trajectory) or (seed, replication, stage,
/// slot) and reductions run in fixed index order.
mc_result estimate_failure_probability_mc(const sd_fault_tree& tree,
                                          double horizon,
                                          const mc_options& options,
                                          thread_pool* pool = nullptr);

}  // namespace sdft::sim
