#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "sim/stream_rng.hpp"
#include "sim/trajectory.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sdft {

simulation_result simulate_failure_probability(
    const sd_fault_tree& tree, double horizon,
    const simulation_options& options) {
  require_model(options.runs > 0, "simulator: need at least one run");
  tree.validate();
  sim::trajectory_model model(tree, options.max_update_sweeps);

  // Each run draws from its own counter-based substream keyed by the
  // global trajectory index. Earlier revisions shared one sequential rng
  // across all runs, which made run i depend on every draw before it —
  // batches could neither be reproduced in isolation nor concatenated.
  std::size_t failures = 0;
  sim::trajectory_state state;
  for (std::size_t i = 0; i < options.runs; ++i) {
    rng random =
        sim::substream(options.seed, options.first_trajectory + i);
    bool failed = model.init(state, random);
    if (!failed) {
      failed = model.advance(state, horizon, random) ==
               sim::advance_outcome::failed;
    }
    if (failed) ++failures;
  }

  simulation_result out;
  out.runs = options.runs;
  out.failures = failures;
  const double n = static_cast<double>(options.runs);
  const double p = static_cast<double>(failures) / n;
  out.estimate = p;
  out.std_error = std::sqrt(p * (1.0 - p) / n);
  // Wilson score interval: robust also for very small counts.
  const double z = 1.959963984540054;
  const double z2 = z * z;
  const double centre = (p + z2 / (2 * n)) / (1 + z2 / n);
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / (1 + z2 / n);
  out.ci_low = std::max(0.0, centre - half);
  out.ci_high = std::min(1.0, centre + half);
  return out;
}

}  // namespace sdft
