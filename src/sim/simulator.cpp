#include "sim/simulator.hpp"

#include <cmath>
#include <variant>

#include "ft/evaluator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sdft {

namespace {

/// Per-component view of one run: the chain, the current local state, and
/// the trigger wiring.
struct component {
  const ctmc* chain = nullptr;
  node_index event = 0;
  state_index local = 0;
  // Trigger data (null for untriggered components).
  node_index trigger_gate = fault_tree::npos;
  const std::vector<char>* on_state = nullptr;
  const std::vector<state_index>* to_on = nullptr;
  const std::vector<state_index>* to_off = nullptr;
};

class simulator {
 public:
  simulator(const sd_fault_tree& tree, const simulation_options& options)
      : tree_(tree), options_(options), eval_(tree.structure()) {
    const fault_tree& ft = tree_.structure();
    for (node_index b : ft.basic_events()) {
      component comp;
      comp.event = b;
      if (tree_.is_dynamic(b)) {
        const dynamic_model& model = tree_.model_of(b);
        if (const auto* trig = std::get_if<triggered_ctmc>(&model)) {
          comp.chain = &trig->chain;
          comp.trigger_gate = tree_.trigger_gate_of(b);
          comp.on_state = &trig->on_state;
          comp.to_on = &trig->to_on;
          comp.to_off = &trig->to_off;
        } else {
          comp.chain = &std::get<ctmc>(model);
        }
      }
      components_.push_back(comp);
    }
    failed_basic_.assign(ft.size(), 0);
  }

  /// One run; returns true iff the top gate fails before `horizon`.
  bool run(double horizon, rng& random) {
    // Initial states: statics fail at time 0 with their probability,
    // chains sample their initial distribution.
    for (auto& comp : components_) {
      if (comp.chain == nullptr) {
        const double p = tree_.structure().node(comp.event).probability;
        failed_basic_[comp.event] = random.chance(p) ? 1 : 0;
        continue;
      }
      double u = random.uniform();
      comp.local = 0;
      for (state_index s = 0; s < comp.chain->num_states(); ++s) {
        u -= comp.chain->initial(s);
        if (u <= 0.0) {
          comp.local = s;
          break;
        }
      }
    }
    if (settle_and_check()) return true;

    double now = 0.0;
    for (;;) {
      // Sample the next jump over all active components (memorylessness
      // lets us resample after every state change).
      double best_time = horizon;
      component* jumper = nullptr;
      for (auto& comp : components_) {
        if (comp.chain == nullptr) continue;
        const double exit = comp.chain->exit_rate(comp.local);
        if (exit <= 0.0) continue;
        const double dt = -std::log(1.0 - random.uniform()) / exit;
        if (now + dt < best_time) {
          best_time = now + dt;
          jumper = &comp;
        }
      }
      if (jumper == nullptr || best_time >= horizon) return false;
      now = best_time;

      // Choose the target proportionally to the transition rates.
      const auto& transitions = jumper->chain->transitions_from(jumper->local);
      double u = random.uniform() * jumper->chain->exit_rate(jumper->local);
      state_index target = transitions.back().first;
      for (const auto& [to, rate] : transitions) {
        u -= rate;
        if (u <= 0.0) {
          target = to;
          break;
        }
      }
      jumper->local = target;
      if (settle_and_check()) return true;
    }
  }

 private:
  /// Applies trigger updates until stable; returns whether the top gate is
  /// failed in the settled state.
  bool settle_and_check() {
    for (std::size_t sweep = 0; sweep <= options_.max_update_sweeps;
         ++sweep) {
      for (const auto& comp : components_) {
        if (comp.chain != nullptr) {
          failed_basic_[comp.event] = comp.chain->failed(comp.local) ? 1 : 0;
        }
      }
      eval_.evaluate(failed_basic_, node_failed_);
      bool changed = false;
      for (auto& comp : components_) {
        if (comp.trigger_gate == fault_tree::npos) continue;
        const bool demanded = node_failed_[comp.trigger_gate] != 0;
        const bool on = (*comp.on_state)[comp.local] != 0;
        if (demanded && !on) {
          comp.local = (*comp.to_on)[comp.local];
          changed = true;
        } else if (!demanded && on) {
          comp.local = (*comp.to_off)[comp.local];
          changed = true;
        }
      }
      if (!changed) return node_failed_[tree_.structure().top()] != 0;
    }
    throw model_error("simulator: trigger updates did not stabilise");
  }

  const sd_fault_tree& tree_;
  const simulation_options options_;
  ft_evaluator eval_;
  std::vector<component> components_;
  std::vector<char> failed_basic_;
  std::vector<char> node_failed_;
};

}  // namespace

simulation_result simulate_failure_probability(
    const sd_fault_tree& tree, double horizon,
    const simulation_options& options) {
  require_model(options.runs > 0, "simulator: need at least one run");
  tree.validate();
  simulator sim(tree, options);
  rng random(options.seed);

  std::size_t failures = 0;
  for (std::size_t i = 0; i < options.runs; ++i) {
    if (sim.run(horizon, random)) ++failures;
  }

  simulation_result out;
  out.runs = options.runs;
  out.failures = failures;
  const double n = static_cast<double>(options.runs);
  const double p = static_cast<double>(failures) / n;
  out.estimate = p;
  out.std_error = std::sqrt(p * (1.0 - p) / n);
  // Wilson score interval: robust also for very small counts.
  const double z = 1.959963984540054;
  const double z2 = z * z;
  const double centre = (p + z2 / (2 * n)) / (1 + z2 / n);
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / (1 + z2 / n);
  out.ci_low = std::max(0.0, centre - half);
  out.ci_high = std::min(1.0, centre + half);
  return out;
}

}  // namespace sdft
