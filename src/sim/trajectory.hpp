#pragma once

#include <cstddef>
#include <vector>

#include "sdft/sd_fault_tree.hpp"
#include "util/rng.hpp"

namespace sdft::sim {

/// The mutable part of one simulated trajectory. The immutable model data
/// (chains, trigger wiring, evaluator order) lives in trajectory_model, so
/// one model instance can drive many concurrent trajectories — each worker
/// owns its own state and rng.
struct trajectory_state {
  double now = 0.0;
  /// Likelihood-ratio weight: 1 under the nominal law, Π p/q over biased
  /// draws under failure forcing (sim/mc.hpp).
  double weight = 1.0;
  /// Chain-local state per dynamic component (trajectory_model component
  /// order); statics have no entry semantics here and stay 0.
  std::vector<state_index> locals;
  /// Per-node failure flags, indexed by node_index over the whole tree.
  std::vector<char> failed_basic;
  /// Scratch: per-node evaluation output of the last settle sweep.
  std::vector<char> node_failed;
};

/// Why advance() returned.
enum class advance_outcome {
  failed,    ///< top gate failed before the horizon
  survived,  ///< horizon reached with the top gate intact
  crossed,   ///< importance reached the requested threshold (top intact)
};

/// Shared, immutable trajectory engine over one SD fault tree: samples
/// initial states (optionally under a biased static-event law, tracking
/// likelihood weights), advances the CTMC race with instantaneous trigger
/// settling, and evaluates the importance function used by splitting.
///
/// This is the core the plain simulator (sim/simulator.hpp) and all MC
/// estimators (sim/mc.hpp) are built on. Thread-safe for concurrent use:
/// all mutable data lives in trajectory_state.
class trajectory_model {
 public:
  explicit trajectory_model(const sd_fault_tree& tree,
                            std::size_t max_update_sweeps = 64);

  /// Samples the time-0 state into `s` (resizing its buffers): statics
  /// fail with their probability, chains draw their initial distribution,
  /// and triggers are settled. With `bias`, static event e fails with
  /// bias[e] instead of p_e and s.weight accumulates the likelihood ratio
  /// (bias is indexed by node_index; entries for non-static nodes are
  /// ignored). Returns true iff the top gate is failed at time 0.
  bool init(trajectory_state& s, rng& random,
            const std::vector<double>* bias = nullptr) const;

  /// Advances the trajectory from s.now until the top gate fails, the
  /// horizon is reached, or — when phi_threshold <= 1 — the importance
  /// function reaches phi_threshold. The state is left at the stopping
  /// point, so a `crossed` state can be snapshotted and re-advanced
  /// (fixed-effort splitting does exactly that).
  ///
  /// Note: init() already settles time 0; callers must check its return
  /// (or importance()) before the first advance.
  advance_outcome advance(trajectory_state& s, double horizon, rng& random,
                          double phi_threshold = 2.0) const;

  /// Importance function over the settled state, in [0, 1] with
  /// phi == 1 iff the top gate is failed: basic = failed ? 1 : 0,
  /// OR = max(children), AND = mean(children), atleast(k) = mean of the
  /// k largest children. Monotone in the failed set, so crossings are
  /// well-defined level entries.
  double importance(const trajectory_state& s) const;

  /// Longest leaf-to-top path length (edges) in the structure — the
  /// natural scale for the number of splitting levels.
  std::size_t depth() const;

  /// True iff the tree has at least one dynamic event (otherwise all
  /// randomness is at time 0 and advance() returns immediately).
  bool has_dynamics() const { return has_dynamics_; }

  const sd_fault_tree& tree() const { return tree_; }

 private:
  /// Per-component view: the chain and the trigger wiring (null chain for
  /// static events).
  struct component {
    const ctmc* chain = nullptr;
    node_index event = 0;
    node_index trigger_gate = fault_tree::npos;
    const std::vector<char>* on_state = nullptr;
    const std::vector<state_index>* to_on = nullptr;
    const std::vector<state_index>* to_off = nullptr;
  };

  /// Applies trigger updates until stable; returns whether the top gate is
  /// failed in the settled state.
  bool settle(trajectory_state& s) const;

  const sd_fault_tree& tree_;
  std::size_t max_update_sweeps_;
  std::vector<component> components_;
  std::vector<node_index> topo_;  // cached topological order
  bool has_dynamics_ = false;
};

}  // namespace sdft::sim
