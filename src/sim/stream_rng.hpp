#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace sdft::sim {

/// SplitMix64 finalizer: a strong 64-bit mixing step (Steele, Lea &
/// Flood). Used to fold stream coordinates into independent seeds.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Counter-based stream derivation: an independent xoshiro256** generator
/// keyed by (seed, a, b, c). The coordinates are folded through chained
/// SplitMix64 steps (the same construction Philox uses its rounds for:
/// a keyed bijection over the counter), so
///
///  - distinct tuples give streams with no overlap in practice (a 64-bit
///    keyed permutation: collisions are birthday-bounded, ~1e-6 even for
///    1e7 trajectories), and
///  - a stream depends only on its own coordinates, never on how many
///    other streams were drawn before it.
///
/// This is what makes Monte-Carlo campaigns reproducible at any thread
/// count: trajectory i draws from substream(seed, i) wherever it runs,
/// and splitting replications key their per-stage slots as
/// substream(seed, replication, stage, slot).
inline rng substream(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
                     std::uint64_t c = 0) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ mix64(a + 0x8e9c5f3d9a1b1e35ULL));
  h = mix64(h ^ mix64(b + 0x2545f4914f6cdd1dULL));
  h = mix64(h ^ mix64(c + 0x9e6c63d0876a9a47ULL));
  return rng(h);
}

}  // namespace sdft::sim
