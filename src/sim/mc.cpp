#include "sim/mc.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/stream_rng.hpp"
#include "sim/trajectory.hpp"
#include "util/error.hpp"

namespace sdft::sim {

namespace {

constexpr double kZ95 = 1.959963984540054;

/// Runs `fn(i)` for i in [0, n), on the pool when given. Results must be
/// stored by index; the caller reduces them in index order afterwards.
void for_each_index(thread_pool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->size() > 1) {
    parallel_for(*pool, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

/// Fills a normal 95% CI from a sample mean and the standard error of the
/// mean, clamped to [0, 1] (probabilities).
void fill_interval(mc_result& out, double mean, double se) {
  out.estimate = mean;
  out.std_error = se;
  out.ci_half_width = kZ95 * se;
  out.ci_low = std::max(0.0, mean - out.ci_half_width);
  out.ci_high = std::min(1.0, mean + out.ci_half_width);
  out.relative_error = mean > 0.0 ? out.ci_half_width / mean : 0.0;
}

/// Biased static-event probabilities for failure forcing. Two biasing
/// terms, both clamped to [p_e, max(max_bias, p_e)] — never biased down,
/// so the clamp makes forcing exactly crude when the model is not rare:
///   - proportional: p_e * forcing_mass / sum_p targets ~forcing_mass
///     forced failures per trajectory while preserving the events'
///     relative likelihoods (low weight variance on dominant cutsets);
///   - balanced floor: forcing_mass / n gives every rare event a uniform
///     minimum chance, so cutsets of very small probabilities stay
///     reachable (proportional boosting alone never lifts a 1e-7 event
///     into sampling range on a wide model).
/// Returns false when no event ends up biased (caller falls back to the
/// unbiased path).
bool forcing_bias(const sd_fault_tree& tree, const mc_options& options,
                  std::vector<double>& bias) {
  const fault_tree& ft = tree.structure();
  double sum_p = 0.0;
  std::size_t num_static = 0;
  for (node_index b : ft.basic_events()) {
    if (!tree.is_static(b)) continue;
    sum_p += ft.node(b).probability;
    ++num_static;
  }
  if (sum_p <= 0.0) return false;
  const double boost = options.forcing_mass / sum_p;
  const double floor =
      options.forcing_mass / static_cast<double>(num_static);
  bias.assign(ft.size(), 0.0);
  bool any = false;
  for (node_index b : ft.basic_events()) {
    if (!tree.is_static(b)) continue;
    const double p = ft.node(b).probability;
    const double q = std::min(std::max({p * boost, floor, p}),
                              std::max(options.max_bias, p));
    bias[b] = q;
    if (q != p) any = true;
  }
  return any;
}

/// Crude / forcing: one weighted Bernoulli sample per trajectory, batched
/// over the pool. Per-batch partial sums are reduced in batch order so the
/// result is independent of scheduling.
mc_result run_weighted(const trajectory_model& model, double horizon,
                       const mc_options& options,
                       const std::vector<double>* bias, thread_pool* pool) {
  const std::size_t n = options.trajectories;
  const std::size_t batch = std::max<std::size_t>(1, options.batch);
  const std::size_t num_batches = (n + batch - 1) / batch;

  struct partial {
    double sum_y = 0.0;
    double sum_y2 = 0.0;
    std::size_t failures = 0;
  };
  std::vector<partial> partials(num_batches);

  for_each_index(pool, num_batches, [&](std::size_t b) {
    const std::size_t begin = b * batch;
    const std::size_t end = std::min(n, begin + batch);
    partial acc;
    trajectory_state s;
    for (std::size_t i = begin; i < end; ++i) {
      rng random = substream(options.seed, options.first_trajectory + i);
      bool failed = model.init(s, random, bias);
      if (!failed) {
        failed = model.advance(s, horizon, random) == advance_outcome::failed;
      }
      if (failed) {
        const double y = s.weight;
        acc.sum_y += y;
        acc.sum_y2 += y * y;
        ++acc.failures;
      }
    }
    partials[b] = acc;
  });

  double sum_y = 0.0;
  double sum_y2 = 0.0;
  std::size_t failures = 0;
  for (const partial& p : partials) {
    sum_y += p.sum_y;
    sum_y2 += p.sum_y2;
    failures += p.failures;
  }

  mc_result out;
  out.method = bias != nullptr ? mc_method::forcing : options.method;
  out.trajectories = n;
  out.failures = failures;
  const double dn = static_cast<double>(n);
  const double mean = sum_y / dn;
  double var = 0.0;
  if (n > 1) {
    var = std::max(0.0, (sum_y2 - dn * mean * mean) /
                            (dn - 1.0));  // unbiased sample variance
  }
  fill_interval(out, mean, std::sqrt(var / dn));
  return out;
}

/// Fixed-effort RESTART: per replication, stage k launches `effort`
/// trials from entrance states of level k (stage 0 from the initial
/// distribution), counts crossings of level k+1, and multiplies the
/// stage fractions into Z_r = prod p_hat_k. The replication means form
/// the confidence interval. Unbiased: E[Z_r] telescopes to the target
/// probability because each trial resamples its entrance state uniformly
/// with replacement from the previous stage's crossings.
mc_result run_splitting(const trajectory_model& model, double horizon,
                        const mc_options& options, thread_pool* pool) {
  const std::size_t reps = std::max<std::size_t>(2, options.replications);
  std::size_t levels = options.levels;
  if (levels == 0) {
    levels = std::clamp<std::size_t>(model.depth(), 2, 8);
  }
  levels = std::max<std::size_t>(1, levels);
  const std::size_t effort =
      std::max<std::size_t>(1, options.trajectories / (reps * levels));

  struct rep_result {
    double z = 0.0;
    std::size_t final_hits = 0;
  };
  std::vector<rep_result> reps_out(reps);

  for_each_index(pool, reps, [&](std::size_t r) {
    struct entrance {
      trajectory_state state;
      double phi = 0.0;
    };
    std::vector<entrance> current;
    double z = 1.0;
    std::size_t final_hits = 0;

    for (std::size_t stage = 0; stage < levels; ++stage) {
      const double threshold =
          static_cast<double>(stage + 1) / static_cast<double>(levels);
      std::vector<entrance> next;
      std::size_t hits = 0;
      for (std::size_t slot = 0; slot < effort; ++slot) {
        rng random = substream(options.seed, r, stage, slot);
        trajectory_state s;
        double phi;
        if (stage == 0) {
          model.init(s, random);
          phi = model.importance(s);
        } else {
          // Uniform-with-replacement entrance resampling; the pick is the
          // slot stream's first draw, so it is scheduling-independent.
          const entrance& e =
              current[random.below(static_cast<std::uint64_t>(
                  current.size()))];
          s = e.state;
          phi = e.phi;
        }
        if (phi < threshold) {
          const advance_outcome outcome =
              model.advance(s, horizon, random, threshold);
          if (outcome == advance_outcome::survived) continue;
          phi = outcome == advance_outcome::failed ? 1.0
                                                   : model.importance(s);
        }
        ++hits;
        next.push_back(entrance{s, phi});
      }
      z *= static_cast<double>(hits) / static_cast<double>(effort);
      if (stage + 1 == levels) final_hits = hits;
      if (hits == 0) {
        z = 0.0;
        break;
      }
      current = std::move(next);
    }
    reps_out[r] = rep_result{z, final_hits};
  });

  double sum_z = 0.0;
  std::size_t failures = 0;
  for (const rep_result& rr : reps_out) {
    sum_z += rr.z;
    failures += rr.final_hits;
  }
  const double mean = sum_z / static_cast<double>(reps);
  double ss = 0.0;
  for (const rep_result& rr : reps_out) {
    ss += (rr.z - mean) * (rr.z - mean);
  }
  const double var = ss / static_cast<double>(reps - 1);

  mc_result out;
  out.method = mc_method::splitting;
  out.trajectories = reps * levels * effort;
  out.failures = failures;
  out.levels_used = levels;
  out.replications = reps;
  fill_interval(out, mean, std::sqrt(var / static_cast<double>(reps)));
  return out;
}

}  // namespace

std::string to_string(mc_method method) {
  switch (method) {
    case mc_method::crude:
      return "crude";
    case mc_method::forcing:
      return "forcing";
    case mc_method::splitting:
      return "splitting";
  }
  return "unknown";
}

bool parse_mc_method(std::string_view text, mc_method& out) {
  if (text == "crude") {
    out = mc_method::crude;
  } else if (text == "forcing") {
    out = mc_method::forcing;
  } else if (text == "splitting") {
    out = mc_method::splitting;
  } else {
    return false;
  }
  return true;
}

mc_result estimate_failure_probability_mc(const sd_fault_tree& tree,
                                          double horizon,
                                          const mc_options& options,
                                          thread_pool* pool) {
  require_model(options.trajectories > 0,
                "mc: need at least one trajectory");
  tree.validate();
  trajectory_model model(tree, options.max_update_sweeps);

  if (options.method == mc_method::splitting) {
    return run_splitting(model, horizon, options, pool);
  }
  std::vector<double> bias;
  const bool biased = options.method == mc_method::forcing &&
                      forcing_bias(tree, options, bias);
  mc_result out = run_weighted(model, horizon, options,
                               biased ? &bias : nullptr, pool);
  out.method = options.method;
  return out;
}

}  // namespace sdft::sim
