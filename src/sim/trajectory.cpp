#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <variant>

#include "util/error.hpp"

namespace sdft::sim {

trajectory_model::trajectory_model(const sd_fault_tree& tree,
                                   std::size_t max_update_sweeps)
    : tree_(tree),
      max_update_sweeps_(max_update_sweeps),
      topo_(tree.structure().topo_order()) {
  const fault_tree& ft = tree_.structure();
  for (node_index b : ft.basic_events()) {
    component comp;
    comp.event = b;
    if (tree_.is_dynamic(b)) {
      const dynamic_model& model = tree_.model_of(b);
      if (const auto* trig = std::get_if<triggered_ctmc>(&model)) {
        comp.chain = &trig->chain;
        comp.trigger_gate = tree_.trigger_gate_of(b);
        comp.on_state = &trig->on_state;
        comp.to_on = &trig->to_on;
        comp.to_off = &trig->to_off;
      } else {
        comp.chain = &std::get<ctmc>(model);
      }
      has_dynamics_ = true;
    }
    components_.push_back(comp);
  }
}

bool trajectory_model::init(trajectory_state& s, rng& random,
                            const std::vector<double>* bias) const {
  const fault_tree& ft = tree_.structure();
  s.now = 0.0;
  s.weight = 1.0;
  s.locals.assign(components_.size(), 0);
  s.failed_basic.assign(ft.size(), 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const component& comp = components_[i];
    if (comp.chain == nullptr) {
      const double p = ft.node(comp.event).probability;
      const double q = bias != nullptr ? (*bias)[comp.event] : p;
      const bool fail = random.uniform() < q;
      s.failed_basic[comp.event] = fail ? 1 : 0;
      if (q != p) s.weight *= fail ? p / q : (1.0 - p) / (1.0 - q);
      continue;
    }
    double u = random.uniform();
    s.locals[i] = 0;
    for (state_index st = 0; st < comp.chain->num_states(); ++st) {
      u -= comp.chain->initial(st);
      if (u <= 0.0) {
        s.locals[i] = st;
        break;
      }
    }
  }
  return settle(s);
}

advance_outcome trajectory_model::advance(trajectory_state& s, double horizon,
                                          rng& random,
                                          double phi_threshold) const {
  const bool watch_phi = phi_threshold <= 1.0;
  for (;;) {
    // Sample the next jump over all active components (memorylessness lets
    // us resample after every state change).
    double best_time = horizon;
    std::size_t jumper = components_.size();
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const component& comp = components_[i];
      if (comp.chain == nullptr) continue;
      const double exit = comp.chain->exit_rate(s.locals[i]);
      if (exit <= 0.0) continue;
      const double dt = -std::log(1.0 - random.uniform()) / exit;
      if (s.now + dt < best_time) {
        best_time = s.now + dt;
        jumper = i;
      }
    }
    if (jumper == components_.size() || best_time >= horizon) {
      s.now = horizon;
      return advance_outcome::survived;
    }
    s.now = best_time;

    // Choose the target proportionally to the transition rates.
    const component& comp = components_[jumper];
    const auto& transitions = comp.chain->transitions_from(s.locals[jumper]);
    double u = random.uniform() * comp.chain->exit_rate(s.locals[jumper]);
    state_index target = transitions.back().first;
    for (const auto& [to, rate] : transitions) {
      u -= rate;
      if (u <= 0.0) {
        target = to;
        break;
      }
    }
    s.locals[jumper] = target;
    if (settle(s)) return advance_outcome::failed;
    if (watch_phi && importance(s) >= phi_threshold) {
      return advance_outcome::crossed;
    }
  }
}

double trajectory_model::importance(const trajectory_state& s) const {
  const fault_tree& ft = tree_.structure();
  std::vector<double> phi(ft.size(), 0.0);
  std::vector<double> scratch;
  for (node_index n : topo_) {
    const ft_node& node = ft.node(n);
    if (node.kind == node_kind::basic) {
      phi[n] = s.failed_basic[n] != 0 ? 1.0 : 0.0;
    } else if (node.inputs.empty()) {
      // Constant gates: empty AND is TRUE, empty OR is FALSE.
      phi[n] = node.type == gate_type::and_gate ? 1.0 : 0.0;
    } else if (node.type == gate_type::or_gate) {
      double best = 0.0;
      for (node_index child : node.inputs) best = std::max(best, phi[child]);
      phi[n] = best;
    } else if (node.type == gate_type::and_gate) {
      double sum = 0.0;
      for (node_index child : node.inputs) sum += phi[child];
      phi[n] = sum / static_cast<double>(node.inputs.size());
    } else {
      // atleast(k): mean of the k largest children — 1 exactly when k
      // children are failed, monotone below that.
      scratch.clear();
      for (node_index child : node.inputs) scratch.push_back(phi[child]);
      const std::size_t k = node.k;
      std::partial_sort(scratch.begin(), scratch.begin() + k, scratch.end(),
                        std::greater<double>());
      double sum = 0.0;
      for (std::size_t i = 0; i < k; ++i) sum += scratch[i];
      phi[n] = sum / static_cast<double>(k);
    }
  }
  return phi[ft.top()];
}

std::size_t trajectory_model::depth() const {
  const fault_tree& ft = tree_.structure();
  std::vector<std::size_t> depth(ft.size(), 0);
  for (node_index n : topo_) {
    const ft_node& node = ft.node(n);
    if (node.kind != node_kind::gate) continue;
    std::size_t best = 0;
    for (node_index child : node.inputs) {
      best = std::max(best, depth[child] + 1);
    }
    depth[n] = best;
  }
  return depth[ft.top()];
}

bool trajectory_model::settle(trajectory_state& s) const {
  const fault_tree& ft = tree_.structure();
  for (std::size_t sweep = 0; sweep <= max_update_sweeps_; ++sweep) {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const component& comp = components_[i];
      if (comp.chain != nullptr) {
        s.failed_basic[comp.event] =
            comp.chain->failed(s.locals[i]) ? 1 : 0;
      }
    }
    s.node_failed.assign(ft.size(), 0);
    for (node_index n : topo_) {
      const ft_node& node = ft.node(n);
      if (node.kind == node_kind::basic) {
        s.node_failed[n] = s.failed_basic[n];
      } else if (node.type == gate_type::and_gate) {
        char all = 1;
        for (node_index child : node.inputs) all &= s.node_failed[child];
        s.node_failed[n] = all;
      } else if (node.type == gate_type::atleast_gate) {
        std::uint32_t count = 0;
        for (node_index child : node.inputs) {
          count += s.node_failed[child] ? 1U : 0U;
        }
        s.node_failed[n] = count >= node.k ? 1 : 0;
      } else {
        char any = 0;
        for (node_index child : node.inputs) any |= s.node_failed[child];
        s.node_failed[n] = any;
      }
    }
    bool changed = false;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      const component& comp = components_[i];
      if (comp.trigger_gate == fault_tree::npos) continue;
      const bool demanded = s.node_failed[comp.trigger_gate] != 0;
      const bool on = (*comp.on_state)[s.locals[i]] != 0;
      if (demanded && !on) {
        s.locals[i] = (*comp.to_on)[s.locals[i]];
        changed = true;
      } else if (!demanded && on) {
        s.locals[i] = (*comp.to_off)[s.locals[i]];
        changed = true;
      }
    }
    if (!changed) return s.node_failed[ft.top()] != 0;
  }
  throw model_error("simulator: trigger updates did not stabilise");
}

}  // namespace sdft::sim
