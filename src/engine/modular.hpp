#pragma once

#include <cstddef>

#include "engine/cutset_source.hpp"
#include "prep/prep.hpp"
#include "sdft/translate.hpp"

namespace sdft {

class thread_pool;

/// Output of the module-orchestrated stage 2: the final relevant minimal
/// cutsets mapped back to original SD-tree indices (canonical order, same
/// contract stage 3 always had), plus per-module bookkeeping.
struct modular_generation {
  cutset_generation generation;

  std::size_t modules_analyzed = 0;  ///< module subproblems generated
  std::size_t module_cutsets = 0;    ///< cutsets contributed by nested modules
};

/// Runs the cutset source once per module of the prep-rewritten tree and
/// recombines the per-module lists into the exact non-modular result:
///
///  - Modules are processed nested-first (prep_result::module_roots is
///    topological). A nested module appears in its parent's subproblem as
///    a pseudo basic event whose probability is the maximum probability
///    of the module's kept cutsets — an upper bound on anything the
///    module can substitute, so the parent's cutoff pruning stays
///    conservative (a pruned partial could never have produced a kept
///    cutset).
///  - Modules have pairwise disjoint basic-event support, so substituting
///    the minimal cutsets of a module for its pseudo event (cartesian
///    product per quotient cutset) preserves minimality and introduces no
///    duplicates.
///  - A final exact cutoff filter over the fully substituted list removes
///    the conservative keeps, leaving exactly the cutsets a non-modular
///    run produces; the canonical (size, content) order in SD index space
///    then makes the sequence — and the downstream sum — bit-identical.
///
/// Independent modules of the same nesting depth fan out over `pool`
/// (each generating serially); modules too large for that run one at a
/// time with the pool handed to the source. Work assignment is purely
/// structural, so results do not depend on the thread count.
modular_generation generate_modular(const prep_result& prep,
                                    const static_translation& translation,
                                    const cutset_source& source,
                                    double cutoff, thread_pool* pool);

}  // namespace sdft
