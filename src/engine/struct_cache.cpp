#include "engine/struct_cache.hpp"

#include <cstring>

namespace sdft {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

}  // namespace

std::string structural_signature(const sd_fault_tree& tree,
                                 const prep_options& prep) {
  const fault_tree& ft = tree.structure();
  std::string out;
  out.reserve(16 * ft.size());
  // Prep configuration: a different rewrite selection yields a different
  // prep tree (and exact-static BDD), so it must not alias.
  out.push_back(static_cast<char>((prep.enabled ? 1 : 0) |
                                  (prep.fold ? 2 : 0) |
                                  (prep.coalesce ? 4 : 0) |
                                  (prep.merge_duplicates ? 8 : 0) |
                                  (prep.merge_common_args ? 16 : 0) |
                                  (prep.absorb ? 32 : 0) |
                                  (prep.modularize ? 64 : 0)));
  put_u32(out, prep.max_passes);
  put_u32(out, static_cast<std::uint32_t>(ft.size()));
  put_u32(out, ft.top());
  for (node_index n = 0; n < ft.size(); ++n) {
    const ft_node& node = ft.node(n);
    if (node.kind == node_kind::gate) {
      if (node.type == gate_type::atleast_gate) {
        out.push_back('V');
        put_u32(out, node.k);
      } else {
        out.push_back(node.type == gate_type::and_gate ? 'A' : 'O');
      }
      put_u32(out, static_cast<std::uint32_t>(node.inputs.size()));
      for (node_index input : node.inputs) put_u32(out, input);
      continue;
    }
    // Leaves: only the static/dynamic partition and the trigger wiring
    // shape FT-bar; probabilities and chain contents are envelope-handled.
    if (tree.is_dynamic(n)) {
      out.push_back('D');
      put_u32(out, tree.trigger_gate_of(n));
    } else {
      out.push_back('S');
    }
  }
  return out;
}

double structure_entry::exact_static_probability(
    bdd_ordering ordering,
    const std::unordered_map<node_index, double>& overrides,
    std::size_t* node_count, std::size_t* sift_swaps) const {
  std::lock_guard lock(bdd_mutex_);
  auto it = bdds_.find(ordering);
  std::size_t swaps = 0;
  if (it == bdds_.end()) {
    auto compiled =
        std::make_unique<ft_bdd>(*prep_tree, fault_tree::npos, ordering);
    swaps = compiled->sift_swaps();
    it = bdds_.emplace(ordering, std::move(compiled)).first;
  }
  if (node_count != nullptr) *node_count = it->second->node_count();
  if (sift_swaps != nullptr) *sift_swaps = swaps;
  return it->second->probability(overrides);
}

structure_cache::structure_cache(std::size_t capacity) : map_(capacity) {}

std::shared_ptr<const structure_entry> structure_cache::probe(
    const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto* found = map_.find(key);
  return found == nullptr ? nullptr : *found;
}

void structure_cache::store(const std::string& key,
                            std::shared_ptr<structure_entry> entry) {
  std::lock_guard lock(mutex_);
  map_.assign(key, std::move(entry));
}

std::size_t structure_cache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::size_t structure_cache::capacity() const {
  std::lock_guard lock(mutex_);
  return map_.capacity();
}

std::size_t structure_cache::evictions() const {
  std::lock_guard lock(mutex_);
  return map_.evictions();
}

void structure_cache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  map_.set_capacity(capacity);
}

void structure_cache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

bool envelope_dominates(const structure_entry& entry,
                        const std::vector<double>& point, double cutoff) {
  // A complete list (generated without truncation) re-filters exactly for
  // any parameter point and any cutoff.
  if (entry.gen_cutoff == 0.0) return true;
  // A truncated list can only serve runs at least as truncated, and only
  // when no probability rose above the generation envelope (a risen
  // probability could promote a pruned cutset past the cutoff).
  if (cutoff < entry.gen_cutoff) return false;
  if (point.size() != entry.envelope.size()) return false;
  for (std::size_t i = 0; i < point.size(); ++i) {
    if (point[i] > entry.envelope[i]) return false;
  }
  return true;
}

}  // namespace sdft
