#include "engine/quant_cache.hpp"

#include <cstring>
#include <variant>

namespace sdft {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_f64(std::string& out, double v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_chain(std::string& out, const ctmc& chain) {
  put_u32(out, static_cast<std::uint32_t>(chain.num_states()));
  for (state_index s = 0; s < chain.num_states(); ++s) {
    put_f64(out, chain.initial(s));
    out.push_back(chain.failed(s) ? 'F' : '.');
    const auto& row = chain.transitions_from(s);
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (const auto& [target, rate] : row) {
      put_u32(out, target);
      put_f64(out, rate);
    }
  }
}

void put_dynamic_model(std::string& out, const dynamic_model& model) {
  if (const auto* plain = std::get_if<ctmc>(&model)) {
    out.push_back('C');
    put_chain(out, *plain);
    return;
  }
  const auto& triggered = std::get<triggered_ctmc>(model);
  out.push_back('T');
  put_chain(out, triggered.chain);
  for (char on : triggered.on_state) out.push_back(on ? '1' : '0');
  for (state_index s : triggered.to_on) put_u32(out, s);
  for (state_index s : triggered.to_off) put_u32(out, s);
}

}  // namespace

std::string mcs_model_signature(const mcs_model& model, double horizon,
                                double epsilon, bool lump_symmetry) {
  const sd_fault_tree& tree = model.tree;
  const fault_tree& ft = tree.structure();
  std::string out;
  out.reserve(256);
  put_f64(out, horizon);
  put_f64(out, epsilon);
  out.push_back(lump_symmetry ? 'L' : 'l');
  put_u32(out, static_cast<std::uint32_t>(ft.size()));
  put_u32(out, ft.top());
  // FT_C construction is deterministic, so serialising nodes in index
  // order is canonical for the cache's purpose: equal construction yields
  // equal bytes. (Permuted-but-isomorphic trees may get distinct keys —
  // that only costs a duplicate solve, never a wrong reuse.)
  for (node_index n = 0; n < ft.size(); ++n) {
    const ft_node& node = ft.node(n);
    if (node.kind == node_kind::gate) {
      if (node.type == gate_type::atleast_gate) {
        out.push_back('V');
        put_u32(out, node.k);
      } else {
        out.push_back(node.type == gate_type::and_gate ? 'A' : 'O');
      }
      put_u32(out, static_cast<std::uint32_t>(node.inputs.size()));
      for (node_index input : node.inputs) put_u32(out, input);
      continue;
    }
    if (tree.is_dynamic(n)) {
      put_dynamic_model(out, tree.model_of(n));
      put_u32(out, tree.trigger_gate_of(n));
    } else {
      out.push_back('S');
      put_f64(out, node.probability);
    }
  }
  return out;
}

quantification_cache::quantification_cache(std::size_t capacity)
    : map_(capacity) {}

std::optional<quantification_cache::entry> quantification_cache::find(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  const entry* found = map_.find(key);
  if (found == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return *found;
}

void quantification_cache::store(const std::string& key, const entry& e) {
  std::lock_guard lock(mutex_);
  map_.insert(key, e);
}

std::size_t quantification_cache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::size_t quantification_cache::capacity() const {
  std::lock_guard lock(mutex_);
  return map_.capacity();
}

std::size_t quantification_cache::evictions() const {
  std::lock_guard lock(mutex_);
  return map_.evictions();
}

void quantification_cache::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  map_.set_capacity(capacity);
}

void quantification_cache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace sdft
