#pragma once

#include <cstddef>
#include <vector>

#include "core/mcs_model.hpp"
#include "engine/cutset_source.hpp"
#include "engine/engine_stats.hpp"
#include "engine/quant_cache.hpp"
#include "engine/quantifier.hpp"
#include "engine/struct_cache.hpp"
#include "mcs/cutset.hpp"
#include "prep/prep.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "sim/mc.hpp"

namespace sdft {
class thread_pool;
}

namespace sdft {

/// Options of the SD fault tree analysis pipeline (paper §V).
struct analysis_options {
  /// Mission time / analysis horizon t in hours (paper uses 24h..96h).
  double horizon = 24.0;

  /// Relevance cutoff c* applied both while generating minimal cutsets on
  /// FT-bar (conservative, paper eq. (1)) and when summing quantified
  /// cutsets. 0 disables truncation.
  double cutoff = 0.0;

  /// Numerical accuracy of the transient analyses.
  double epsilon = 1e-10;

  /// Worker threads for per-cutset quantification; 0 = hardware threads.
  /// Cutset quantifications are independent (paper §VI concluding remark).
  std::size_t threads = 0;

  /// Trigger modelling mode (exact per classification, or the paper's
  /// §VIII approximation variants).
  approx_mode mode = approx_mode::as_classified;

  /// Per-cutset product chain size cap; larger cutsets are reported as
  /// failed quantifications with their conservative FT-bar probability.
  std::size_t max_product_states = 2'000'000;

  /// Retain the per-cutset breakdown in the result (disable to save memory
  /// on very large runs).
  bool keep_cutset_details = true;

  /// Use the dynamic events' reference static probabilities (when set)
  /// instead of their worst-case probabilities while generating cutsets on
  /// FT-bar — the paper's "static cutoff" (§VI), which keeps the cutset
  /// list independent of the dynamic models.
  bool reference_cutoff = false;

  /// Minimal-cutset generator for stage 2 (see cutset_backend). With
  /// cutset_backend::mc the engine skips the cutset pipeline entirely and
  /// estimates the top-event probability by Monte-Carlo simulation
  /// (options in `mc` below; result in analysis_result::mc).
  cutset_backend backend = cutset_backend::mocus;

  /// Monte-Carlo campaign options for the mc backend (estimator family,
  /// trajectory budget, seed, splitting/forcing knobs). `mc.levels == 0`
  /// derives the splitting levels from the prep workgraph's depth-to-top.
  /// Ignored by the cutset backends.
  sim::mc_options mc;

  /// Variable-ordering heuristic of every BDD the run compiles (the bdd
  /// backend's stage-2 BDDs and the --exact-static BDD). Orderings change
  /// BDD size, never the cutset list: it stays canonical and bit-identical.
  sdft::bdd_ordering bdd_ordering = sdft::bdd_ordering::dfs;

  /// Additionally compile the preprocessed FT-bar to one BDD and evaluate
  /// the exact static top-event probability on it (Shannon decomposition;
  /// no rare-event approximation, no cutoff truncation). Reported in
  /// analysis_result::exact_static_probability; the dynamic pipeline is
  /// unaffected. Surfaced as `sdft analyze --exact-static`.
  bool exact_static = false;

  /// Memoise per-cutset transient solves under the structural signature of
  /// their mcs_model, so cutsets sharing dynamic sub-structure reuse the
  /// solve and only multiply their static factors.
  bool cache_quantifications = true;

  /// Stage-3 fast paths (on by default; disable to reproduce the baseline
  /// behaviour bit-for-bit): lump exchangeable components of each product
  /// chain, key exploration by packed 64-bit states, and terminate
  /// uniformisation early once the residual is provably below epsilon.
  bool lump_symmetry = true;
  bool packed_state_keys = true;
  bool transient_early_termination = true;

  /// Preprocessing of FT-bar between translation and cutset generation
  /// (src/prep): simplifying rewrites plus modularization of stage 2.
  /// prep.enabled=false keeps only the mandatory normalisation (voting
  /// gates lowered to AND/OR) — every rewrite preserves the structure
  /// function, so results are bit-identical either way.
  prep_options prep;

  /// Reuse stages 1b–2 across run() calls on the same engine through the
  /// structure cache: analyses whose tree differs only in parameters
  /// (probabilities, rates, horizon) skip prep and cutset generation and
  /// re-filter the cached list — exactly (see struct_cache.hpp). One-shot
  /// analyze() calls see a single miss and behave as before.
  bool use_structure_cache = true;

  /// Entry bounds of the engine-owned caches, applied at engine
  /// construction (per-call option overrides ignore them; resize live
  /// engines through the cache accessors). 0 = unbounded.
  std::size_t structure_cache_entries = structure_cache::default_capacity;
  std::size_t quant_cache_entries = quantification_cache::default_capacity;

  /// Run every stage on the calling thread without creating a worker
  /// pool. For callers that already parallelise *across* analyses (the
  /// sweep runner, the serve request handlers) — per-analysis results are
  /// thread-count independent, so this changes nothing but scheduling.
  bool inline_execution = false;

  /// Publish the run's engine_stats into the global metrics registry at
  /// the end (disable for per-point sweep runs, whose caller publishes
  /// one aggregate instead of N stomping snapshots).
  bool publish_metrics = true;
};

/// Result of the full SD analysis.
struct analysis_result {
  /// Rare-event approximation over relevant cutsets (paper §V, p_rea).
  double failure_probability = 0;

  /// Exact static top-event probability of FT-bar, evaluated on a BDD
  /// (only when analysis_options::exact_static is set; 0 otherwise). An
  /// upper bound certificate for the truncated static rare-event sum.
  double exact_static_probability = 0;

  /// Monte-Carlo campaign result (mc backend only): the point estimate
  /// (mirrored into failure_probability), its 95% confidence interval,
  /// relative error and trajectory count. mc.trajectories == 0 on the
  /// cutset backends.
  sim::mc_result mc;

  std::size_t num_cutsets = 0;          ///< relevant MCSs found on FT-bar
  std::size_t num_dynamic_cutsets = 0;  ///< MCSs quantified dynamically

  double translate_seconds = 0;  ///< FT-bar construction + worst-case p(a)
  double mcs_seconds = 0;        ///< cutset generation on FT-bar
  double quantify_seconds = 0;   ///< summed wall time of the pipeline stage
  double total_seconds = 0;

  std::size_t mocus_partials = 0;
  std::size_t mocus_discarded = 0;

  /// Per-cutset details (empty if keep_cutset_details is false).
  std::vector<cutset_result> cutsets;

  /// Histogram over the number of dynamic events per *dynamic* cutset,
  /// counting both cutset events and events added by trigger modelling —
  /// the quantity behind the paper's Figure 2. Index = count.
  std::vector<std::size_t> dynamic_events_histogram;

  /// Mean dynamic events per dynamic cutset, and the mean number of those
  /// that were added by triggering (paper §VI-A reports 3.02 / 1.78).
  double mean_dynamic_events = 0;
  double mean_added_dynamic_events = 0;

  /// Per-stage instrumentation (backend counters, cache behaviour, pool
  /// occupancy); the timing fields above mirror its per-stage times.
  engine_stats stats;
};

/// The staged analysis pipeline of the paper (§V) behind analyze(), with
/// pluggable stage implementations: translate to FT-bar, generate relevant
/// minimal cutsets through the selected cutset_source, quantify every
/// cutset in parallel through the quantifier implementations (with the
/// memoising quantification cache), and sum the rare-event approximation.
///
/// The engine owns its quantification cache, which persists across run()
/// calls: repeated analyses of models sharing dynamic sub-structure (e.g.
/// a growing fleet of similar trains) reuse each other's transient solves.
/// Keys encode horizon and accuracy, so runs with different options never
/// alias.
class analysis_engine {
 public:
  explicit analysis_engine(analysis_options options = {});

  const analysis_options& options() const { return options_; }

  /// Runs the full pipeline with the engine's options. Thread-safe with
  /// respect to the caches; concurrent run() calls are allowed when every
  /// involved tree outlives its run.
  analysis_result run(const sd_fault_tree& tree);

  /// Runs the full pipeline with per-call options over the engine's
  /// shared caches — how the sweep runner and the serve layer give every
  /// point/request its own horizon and cutoff while still sharing every
  /// cached structure and transient solve. The cache-capacity fields of
  /// `options` are ignored (set at construction).
  analysis_result run(const sd_fault_tree& tree,
                      const analysis_options& options);

  /// Runs stages 1–2 only (translate, prep, cutset generation) and parks
  /// the result in the structure cache, so subsequent run() calls on the
  /// same structure with dominated parameters are pure re-quantification.
  /// The sweep runner primes with the envelope tree before fanning out.
  void prime(const sd_fault_tree& tree);
  void prime(const sd_fault_tree& tree, const analysis_options& options);

  /// The memoisation cache (for inspection and explicit clear()).
  quantification_cache& cache() { return cache_; }
  const quantification_cache& cache() const { return cache_; }

  /// The structure cache (stages 1b–2 keyed by structural signature).
  structure_cache& structures() { return struct_cache_; }
  const structure_cache& structures() const { return struct_cache_; }

 private:
  /// Stage 1–2 bundle shared by run() and prime().
  struct acquired_structure;

  acquired_structure acquire(const sd_fault_tree& tree,
                             const analysis_options& opt, thread_pool* pool,
                             engine_stats& stats);

  /// The mc-backend pipeline: translate/prep only as far as the
  /// importance levels and the optional exact-static stage need, then a
  /// batched Monte-Carlo campaign instead of stages 2–4.
  analysis_result run_mc(const sd_fault_tree& tree,
                         const analysis_options& opt);

  analysis_options options_;
  quantification_cache cache_;
  structure_cache struct_cache_;
};

/// Compatibility wrapper over analysis_engine: runs the full pipeline of
/// the paper (§V) with a fresh engine (and thus a fresh cache).
analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options = {});

}  // namespace sdft
