#include "engine/quantifier.hpp"

#include "ctmc/transient.hpp"
#include "obs/obs.hpp"
#include "product/product_ctmc.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace sdft {

bool static_product_quantifier::handles(const cutset& c) const {
  for (node_index b : c) {
    if (tree_.is_dynamic(b)) return false;
  }
  return true;
}

cutset_result static_product_quantifier::quantify(cutset c) const {
  const stopwatch timer;
  cutset_result out;
  out.events = std::move(c);
  double p = 1.0;
  for (node_index b : out.events) {
    p *= tree_.structure().node(b).probability;
  }
  out.probability = p;
  out.seconds = timer.seconds();
  return out;
}

bool product_chain_quantifier::handles(const cutset& c) const {
  for (node_index b : c) {
    if (tree_.is_dynamic(b)) return true;
  }
  return false;
}

cutset_result product_chain_quantifier::quantify(cutset c) const {
  const stopwatch timer;
  obs::span_scope span("quant.mcs", "quant");
  cutset_result out;
  out.events = std::move(c);
  out.dynamic = true;
  try {
    const mcs_model model = build_mcs_model(tree_, out.events, options_.mode);
    out.num_dynamic = model.cutset_dynamic.size();
    out.num_added_dynamic = model.added_dynamic.size();

    std::string key;
    if (cache_ != nullptr) {
      key = mcs_model_signature(model, options_.horizon, options_.epsilon,
                                options_.lump_symmetry);
      if (const auto cached = cache_->find(key)) {
        out.cache_hit = true;
        out.chain_states = cached->chain_states;
        out.lumped_orbits = cached->lumped_orbits;
        out.steps_saved = cached->steps_saved;
        out.packed_keys = cached->packed_keys;
        out.probability = cached->chain_probability * model.static_factor;
        out.seconds = timer.seconds();
        span.arg("cache_hit", 1.0);
        span.arg("states", static_cast<double>(out.chain_states));
        return out;
      }
    }

    product_options popts;
    popts.max_states = options_.max_product_states;
    popts.packed_state_keys = options_.packed_state_keys;
    popts.lump_symmetry = options_.lump_symmetry;
    const product_ctmc product = build_product_ctmc(model.tree, popts);
    out.chain_states = product.num_states();
    out.lumped_orbits = product.lumped_orbits;
    out.packed_keys = product.packed_keys;
    transient_stats tstats;
    transient_controls tctrl;
    tctrl.early_termination = options_.transient_early_termination;
    tctrl.steady_state_detection = options_.transient_early_termination;
    tctrl.stats = &tstats;
    const double chain_probability = reach_failed_probability(
        product.chain, options_.horizon, options_.epsilon, tctrl);
    out.steps_saved = tstats.steps_saved();
    if (obs::enabled()) {
      static obs::counter& steps =
          obs::metrics_registry::global().get_counter(
              "transient.uniformisation_steps");
      steps.add(tstats.steps_taken);
    }
    if (cache_ != nullptr) {
      cache_->store(key, {chain_probability, out.chain_states,
                          out.lumped_orbits, out.steps_saved,
                          out.packed_keys});
    }
    out.probability = chain_probability * model.static_factor;
  } catch (const error& e) {
    // Conservative fallback: the FT-bar product of worst-case
    // probabilities bounds p-tilde(C) from above (paper eq. (1)). The
    // cache is deliberately bypassed on this path — only successful exact
    // solves are stored (store() above is unreachable once we land here),
    // so a later retry with a larger state budget re-attempts the solve
    // instead of replaying the bound.
    out.error = e.what();
    double p = 1.0;
    for (node_index b : out.events) {
      if (tree_.is_dynamic(b)) {
        p *= translation_.worst_case.at(b);
      } else {
        p *= tree_.structure().node(b).probability;
      }
    }
    out.probability = p;
  }
  out.seconds = timer.seconds();
  span.arg("cache_hit", 0.0);
  span.arg("states", static_cast<double>(out.chain_states));
  span.arg("lumped_orbits", static_cast<double>(out.lumped_orbits));
  span.arg("packed", out.packed_keys ? 1.0 : 0.0);
  span.arg("dynamic_events",
           static_cast<double>(out.num_dynamic + out.num_added_dynamic));
  return out;
}

}  // namespace sdft
