#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sweep.hpp"
#include "etree/event_tree.hpp"
#include "etree/scenario.hpp"
#include "ft/ccf.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

/// Options of a scenario (event-tree) quantification run.
struct scenario_options {
  /// Shared pipeline options: backend and prep flags for the per-gate
  /// cutset lists, threads for the batched per-sequence evaluations,
  /// cutoff for cutset recombination, publish_metrics / inline_execution
  /// with their usual meanings. `exact_static` is accepted but redundant:
  /// the scenario engine's primary path is already BDD-exact.
  analysis_options analysis;

  /// Monte-Carlo parameter-uncertainty samples (0 = no UQ layer). Each
  /// sample draws every declared distribution once from a counter-based
  /// substream and re-quantifies the whole scenario off the cached
  /// structure — results are bit-identical at any thread count.
  std::size_t uq_samples = 0;
  std::uint64_t uq_seed = 1;

  /// Also build per-sequence minimal-cutset lists (per-gate lists through
  /// the engine's structure cache, recombined across each sequence's
  /// failed branches) and report their rare-event sums next to the exact
  /// probabilities. Skipped under the mc backend.
  bool quantify_cutsets = true;
};

/// Percentile band of one quantity over the UQ samples (the percentile
/// convention of core/risk_measures.hpp: index = floor(q * (n - 1))).
struct uncertainty_band {
  double mean = 0;
  double p05 = 0;
  double p50 = 0;
  double p95 = 0;
};

struct scenario_sequence_result {
  std::string label;      ///< "SEQ<k>" in declaration order
  std::string end_state;
  double probability = 0;      ///< exact (multi-root BDD, negation-aware)
  double mcs_probability = 0;  ///< rare-event sum over recombined cutsets
  std::size_t num_cutsets = 0;
  uncertainty_band uq;  ///< meaningful when uq_samples > 0
};

struct scenario_end_state_result {
  std::string name;
  std::size_t num_sequences = 0;
  double probability = 0;      ///< exact union over member sequences
  double mcs_probability = 0;  ///< rare-event sum over the merged MCS list
  std::size_t num_cutsets = 0;
  uncertainty_band uq;
};

/// Result of one scenario run: every sequence and every end state of the
/// event tree, quantified in one pass.
struct scenario_result {
  std::vector<scenario_sequence_result> sequences;
  std::vector<scenario_end_state_result> end_states;  ///< first-appearance order
  double initiating_probability = 0;  ///< p(IE) after CCF expansion

  /// scenario.*/ccf.*/uq.* counters plus the accumulated per-gate cutset
  /// runs' engine counters (published to the metrics registry unless
  /// analysis.publish_metrics is off).
  engine_stats stats;
};

/// One parameter point re-evaluated off the compiled scenario (the serve
/// layer's `etree` requests and CLI `sdft etree --sweep-*`).
struct scenario_point_result {
  std::string label;
  std::vector<double> sequence_probabilities;   ///< aligned with sequences
  std::vector<double> end_state_probabilities;  ///< aligned with end_state_names()
};

/// One-pass event-tree scenario engine. Construction compiles the model:
/// CCF groups are expanded (traced, so parameter draws re-derive every
/// CCF probability exactly), the event tree is re-anchored on the
/// expanded tree, and every functional-event gate is compiled exactly
/// once into one shared multi-root BDD with prefix-product sharing across
/// sequences. run() then batches the per-sequence/per-end-state
/// quantifications on the work-stealing pool with index-ordered
/// reduction — bit-identical at any thread count, and bit-identical to
/// per-sequence one-shot compilations (BDD operations are canonical).
///
/// Requires a static fault tree (dynamic events are rejected with a model
/// error; event-tree workloads are static PSA).
class scenario_engine {
 public:
  explicit scenario_engine(scenario_model model, scenario_options options = {});

  scenario_engine(const scenario_engine&) = delete;
  scenario_engine& operator=(const scenario_engine&) = delete;

  const scenario_model& model() const { return model_; }
  const scenario_options& options() const { return options_; }
  const fault_tree& expanded_tree() const { return expanded_.tree; }
  const event_tree& compiled_event_tree() const { return *et_; }
  const std::vector<std::string>& end_state_names() const { return es_names_; }

  /// Quantifies every sequence and end state (exact + optional MCS
  /// column), layers the UQ sampling on top when uq_samples > 0, and
  /// publishes the run's stats. The overload overrides the UQ knobs for
  /// one run — how the serve layer varies samples/seed per request over
  /// one compiled scenario. Safe to call concurrently: compilation is
  /// frozen at construction and run() only reads it.
  scenario_result run();
  scenario_result run(std::size_t uq_samples, std::uint64_t uq_seed);

  /// Re-evaluates the exact sequence/end-state probabilities at explicit
  /// parameter points — probability overrides on the ORIGINAL tree's
  /// basic events, resolved with the sweep grammar — off the compiled
  /// structure: no re-expansion, no recompilation, one batched pass.
  std::vector<scenario_point_result> evaluate_points(
      const sweep_description& points);

 private:
  /// Per-gate MCS lists through the engine (each distinct demanded gate
  /// analysed once), recombined across each sequence's failed branches.
  void quantify_cutsets(scenario_result& out);

  /// The Monte-Carlo UQ layer: one draw per (sample, parameter) substream,
  /// full re-quantification off the cached BDD, percentile bands.
  void propagate_uncertainty(scenario_result& out, std::size_t samples,
                             std::uint64_t seed);

  /// Per-node probabilities of the original tree at the base point.
  std::vector<double> original_probs() const;

  /// Maps original-tree probabilities through the CCF trace onto the
  /// expanded tree (scale * Q(source), clamped to [0, 1]).
  std::vector<double> expanded_probs(const std::vector<double>& original) const;

  /// Runs fn(i) for i in [0, n): serial under inline_execution, else on a
  /// pool sized by options_.analysis.threads.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

  scenario_model model_;
  scenario_options options_;
  ccf_expansion expanded_;
  std::optional<event_tree> et_;           ///< anchored on expanded_.tree
  std::optional<event_tree_bdd> compiled_;
  std::vector<bdd_ref> seq_refs_;
  std::vector<std::string> es_names_;      ///< first-appearance order
  std::vector<bdd_ref> es_refs_;
  std::vector<double> base_expanded_probs_;

  /// Distributions resolved to original-tree node indices.
  std::vector<std::pair<node_index, parameter_distribution>> dists_;

  analysis_engine engine_;  ///< per-gate cutset lists (structure-cached)
  double compile_seconds_ = 0;
};

/// One-shot convenience wrapper: compile + run.
scenario_result run_scenario(scenario_model model,
                             const scenario_options& options = {});

}  // namespace sdft
