#pragma once

#include <cstddef>
#include <string>

namespace sdft {

/// Instrumentation of one analysis_engine run: per-stage wall times,
/// backend counters and quantification-cache behaviour. Carried inside
/// analysis_result and printed by `sdft analyze --stats`.
struct engine_stats {
  /// Name of the cutset source used ("mocus" or "bdd").
  std::string backend;

  // Per-stage wall times (seconds).
  double translate_seconds = 0;  ///< FT-bar construction + worst-case p(a)
  double generate_seconds = 0;   ///< minimal-cutset generation
  double quantify_seconds = 0;   ///< parallel per-cutset quantification
  double sum_seconds = 0;        ///< rare-event sum + statistics
  double total_seconds = 0;

  // Cutset-source counters.
  std::size_t num_cutsets = 0;       ///< relevant MCSs handed to stage 3
  std::size_t source_partials = 0;   ///< MOCUS partial cutsets expanded
  std::size_t source_discarded = 0;  ///< cutoff-discarded partials / MCSs
  std::size_t bdd_nodes = 0;         ///< BDD nodes compiled (bdd backend)

  // Quantifier counters.
  std::size_t static_cutsets = 0;    ///< quantified as probability products
  std::size_t dynamic_cutsets = 0;   ///< quantified via a product chain
  std::size_t failed_quantifications = 0;  ///< conservative fallbacks

  // Stage-3 fast-path counters (summed over dynamic cutsets; cache hits
  // contribute the counters recorded when their entry was solved).
  std::size_t lumped_orbits = 0;      ///< symmetry orbits actually lumped
  std::size_t lumped_cutsets = 0;     ///< cutsets whose chain was lumped
  std::size_t packed_key_chains = 0;  ///< chains explored via 64-bit keys
  std::size_t vector_key_chains = 0;  ///< chains on the vector-key fallback
  std::size_t uniformisation_steps_saved = 0;  ///< early-terminated steps

  // Quantification-cache counters (this run only).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_entries = 0;  ///< entries held after the run

  /// Worker threads of the quantification pool.
  std::size_t pool_threads = 0;

  // Parallel cutset-generation (stage 2) counters. The same pool serves
  // stages 2 and 3; these snapshot its activity during generation only.
  std::size_t mocus_threads = 0;  ///< workers available to stage 2
  std::size_t mocus_tasks = 0;    ///< jobs submitted during generation
  std::size_t mocus_steals = 0;   ///< jobs taken off another worker's deque
  double mocus_occupancy = 0;     ///< sum(executed) / (workers * max(executed))

  /// Hits / (hits + misses); 0 when no dynamic cutset was quantified.
  double cache_hit_rate() const {
    const std::size_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

}  // namespace sdft
