#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace sdft {

/// Instrumentation of one analysis_engine run: per-stage wall times,
/// backend counters and quantification-cache behaviour. Carried inside
/// analysis_result, printed by `sdft analyze --stats`, and published into
/// the obs::metrics_registry under the canonical names returned by
/// metrics() (the same keys `sdft analyze --metrics-json` and the BENCH_*
/// exports carry; see DESIGN.md §11).
struct engine_stats {
  /// Name of the cutset source used ("mocus", "bdd" or "mc").
  std::string backend;

  /// Monte-Carlo estimator of an mc-backend run ("crude", "forcing",
  /// "splitting"); empty on cutset backends. Published as a label.
  std::string mc_method;

  /// BDD variable ordering of the run ("dfs", "natural", "weight",
  /// "sift"); published as a label like `backend`.
  std::string bdd_ordering;

  // Per-stage wall times (seconds).
  double translate_seconds = 0;  ///< FT-bar construction + worst-case p(a)
  double prep_seconds = 0;       ///< rewrite pipeline + modularization
  double generate_seconds = 0;   ///< minimal-cutset generation
  double quantify_seconds = 0;   ///< parallel per-cutset quantification
  double sum_seconds = 0;        ///< rare-event sum + statistics
  double exact_static_seconds = 0;  ///< BDD exact-static stage (opt-in)
  double total_seconds = 0;

  // Preprocessing (src/prep) counters: what the rewrite pipeline did to
  // FT-bar before cutset generation, and how stage 2 was modularised.
  std::size_t prep_nodes_before = 0;
  std::size_t prep_nodes_after = 0;
  std::size_t prep_nodes_eliminated = 0;
  std::size_t prep_atleast_lowered = 0;
  std::size_t prep_constants_folded = 0;
  std::size_t prep_gates_coalesced = 0;
  std::size_t prep_duplicates_merged = 0;
  std::size_t prep_common_args_merged = 0;
  std::size_t prep_absorptions = 0;
  std::size_t prep_passes = 0;
  std::size_t prep_modules = 0;         ///< module roots (incl. the top)
  std::size_t prep_module_cutsets = 0;  ///< cutsets from nested modules

  // Cutset-source counters.
  std::size_t num_cutsets = 0;       ///< relevant MCSs handed to stage 3
  std::size_t source_partials = 0;   ///< MOCUS partial cutsets expanded
  std::size_t source_discarded = 0;  ///< cutoff-discarded partials / MCSs
  std::size_t bdd_nodes = 0;         ///< BDD nodes compiled (bdd backend)
  std::size_t subset_tests = 0;      ///< packed subsumption tests (MOCUS)
  std::size_t bitset_words = 0;      ///< widest packed key, 64-bit words
  std::size_t bdd_sift_swaps = 0;    ///< sifting swaps (bdd + sift only)

  // Quantifier counters.
  std::size_t static_cutsets = 0;    ///< quantified as probability products
  std::size_t dynamic_cutsets = 0;   ///< quantified via a product chain
  std::size_t failed_quantifications = 0;  ///< conservative fallbacks

  // Stage-3 fast-path counters (summed over dynamic cutsets; cache hits
  // contribute the counters recorded when their entry was solved).
  std::size_t lumped_orbits = 0;      ///< symmetry orbits actually lumped
  std::size_t lumped_cutsets = 0;     ///< cutsets whose chain was lumped
  std::size_t packed_key_chains = 0;  ///< chains explored via 64-bit keys
  std::size_t vector_key_chains = 0;  ///< chains on the vector-key fallback
  std::size_t uniformisation_steps_saved = 0;  ///< early-terminated steps

  // Quantification-cache counters (this run only).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;  ///< LRU evictions during the run
  std::size_t cache_entries = 0;    ///< entries held after the run

  // Structure-cache counters (this run only): did stages 1b–2 replay from
  // a cached structure instead of regenerating?
  std::size_t struct_cache_hits = 0;
  std::size_t struct_cache_misses = 0;
  std::size_t struct_cache_evictions = 0;
  std::size_t struct_cache_entries = 0;  ///< entries held after the run

  /// Worker threads of the quantification pool.
  std::size_t pool_threads = 0;

  // Parallel cutset-generation (stage 2) counters. The same pool serves
  // stages 2 and 3; these snapshot its activity during generation only.
  std::size_t mocus_threads = 0;  ///< workers available to stage 2
  std::size_t mocus_tasks = 0;    ///< jobs submitted during generation
  std::size_t mocus_steals = 0;   ///< jobs taken off another worker's deque
  double mocus_occupancy = 0;     ///< sum(executed) / (workers * max(executed))

  // Stage-3 (quantification) pool activity, snapshotted the same way.
  std::size_t quantify_tasks = 0;
  std::size_t quantify_steals = 0;
  double quantify_occupancy = 0;

  // Monte-Carlo backend counters (zero on cutset-backend runs): the
  // campaign shape and the estimate's statistical quality, mirrored from
  // analysis_result::mc so every consumer of the vocabulary (--stats,
  // --metrics-json, BENCH_mc rows, serve `stats`) sees them.
  double mc_seconds = 0;          ///< trajectory-campaign wall time
  std::size_t mc_trajectories = 0;  ///< trajectories consumed
  std::size_t mc_failures = 0;      ///< failure hits / final-level crossings
  std::size_t mc_levels = 0;        ///< splitting levels used (0 otherwise)
  std::size_t mc_replications = 0;  ///< splitting replications (0 otherwise)
  double mc_estimate = 0;           ///< point estimate
  double mc_std_error = 0;          ///< standard error of the estimate
  double mc_ci_half_width = 0;      ///< 95% CI half-width
  double mc_relative_error = 0;     ///< half-width / estimate (0 if empty)

  // Scenario-engine counters (engine/scenario: one-pass event-tree
  // quantification). Zero on plain top-event analyses; the scenario engine
  // additionally accumulates the per-gate cutset runs' counters above, so
  // one vocabulary covers both kinds of run.
  double scenario_compile_seconds = 0;   ///< CCF expansion + multi-root BDD
  double scenario_quantify_seconds = 0;  ///< batched per-sequence evaluation
  double scenario_cutset_seconds = 0;    ///< per-gate MCS + recombination
  double scenario_total_seconds = 0;
  std::size_t scenario_sequences = 0;
  std::size_t scenario_end_states = 0;
  std::size_t scenario_functional_events = 0;
  std::size_t scenario_bdd_nodes = 0;       ///< shared multi-root manager
  std::size_t scenario_gates_compiled = 0;  ///< distinct gates compiled once
  std::size_t scenario_prefix_hits = 0;     ///< sequence prefix products reused
  std::size_t scenario_sequence_cutsets = 0;  ///< recombined MCSs, all sequences

  // Common-cause expansion counters (ft/ccf, run before prep).
  std::size_t ccf_groups = 0;
  std::size_t ccf_events_added = 0;       ///< explicit CCF basic events
  std::size_t ccf_members_expanded = 0;   ///< members replaced by OR gates

  // Parameter-uncertainty propagation counters (scenario engine UQ layer).
  double uq_seconds = 0;
  std::size_t uq_samples = 0;
  std::size_t uq_parameters = 0;  ///< distributions (re-drawn events)

  /// Field-wise accumulation for batched runs (the sweep aggregate):
  /// seconds and event counts sum, occupancies keep the maximum, entry
  /// gauges and labels keep the latest snapshot.
  void accumulate(const engine_stats& o) {
    backend = o.backend;
    bdd_ordering = o.bdd_ordering;
    translate_seconds += o.translate_seconds;
    prep_seconds += o.prep_seconds;
    generate_seconds += o.generate_seconds;
    quantify_seconds += o.quantify_seconds;
    sum_seconds += o.sum_seconds;
    exact_static_seconds += o.exact_static_seconds;
    total_seconds += o.total_seconds;
    prep_nodes_before += o.prep_nodes_before;
    prep_nodes_after += o.prep_nodes_after;
    prep_nodes_eliminated += o.prep_nodes_eliminated;
    prep_atleast_lowered += o.prep_atleast_lowered;
    prep_constants_folded += o.prep_constants_folded;
    prep_gates_coalesced += o.prep_gates_coalesced;
    prep_duplicates_merged += o.prep_duplicates_merged;
    prep_common_args_merged += o.prep_common_args_merged;
    prep_absorptions += o.prep_absorptions;
    prep_passes += o.prep_passes;
    prep_modules += o.prep_modules;
    prep_module_cutsets += o.prep_module_cutsets;
    num_cutsets += o.num_cutsets;
    source_partials += o.source_partials;
    source_discarded += o.source_discarded;
    bdd_nodes += o.bdd_nodes;
    subset_tests += o.subset_tests;
    bitset_words = std::max(bitset_words, o.bitset_words);
    bdd_sift_swaps += o.bdd_sift_swaps;
    static_cutsets += o.static_cutsets;
    dynamic_cutsets += o.dynamic_cutsets;
    failed_quantifications += o.failed_quantifications;
    lumped_orbits += o.lumped_orbits;
    lumped_cutsets += o.lumped_cutsets;
    packed_key_chains += o.packed_key_chains;
    vector_key_chains += o.vector_key_chains;
    uniformisation_steps_saved += o.uniformisation_steps_saved;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    cache_entries = o.cache_entries;
    struct_cache_hits += o.struct_cache_hits;
    struct_cache_misses += o.struct_cache_misses;
    struct_cache_evictions += o.struct_cache_evictions;
    struct_cache_entries = o.struct_cache_entries;
    pool_threads = std::max(pool_threads, o.pool_threads);
    mocus_threads = std::max(mocus_threads, o.mocus_threads);
    mocus_tasks += o.mocus_tasks;
    mocus_steals += o.mocus_steals;
    mocus_occupancy = std::max(mocus_occupancy, o.mocus_occupancy);
    quantify_tasks += o.quantify_tasks;
    quantify_steals += o.quantify_steals;
    quantify_occupancy = std::max(quantify_occupancy, o.quantify_occupancy);
    scenario_compile_seconds += o.scenario_compile_seconds;
    scenario_quantify_seconds += o.scenario_quantify_seconds;
    scenario_cutset_seconds += o.scenario_cutset_seconds;
    scenario_total_seconds += o.scenario_total_seconds;
    scenario_sequences += o.scenario_sequences;
    scenario_end_states += o.scenario_end_states;
    scenario_functional_events += o.scenario_functional_events;
    scenario_bdd_nodes += o.scenario_bdd_nodes;
    scenario_gates_compiled += o.scenario_gates_compiled;
    scenario_prefix_hits += o.scenario_prefix_hits;
    scenario_sequence_cutsets += o.scenario_sequence_cutsets;
    ccf_groups += o.ccf_groups;
    ccf_events_added += o.ccf_events_added;
    ccf_members_expanded += o.ccf_members_expanded;
    uq_seconds += o.uq_seconds;
    uq_samples += o.uq_samples;
    uq_parameters += o.uq_parameters;
    mc_method = o.mc_method;
    mc_seconds += o.mc_seconds;
    mc_trajectories += o.mc_trajectories;
    mc_failures += o.mc_failures;
    mc_levels = std::max(mc_levels, o.mc_levels);
    mc_replications = std::max(mc_replications, o.mc_replications);
    // Statistical gauges keep the latest snapshot, like the cache gauges:
    // summing estimates across points would be meaningless.
    mc_estimate = o.mc_estimate;
    mc_std_error = o.mc_std_error;
    mc_ci_half_width = o.mc_ci_half_width;
    mc_relative_error = o.mc_relative_error;
  }

  /// Hits / (hits + misses); 0 when no dynamic cutset was quantified.
  double cache_hit_rate() const {
    const std::size_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }

  /// Every numeric field under its canonical registry name. This list is
  /// the single source of truth for the metric vocabulary: publish() feeds
  /// it into the registry, `--metrics-json` dumps it, and the benches
  /// attach the same keys to their BENCH_* rows.
  std::vector<std::pair<std::string, double>> metrics() const {
    const auto n = [](std::size_t v) { return static_cast<double>(v); };
    return {
        {"engine.translate_seconds", translate_seconds},
        {"prep.seconds", prep_seconds},
        {"prep.nodes_before", n(prep_nodes_before)},
        {"prep.nodes_after", n(prep_nodes_after)},
        {"prep.nodes_eliminated", n(prep_nodes_eliminated)},
        {"prep.atleast_lowered", n(prep_atleast_lowered)},
        {"prep.constants_folded", n(prep_constants_folded)},
        {"prep.gates_coalesced", n(prep_gates_coalesced)},
        {"prep.duplicates_merged", n(prep_duplicates_merged)},
        {"prep.common_args_merged", n(prep_common_args_merged)},
        {"prep.absorptions", n(prep_absorptions)},
        {"prep.passes", n(prep_passes)},
        {"prep.modules", n(prep_modules)},
        {"prep.module_cutsets", n(prep_module_cutsets)},
        {"engine.generate_seconds", generate_seconds},
        {"engine.quantify_seconds", quantify_seconds},
        {"engine.sum_seconds", sum_seconds},
        {"engine.total_seconds", total_seconds},
        {"engine.cutsets", n(num_cutsets)},
        {"mocus.partials_expanded", n(source_partials)},
        {"mocus.cutoff_discarded", n(source_discarded)},
        {"mocus.subset_tests", n(subset_tests)},
        {"bitset.words", n(bitset_words)},
        {"bdd.nodes", n(bdd_nodes)},
        {"bdd.sift_swaps", n(bdd_sift_swaps)},
        {"engine.exact_static_seconds", exact_static_seconds},
        {"quant.static_cutsets", n(static_cutsets)},
        {"quant.dynamic_cutsets", n(dynamic_cutsets)},
        {"quant.failed", n(failed_quantifications)},
        {"quant.lumped_orbits", n(lumped_orbits)},
        {"quant.lumped_cutsets", n(lumped_cutsets)},
        {"quant.packed_key_chains", n(packed_key_chains)},
        {"quant.vector_key_chains", n(vector_key_chains)},
        {"transient.steps_saved", n(uniformisation_steps_saved)},
        {"quant.cache_hit", n(cache_hits)},
        {"quant.cache_miss", n(cache_misses)},
        {"quant.cache_evictions", n(cache_evictions)},
        {"quant.cache_entries", n(cache_entries)},
        {"quant.cache_hit_rate", cache_hit_rate()},
        {"struct_cache.hits", n(struct_cache_hits)},
        {"struct_cache.misses", n(struct_cache_misses)},
        {"struct_cache.evictions", n(struct_cache_evictions)},
        {"struct_cache.entries", n(struct_cache_entries)},
        {"pool.threads", n(pool_threads)},
        {"mocus.threads", n(mocus_threads)},
        {"mocus.tasks", n(mocus_tasks)},
        {"mocus.steals", n(mocus_steals)},
        {"mocus.occupancy", mocus_occupancy},
        {"quant.tasks", n(quantify_tasks)},
        {"quant.steals", n(quantify_steals)},
        {"pool.occupancy", quantify_occupancy},
        {"scenario.compile_seconds", scenario_compile_seconds},
        {"scenario.quantify_seconds", scenario_quantify_seconds},
        {"scenario.cutset_seconds", scenario_cutset_seconds},
        {"scenario.total_seconds", scenario_total_seconds},
        {"scenario.sequences", n(scenario_sequences)},
        {"scenario.end_states", n(scenario_end_states)},
        {"scenario.functional_events", n(scenario_functional_events)},
        {"scenario.bdd_nodes", n(scenario_bdd_nodes)},
        {"scenario.gates_compiled", n(scenario_gates_compiled)},
        {"scenario.prefix_hits", n(scenario_prefix_hits)},
        {"scenario.sequence_cutsets", n(scenario_sequence_cutsets)},
        {"ccf.groups", n(ccf_groups)},
        {"ccf.events_added", n(ccf_events_added)},
        {"ccf.members_expanded", n(ccf_members_expanded)},
        {"uq.seconds", uq_seconds},
        {"uq.samples", n(uq_samples)},
        {"uq.parameters", n(uq_parameters)},
        {"mc.seconds", mc_seconds},
        {"mc.trajectories", n(mc_trajectories)},
        {"mc.failures", n(mc_failures)},
        {"mc.levels", n(mc_levels)},
        {"mc.replications", n(mc_replications)},
        {"mc.estimate", mc_estimate},
        {"mc.std_error", mc_std_error},
        {"mc.ci_half_width", mc_ci_half_width},
        {"mc.relative_error", mc_relative_error},
    };
  }

  /// Writes every metric (and the backend label) into `registry`. Seconds
  /// and rates become gauges, counts become counters, so a --metrics-json
  /// dump carries every engine_stats field.
  void publish(obs::metrics_registry& registry) const {
    for (const auto& [name, value] : metrics()) {
      const bool is_gauge = name.find("seconds") != std::string::npos ||
                            name.find("occupancy") != std::string::npos ||
                            name.find("rate") != std::string::npos ||
                            name.find("estimate") != std::string::npos ||
                            name.find("error") != std::string::npos ||
                            name.find("width") != std::string::npos;
      if (is_gauge) {
        registry.set_gauge(name, value);
      } else {
        registry.set_counter(name, static_cast<std::uint64_t>(value));
      }
    }
    registry.set_label("engine.backend", backend);
    registry.set_label("bdd.ordering", bdd_ordering);
    registry.set_label("mc.method", mc_method);
  }
};

}  // namespace sdft
