#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "bdd/ordering.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

class thread_pool;

/// Selects the minimal-cutset generator of the analysis engine.
enum class cutset_backend {
  /// Top-down MOCUS expansion on FT-bar with the cutoff pruning partial
  /// cutsets (paper §IV-B) — the default, scales to industrial models.
  mocus,

  /// Compile FT-bar to a BDD and enumerate Rauzy minimal solutions, then
  /// apply the same cutoff to the complete cutset list. Insensitive to
  /// gate fan-out blowup, used as an independent oracle and for dense
  /// trees where MOCUS partials explode ("BDDs Strike Back").
  bdd,

  /// Monte-Carlo estimation (src/sim): no cutsets at all — the engine
  /// skips stages 1b–4 and estimates the top-event probability directly
  /// by batched trajectory simulation with forcing/splitting variance
  /// reduction (analysis_options::mc selects the estimator). The one
  /// backend that handles models outside the paper's tractability
  /// conditions (general repair, non-product cutsets), at the price of a
  /// confidence interval instead of a point value.
  mc,
};

/// Parses "mocus" / "bdd" / "mc"; returns false on anything else.
bool parse_cutset_backend(std::string_view text, cutset_backend& out);

const char* to_string(cutset_backend backend);

/// Output of a cutset source: relevant minimal cutsets over the analysed
/// tree's basic events, plus backend counters. The cutset list is
/// canonical — each cutset sorted, the list ordered by (size, content) —
/// so every backend and every thread count hands the caller the identical
/// sequence. Index spaces: a source speaks the index space of the tree it
/// was given; the engine's modular recombination layer (engine/modular)
/// folds module subproblems together and maps the final list back to
/// original SD-tree indices, which keeps stage 3's input (and the stage-4
/// sum order, and hence the failure probability) bit-reproducible.
struct cutset_generation {
  std::vector<cutset> cutsets;

  std::size_t partials_processed = 0;  ///< MOCUS partials expanded
  std::size_t discarded = 0;  ///< cutoff-discarded partials (MOCUS) or
                              ///< complete below-cutoff MCSs (BDD)
  std::size_t bdd_nodes = 0;  ///< BDD nodes compiled (BDD backend)
  std::size_t subset_tests = 0;  ///< packed subsumption tests (MOCUS)
  std::size_t bitset_words = 0;  ///< widest packed key, in 64-bit words
  std::size_t sift_swaps = 0;    ///< BDD sifting swaps (bdd + sift only)
};

/// Stage-2 interface of the engine: generates the relevant minimal
/// cutsets of an AND/OR fault tree (typically a prep-rewritten module of
/// FT-bar). Implementations must agree on cutoff semantics: a cutset
/// whose probability product over `ft` falls below `cutoff` is irrelevant
/// (paper eq. (1)); cutoff 0 disables truncation.
///
/// `pool` is the engine's worker pool; implementations fan their
/// parallelisable parts out over it. nullptr runs single-threaded. The
/// produced cutset list must be identical either way.
class cutset_source {
 public:
  virtual ~cutset_source() = default;

  virtual const char* name() const = 0;

  virtual cutset_generation generate(const fault_tree& ft, double cutoff,
                                     thread_pool* pool) const = 0;
};

/// Canonical list order: by (size, content). Both backends funnel through
/// this, as does the modular recombination layer.
void sort_cutsets_canonically(std::vector<cutset>& sets);

/// MOCUS (paper §V-B), the seed pipeline's generator. With a pool,
/// partial-cutset expansion runs on the work-stealing frontier.
class mocus_source final : public cutset_source {
 public:
  const char* name() const override { return "mocus"; }
  cutset_generation generate(const fault_tree& ft, double cutoff,
                             thread_pool* pool) const override;
};

/// ft_bdd::minimal_cutsets() with post-hoc cutoff filtering. With a pool,
/// the per-cutset cutoff evaluation of the minimal solutions fans out;
/// BDD compilation stays serial. The variable ordering only affects BDD
/// size: the produced cutset list is canonical and ordering-independent.
class bdd_source final : public cutset_source {
 public:
  explicit bdd_source(bdd_ordering ordering = bdd_ordering::dfs)
      : ordering_(ordering) {}
  const char* name() const override { return "bdd"; }
  cutset_generation generate(const fault_tree& ft, double cutoff,
                             thread_pool* pool) const override;

 private:
  bdd_ordering ordering_;
};

std::unique_ptr<cutset_source> make_cutset_source(
    cutset_backend backend, bdd_ordering ordering = bdd_ordering::dfs);

}  // namespace sdft
