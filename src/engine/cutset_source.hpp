#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mcs/cutset.hpp"
#include "sdft/translate.hpp"

namespace sdft {

class thread_pool;

/// Selects the minimal-cutset generator of the analysis engine.
enum class cutset_backend {
  /// Top-down MOCUS expansion on FT-bar with the cutoff pruning partial
  /// cutsets (paper §IV-B) — the default, scales to industrial models.
  mocus,

  /// Compile FT-bar to a BDD and enumerate Rauzy minimal solutions, then
  /// apply the same cutoff to the complete cutset list. Insensitive to
  /// gate fan-out blowup, used as an independent oracle and for dense
  /// trees where MOCUS partials explode ("BDDs Strike Back").
  bdd,
};

const char* to_string(cutset_backend backend);

/// Output of a cutset source: relevant minimal cutsets mapped back to
/// original SD-tree indices, plus backend counters. The cutset list is
/// canonical — each cutset sorted, the list ordered by (size, content) in
/// SD index space — so every backend and every thread count hands stage 3
/// the identical sequence (and the stage-4 sum runs in the identical
/// order, making the failure probability bit-reproducible).
struct cutset_generation {
  std::vector<cutset> cutsets;

  std::size_t partials_processed = 0;  ///< MOCUS partials expanded
  std::size_t discarded = 0;  ///< cutoff-discarded partials (MOCUS) or
                              ///< complete below-cutoff MCSs (BDD)
  std::size_t bdd_nodes = 0;  ///< BDD nodes compiled (BDD backend)
};

/// Stage-2 interface of the engine: generates the relevant minimal
/// cutsets of a translated SD fault tree. Implementations must agree on
/// cutoff semantics: a cutset whose FT-bar probability product falls
/// below `cutoff` is irrelevant (paper eq. (1)); cutoff 0 disables
/// truncation.
///
/// `pool` is the engine's worker pool; implementations fan their
/// parallelisable parts out over it. nullptr runs single-threaded. The
/// produced cutset list must be identical either way.
class cutset_source {
 public:
  virtual ~cutset_source() = default;

  virtual const char* name() const = 0;

  virtual cutset_generation generate(const static_translation& translation,
                                     double cutoff,
                                     thread_pool* pool) const = 0;
};

/// MOCUS on FT-bar (paper §V-B), the seed pipeline's generator. With a
/// pool, partial-cutset expansion runs on the work-stealing frontier.
class mocus_source final : public cutset_source {
 public:
  const char* name() const override { return "mocus"; }
  cutset_generation generate(const static_translation& translation,
                             double cutoff, thread_pool* pool) const override;
};

/// ft_bdd::minimal_cutsets() on FT-bar with post-hoc cutoff filtering.
/// With a pool, the per-cutset cutoff evaluation of the minimal solutions
/// (and the SD-index mapping) fans out; BDD compilation stays serial.
class bdd_source final : public cutset_source {
 public:
  const char* name() const override { return "bdd"; }
  cutset_generation generate(const static_translation& translation,
                             double cutoff, thread_pool* pool) const override;
};

std::unique_ptr<cutset_source> make_cutset_source(cutset_backend backend);

}  // namespace sdft
