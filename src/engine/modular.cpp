#include "engine/modular.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// Jobs below this size are not worth fanning out.
constexpr std::size_t parallel_grain = 2048;

/// Module subproblems at least this large keep the whole pool to
/// themselves instead of sharing a fan-out batch with their siblings.
constexpr std::size_t big_module_nodes = 4096;

/// One module subproblem: the local tree (nested module roots replaced by
/// pseudo basic events carrying their probability bound) plus the map
/// from local indices back to prep-tree indices.
struct module_task {
  node_index root = fault_tree::npos;  // prep-tree index of the module root
  fault_tree local;
  std::vector<node_index> to_prep;  // local index -> prep index
};

/// Maps prep-space cutsets to SD indices through the prep ancestry and
/// the FT-bar translation, then orders the list canonically.
std::vector<cutset> map_to_sd(std::vector<cutset> prep_cutsets,
                              const prep_result& prep,
                              const static_translation& translation,
                              thread_pool* pool) {
  obs::span_scope span("cutsets.map_to_sd", "generate");
  span.arg("cutsets", static_cast<double>(prep_cutsets.size()));
  std::vector<cutset> out(prep_cutsets.size());
  const auto map_one = [&](std::size_t i) {
    cutset mapped;
    mapped.reserve(prep_cutsets[i].size());
    for (node_index e : prep_cutsets[i]) {
      mapped.push_back(translation.to_sd.at(prep.to_source[e]));
    }
    std::sort(mapped.begin(), mapped.end());
    out[i] = std::move(mapped);
  };
  if (pool != nullptr && pool->size() > 1 && out.size() >= parallel_grain) {
    parallel_for(*pool, out.size(), map_one);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) map_one(i);
  }
  sort_cutsets_canonically(out);
  return out;
}

/// Builds the local tree of module `m`: its region of the prep tree up to
/// (and excluding) nested module roots, which enter as pseudo basic
/// events priced at their bound. Children-first emission keeps the local
/// tree a valid fault_tree as it grows.
module_task build_task(const prep_result& prep, node_index m,
                       const std::unordered_map<node_index, std::size_t>&
                           slot_of,
                       const std::vector<double>& bound) {
  const fault_tree& tree = prep.tree;
  module_task task;
  task.root = m;
  std::unordered_map<node_index, node_index> local_of;
  std::vector<std::pair<node_index, std::size_t>> stack;
  stack.emplace_back(m, 0);
  while (!stack.empty()) {
    auto& [n, next_input] = stack.back();
    const auto nested = n != m ? slot_of.find(n) : slot_of.end();
    if (tree.is_basic(n) || nested != slot_of.end()) {
      if (!local_of.count(n)) {
        const double p = tree.is_basic(n) ? tree.node(n).probability
                                          : bound[nested->second];
        local_of.emplace(n, task.local.add_basic_event(tree.node(n).name, p));
        task.to_prep.push_back(n);
      }
      stack.pop_back();
      continue;
    }
    const auto& inputs = tree.node(n).inputs;
    if (next_input < inputs.size()) {
      const node_index child = inputs[next_input++];
      if (!local_of.count(child)) stack.emplace_back(child, 0);
    } else {
      if (!local_of.count(n)) {
        std::vector<node_index> local_inputs;
        local_inputs.reserve(inputs.size());
        for (node_index child : inputs) {
          local_inputs.push_back(local_of.at(child));
        }
        local_of.emplace(n, task.local.add_gate(tree.node(n).name,
                                                tree.node(n).type,
                                                local_inputs));
        task.to_prep.push_back(n);
      }
      stack.pop_back();
    }
  }
  task.local.set_top(local_of.at(m));
  return task;
}

/// Substitutes nested modules' expanded cutset lists into one module's
/// local cutsets (cartesian product per quotient cutset); returns the
/// module's cutsets over prep basic events, canonically ordered.
std::vector<cutset> substitute(const module_task& task,
                               std::vector<cutset> local_cutsets,
                               const std::unordered_map<node_index,
                                                        std::size_t>& slot_of,
                               const std::vector<std::vector<cutset>>&
                                   expanded) {
  std::vector<cutset> out;
  out.reserve(local_cutsets.size());
  for (const cutset& lc : local_cutsets) {
    cutset base;
    std::vector<std::size_t> nested;
    for (node_index local_event : lc) {
      const node_index e = task.to_prep[local_event];
      const auto it = e != task.root ? slot_of.find(e) : slot_of.end();
      if (it != slot_of.end()) {
        nested.push_back(it->second);
      } else {
        base.push_back(e);
      }
    }
    std::sort(base.begin(), base.end());
    if (nested.empty()) {
      out.push_back(std::move(base));
      continue;
    }
    std::vector<cutset> acc{std::move(base)};
    for (std::size_t slot : nested) {
      std::vector<cutset> next;
      next.reserve(acc.size() * expanded[slot].size());
      for (const cutset& a : acc) {
        for (const cutset& mc : expanded[slot]) {
          cutset merged;
          merged.resize(a.size() + mc.size());
          std::merge(a.begin(), a.end(), mc.begin(), mc.end(),
                     merged.begin());
          next.push_back(std::move(merged));
        }
      }
      acc = std::move(next);
    }
    for (auto& c : acc) out.push_back(std::move(c));
  }
  sort_cutsets_canonically(out);
  return out;
}

}  // namespace

modular_generation generate_modular(const prep_result& prep,
                                    const static_translation& translation,
                                    const cutset_source& source,
                                    double cutoff, thread_pool* pool) {
  modular_generation out;
  const auto& roots = prep.module_roots;
  require_model(!roots.empty() && roots.back() == prep.tree.top(),
                "modular: module_roots must end with the top gate");
  out.modules_analyzed = roots.size();

  // Fast path: one module (modularization off, or nothing to split).
  if (roots.size() == 1) {
    out.generation = source.generate(prep.tree, cutoff, pool);
    out.generation.cutsets =
        map_to_sd(std::move(out.generation.cutsets), prep, translation, pool);
    return out;
  }

  obs::span_scope span("cutsets.modules", "generate");
  span.arg("modules", static_cast<double>(roots.size()));

  std::unordered_map<node_index, std::size_t> slot_of;
  for (std::size_t i = 0; i < roots.size(); ++i) slot_of.emplace(roots[i], i);

  // Expanded cutsets (prep basic-event space) and pseudo-event bounds per
  // module, filled in nesting order.
  std::vector<std::vector<cutset>> expanded(roots.size());
  std::vector<double> bound(roots.size(), 0.0);
  std::vector<module_task> tasks(roots.size());

  // Nesting level per module: 1 + the deepest nested module in its
  // region. module_roots is topological (nested before enclosing), so one
  // slot-order sweep of region DFSs settles every level; walking levels
  // upward then guarantees every nested bound is final before a parent
  // subproblem is built.
  std::vector<std::size_t> level(roots.size(), 1);
  for (std::size_t slot = 0; slot < roots.size(); ++slot) {
    std::vector<char> seen(prep.tree.size(), 0);
    std::vector<node_index> stack{roots[slot]};
    seen[roots[slot]] = 1;
    while (!stack.empty()) {
      const node_index n = stack.back();
      stack.pop_back();
      for (node_index child : prep.tree.node(n).inputs) {
        if (seen[child]) continue;
        seen[child] = 1;
        const auto it = slot_of.find(child);
        if (it != slot_of.end()) {
          level[slot] = std::max(level[slot], level[it->second] + 1);
        } else if (prep.tree.is_gate(child)) {
          stack.push_back(child);
        }
      }
    }
  }
  const std::size_t max_level =
      *std::max_element(level.begin(), level.end());

  const auto finish = [&](std::size_t slot, cutset_generation generated) {
    out.generation.partials_processed += generated.partials_processed;
    out.generation.discarded += generated.discarded;
    out.generation.bdd_nodes += generated.bdd_nodes;
    out.generation.subset_tests += generated.subset_tests;
    out.generation.sift_swaps += generated.sift_swaps;
    out.generation.bitset_words =
        std::max(out.generation.bitset_words, generated.bitset_words);
    expanded[slot] = substitute(tasks[slot], std::move(generated.cutsets),
                                slot_of, expanded);
    for (const cutset& c : expanded[slot]) {
      bound[slot] = std::max(bound[slot], cutset_probability(prep.tree, c));
    }
    if (roots[slot] != prep.tree.top()) {
      out.module_cutsets += expanded[slot].size();
    }
  };
  for (std::size_t l = 1; l <= max_level; ++l) {
    std::vector<std::size_t> batch;  // small modules, fanned out together
    std::vector<std::size_t> big;    // large modules, pool to themselves
    for (std::size_t slot = 0; slot < roots.size(); ++slot) {
      if (level[slot] != l) continue;
      tasks[slot] = build_task(prep, roots[slot], slot_of, bound);
      (tasks[slot].local.size() >= big_module_nodes ? big : batch)
          .push_back(slot);
    }
    if (pool != nullptr && pool->size() > 1 && batch.size() > 1) {
      // Serial generation inside each worker; assignment is structural,
      // so the per-slot outputs are thread-count independent.
      std::vector<cutset_generation> results(batch.size());
      parallel_for(*pool, batch.size(), [&](std::size_t i) {
        results[i] =
            source.generate(tasks[batch[i]].local, cutoff, nullptr);
      });
      for (std::size_t i = 0; i < batch.size(); ++i) {
        finish(batch[i], std::move(results[i]));
      }
    } else {
      for (std::size_t slot : batch) {
        finish(slot, source.generate(tasks[slot].local, cutoff, pool));
      }
    }
    for (std::size_t slot : big) {
      finish(slot, source.generate(tasks[slot].local, cutoff, pool));
    }
  }

  // Exact cutoff filter over the fully substituted list: pseudo-event
  // bounds only guaranteed conservative keeps; the true products decide.
  std::vector<cutset> final_cutsets = std::move(expanded.back());
  if (cutoff > 0.0) {
    const auto below = [&](const cutset& c) {
      return cutset_probability(prep.tree, c) < cutoff;
    };
    const auto it =
        std::remove_if(final_cutsets.begin(), final_cutsets.end(), below);
    out.generation.discarded +=
        static_cast<std::size_t>(final_cutsets.end() - it);
    final_cutsets.erase(it, final_cutsets.end());
  }
  out.generation.cutsets =
      map_to_sd(std::move(final_cutsets), prep, translation, pool);
  return out;
}

}  // namespace sdft
