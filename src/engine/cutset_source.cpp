#include "engine/cutset_source.hpp"

#include <algorithm>

#include "bdd/ft_bdd.hpp"
#include "mcs/mocus.hpp"
#include "util/error.hpp"

namespace sdft {

namespace {

/// Maps FT-bar cutsets back to original SD-tree indices, sorted.
std::vector<cutset> map_to_sd(std::vector<cutset> bar_cutsets,
                              const static_translation& translation) {
  std::vector<cutset> out;
  out.reserve(bar_cutsets.size());
  for (const cutset& c : bar_cutsets) {
    cutset mapped;
    mapped.reserve(c.size());
    for (node_index b : c) mapped.push_back(translation.to_sd.at(b));
    std::sort(mapped.begin(), mapped.end());
    out.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace

const char* to_string(cutset_backend backend) {
  switch (backend) {
    case cutset_backend::mocus:
      return "mocus";
    case cutset_backend::bdd:
      return "bdd";
  }
  return "?";
}

cutset_generation mocus_source::generate(const static_translation& translation,
                                         double cutoff) const {
  mocus_options opts;
  opts.cutoff = cutoff;
  mocus_result mcs = mocus(translation.ft_bar, opts);
  cutset_generation out;
  out.partials_processed = mcs.partials_processed;
  out.discarded = mcs.cutoff_discarded;
  out.cutsets = map_to_sd(std::move(mcs.cutsets), translation);
  return out;
}

cutset_generation bdd_source::generate(const static_translation& translation,
                                       double cutoff) const {
  const ft_bdd compiled(translation.ft_bar);
  std::vector<cutset> kept = compiled.minimal_cutsets();
  cutset_generation out;
  out.bdd_nodes = compiled.node_count();
  // MOCUS keeps partials with probability >= cutoff; applying the same
  // predicate to the complete cutset list yields an identical selection,
  // since a cutset's FT-bar product equals its final partial's probability.
  if (cutoff > 0.0) {
    const auto below = [&](const cutset& c) {
      return cutset_probability(translation.ft_bar, c) < cutoff;
    };
    const auto it = std::remove_if(kept.begin(), kept.end(), below);
    out.discarded = static_cast<std::size_t>(kept.end() - it);
    kept.erase(it, kept.end());
  }
  out.cutsets = map_to_sd(std::move(kept), translation);
  return out;
}

std::unique_ptr<cutset_source> make_cutset_source(cutset_backend backend) {
  switch (backend) {
    case cutset_backend::mocus:
      return std::make_unique<mocus_source>();
    case cutset_backend::bdd:
      return std::make_unique<bdd_source>();
  }
  throw model_error("unknown cutset backend");
}

}  // namespace sdft
