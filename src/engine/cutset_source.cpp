#include "engine/cutset_source.hpp"

#include <algorithm>
#include <optional>

#include "bdd/ft_bdd.hpp"
#include "mcs/mocus.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// Jobs below this size are not worth fanning out.
constexpr std::size_t parallel_grain = 2048;

}  // namespace

void sort_cutsets_canonically(std::vector<cutset>& sets) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
}

const char* to_string(cutset_backend backend) {
  switch (backend) {
    case cutset_backend::mocus:
      return "mocus";
    case cutset_backend::bdd:
      return "bdd";
    case cutset_backend::mc:
      return "mc";
  }
  return "?";
}

bool parse_cutset_backend(std::string_view text, cutset_backend& out) {
  if (text == "mocus") {
    out = cutset_backend::mocus;
  } else if (text == "bdd") {
    out = cutset_backend::bdd;
  } else if (text == "mc") {
    out = cutset_backend::mc;
  } else {
    return false;
  }
  return true;
}

cutset_generation mocus_source::generate(const fault_tree& ft, double cutoff,
                                         thread_pool* pool) const {
  mocus_options opts;
  opts.cutoff = cutoff;
  opts.pool = pool;
  mocus_result mcs = mocus(ft, opts);
  cutset_generation out;
  out.partials_processed = mcs.partials_processed;
  out.discarded = mcs.cutoff_discarded;
  out.subset_tests = mcs.subset_tests;
  out.bitset_words = mcs.key_words;
  out.cutsets = std::move(mcs.cutsets);
  sort_cutsets_canonically(out.cutsets);
  return out;
}

cutset_generation bdd_source::generate(const fault_tree& ft, double cutoff,
                                       thread_pool* pool) const {
  cutset_generation out;
  std::optional<ft_bdd> compiled;
  {
    obs::span_scope compile_span("bdd.compile", "generate");
    compiled.emplace(ft, fault_tree::npos, ordering_);
    out.bdd_nodes = compiled->node_count();
    out.sift_swaps = compiled->sift_swaps();
    compile_span.arg("nodes", static_cast<double>(out.bdd_nodes));
    compile_span.arg("sift_swaps", static_cast<double>(out.sift_swaps));
  }
  std::vector<cutset> kept;
  {
    obs::span_scope cutset_span("bdd.cutsets", "generate");
    kept = compiled->minimal_cutsets();
    cutset_span.arg("cutsets", static_cast<double>(kept.size()));
  }
  compiled.reset();
  // MOCUS keeps partials with probability >= cutoff; applying the same
  // predicate to the complete cutset list yields an identical selection,
  // since a cutset's probability product equals its final partial's
  // probability.
  if (cutoff > 0.0) {
    obs::span_scope filter_span("bdd.filter", "generate");
    const auto below = [&](const cutset& c) {
      return cutset_probability(ft, c) < cutoff;
    };
    if (pool != nullptr && pool->size() > 1 && kept.size() >= parallel_grain) {
      // Evaluate the predicate in parallel, then compact in index order so
      // the surviving sequence matches the serial path exactly.
      std::vector<char> drop(kept.size(), 0);
      parallel_for(*pool, kept.size(),
                   [&](std::size_t i) { drop[i] = below(kept[i]) ? 1 : 0; });
      std::size_t next = 0;
      for (std::size_t i = 0; i < kept.size(); ++i) {
        if (drop[i]) continue;
        if (next != i) kept[next] = std::move(kept[i]);
        ++next;
      }
      out.discarded = kept.size() - next;
      kept.resize(next);
    } else {
      const auto it = std::remove_if(kept.begin(), kept.end(), below);
      out.discarded = static_cast<std::size_t>(kept.end() - it);
      kept.erase(it, kept.end());
    }
  }
  out.cutsets = std::move(kept);
  sort_cutsets_canonically(out.cutsets);
  return out;
}

std::unique_ptr<cutset_source> make_cutset_source(cutset_backend backend,
                                                  bdd_ordering ordering) {
  switch (backend) {
    case cutset_backend::mocus:
      return std::make_unique<mocus_source>();
    case cutset_backend::bdd:
      return std::make_unique<bdd_source>(ordering);
    case cutset_backend::mc:
      // The mc backend is a quantifier, not a cutset generator; the
      // engine branches off before stage 2 (engine.cpp run_mc()).
      throw model_error("mc backend does not generate cutsets");
  }
  throw model_error("unknown cutset backend");
}

}  // namespace sdft
