#include "engine/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "sim/stream_rng.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// sigma = ln(EF) / z_0.95 — the PSA lognormal convention (EF = p95 /
/// median), shared with core/risk_measures.cpp.
constexpr double z95 = 1.6448536269514722;
constexpr double two_pi = 6.283185307179586;

/// Recombination guard: a sequence whose cartesian product of per-gate
/// MCS lists grows past this is rejected with a pointer at the cutoff.
constexpr std::size_t max_recombined_cutsets = std::size_t{1} << 20;

std::vector<ccf_group> resolve_ccf_groups(
    const std::vector<ccf_group_description>& groups, const fault_tree& ft) {
  std::vector<ccf_group> resolved;
  resolved.reserve(groups.size());
  for (const auto& d : groups) {
    ccf_group g;
    g.name = d.name;
    g.model = d.model;
    g.beta = d.beta;
    g.alpha = d.alpha;
    g.members.reserve(d.members.size());
    for (const auto& member : d.members) {
      const node_index e = ft.find(member);
      require_model(e != fault_tree::npos,
                    "scenario: CCF group '" + d.name + "' member '" + member +
                        "' is not a node of the tree");
      g.members.push_back(e);
    }
    resolved.push_back(std::move(g));
  }
  return resolved;
}

double clamp_probability(double p) {
  return std::min(std::max(p, 0.0), 1.0);
}

}  // namespace

scenario_engine::scenario_engine(scenario_model model, scenario_options options)
    : model_(std::move(model)),
      options_(std::move(options)),
      engine_(options_.analysis) {
  obs::span_scope span("scenario.compile", "scenario");
  stopwatch timer;
  const scenario_description& sc = model_.scenario;

  const auto dynamic = model_.tree.dynamic_events();
  require_model(dynamic.empty(),
                "scenario: the scenario engine requires a static fault tree (" +
                    std::to_string(dynamic.size()) +
                    " dynamic events present)");
  const fault_tree& original = model_.tree.structure();

  // CCF groups expand before anything else sees the tree, so the event
  // tree, the BDD and the per-gate cutset lists all work on the expanded
  // model — CCF events show up in cutsets like any other basic event.
  expanded_ = expand_ccf_traced(original, resolve_ccf_groups(sc.ccf, original));

  const node_index ie = expanded_.tree.find(sc.initiating_event);
  require_model(ie != fault_tree::npos,
                "scenario: unknown initiating event '" + sc.initiating_event +
                    (original.find(sc.initiating_event) != fault_tree::npos
                         ? "' (CCF group members cannot initiate)"
                         : "'"));
  et_.emplace(expanded_.tree, ie, sc.name);
  for (const auto& f : sc.functional) {
    const node_index gate = expanded_.tree.find(f.gate);
    require_model(gate != fault_tree::npos,
                  "scenario: functional event '" + f.name +
                      "' references unknown gate '" + f.gate + "'");
    et_->add_functional_event(f.name, gate);
  }
  for (const auto& s : sc.sequences) et_->add_sequence(s.outcomes, s.end_state);
  et_->validate();

  // One shared multi-root compilation. sequence()/end_state() mutate the
  // manager, so every root is compiled here, before run()/evaluate_points()
  // fan concurrent probability reads out over the frozen structure.
  compiled_.emplace(*et_);
  seq_refs_.reserve(et_->num_sequences());
  for (std::size_t s = 0; s < et_->num_sequences(); ++s) {
    seq_refs_.push_back(compiled_->sequence(s));
    const std::string& es = et_->end_state(s);
    if (std::find(es_names_.begin(), es_names_.end(), es) == es_names_.end()) {
      es_names_.push_back(es);
    }
  }
  es_refs_.reserve(es_names_.size());
  for (const auto& es : es_names_) es_refs_.push_back(compiled_->end_state(es));

  base_expanded_probs_ = expanded_probs(original_probs());

  dists_.reserve(sc.distributions.size());
  for (const auto& d : sc.distributions) {
    const node_index e = original.find(d.event);
    require_model(e != fault_tree::npos && original.is_basic(e),
                  "scenario: distribution over unknown basic event '" +
                      d.event + "'");
    dists_.emplace_back(e, d);
  }
  compile_seconds_ = timer.seconds();
}

std::vector<double> scenario_engine::original_probs() const {
  const fault_tree& ft = model_.tree.structure();
  std::vector<double> probs(ft.size(), 0.0);
  for (node_index i = 0; i < ft.size(); ++i) {
    if (ft.is_basic(i)) probs[i] = ft.node(i).probability;
  }
  return probs;
}

std::vector<double> scenario_engine::expanded_probs(
    const std::vector<double>& original) const {
  std::vector<double> probs(expanded_.tree.size(), 0.0);
  for (node_index e = 0; e < expanded_.tree.size(); ++e) {
    if (!expanded_.tree.is_basic(e)) continue;
    const ccf_trace_entry& t = expanded_.trace[e];
    probs[e] = t.source == fault_tree::npos
                   ? expanded_.tree.node(e).probability
                   : clamp_probability(t.scale * original[t.source]);
  }
  return probs;
}

void scenario_engine::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (options_.analysis.inline_execution || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  thread_pool pool(options_.analysis.threads);
  parallel_for(pool, n, fn);
}

scenario_result scenario_engine::run() {
  return run(options_.uq_samples, options_.uq_seed);
}

scenario_result scenario_engine::run(std::size_t uq_samples,
                                     std::uint64_t uq_seed) {
  obs::span_scope span("scenario.run", "scenario");
  stopwatch total;
  scenario_result out;
  engine_stats& stats = out.stats;

  const std::size_t num_seq = et_->num_sequences();
  const std::size_t num_es = es_names_.size();
  out.sequences.resize(num_seq);
  out.end_states.resize(num_es);
  out.initiating_probability = base_expanded_probs_[et_->initiating_event()];
  for (std::size_t s = 0; s < num_seq; ++s) {
    out.sequences[s].label = "SEQ" + std::to_string(s);
    out.sequences[s].end_state = et_->end_state(s);
  }
  for (std::size_t e = 0; e < num_es; ++e) {
    out.end_states[e].name = es_names_[e];
    for (std::size_t s = 0; s < num_seq; ++s) {
      if (et_->end_state(s) == es_names_[e]) ++out.end_states[e].num_sequences;
    }
  }

  {
    // Batched exact quantification: every root reads the same frozen BDD,
    // results land in index-ordered slots — bit-identical at any thread
    // count, and bit-identical to one-shot compilations (BDD canonicity).
    obs::span_scope quantify_span("scenario.quantify", "scenario");
    stopwatch timer;
    for_each_index(num_seq + num_es, [&](std::size_t i) {
      if (i < num_seq) {
        out.sequences[i].probability =
            compiled_->probability(seq_refs_[i], base_expanded_probs_);
      } else {
        out.end_states[i - num_seq].probability = compiled_->probability(
            es_refs_[i - num_seq], base_expanded_probs_);
      }
    });
    stats.scenario_quantify_seconds = timer.seconds();
  }

  if (options_.quantify_cutsets &&
      options_.analysis.backend != cutset_backend::mc) {
    quantify_cutsets(out);
  }
  if (uq_samples > 0) propagate_uncertainty(out, uq_samples, uq_seed);

  stats.scenario_compile_seconds = compile_seconds_;
  stats.scenario_sequences = num_seq;
  stats.scenario_end_states = num_es;
  stats.scenario_functional_events = et_->num_functional_events();
  stats.scenario_bdd_nodes = compiled_->nodes();
  stats.scenario_gates_compiled = compiled_->gates_compiled();
  stats.scenario_prefix_hits = compiled_->prefix_hits();
  stats.ccf_groups = model_.scenario.ccf.size();
  stats.ccf_events_added = expanded_.events_added;
  stats.ccf_members_expanded = expanded_.members_expanded;
  if (stats.backend.empty()) stats.backend = "bdd";  // the multi-root path
  stats.scenario_total_seconds = total.seconds();
  if (options_.analysis.publish_metrics) {
    stats.publish(obs::metrics_registry::global());
  }
  return out;
}

void scenario_engine::quantify_cutsets(scenario_result& out) {
  obs::span_scope span("scenario.cutsets", "scenario");
  stopwatch timer;
  engine_stats& stats = out.stats;
  const std::size_t num_seq = et_->num_sequences();

  // Per-gate minimal-cutset lists: each distinct gate demanded as a
  // failure anywhere in the tree is analysed exactly once through the
  // engine — and thus through the structure cache across run() calls.
  analysis_options gate_options = options_.analysis;
  gate_options.keep_cutset_details = true;
  gate_options.exact_static = false;
  gate_options.publish_metrics = false;
  std::unordered_map<node_index, std::vector<cutset>> gate_cutsets;
  for (std::size_t i = 0; i < et_->num_functional_events(); ++i) {
    const node_index gate = et_->functional_gate(i);
    if (gate_cutsets.find(gate) != gate_cutsets.end()) continue;
    bool demanded = false;
    for (std::size_t s = 0; s < num_seq && !demanded; ++s) {
      demanded = et_->sequence_outcomes(s)[i] == branch_outcome::failure;
    }
    if (!demanded) continue;
    fault_tree sub = expanded_.tree;
    sub.set_top(gate);
    const sd_fault_tree sub_tree(std::move(sub));
    const analysis_result r = engine_.run(sub_tree, gate_options);
    std::vector<cutset> list;
    list.reserve(r.cutsets.size());
    for (const auto& c : r.cutsets) list.push_back(c.events);
    stats.accumulate(r.stats);
    gate_cutsets.emplace(gate, std::move(list));
  }

  // Recombination: {IE} x the failed gates' lists, cutoff-pruned as the
  // product grows (a partial product below the cutoff can only shrink),
  // then minimized. Success branches are dropped — the same conservative
  // delete-term-free treatment end_state_fault_tree() uses.
  const double cutoff = options_.analysis.cutoff;
  std::vector<std::vector<cutset>> seq_cutsets(num_seq);
  for_each_index(num_seq, [&](std::size_t s) {
    std::vector<cutset> combos{{et_->initiating_event()}};
    const auto& outcomes = et_->sequence_outcomes(s);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i] != branch_outcome::failure) continue;
      const auto& gate_list = gate_cutsets.at(et_->functional_gate(i));
      std::vector<cutset> next;
      next.reserve(combos.size());
      for (const auto& base : combos) {
        for (const auto& add : gate_list) {
          cutset merged = base;
          merged.insert(merged.end(), add.begin(), add.end());
          std::sort(merged.begin(), merged.end());
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          if (cutoff > 0.0 &&
              cutset_probability(expanded_.tree, merged) < cutoff) {
            continue;
          }
          next.push_back(std::move(merged));
        }
        require_model(next.size() <= max_recombined_cutsets,
                      "scenario: sequence " + std::to_string(s) +
                          " recombines to more than " +
                          std::to_string(max_recombined_cutsets) +
                          " cutsets; set a relevance cutoff");
      }
      combos = std::move(next);
    }
    seq_cutsets[s] = minimize_cutsets(std::move(combos));
  });

  for (std::size_t s = 0; s < num_seq; ++s) {
    out.sequences[s].num_cutsets = seq_cutsets[s].size();
    out.sequences[s].mcs_probability =
        rare_event_probability(expanded_.tree, seq_cutsets[s]);
    stats.scenario_sequence_cutsets += seq_cutsets[s].size();
  }
  for (std::size_t e = 0; e < es_names_.size(); ++e) {
    std::vector<cutset> merged;
    for (std::size_t s = 0; s < num_seq; ++s) {
      if (et_->end_state(s) != es_names_[e]) continue;
      merged.insert(merged.end(), seq_cutsets[s].begin(),
                    seq_cutsets[s].end());
    }
    merged = minimize_cutsets(std::move(merged));
    out.end_states[e].num_cutsets = merged.size();
    out.end_states[e].mcs_probability =
        rare_event_probability(expanded_.tree, merged);
  }
  stats.scenario_cutset_seconds = timer.seconds();
}

void scenario_engine::propagate_uncertainty(scenario_result& out,
                                            std::size_t samples,
                                            std::uint64_t seed) {
  obs::span_scope span("scenario.uq", "scenario");
  stopwatch timer;
  const std::size_t num_seq = seq_refs_.size();
  const std::size_t num_es = es_refs_.size();
  const std::vector<double> base = original_probs();

  // One row per sample. Every draw comes from the substream keyed by
  // (seed, sample, parameter) — independent of scheduling, so the matrix
  // (and every band below) is bit-identical at any thread count.
  std::vector<double> seq_samples(samples * num_seq);
  std::vector<double> es_samples(samples * num_es);
  for_each_index(samples, [&](std::size_t k) {
    std::vector<double> drawn = base;
    for (std::size_t p = 0; p < dists_.size(); ++p) {
      const auto& [node, dist] = dists_[p];
      rng stream = sim::substream(seed, k, p);
      switch (dist.model) {
        case parameter_distribution::kind::point:
          break;
        case parameter_distribution::kind::lognormal: {
          // Median = the tree's base probability; Box-Muller as in
          // core/risk_measures.cpp so both UQ layers agree draw-for-draw.
          const double sigma = std::log(dist.error_factor) / z95;
          const double u1 = stream.uniform();
          const double u2 = stream.uniform();
          const double z =
              std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(two_pi * u2);
          drawn[node] = clamp_probability(drawn[node] * std::exp(sigma * z));
          break;
        }
        case parameter_distribution::kind::uniform:
          drawn[node] = stream.uniform(dist.lo, dist.hi);
          break;
      }
    }
    const std::vector<double> probs = expanded_probs(drawn);
    for (std::size_t s = 0; s < num_seq; ++s) {
      seq_samples[k * num_seq + s] =
          compiled_->probability(seq_refs_[s], probs);
    }
    for (std::size_t e = 0; e < num_es; ++e) {
      es_samples[k * num_es + e] = compiled_->probability(es_refs_[e], probs);
    }
  });

  const auto band = [samples](std::vector<double> column) {
    uncertainty_band b;
    double sum = 0.0;
    for (double v : column) sum += v;
    b.mean = sum / static_cast<double>(samples);
    std::sort(column.begin(), column.end());
    const auto at = [&](double q) {
      // floor(q * (n - 1)): the percentile convention of
      // core/risk_measures.hpp.
      return column[static_cast<std::size_t>(
          q * static_cast<double>(samples - 1))];
    };
    b.p05 = at(0.05);
    b.p50 = at(0.50);
    b.p95 = at(0.95);
    return b;
  };
  std::vector<double> column(samples);
  for (std::size_t s = 0; s < num_seq; ++s) {
    for (std::size_t k = 0; k < samples; ++k) {
      column[k] = seq_samples[k * num_seq + s];
    }
    out.sequences[s].uq = band(column);
  }
  for (std::size_t e = 0; e < num_es; ++e) {
    for (std::size_t k = 0; k < samples; ++k) {
      column[k] = es_samples[k * num_es + e];
    }
    out.end_states[e].uq = band(column);
  }
  out.stats.uq_seconds = timer.seconds();
  out.stats.uq_samples = samples;
  out.stats.uq_parameters = dists_.size();
}

std::vector<scenario_point_result> scenario_engine::evaluate_points(
    const sweep_description& points) {
  obs::span_scope span("scenario.points", "scenario");
  const sweep_spec spec = resolve_sweep(points, model_.tree);
  const std::vector<double> base = original_probs();
  std::vector<scenario_point_result> out(spec.points.size());
  for_each_index(spec.points.size(), [&](std::size_t i) {
    const sweep_point& point = spec.points[i];
    std::vector<double> drawn = base;
    for (const auto& [node, p] : point.overrides) drawn[node] = p;
    // Overrides address the ORIGINAL tree: a perturbed CCF member flows
    // through the expansion trace, rescaling every derived CCF event.
    const std::vector<double> probs = expanded_probs(drawn);
    scenario_point_result& r = out[i];
    r.label = point.label;
    r.sequence_probabilities.reserve(seq_refs_.size());
    for (const bdd_ref f : seq_refs_) {
      r.sequence_probabilities.push_back(compiled_->probability(f, probs));
    }
    r.end_state_probabilities.reserve(es_refs_.size());
    for (const bdd_ref f : es_refs_) {
      r.end_state_probabilities.push_back(compiled_->probability(f, probs));
    }
  });
  return out;
}

scenario_result run_scenario(scenario_model model,
                             const scenario_options& options) {
  scenario_engine engine(std::move(model), options);
  return engine.run();
}

}  // namespace sdft
