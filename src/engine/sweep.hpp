#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/json.hpp"

namespace sdft {

class thread_pool;

/// One parameter point of a sweep: static basic-event probability
/// overrides (SD node index -> probability) plus an optional per-point
/// horizon. Dynamic events cannot be overridden (their parameters live in
/// their chains); resolve_sweep() rejects them.
struct sweep_point {
  std::vector<std::pair<node_index, double>> overrides;
  double horizon = 0;  ///< 0 = inherit the engine options' horizon
  std::string label;
};

/// A fully resolved batch of points, ready for run_sweep().
struct sweep_spec {
  std::vector<sweep_point> points;
};

/// A sweep as the user wrote it — event *names*, ranges not yet expanded.
/// Produced by the parsers (pure syntax, no model in sight) and turned
/// into a sweep_spec by resolve_sweep() against a concrete tree. The
/// split keeps the CLI's error taxonomy clean: parse errors are usage
/// errors, resolution errors are model errors.
struct sweep_description {
  struct range {
    std::string event;
    double lo = 0;
    double hi = 0;
    std::size_t count = 0;
    bool log_scale = false;
  };
  struct named_point {
    std::vector<std::pair<std::string, double>> overrides;
    double horizon = 0;
    std::string label;
  };

  /// Cartesian-grid axes (empty when `points` is used).
  std::vector<range> ranges;

  /// Explicit points (empty when `ranges` is used).
  std::vector<named_point> points;

  bool empty() const { return ranges.empty() && points.empty(); }
};

/// Parses CLI range arguments of the form NAME=lo:hi:N[:log|:linear]
/// (one axis each; the grid is their cartesian product). Throws
/// sdft::error on malformed syntax.
sweep_description parse_sweep_ranges(const std::vector<std::string>& args);

/// Parses a JSON sweep spec:
///   {"points": [{"overrides": {"PUMP": 0.01}, "horizon": 48,
///                "label": "..."}, ...]}
/// or
///   {"params": [{"name": "PUMP", "lo": 1e-4, "hi": 1e-2, "n": 8,
///                "scale": "log"}, ...]}
/// Throws sdft::error on malformed input.
sweep_description parse_sweep_json(const std::string& text);

/// Same grammar over an already parsed JSON value (the serve layer reads
/// the sweep spec out of a request object).
sweep_description parse_sweep_value(const json::value& root);

/// Expands grids and resolves event names against `tree`. Throws
/// model_error for unknown events, non-static events, probabilities
/// outside [0, 1], or an empty description.
sweep_spec resolve_sweep(const sweep_description& description,
                         const sd_fault_tree& tree);

/// Result of one batched sweep.
struct sweep_result {
  /// Per-point results, aligned with sweep_spec::points. Each is
  /// bit-identical to a one-shot analyze() of the same perturbed tree.
  std::vector<analysis_result> points;

  double prime_seconds = 0;  ///< envelope prime (stages 1–2, once)
  double total_seconds = 0;
  std::size_t threads = 0;            ///< workers the points fanned out on
  std::size_t struct_cache_hits = 0;  ///< points replayed from the cache

  /// Field-wise sum of the per-point engine_stats (labels from the last
  /// point) — published to the metrics registry as the sweep's aggregate.
  engine_stats aggregate;
};

/// Quantifies every point of `spec` over `base`, sharing one cached
/// structure: primes the engine's structure cache with the *envelope*
/// tree (per-event maximum probability over base and all points, maximum
/// horizon — which dominates every point, see struct_cache.hpp), then
/// runs all points concurrently on `pool` (an internal pool sized by the
/// engine options when null), each point inline on its worker with the
/// engine's shared caches.
///
/// Per-point results are bit-identical to independent one-shot analyses:
/// the structure-cache hit path re-filters exactly, quantification-cache
/// hits replay bit-identical solves, and per-analysis results are
/// thread-count independent by the determinism contract.
sweep_result run_sweep(analysis_engine& engine, const sd_fault_tree& base,
                       const sweep_spec& spec, thread_pool* pool = nullptr);

/// Same, with explicit base options instead of the engine's (how the serve
/// layer gives a sweep request its own horizon and cutoff). The cache
/// capacity fields of `base_options` are ignored, as in engine::run().
sweep_result run_sweep(analysis_engine& engine, const sd_fault_tree& base,
                       const sweep_spec& spec,
                       const analysis_options& base_options,
                       thread_pool* pool = nullptr);

}  // namespace sdft
