#pragma once

#include <cstddef>
#include <string>

#include "core/mcs_model.hpp"
#include "engine/quant_cache.hpp"
#include "mcs/cutset.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "sdft/translate.hpp"

namespace sdft {

/// Outcome of quantifying one minimal cutset.
struct cutset_result {
  cutset events;           ///< original-tree basic-event indices
  double probability = 0;  ///< p-tilde(C)
  bool dynamic = false;    ///< quantified via a Markov chain (vs static product)
  bool cache_hit = false;  ///< transient solve reused from the cache
  std::size_t num_dynamic = 0;        ///< dynamic events in C
  std::size_t num_added_dynamic = 0;  ///< dynamic events added by triggering
  std::size_t chain_states = 0;       ///< product chain size (dynamic only)
  std::size_t lumped_orbits = 0;      ///< symmetry orbits lumped in the chain
  std::size_t steps_saved = 0;        ///< uniformisation steps early-skipped
  bool packed_keys = false;  ///< chain explored via the packed 64-bit key
  double seconds = 0;        ///< quantification wall time
  std::string error;  ///< non-empty if quantification fell back (see above)
};

/// Solver inputs of the quantification stage.
struct quantify_options {
  double horizon = 24.0;
  double epsilon = 1e-10;
  std::size_t max_product_states = 2'000'000;
  approx_mode mode = approx_mode::as_classified;

  /// Stage-3 fast-path toggles (see product_options and
  /// transient_controls); on by default, off reproduces the slow paths.
  bool lump_symmetry = true;
  bool packed_state_keys = true;
  bool transient_early_termination = true;
};

/// Stage-3 interface of the engine: quantifies one minimal cutset (given
/// in sorted original-tree indices). Implementations must be safe to call
/// concurrently from the quantification pool.
class quantifier {
 public:
  virtual ~quantifier() = default;

  virtual const char* name() const = 0;

  /// True iff this quantifier is applicable to `c`.
  virtual bool handles(const cutset& c) const = 0;

  virtual cutset_result quantify(cutset c) const = 0;
};

/// Purely static cutsets: p-tilde(C) is the product of the events'
/// probabilities (paper §V-C, the path that needs no Markov chain).
class static_product_quantifier final : public quantifier {
 public:
  explicit static_product_quantifier(const sd_fault_tree& tree)
      : tree_(tree) {}

  const char* name() const override { return "static-product"; }
  bool handles(const cutset& c) const override;
  cutset_result quantify(cutset c) const override;

 private:
  const sd_fault_tree& tree_;
};

/// Cutsets with dynamic events: build FT_C (paper §V-C), solve the product
/// chain by uniformisation and multiply the static factor back in. The
/// transient solve is memoised in `cache` (optional) under the structural
/// signature of the mcs_model, so cutsets sharing dynamic sub-structure —
/// e.g. thousands of MCSs combining the same triggered chain with
/// different static events — pay for one solve. Falls back to the
/// conservative FT-bar worst-case product when the chain is too large
/// (paper eq. (1)).
class product_chain_quantifier final : public quantifier {
 public:
  product_chain_quantifier(const sd_fault_tree& tree,
                           const static_translation& translation,
                           const quantify_options& options,
                           quantification_cache* cache)
      : tree_(tree),
        translation_(translation),
        options_(options),
        cache_(cache) {}

  const char* name() const override { return "product-chain"; }
  bool handles(const cutset& c) const override;
  cutset_result quantify(cutset c) const override;

 private:
  const sd_fault_tree& tree_;
  const static_translation& translation_;
  const quantify_options options_;
  quantification_cache* cache_;  // nullptr disables memoisation
};

}  // namespace sdft
