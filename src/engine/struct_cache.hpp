#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/ft_bdd.hpp"
#include "bdd/ordering.hpp"
#include "mcs/cutset.hpp"
#include "prep/prep.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/lru.hpp"

namespace sdft {

/// Canonical structural signature of an SD fault tree: everything that
/// determines the FT-bar *structure* — node kinds, gate connectives and
/// wiring, the static/dynamic partition of the leaves and the trigger
/// edges — plus the prep configuration (which decides the rewritten tree
/// an entry's exact-static BDD is compiled over). All numeric parameters
/// (static probabilities, CTMC rates, horizon, epsilon, cutoff) are
/// deliberately excluded: they only move probabilities, and the structure
/// cache handles those through its stored probability envelope. Names are
/// excluded too — cached artifacts are pure index structures.
std::string structural_signature(const sd_fault_tree& tree,
                                 const prep_options& prep);

/// One cached structure-level analysis: stages 1b–2 of one engine run
/// (prep rewrite + modularized minimal-cutset generation), keyed by
/// structural_signature(). Parameters are captured as the *envelope*
/// under which the cutsets were generated, which makes reuse exact:
///
///   The engine keeps exactly {minimal cutsets c : p(c) >= cutoff}, with
///   p(c) the product of FT-bar probabilities (an invariant across
///   backends, thread counts, prep and BDD orderings — see the
///   determinism suite). For a later run whose FT-bar probabilities are
///   pointwise <= the envelope and whose cutoff' >= gen_cutoff, every
///   cutset missing from the cached list satisfies p'(c) <= p_env(c) <
///   gen_cutoff <= cutoff', so re-filtering the cached list by the
///   run's own probabilities reproduces its fresh list exactly. A
///   gen_cutoff of 0 stores the complete minimal-cutset list, reusable
///   for any parameter point.
struct structure_entry {
  /// Minimized relevant cutsets in SD-tree index space, canonical
  /// (size, content) order — the exact stage-2 output of the generating
  /// run, before any per-run re-filtering.
  std::vector<cutset> cutsets;

  /// The same cutsets over prep-tree basic events, aligned with
  /// `cutsets`. Hit-path re-filtering multiplies probabilities in this
  /// order — the order the fresh run's final cutoff filter uses — so the
  /// keep/discard decisions are bit-for-bit the fresh ones.
  std::vector<cutset> prep_cutsets;

  /// FT-bar probability per SD node index at generation time (0 for
  /// gates). The dominance bound for reuse.
  std::vector<double> envelope;

  /// Cutoff the cutsets were generated under (0 = complete list).
  double gen_cutoff = 0;

  /// Prep counters of the generating run, replayed into engine_stats on
  /// hits (the rewrite is skipped, but its shape is still this).
  prep_stats pstats;

  /// The preprocessed FT-bar and its node -> source map, kept so
  /// exact-static queries on hits can compile/evaluate the same BDD a
  /// fresh run would.
  std::shared_ptr<const fault_tree> prep_tree;
  std::vector<node_index> prep_to_source;

  /// Exact static top-event probability over `prep_tree` with the given
  /// per-prep-node probability overrides, evaluated on a lazily compiled
  /// (and then cached) BDD for `ordering`. Thread-safe; bit-identical to
  /// a fresh run's compile-and-evaluate because prep and BDD compilation
  /// are deterministic given the structure. Reports the BDD node count
  /// and sifting swaps of the (first) compilation.
  double exact_static_probability(
      bdd_ordering ordering,
      const std::unordered_map<node_index, double>& overrides,
      std::size_t* node_count, std::size_t* sift_swaps) const;

 private:
  /// Guards lazy compilation and evaluation (bdd_manager memoises
  /// internally even during const evaluation, so evaluation itself must
  /// be serialized per BDD).
  mutable std::mutex bdd_mutex_;
  mutable std::map<bdd_ordering, std::unique_ptr<ft_bdd>> bdds_;
};

/// Thread-safe LRU cache of structure_entry, keyed by
/// structural_signature(). Entries are shared_ptr so eviction never
/// invalidates a run that is still quantifying against an entry.
///
/// Hit/miss accounting is the *engine's* notion (a probe that finds an
/// entry whose envelope does not dominate the run still counts as a
/// miss), so the counters are driven by record_hit()/record_miss() rather
/// than by probe().
class structure_cache {
 public:
  /// Default entry bound. Entries hold full cutset lists, so the cap is
  /// deliberately small; a resident service typically serves a handful
  /// of distinct structures.
  static constexpr std::size_t default_capacity = 64;

  explicit structure_cache(std::size_t capacity = default_capacity);

  /// The entry under `key` (refreshing recency), or nullptr.
  std::shared_ptr<const structure_entry> probe(const std::string& key);

  /// Inserts or replaces the entry under `key` (most recent), evicting
  /// past capacity. Replacement matters: a run whose parameters escape
  /// the stored envelope regenerates and re-stores under its own.
  void store(const std::string& key, std::shared_ptr<structure_entry> entry);

  void record_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void record_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const;
  std::size_t evictions() const;

  /// Changes the entry bound (0 = unbounded), evicting immediately.
  void set_capacity(std::size_t capacity);

  /// Drops all entries and resets the counters.
  void clear();

 private:
  mutable std::mutex mutex_;
  lru_map<std::string, std::shared_ptr<structure_entry>> map_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

/// True iff `entry` can stand in for a run with per-SD-node FT-bar
/// probabilities `point` and relevance cutoff `cutoff` (see the
/// structure_entry contract). `point` must be indexed like the envelope.
bool envelope_dominates(const structure_entry& entry,
                        const std::vector<double>& point, double cutoff);

}  // namespace sdft
