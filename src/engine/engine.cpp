#include "engine/engine.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "bdd/ft_bdd.hpp"
#include "engine/modular.hpp"
#include "obs/obs.hpp"
#include "prep/prep.hpp"
#include "sdft/translate.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// FT-bar probability per SD node index (0 for gates): a run's parameter
/// point in the structure cache's envelope space. Basic events unreachable
/// from the top (never translated, so absent from to_bar) cannot appear in
/// any cutset; they stay 0 on both sides of the dominance check.
std::vector<double> ft_bar_point(const sd_fault_tree& tree,
                                 const static_translation& translation) {
  const fault_tree& ft = tree.structure();
  std::vector<double> point(ft.size(), 0.0);
  for (node_index n = 0; n < ft.size(); ++n) {
    if (!ft.is_basic(n)) continue;
    const auto it = translation.to_bar.find(n);
    if (it == translation.to_bar.end()) continue;
    point[n] = translation.ft_bar.node(it->second).probability;
  }
  return point;
}

void fill_prep_stats(engine_stats& stats, const prep_stats& p) {
  stats.prep_nodes_before = p.nodes_before;
  stats.prep_nodes_after = p.nodes_after;
  stats.prep_nodes_eliminated = p.nodes_eliminated();
  stats.prep_atleast_lowered = p.atleast_lowered;
  stats.prep_constants_folded = p.constants_folded;
  stats.prep_gates_coalesced = p.gates_coalesced;
  stats.prep_duplicates_merged = p.duplicates_merged;
  stats.prep_common_args_merged = p.common_args_merged;
  stats.prep_absorptions = p.absorptions;
  stats.prep_passes = p.passes;
  stats.prep_modules = p.modules_found;
}

/// Per-prep-node probability overrides from the run's own FT-bar — the
/// inputs the exact-static BDD evaluates under. Complete over the basic
/// events, so evaluation is independent of the probabilities frozen into
/// the (possibly cached) prep tree.
std::unordered_map<node_index, double> exact_static_overrides(
    const structure_entry& entry, const static_translation& translation) {
  std::unordered_map<node_index, double> overrides;
  const fault_tree& prep_tree = *entry.prep_tree;
  overrides.reserve(prep_tree.num_basic_events());
  for (node_index b = 0; b < prep_tree.size(); ++b) {
    if (!prep_tree.is_basic(b)) continue;
    overrides.emplace(
        b, translation.ft_bar.node(entry.prep_to_source[b]).probability);
  }
  return overrides;
}

/// parallel_for when a pool exists, a plain loop inline.
void for_each_index(thread_pool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    parallel_for(*pool, n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

struct analysis_engine::acquired_structure {
  static_translation translation;

  /// Stage-2 output filtered for this run (SD space, canonical order).
  cutset_generation generation;
  std::size_t module_cutsets = 0;

  /// The structure-level artifacts (prep tree, source maps, lazily
  /// compiled exact-static BDDs). From the cache on a hit, freshly built
  /// otherwise; only stored back when the structure cache is enabled.
  std::shared_ptr<const structure_entry> entry;
  bool from_cache = false;
};

analysis_engine::analysis_engine(analysis_options options)
    : options_(std::move(options)),
      cache_(options_.quant_cache_entries),
      struct_cache_(options_.structure_cache_entries) {}

analysis_engine::acquired_structure analysis_engine::acquire(
    const sd_fault_tree& tree, const analysis_options& opt, thread_pool* pool,
    engine_stats& stats) {
  acquired_structure acq;
  stats.backend = to_string(opt.backend);
  stats.bdd_ordering = to_string(opt.bdd_ordering);

  // Stage 1: FT-bar with worst-case probabilities (paper §V-B). Always
  // fresh — it carries the run's parameter point.
  stopwatch stage_timer;
  acq.translation = [&] {
    obs::span_scope span("engine.translate");
    span.arg("events", static_cast<double>(tree.structure().size()));
    return translate_to_static(tree, opt.horizon, opt.epsilon,
                               opt.reference_cutoff);
  }();
  stats.translate_seconds = stage_timer.seconds();

  std::string key;
  std::vector<double> point;
  if (opt.use_structure_cache) {
    key = structural_signature(tree, opt.prep);
    point = ft_bar_point(tree, acq.translation);
    std::shared_ptr<const structure_entry> entry = struct_cache_.probe(key);
    if (entry != nullptr && envelope_dominates(*entry, point, opt.cutoff)) {
      // Hit: stages 1b–2 replay from the cache. Re-filtering the stored
      // list by this run's own probabilities yields exactly the list a
      // fresh generation would (see struct_cache.hpp); prep counters are
      // replayed, generation counters stay honestly zero.
      struct_cache_.record_hit();
      stats.struct_cache_hits = 1;
      stage_timer.reset();
      obs::span_scope span("engine.reuse");
      fill_prep_stats(stats, entry->pstats);
      const fault_tree& bar = acq.translation.ft_bar;
      auto& kept = acq.generation.cutsets;
      kept.reserve(entry->cutsets.size());
      for (std::size_t i = 0; i < entry->cutsets.size(); ++i) {
        if (opt.cutoff > 0.0) {
          double p = 1.0;
          for (node_index e : entry->prep_cutsets[i]) {
            p *= bar.node(entry->prep_to_source[e]).probability;
          }
          if (p < opt.cutoff) {
            ++acq.generation.discarded;
            continue;
          }
        }
        kept.push_back(entry->cutsets[i]);
      }
      stats.generate_seconds = stage_timer.seconds();
      stats.num_cutsets = kept.size();
      stats.source_discarded = acq.generation.discarded;
      span.arg("cached", static_cast<double>(entry->cutsets.size()));
      span.arg("cutsets", static_cast<double>(kept.size()));
      acq.entry = std::move(entry);
      acq.from_cache = true;
      return acq;
    }
    struct_cache_.record_miss();
    stats.struct_cache_misses = 1;
  }

  // Stage 1b: preprocessing — normalise, simplify and modularise FT-bar
  // before any cutset is generated (every rewrite preserves the structure
  // function, so the cutset list and probability are unchanged).
  stage_timer.reset();
  prep_result prep = [&] {
    obs::span_scope span("engine.prep");
    prep_result p = preprocess(acq.translation.ft_bar, opt.prep);
    span.arg("nodes_before", static_cast<double>(p.stats.nodes_before));
    span.arg("nodes_after", static_cast<double>(p.stats.nodes_after));
    span.arg("modules", static_cast<double>(p.stats.modules_found));
    return p;
  }();
  stats.prep_seconds = stage_timer.seconds();
  fill_prep_stats(stats, prep.stats);

  // Stage 2: relevant minimal cutsets through the selected source, one
  // subproblem per prep module, recombined to the exact full list.
  stage_timer.reset();
  {
    obs::span_scope gen_span("engine.generate");
    obs::ambient_parent_scope ambient(gen_span.id());
    const std::unique_ptr<cutset_source> source =
        make_cutset_source(opt.backend, opt.bdd_ordering);
    stats.backend = source->name();
    const pool_counters before_generate =
        pool != nullptr ? pool->counters() : pool_counters{};
    modular_generation modular =
        generate_modular(prep, acq.translation, *source, opt.cutoff, pool);
    acq.generation = std::move(modular.generation);
    acq.module_cutsets = modular.module_cutsets;
    stats.prep_module_cutsets = modular.module_cutsets;
    stats.generate_seconds = stage_timer.seconds();
    stats.num_cutsets = acq.generation.cutsets.size();
    stats.source_partials = acq.generation.partials_processed;
    stats.source_discarded = acq.generation.discarded;
    stats.bdd_nodes = acq.generation.bdd_nodes;
    stats.subset_tests = acq.generation.subset_tests;
    stats.bitset_words = acq.generation.bitset_words;
    stats.bdd_sift_swaps = acq.generation.sift_swaps;
    if (pool != nullptr) {
      const pool_counters after_generate = pool->counters();
      stats.mocus_threads = pool->size();
      stats.mocus_tasks = after_generate.submitted - before_generate.submitted;
      stats.mocus_steals = after_generate.stolen - before_generate.stolen;
      stats.mocus_occupancy = after_generate.occupancy_since(before_generate);
    } else {
      stats.mocus_threads = 1;
    }
    gen_span.arg("cutsets", static_cast<double>(stats.num_cutsets));
    gen_span.arg("partials", static_cast<double>(stats.source_partials));
    gen_span.arg("tasks", static_cast<double>(stats.mocus_tasks));
    gen_span.arg("occupancy", stats.mocus_occupancy);
  }

  // Park the structure-level artifacts: the unfiltered canonical list in
  // both index spaces, the generation envelope, and the prep tree (for
  // exact-static BDD reuse). Stored even over an existing entry — a run
  // that escaped the old envelope re-anchors the key to its own.
  auto entry = std::make_shared<structure_entry>();
  entry->cutsets = acq.generation.cutsets;
  entry->gen_cutoff = opt.cutoff;
  entry->pstats = prep.stats;
  entry->prep_to_source = std::move(prep.to_source);
  entry->prep_tree =
      std::make_shared<const fault_tree>(std::move(prep.tree));
  if (opt.use_structure_cache) {
    entry->envelope = std::move(point);
    // Prep-space mirror of the cutsets, through the inverse of
    // to_source ∘ to_bar (every kept event survives prep, so the inverse
    // is total on them).
    std::unordered_map<node_index, node_index> bar_to_prep;
    const fault_tree& prep_tree = *entry->prep_tree;
    bar_to_prep.reserve(prep_tree.num_basic_events());
    for (node_index b = 0; b < prep_tree.size(); ++b) {
      if (prep_tree.is_basic(b)) {
        bar_to_prep.emplace(entry->prep_to_source[b], b);
      }
    }
    entry->prep_cutsets.reserve(entry->cutsets.size());
    for (const cutset& c : entry->cutsets) {
      cutset mapped;
      mapped.reserve(c.size());
      for (node_index e : c) {
        mapped.push_back(bar_to_prep.at(acq.translation.to_bar.at(e)));
      }
      std::sort(mapped.begin(), mapped.end());
      entry->prep_cutsets.push_back(std::move(mapped));
    }
    struct_cache_.store(key, entry);
  }
  acq.entry = std::move(entry);
  return acq;
}

analysis_result analysis_engine::run(const sd_fault_tree& tree) {
  return run(tree, options_);
}

analysis_result analysis_engine::run_mc(const sd_fault_tree& tree,
                                        const analysis_options& opt) {
  const stopwatch total_timer;
  obs::span_scope run_span("engine.run");
  analysis_result result;
  engine_stats& stats = result.stats;
  stats.backend = to_string(cutset_backend::mc);
  stats.bdd_ordering = to_string(opt.bdd_ordering);

  std::optional<thread_pool> pool;
  if (!opt.inline_execution) pool.emplace(opt.threads);
  thread_pool* pool_ptr = pool ? &*pool : nullptr;

  sim::mc_options mc = opt.mc;

  // The splitting level count and the optional exact-static certificate
  // both live on the preprocessed FT-bar, so stages 1–1b run exactly when
  // one of them is needed; the trajectory campaign itself simulates the
  // original SD tree and needs neither.
  const bool derive_levels =
      mc.method == sim::mc_method::splitting && mc.levels == 0;
  if (derive_levels || opt.exact_static) {
    stopwatch stage_timer;
    const static_translation translation = [&] {
      obs::span_scope span("engine.translate");
      span.arg("events", static_cast<double>(tree.structure().size()));
      return translate_to_static(tree, opt.horizon, opt.epsilon,
                                 opt.reference_cutoff);
    }();
    stats.translate_seconds = stage_timer.seconds();
    stage_timer.reset();
    prep_result prep = [&] {
      obs::span_scope span("engine.prep");
      return preprocess(translation.ft_bar, opt.prep);
    }();
    stats.prep_seconds = stage_timer.seconds();
    fill_prep_stats(stats, prep.stats);

    if (derive_levels) {
      // Depth-to-top of the prep workgraph: the longest leaf-to-top path
      // in the rewritten FT-bar, i.e. how many structural layers the
      // importance function can climb through. Clamped so degenerate
      // shapes still split and deep DAGs do not starve per-stage effort.
      const fault_tree& pt = prep.tree;
      std::vector<std::size_t> depth(pt.size(), 0);
      std::size_t top_depth = 0;
      for (node_index n : pt.topo_order()) {
        const ft_node& node = pt.node(n);
        if (node.kind != node_kind::gate) continue;
        for (node_index child : node.inputs) {
          depth[n] = std::max(depth[n], depth[child] + 1);
        }
        if (n == pt.top()) top_depth = depth[n];
      }
      mc.levels = std::clamp<std::size_t>(top_depth, 2, 8);
    }

    if (opt.exact_static) {
      stage_timer.reset();
      obs::span_scope exact_span("engine.exact_static");
      structure_entry entry;
      entry.prep_to_source = std::move(prep.to_source);
      entry.prep_tree =
          std::make_shared<const fault_tree>(std::move(prep.tree));
      std::size_t node_count = 0;
      std::size_t sift_swaps = 0;
      result.exact_static_probability = entry.exact_static_probability(
          opt.bdd_ordering, exact_static_overrides(entry, translation),
          &node_count, &sift_swaps);
      stats.bdd_sift_swaps += sift_swaps;
      stats.exact_static_seconds = stage_timer.seconds();
      exact_span.arg("nodes", static_cast<double>(node_count));
      exact_span.arg("probability", result.exact_static_probability);
    }
  }

  // The campaign: batched trajectories on the engine pool, reproducible
  // at any thread count (counter-based substreams, fixed reduction order).
  stopwatch mc_timer;
  {
    obs::span_scope mc_span("engine.mc");
    result.mc =
        sim::estimate_failure_probability_mc(tree, opt.horizon, mc, pool_ptr);
    mc_span.arg("trajectories", static_cast<double>(result.mc.trajectories));
    mc_span.arg("estimate", result.mc.estimate);
    mc_span.arg("relative_error", result.mc.relative_error);
  }
  stats.mc_seconds = mc_timer.seconds();
  stats.mc_method = sim::to_string(result.mc.method);
  stats.mc_trajectories = result.mc.trajectories;
  stats.mc_failures = result.mc.failures;
  stats.mc_levels = result.mc.levels_used;
  stats.mc_replications = result.mc.replications;
  stats.mc_estimate = result.mc.estimate;
  stats.mc_std_error = result.mc.std_error;
  stats.mc_ci_half_width = result.mc.ci_half_width;
  stats.mc_relative_error = result.mc.relative_error;
  stats.pool_threads = pool_ptr != nullptr ? pool_ptr->size() : 1;

  result.failure_probability = result.mc.estimate;
  stats.total_seconds = total_timer.seconds();
  run_span.arg("mc_trajectories", static_cast<double>(stats.mc_trajectories));
  if (opt.publish_metrics) {
    stats.publish(obs::metrics_registry::global());
  }
  result.total_seconds = stats.total_seconds;
  return result;
}

analysis_result analysis_engine::run(const sd_fault_tree& tree,
                                     const analysis_options& opt) {
  if (opt.backend == cutset_backend::mc) return run_mc(tree, opt);
  const stopwatch total_timer;
  obs::span_scope run_span("engine.run");
  analysis_result result;
  engine_stats& stats = result.stats;
  const std::size_t cache_hits_before = cache_.hits();
  const std::size_t cache_misses_before = cache_.misses();
  const std::size_t cache_evictions_before = cache_.evictions();
  const std::size_t struct_evictions_before = struct_cache_.evictions();

  // One pool serves stage 2 (cutset generation) and stage 3
  // (quantification) — unless the caller already runs us on a pool of its
  // own (inline_execution), in which case every stage stays serial.
  std::optional<thread_pool> pool;
  if (!opt.inline_execution) pool.emplace(opt.threads);
  thread_pool* pool_ptr = pool ? &*pool : nullptr;

  // Stages 1–2 (translate, prep, generate), structure-cache aware.
  stopwatch stage_timer;
  acquired_structure acq = acquire(tree, opt, pool_ptr, stats);
  cutset_generation& generated = acq.generation;

  // Optional exact-static stage: one BDD over the whole preprocessed
  // FT-bar, evaluated by Shannon decomposition — the exact static
  // top-event probability, free of rare-event and cutoff error. The BDD
  // is compiled once per (structure, ordering) and kept on the cache
  // entry; evaluation always uses this run's own probabilities, which
  // makes hit and miss paths bit-identical.
  if (opt.exact_static) {
    stage_timer.reset();
    obs::span_scope exact_span("engine.exact_static");
    std::size_t node_count = 0;
    std::size_t sift_swaps = 0;
    result.exact_static_probability = acq.entry->exact_static_probability(
        opt.bdd_ordering, exact_static_overrides(*acq.entry, acq.translation),
        &node_count, &sift_swaps);
    stats.bdd_sift_swaps += sift_swaps;
    stats.exact_static_seconds = stage_timer.seconds();
    exact_span.arg("nodes", static_cast<double>(node_count));
    exact_span.arg("probability", result.exact_static_probability);
  }

  // Stage 3: per-cutset quantification, in parallel (paper §V-C).
  stage_timer.reset();
  {
    obs::span_scope quant_span("engine.quantify");
    obs::ambient_parent_scope ambient(quant_span.id());
    quantify_options qopts;
    qopts.horizon = opt.horizon;
    qopts.epsilon = opt.epsilon;
    qopts.max_product_states = opt.max_product_states;
    qopts.mode = opt.mode;
    qopts.lump_symmetry = opt.lump_symmetry;
    qopts.packed_state_keys = opt.packed_state_keys;
    qopts.transient_early_termination = opt.transient_early_termination;
    const static_product_quantifier static_quantifier(tree);
    const product_chain_quantifier chain_quantifier(
        tree, acq.translation, qopts,
        opt.cache_quantifications ? &cache_ : nullptr);
    result.cutsets.resize(generated.cutsets.size());
    std::vector<cutset_result>& quantified = result.cutsets;
    stats.pool_threads = pool_ptr != nullptr ? pool_ptr->size() : 1;
    const pool_counters before_quantify =
        pool_ptr != nullptr ? pool_ptr->counters() : pool_counters{};
    for_each_index(pool_ptr, generated.cutsets.size(), [&](std::size_t i) {
      cutset c = std::move(generated.cutsets[i]);
      const quantifier& q =
          static_quantifier.handles(c)
              ? static_cast<const quantifier&>(static_quantifier)
              : chain_quantifier;
      quantified[i] = q.quantify(std::move(c));
    });
    stats.quantify_seconds = stage_timer.seconds();
    if (pool_ptr != nullptr) {
      const pool_counters after_quantify = pool_ptr->counters();
      stats.quantify_tasks =
          after_quantify.submitted - before_quantify.submitted;
      stats.quantify_steals = after_quantify.stolen - before_quantify.stolen;
      stats.quantify_occupancy =
          after_quantify.occupancy_since(before_quantify);
    }
    quant_span.arg("tasks", static_cast<double>(stats.quantify_tasks));
    quant_span.arg("occupancy", stats.quantify_occupancy);
  }

  // Stage 4: rare-event sum over relevant cutsets plus statistics.
  stage_timer.reset();
  {
    obs::span_scope sum_span("engine.sum");
    std::vector<cutset_result>& quantified = result.cutsets;
    std::size_t dynamic_events_total = 0;
    std::size_t added_dynamic_total = 0;
    for (auto& q : quantified) {
      if (opt.cutoff > 0.0 && q.probability <= opt.cutoff) continue;
      result.failure_probability += q.probability;
    }
    for (auto& q : quantified) {
      if (!q.error.empty()) ++stats.failed_quantifications;
      if (!q.dynamic) {
        ++stats.static_cutsets;
        continue;
      }
      ++stats.dynamic_cutsets;
      ++result.num_dynamic_cutsets;
      stats.lumped_orbits += q.lumped_orbits;
      if (q.lumped_orbits > 0) ++stats.lumped_cutsets;
      stats.uniformisation_steps_saved += q.steps_saved;
      if (q.chain_states > 0 || q.cache_hit) {
        if (q.packed_keys) {
          ++stats.packed_key_chains;
        } else {
          ++stats.vector_key_chains;
        }
      }
      const std::size_t events = q.num_dynamic + q.num_added_dynamic;
      if (result.dynamic_events_histogram.size() <= events) {
        result.dynamic_events_histogram.resize(events + 1, 0);
      }
      ++result.dynamic_events_histogram[events];
      dynamic_events_total += events;
      added_dynamic_total += q.num_added_dynamic;
    }
    if (result.num_dynamic_cutsets > 0) {
      result.mean_dynamic_events =
          static_cast<double>(dynamic_events_total) /
          static_cast<double>(result.num_dynamic_cutsets);
      result.mean_added_dynamic_events =
          static_cast<double>(added_dynamic_total) /
          static_cast<double>(result.num_dynamic_cutsets);
    }
    if (!opt.keep_cutset_details) {
      result.cutsets.clear();
      result.cutsets.shrink_to_fit();
    }
    stats.sum_seconds = stage_timer.seconds();
    sum_span.arg("dynamic_cutsets", static_cast<double>(stats.dynamic_cutsets));
  }

  stats.cache_hits = cache_.hits() - cache_hits_before;
  stats.cache_misses = cache_.misses() - cache_misses_before;
  stats.cache_evictions = cache_.evictions() - cache_evictions_before;
  stats.cache_entries = cache_.size();
  stats.struct_cache_evictions =
      struct_cache_.evictions() - struct_evictions_before;
  stats.struct_cache_entries = struct_cache_.size();
  stats.total_seconds = total_timer.seconds();
  run_span.arg("cutsets", static_cast<double>(stats.num_cutsets));
  run_span.arg("struct_cache_hit", static_cast<double>(stats.struct_cache_hits));

  // Publish the run's counters under their canonical registry names so a
  // --metrics-json dump (or any registry consumer) sees this run.
  if (opt.publish_metrics) {
    stats.publish(obs::metrics_registry::global());
  }

  // Legacy mirrors of the per-stage instrumentation.
  result.num_cutsets = stats.num_cutsets;
  result.translate_seconds = stats.translate_seconds;
  result.mcs_seconds = stats.generate_seconds;
  result.quantify_seconds = stats.quantify_seconds;
  result.total_seconds = stats.total_seconds;
  result.mocus_partials = stats.source_partials;
  result.mocus_discarded = stats.source_discarded;
  return result;
}

void analysis_engine::prime(const sd_fault_tree& tree) {
  prime(tree, options_);
}

void analysis_engine::prime(const sd_fault_tree& tree,
                            const analysis_options& options) {
  // The mc backend generates no cutsets: nothing to park in the
  // structure cache, so priming is a no-op.
  if (options.backend == cutset_backend::mc) return;
  obs::span_scope span("engine.prime");
  analysis_options opt = options;
  opt.use_structure_cache = true;  // priming without the cache is a no-op
  engine_stats stats;
  std::optional<thread_pool> pool;
  if (!opt.inline_execution) pool.emplace(opt.threads);
  const acquired_structure acq =
      acquire(tree, opt, pool ? &*pool : nullptr, stats);
  span.arg("cutsets", static_cast<double>(acq.generation.cutsets.size()));
  span.arg("cached", acq.from_cache ? 1.0 : 0.0);
}

analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options) {
  analysis_engine engine(options);
  return engine.run(tree);
}

}  // namespace sdft
