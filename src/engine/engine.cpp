#include "engine/engine.hpp"

#include <utility>

#include "sdft/translate.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

analysis_engine::analysis_engine(analysis_options options)
    : options_(std::move(options)) {}

analysis_result analysis_engine::run(const sd_fault_tree& tree) {
  const stopwatch total_timer;
  analysis_result result;
  engine_stats& stats = result.stats;
  const std::size_t cache_hits_before = cache_.hits();
  const std::size_t cache_misses_before = cache_.misses();

  // Stage 1: FT-bar with worst-case probabilities (paper §V-B).
  stopwatch stage_timer;
  const static_translation translation =
      translate_to_static(tree, options_.horizon, options_.epsilon,
                          options_.reference_cutoff);
  stats.translate_seconds = stage_timer.seconds();

  // One pool serves stage 2 (cutset generation) and stage 3
  // (quantification); counter snapshots attribute activity per stage.
  thread_pool pool(options_.threads);

  // Stage 2: relevant minimal cutsets through the selected source.
  stage_timer.reset();
  const std::unique_ptr<cutset_source> source =
      make_cutset_source(options_.backend);
  stats.backend = source->name();
  const pool_counters before_generate = pool.counters();
  cutset_generation generated =
      source->generate(translation, options_.cutoff, &pool);
  const pool_counters after_generate = pool.counters();
  stats.generate_seconds = stage_timer.seconds();
  stats.num_cutsets = generated.cutsets.size();
  stats.source_partials = generated.partials_processed;
  stats.source_discarded = generated.discarded;
  stats.bdd_nodes = generated.bdd_nodes;
  stats.mocus_threads = pool.size();
  stats.mocus_tasks = after_generate.submitted - before_generate.submitted;
  stats.mocus_steals = after_generate.stolen - before_generate.stolen;
  stats.mocus_occupancy = after_generate.occupancy_since(before_generate);

  // Stage 3: per-cutset quantification, in parallel (paper §V-C).
  stage_timer.reset();
  quantify_options qopts;
  qopts.horizon = options_.horizon;
  qopts.epsilon = options_.epsilon;
  qopts.max_product_states = options_.max_product_states;
  qopts.mode = options_.mode;
  qopts.lump_symmetry = options_.lump_symmetry;
  qopts.packed_state_keys = options_.packed_state_keys;
  qopts.transient_early_termination = options_.transient_early_termination;
  const static_product_quantifier static_quantifier(tree);
  const product_chain_quantifier chain_quantifier(
      tree, translation, qopts,
      options_.cache_quantifications ? &cache_ : nullptr);
  std::vector<cutset_result> quantified(generated.cutsets.size());
  stats.pool_threads = pool.size();
  parallel_for(pool, generated.cutsets.size(), [&](std::size_t i) {
    cutset c = std::move(generated.cutsets[i]);
    const quantifier& q = static_quantifier.handles(c)
                              ? static_cast<const quantifier&>(static_quantifier)
                              : chain_quantifier;
    quantified[i] = q.quantify(std::move(c));
  });
  stats.quantify_seconds = stage_timer.seconds();

  // Stage 4: rare-event sum over relevant cutsets plus statistics.
  stage_timer.reset();
  std::size_t dynamic_events_total = 0;
  std::size_t added_dynamic_total = 0;
  for (auto& q : quantified) {
    if (options_.cutoff > 0.0 && q.probability <= options_.cutoff) continue;
    result.failure_probability += q.probability;
  }
  for (auto& q : quantified) {
    if (!q.error.empty()) ++stats.failed_quantifications;
    if (!q.dynamic) {
      ++stats.static_cutsets;
      continue;
    }
    ++stats.dynamic_cutsets;
    ++result.num_dynamic_cutsets;
    stats.lumped_orbits += q.lumped_orbits;
    if (q.lumped_orbits > 0) ++stats.lumped_cutsets;
    stats.uniformisation_steps_saved += q.steps_saved;
    if (q.chain_states > 0 || q.cache_hit) {
      if (q.packed_keys) {
        ++stats.packed_key_chains;
      } else {
        ++stats.vector_key_chains;
      }
    }
    const std::size_t events = q.num_dynamic + q.num_added_dynamic;
    if (result.dynamic_events_histogram.size() <= events) {
      result.dynamic_events_histogram.resize(events + 1, 0);
    }
    ++result.dynamic_events_histogram[events];
    dynamic_events_total += events;
    added_dynamic_total += q.num_added_dynamic;
  }
  if (result.num_dynamic_cutsets > 0) {
    result.mean_dynamic_events =
        static_cast<double>(dynamic_events_total) /
        static_cast<double>(result.num_dynamic_cutsets);
    result.mean_added_dynamic_events =
        static_cast<double>(added_dynamic_total) /
        static_cast<double>(result.num_dynamic_cutsets);
  }
  if (options_.keep_cutset_details) {
    result.cutsets = std::move(quantified);
  }
  stats.sum_seconds = stage_timer.seconds();

  stats.cache_hits = cache_.hits() - cache_hits_before;
  stats.cache_misses = cache_.misses() - cache_misses_before;
  stats.cache_entries = cache_.size();
  stats.total_seconds = total_timer.seconds();

  // Legacy mirrors of the per-stage instrumentation.
  result.num_cutsets = stats.num_cutsets;
  result.translate_seconds = stats.translate_seconds;
  result.mcs_seconds = stats.generate_seconds;
  result.quantify_seconds = stats.quantify_seconds;
  result.total_seconds = stats.total_seconds;
  result.mocus_partials = stats.source_partials;
  result.mocus_discarded = stats.source_discarded;
  return result;
}

analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options) {
  analysis_engine engine(options);
  return engine.run(tree);
}

}  // namespace sdft
