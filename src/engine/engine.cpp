#include "engine/engine.hpp"

#include <utility>

#include "bdd/ft_bdd.hpp"
#include "engine/modular.hpp"
#include "obs/obs.hpp"
#include "prep/prep.hpp"
#include "sdft/translate.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

analysis_engine::analysis_engine(analysis_options options)
    : options_(std::move(options)) {}

analysis_result analysis_engine::run(const sd_fault_tree& tree) {
  const stopwatch total_timer;
  obs::span_scope run_span("engine.run");
  analysis_result result;
  engine_stats& stats = result.stats;
  const std::size_t cache_hits_before = cache_.hits();
  const std::size_t cache_misses_before = cache_.misses();

  // Stage 1: FT-bar with worst-case probabilities (paper §V-B).
  stopwatch stage_timer;
  const static_translation translation = [&] {
    obs::span_scope span("engine.translate");
    span.arg("events", static_cast<double>(tree.structure().size()));
    return translate_to_static(tree, options_.horizon, options_.epsilon,
                               options_.reference_cutoff);
  }();
  stats.translate_seconds = stage_timer.seconds();

  // Stage 1b: preprocessing — normalise, simplify and modularise FT-bar
  // before any cutset is generated (every rewrite preserves the structure
  // function, so the cutset list and probability are unchanged).
  stage_timer.reset();
  const prep_result prep = [&] {
    obs::span_scope span("engine.prep");
    prep_result p = preprocess(translation.ft_bar, options_.prep);
    span.arg("nodes_before", static_cast<double>(p.stats.nodes_before));
    span.arg("nodes_after", static_cast<double>(p.stats.nodes_after));
    span.arg("modules", static_cast<double>(p.stats.modules_found));
    return p;
  }();
  stats.prep_seconds = stage_timer.seconds();
  stats.prep_nodes_before = prep.stats.nodes_before;
  stats.prep_nodes_after = prep.stats.nodes_after;
  stats.prep_nodes_eliminated = prep.stats.nodes_eliminated();
  stats.prep_atleast_lowered = prep.stats.atleast_lowered;
  stats.prep_constants_folded = prep.stats.constants_folded;
  stats.prep_gates_coalesced = prep.stats.gates_coalesced;
  stats.prep_duplicates_merged = prep.stats.duplicates_merged;
  stats.prep_common_args_merged = prep.stats.common_args_merged;
  stats.prep_absorptions = prep.stats.absorptions;
  stats.prep_passes = prep.stats.passes;
  stats.prep_modules = prep.stats.modules_found;

  // One pool serves stage 2 (cutset generation) and stage 3
  // (quantification); counter snapshots attribute activity per stage.
  thread_pool pool(options_.threads);

  // Stage 2: relevant minimal cutsets through the selected source, one
  // subproblem per prep module, recombined to the exact full list.
  stage_timer.reset();
  cutset_generation generated;
  {
    obs::span_scope gen_span("engine.generate");
    obs::ambient_parent_scope ambient(gen_span.id());
    const std::unique_ptr<cutset_source> source =
        make_cutset_source(options_.backend, options_.bdd_ordering);
    stats.backend = source->name();
    stats.bdd_ordering = to_string(options_.bdd_ordering);
    const pool_counters before_generate = pool.counters();
    modular_generation modular = generate_modular(
        prep, translation, *source, options_.cutoff, &pool);
    generated = std::move(modular.generation);
    stats.prep_module_cutsets = modular.module_cutsets;
    const pool_counters after_generate = pool.counters();
    stats.generate_seconds = stage_timer.seconds();
    stats.num_cutsets = generated.cutsets.size();
    stats.source_partials = generated.partials_processed;
    stats.source_discarded = generated.discarded;
    stats.bdd_nodes = generated.bdd_nodes;
    stats.subset_tests = generated.subset_tests;
    stats.bitset_words = generated.bitset_words;
    stats.bdd_sift_swaps = generated.sift_swaps;
    stats.mocus_threads = pool.size();
    stats.mocus_tasks = after_generate.submitted - before_generate.submitted;
    stats.mocus_steals = after_generate.stolen - before_generate.stolen;
    stats.mocus_occupancy = after_generate.occupancy_since(before_generate);
    gen_span.arg("cutsets", static_cast<double>(stats.num_cutsets));
    gen_span.arg("partials", static_cast<double>(stats.source_partials));
    gen_span.arg("tasks", static_cast<double>(stats.mocus_tasks));
    gen_span.arg("occupancy", stats.mocus_occupancy);
  }

  // Optional exact-static stage: one BDD over the whole preprocessed
  // FT-bar, evaluated by Shannon decomposition — the exact static
  // top-event probability, free of rare-event and cutoff error. It
  // certifies stage 2's truncated sum from above and uses the same
  // variable-ordering heuristic as the bdd backend.
  if (options_.exact_static) {
    stage_timer.reset();
    obs::span_scope exact_span("engine.exact_static");
    const ft_bdd compiled(prep.tree, fault_tree::npos, options_.bdd_ordering);
    result.exact_static_probability = compiled.probability();
    stats.bdd_sift_swaps += compiled.sift_swaps();
    stats.exact_static_seconds = stage_timer.seconds();
    exact_span.arg("nodes", static_cast<double>(compiled.node_count()));
    exact_span.arg("probability", result.exact_static_probability);
  }

  // Stage 3: per-cutset quantification, in parallel (paper §V-C).
  stage_timer.reset();
  {
    obs::span_scope quant_span("engine.quantify");
    obs::ambient_parent_scope ambient(quant_span.id());
    quantify_options qopts;
    qopts.horizon = options_.horizon;
    qopts.epsilon = options_.epsilon;
    qopts.max_product_states = options_.max_product_states;
    qopts.mode = options_.mode;
    qopts.lump_symmetry = options_.lump_symmetry;
    qopts.packed_state_keys = options_.packed_state_keys;
    qopts.transient_early_termination = options_.transient_early_termination;
    const static_product_quantifier static_quantifier(tree);
    const product_chain_quantifier chain_quantifier(
        tree, translation, qopts,
        options_.cache_quantifications ? &cache_ : nullptr);
    result.cutsets.resize(generated.cutsets.size());
    std::vector<cutset_result>& quantified = result.cutsets;
    stats.pool_threads = pool.size();
    const pool_counters before_quantify = pool.counters();
    parallel_for(pool, generated.cutsets.size(), [&](std::size_t i) {
      cutset c = std::move(generated.cutsets[i]);
      const quantifier& q =
          static_quantifier.handles(c)
              ? static_cast<const quantifier&>(static_quantifier)
              : chain_quantifier;
      quantified[i] = q.quantify(std::move(c));
    });
    const pool_counters after_quantify = pool.counters();
    stats.quantify_seconds = stage_timer.seconds();
    stats.quantify_tasks = after_quantify.submitted - before_quantify.submitted;
    stats.quantify_steals = after_quantify.stolen - before_quantify.stolen;
    stats.quantify_occupancy = after_quantify.occupancy_since(before_quantify);
    quant_span.arg("tasks", static_cast<double>(stats.quantify_tasks));
    quant_span.arg("occupancy", stats.quantify_occupancy);
  }

  // Stage 4: rare-event sum over relevant cutsets plus statistics.
  stage_timer.reset();
  {
    obs::span_scope sum_span("engine.sum");
    std::vector<cutset_result>& quantified = result.cutsets;
    std::size_t dynamic_events_total = 0;
    std::size_t added_dynamic_total = 0;
    for (auto& q : quantified) {
      if (options_.cutoff > 0.0 && q.probability <= options_.cutoff) continue;
      result.failure_probability += q.probability;
    }
    for (auto& q : quantified) {
      if (!q.error.empty()) ++stats.failed_quantifications;
      if (!q.dynamic) {
        ++stats.static_cutsets;
        continue;
      }
      ++stats.dynamic_cutsets;
      ++result.num_dynamic_cutsets;
      stats.lumped_orbits += q.lumped_orbits;
      if (q.lumped_orbits > 0) ++stats.lumped_cutsets;
      stats.uniformisation_steps_saved += q.steps_saved;
      if (q.chain_states > 0 || q.cache_hit) {
        if (q.packed_keys) {
          ++stats.packed_key_chains;
        } else {
          ++stats.vector_key_chains;
        }
      }
      const std::size_t events = q.num_dynamic + q.num_added_dynamic;
      if (result.dynamic_events_histogram.size() <= events) {
        result.dynamic_events_histogram.resize(events + 1, 0);
      }
      ++result.dynamic_events_histogram[events];
      dynamic_events_total += events;
      added_dynamic_total += q.num_added_dynamic;
    }
    if (result.num_dynamic_cutsets > 0) {
      result.mean_dynamic_events =
          static_cast<double>(dynamic_events_total) /
          static_cast<double>(result.num_dynamic_cutsets);
      result.mean_added_dynamic_events =
          static_cast<double>(added_dynamic_total) /
          static_cast<double>(result.num_dynamic_cutsets);
    }
    if (!options_.keep_cutset_details) {
      result.cutsets.clear();
      result.cutsets.shrink_to_fit();
    }
    stats.sum_seconds = stage_timer.seconds();
    sum_span.arg("dynamic_cutsets", static_cast<double>(stats.dynamic_cutsets));
  }

  stats.cache_hits = cache_.hits() - cache_hits_before;
  stats.cache_misses = cache_.misses() - cache_misses_before;
  stats.cache_entries = cache_.size();
  stats.total_seconds = total_timer.seconds();
  run_span.arg("cutsets", static_cast<double>(stats.num_cutsets));

  // Publish the run's counters under their canonical registry names so a
  // --metrics-json dump (or any registry consumer) sees this run.
  stats.publish(obs::metrics_registry::global());

  // Legacy mirrors of the per-stage instrumentation.
  result.num_cutsets = stats.num_cutsets;
  result.translate_seconds = stats.translate_seconds;
  result.mcs_seconds = stats.generate_seconds;
  result.quantify_seconds = stats.quantify_seconds;
  result.total_seconds = stats.total_seconds;
  result.mocus_partials = stats.source_partials;
  result.mocus_discarded = stats.source_discarded;
  return result;
}

analysis_result analyze(const sd_fault_tree& tree,
                        const analysis_options& options) {
  analysis_engine engine(options);
  return engine.run(tree);
}

}  // namespace sdft
