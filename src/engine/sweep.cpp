#include "engine/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <optional>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace sdft {

namespace {

/// Total grid-size guard: a mistyped axis should fail loudly, not OOM.
constexpr std::size_t max_grid_points = 1 << 20;

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// The `i`-th of `count` values between lo and hi (inclusive ends).
double axis_value(const sweep_description::range& r, std::size_t i) {
  if (r.count == 1) return r.lo;
  const double t =
      static_cast<double>(i) / static_cast<double>(r.count - 1);
  if (r.log_scale) return r.lo * std::pow(r.hi / r.lo, t);
  return r.lo + (r.hi - r.lo) * t;
}

}  // namespace

sweep_description parse_sweep_ranges(const std::vector<std::string>& args) {
  sweep_description out;
  for (const std::string& arg : args) {
    const auto fail = [&](const std::string& what) {
      throw error("sweep range '" + arg + "': " + what +
                  " (expected NAME=lo:hi:N[:log|:linear])");
    };
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) fail("missing NAME=");
    sweep_description::range r;
    r.event = arg.substr(0, eq);
    std::vector<std::string> parts;
    std::size_t start = eq + 1;
    while (start <= arg.size()) {
      const std::size_t colon = arg.find(':', start);
      parts.push_back(arg.substr(start, colon == std::string::npos
                                            ? std::string::npos
                                            : colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (parts.size() < 3 || parts.size() > 4) fail("need lo:hi:N");
    try {
      std::size_t used = 0;
      r.lo = std::stod(parts[0], &used);
      if (used != parts[0].size()) fail("malformed lo");
      r.hi = std::stod(parts[1], &used);
      if (used != parts[1].size()) fail("malformed hi");
      const long long n = std::stoll(parts[2], &used);
      if (used != parts[2].size() || n < 1) fail("N must be >= 1");
      r.count = static_cast<std::size_t>(n);
    } catch (const error&) {
      throw;
    } catch (const std::exception&) {
      fail("malformed number");
    }
    if (parts.size() == 4) {
      if (parts[3] == "log") {
        r.log_scale = true;
      } else if (parts[3] == "linear") {
        r.log_scale = false;
      } else {
        fail("scale must be 'log' or 'linear'");
      }
    }
    out.ranges.push_back(std::move(r));
  }
  return out;
}

sweep_description parse_sweep_json(const std::string& text) {
  return parse_sweep_value(json::parse(text));
}

sweep_description parse_sweep_value(const json::value& root) {
  if (!root.is_object()) throw error("sweep spec: top level must be an object");
  sweep_description out;
  if (root.contains("points")) {
    for (const json::value& p : root.at("points").as_array()) {
      sweep_description::named_point point;
      if (p.contains("overrides")) {
        for (const auto& [name, v] : p.at("overrides").as_object()) {
          point.overrides.emplace_back(name, v.as_number());
        }
      }
      if (p.contains("horizon")) point.horizon = p.at("horizon").as_number();
      if (p.contains("label")) point.label = p.at("label").as_string();
      out.points.push_back(std::move(point));
    }
  }
  if (root.contains("params")) {
    if (!out.points.empty()) {
      throw error("sweep spec: give either 'points' or 'params', not both");
    }
    for (const json::value& p : root.at("params").as_array()) {
      sweep_description::range r;
      r.event = p.at("name").as_string();
      r.lo = p.at("lo").as_number();
      r.hi = p.at("hi").as_number();
      const double n = p.at("n").as_number();
      if (n < 1) throw error("sweep spec: 'n' must be >= 1");
      r.count = static_cast<std::size_t>(n);
      if (p.contains("scale")) {
        const std::string& scale = p.at("scale").as_string();
        if (scale == "log") {
          r.log_scale = true;
        } else if (scale == "linear") {
          r.log_scale = false;
        } else {
          throw error("sweep spec: scale must be 'log' or 'linear'");
        }
      }
      out.ranges.push_back(std::move(r));
    }
  }
  if (out.empty()) {
    throw error("sweep spec: needs a 'points' or 'params' array");
  }
  return out;
}

sweep_spec resolve_sweep(const sweep_description& description,
                         const sd_fault_tree& tree) {
  require_model(!description.empty(), "sweep: no points or ranges given");
  const auto resolve_event = [&](const std::string& name) {
    const node_index e = tree.structure().find(name);
    require_model(e != fault_tree::npos, "sweep: unknown event '" + name + "'");
    require_model(
        tree.is_static(e),
        "sweep: event '" + name +
            "' is not a static basic event (dynamic parameters live in "
            "their chains and cannot be swept)");
    return e;
  };
  const auto check_probability = [](const std::string& name, double p) {
    require_model(p >= 0.0 && p <= 1.0, "sweep: probability " +
                                            format_value(p) + " for '" +
                                            name + "' outside [0, 1]");
  };

  sweep_spec spec;
  if (!description.points.empty()) {
    spec.points.reserve(description.points.size());
    for (const auto& p : description.points) {
      sweep_point point;
      point.horizon = p.horizon;
      point.label = p.label;
      std::string label;
      for (const auto& [name, value] : p.overrides) {
        check_probability(name, value);
        point.overrides.emplace_back(resolve_event(name), value);
        label += (label.empty() ? "" : ",") + name + "=" + format_value(value);
      }
      if (point.label.empty()) point.label = std::move(label);
      spec.points.push_back(std::move(point));
    }
    return spec;
  }

  // Cartesian grid over the range axes.
  std::vector<node_index> events;
  std::size_t total = 1;
  for (const auto& r : description.ranges) {
    const node_index e = resolve_event(r.event);
    require_model(std::find(events.begin(), events.end(), e) == events.end(),
                  "sweep: duplicate axis for event '" + r.event + "'");
    if (r.log_scale) {
      require_model(r.lo > 0.0 && r.hi > 0.0,
                    "sweep: log axis for '" + r.event +
                        "' needs positive bounds");
    }
    check_probability(r.event, r.lo);
    check_probability(r.event, r.hi);
    events.push_back(e);
    require_model(total <= max_grid_points / r.count,
                  "sweep: grid larger than " +
                      std::to_string(max_grid_points) + " points");
    total *= r.count;
  }
  spec.points.reserve(total);
  std::vector<std::size_t> idx(description.ranges.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    sweep_point point;
    std::string label;
    for (std::size_t a = 0; a < description.ranges.size(); ++a) {
      const auto& r = description.ranges[a];
      const double v = axis_value(r, idx[a]);
      check_probability(r.event, v);
      point.overrides.emplace_back(events[a], v);
      label += (label.empty() ? "" : ",") + r.event + "=" + format_value(v);
    }
    point.label = std::move(label);
    spec.points.push_back(std::move(point));
    for (std::size_t a = description.ranges.size(); a-- > 0;) {
      if (++idx[a] < description.ranges[a].count) break;
      idx[a] = 0;
    }
  }
  return spec;
}

sweep_result run_sweep(analysis_engine& engine, const sd_fault_tree& base,
                       const sweep_spec& spec, thread_pool* pool) {
  return run_sweep(engine, base, spec, engine.options(), pool);
}

sweep_result run_sweep(analysis_engine& engine, const sd_fault_tree& base,
                       const sweep_spec& spec,
                       const analysis_options& base_options,
                       thread_pool* pool) {
  require_model(!spec.points.empty(), "sweep: empty point list");
  const stopwatch total_timer;
  obs::span_scope span("engine.sweep");
  span.arg("points", static_cast<double>(spec.points.size()));
  const analysis_options& base_opts = base_options;
  sweep_result out;

  // Prime the structure cache with the envelope: per-event maximum
  // probability over the base tree and every point, at the maximum
  // horizon. Every point is then pointwise dominated, so its analysis
  // replays stages 1b–2 from the cache (reachability probabilities are
  // nondecreasing in the horizon, so the max-horizon FT-bar probabilities
  // bound every point's).
  // (The mc backend generates no cutsets, so there is no structure to
  // prime — every point is an independent trajectory campaign.)
  if (base_opts.use_structure_cache && base_opts.backend != cutset_backend::mc) {
    const stopwatch prime_timer;
    sd_fault_tree envelope = base;
    double max_horizon = base_opts.horizon;
    for (const sweep_point& p : spec.points) {
      for (const auto& [e, prob] : p.overrides) {
        envelope.structure().set_probability(
            e, std::max(envelope.structure().node(e).probability, prob));
      }
      if (p.horizon > 0) max_horizon = std::max(max_horizon, p.horizon);
    }
    analysis_options prime_opts = base_opts;
    prime_opts.horizon = max_horizon;
    engine.prime(envelope, prime_opts);
    out.prime_seconds = prime_timer.seconds();
  }

  // Fan the points out over the pool; each analysis runs inline on its
  // worker, sharing the engine's structure and quantification caches.
  std::optional<thread_pool> own_pool;
  if (pool == nullptr) {
    own_pool.emplace(base_opts.threads);
    pool = &*own_pool;
  }
  out.threads = pool->size();
  out.points.resize(spec.points.size());
  std::atomic<std::size_t> struct_hits{0};
  parallel_for(*pool, spec.points.size(), [&](std::size_t i) {
    const sweep_point& pt = spec.points[i];
    sd_fault_tree point_tree = base;
    for (const auto& [e, prob] : pt.overrides) {
      point_tree.structure().set_probability(e, prob);
    }
    analysis_options opts = base_opts;
    if (pt.horizon > 0) opts.horizon = pt.horizon;
    opts.inline_execution = true;
    opts.publish_metrics = false;
    analysis_result r = engine.run(point_tree, opts);
    struct_hits.fetch_add(r.stats.struct_cache_hits,
                          std::memory_order_relaxed);
    out.points[i] = std::move(r);
  });
  out.struct_cache_hits = struct_hits.load(std::memory_order_relaxed);
  for (const analysis_result& r : out.points) {
    out.aggregate.accumulate(r.stats);
  }
  out.aggregate.pool_threads = out.threads;
  out.total_seconds = total_timer.seconds();

  // One aggregate snapshot for the registry instead of N stomping
  // per-point publishes, plus the sweep's own counters.
  auto& registry = obs::metrics_registry::global();
  out.aggregate.publish(registry);
  registry.set_counter("sweep.points", out.points.size());
  registry.set_counter("sweep.struct_cache_hits", out.struct_cache_hits);
  registry.set_gauge("sweep.prime_seconds", out.prime_seconds);
  registry.set_gauge("sweep.total_seconds", out.total_seconds);
  span.arg("struct_cache_hits", static_cast<double>(out.struct_cache_hits));
  return out;
}

}  // namespace sdft
