#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "core/mcs_model.hpp"
#include "util/lru.hpp"

namespace sdft {

/// Structural signature of the transient solve an mcs_model induces: the
/// full FT_C structure (gate types and wiring), the numeric content of
/// every basic event (static probability, or the complete CTMC /
/// triggered-CTMC definition), the trigger edges, and the solver inputs
/// (horizon, epsilon, and whether symmetry lumping is enabled — lumped and
/// unlumped solves agree only up to roundoff, so they must not alias).
/// Everything that determines the product-chain probability is encoded
/// byte-exactly; names and the static_factor are deliberately excluded, so
/// cutsets that share dynamic sub-structure but differ in their static
/// events map to the same key.
std::string mcs_model_signature(const mcs_model& model, double horizon,
                                double epsilon, bool lump_symmetry = true);

/// Thread-safe memoisation of product-chain transient solves, keyed by
/// mcs_model_signature(). Stores the *chain* failure probability (before
/// the static factor is multiplied back in), so structurally identical
/// dynamic parts are solved once per engine lifetime.
///
/// Keys are compared as full strings — hash collisions cannot produce
/// wrong probabilities. Only successful solves are stored; fallbacks
/// (e.g. product-size overflows) are re-attempted.
///
/// The cache is bounded: entries past `capacity` are evicted least
/// recently used, so a resident process (sdft serve) holds its footprint
/// steady. Eviction can only cost a re-solve, never change a result —
/// hits replay the bit-identical solve a fresh run would produce.
class quantification_cache {
 public:
  /// Default entry bound; one entry is a few hundred bytes, so this caps
  /// the cache at tens of MB in the worst case.
  static constexpr std::size_t default_capacity = 1 << 16;

  struct entry {
    double chain_probability = 0;  ///< Pr[Reach<=t(Failed)] of the chain
    std::size_t chain_states = 0;  ///< product chain size
    // Fast-path counters of the original solve, replayed on every hit so
    // engine_stats aggregates stay meaningful under memoisation.
    std::size_t lumped_orbits = 0;
    std::size_t steps_saved = 0;
    bool packed_keys = false;
  };

  explicit quantification_cache(std::size_t capacity = default_capacity);

  /// Returns the cached solve, counting a hit/miss (a hit refreshes the
  /// entry's LRU recency).
  std::optional<entry> find(const std::string& key) const;

  /// Inserts a solve (first writer wins; duplicates from concurrent
  /// misses are benign since they carry the same value), evicting the
  /// least recently used entry past capacity.
  void store(const std::string& key, const entry& e);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const;
  std::size_t evictions() const;

  /// Changes the entry bound (0 = unbounded), evicting immediately.
  void set_capacity(std::size_t capacity);

  /// Drops all entries and resets the counters.
  void clear();

 private:
  mutable std::mutex mutex_;
  mutable lru_map<std::string, entry> map_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace sdft
