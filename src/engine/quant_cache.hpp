#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/mcs_model.hpp"

namespace sdft {

/// Structural signature of the transient solve an mcs_model induces: the
/// full FT_C structure (gate types and wiring), the numeric content of
/// every basic event (static probability, or the complete CTMC /
/// triggered-CTMC definition), the trigger edges, and the solver inputs
/// (horizon, epsilon, and whether symmetry lumping is enabled — lumped and
/// unlumped solves agree only up to roundoff, so they must not alias).
/// Everything that determines the product-chain probability is encoded
/// byte-exactly; names and the static_factor are deliberately excluded, so
/// cutsets that share dynamic sub-structure but differ in their static
/// events map to the same key.
std::string mcs_model_signature(const mcs_model& model, double horizon,
                                double epsilon, bool lump_symmetry = true);

/// Thread-safe memoisation of product-chain transient solves, keyed by
/// mcs_model_signature(). Stores the *chain* failure probability (before
/// the static factor is multiplied back in), so structurally identical
/// dynamic parts are solved once per engine lifetime.
///
/// Keys are compared as full strings — hash collisions cannot produce
/// wrong probabilities. Only successful solves are stored; fallbacks
/// (e.g. product-size overflows) are re-attempted.
class quantification_cache {
 public:
  struct entry {
    double chain_probability = 0;  ///< Pr[Reach<=t(Failed)] of the chain
    std::size_t chain_states = 0;  ///< product chain size
    // Fast-path counters of the original solve, replayed on every hit so
    // engine_stats aggregates stay meaningful under memoisation.
    std::size_t lumped_orbits = 0;
    std::size_t steps_saved = 0;
    bool packed_keys = false;
  };

  /// Returns the cached solve, counting a hit/miss.
  std::optional<entry> find(const std::string& key) const;

  /// Inserts a solve (first writer wins; duplicates from concurrent
  /// misses are benign since they carry the same value).
  void store(const std::string& key, const entry& e);

  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Drops all entries and resets the counters.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, entry> map_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace sdft
