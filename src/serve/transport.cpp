#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace sdft::serve {

void serve_stdio(analysis_service& service, std::istream& in,
                 std::ostream& out) {
  std::string line;
  while (!service.shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    out << service.handle(line) << '\n' << std::flush;
  }
}

namespace {

/// Closes the fd on every exit path.
struct fd_guard {
  int fd = -1;
  ~fd_guard() {
    if (fd >= 0) ::close(fd);
  }
};

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Pulls the next '\n'-terminated line out of `buffer`, receiving more as
/// needed. The socket has a short receive timeout, so the loop notices a
/// shutdown initiated by another connection. Returns false on EOF, error
/// or shutdown.
bool read_line(int fd, const analysis_service& service, std::string& buffer,
               std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (service.shutdown_requested()) return false;
      continue;
    }
    return false;
  }
}

void handle_connection(analysis_service& service, int fd) {
  fd_guard guard{fd};
  timeval timeout{};
  timeout.tv_usec = 200'000;  // 200ms, the shutdown poll granularity
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  std::string buffer;
  std::string line;
  while (read_line(fd, service, buffer, line)) {
    if (line.empty() || line == "\r") continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!send_all(fd, service.handle(line) + '\n')) break;
    if (service.shutdown_requested()) break;
  }
}

}  // namespace

void serve_tcp(analysis_service& service, unsigned short port,
               std::ostream& log, std::atomic<int>* bound_port) {
  fd_guard listener{::socket(AF_INET, SOCK_STREAM, 0)};
  if (listener.fd < 0) {
    throw error(std::string("serve: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw error("serve: cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                std::strerror(errno));
  }
  if (::listen(listener.fd, 64) != 0) {
    throw error(std::string("serve: listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const unsigned short actual = ntohs(addr.sin_port);
  if (bound_port != nullptr) bound_port->store(actual);
  log << "listening on 127.0.0.1:" << actual << std::endl;

  std::vector<std::thread> connections;
  while (!service.shutdown_requested()) {
    pollfd p{listener.fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listener.fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [&service, fd] { handle_connection(service, fd); });
  }
  for (std::thread& t : connections) t.join();
}

}  // namespace sdft::serve
