#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "engine/engine.hpp"
#include "engine/scenario.hpp"
#include "util/stopwatch.hpp"

namespace sdft::serve {

/// The resident analysis service behind `sdft serve`: a model registry
/// plus one shared analysis_engine whose structure and quantification
/// caches persist across requests — the PSA what-if workload (same
/// structure, perturbed parameters, thousands of queries) then pays for
/// cutset generation once and re-quantifies ever after.
///
/// Requests and responses are single-line JSON objects (the transports
/// add the newline framing):
///
///   {"op":"load","name":"m","path":"data/bwr.sdft"}      load from file
///   {"op":"load","name":"m","text":"<sdft source>"}      load inline
///   {"op":"unload","name":"m"}
///   {"op":"list"}
///   {"op":"analyze","model":"m","horizon":24,"cutoff":1e-12,
///    "overrides":{"PUMP":0.01},"exact_static":true}
///   {"op":"sweep","model":"m","params":[{"name":"PUMP","lo":1e-4,
///    "hi":1e-2,"n":8,"scale":"log"}]}                    (or "points")
///   {"op":"load_etree","name":"s","path":"data/plant.etree"}  (or "text")
///   {"op":"etree","model":"s","uq_samples":1000,"uq_seed":7}
///   {"op":"etree","model":"s","params":[...]}            point re-eval
///                                                        (or "points")
///   {"op":"health"}
///   {"op":"stats"}                                        metrics dump
///   {"op":"shutdown"}
///
/// Every request may carry an "id" (string or number), echoed verbatim in
/// the response. Responses carry "ok":true, or "ok":false plus "error".
///
/// handle() is thread-safe and never throws; the serve.{requests,active,
/// errors} metrics are maintained on the global registry.
class analysis_service {
 public:
  explicit analysis_service(analysis_options engine_options = {});

  /// Registers a model from a file / from inline text (also available
  /// through the protocol). Throws sdft::error on parse failure.
  void load_file(const std::string& name, const std::string& path);
  void load_text(const std::string& name, const std::string& text);

  /// Registers a scenario (event-tree) model: parsed and compiled once,
  /// then every `etree` request re-quantifies off the compiled structure.
  void load_etree_file(const std::string& name, const std::string& path);
  void load_etree_text(const std::string& name, const std::string& text);

  /// Handles one request line, returns the response (no newline).
  std::string handle(const std::string& line);

  /// True once a shutdown request was accepted; transports drain and exit.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  std::size_t num_models() const;
  std::size_t num_scenarios() const;
  std::size_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::size_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  analysis_engine& engine() { return engine_; }

 private:
  std::shared_ptr<const sd_fault_tree> model(const std::string& name) const;
  void store_model(const std::string& name,
                   std::shared_ptr<const sd_fault_tree> tree);
  std::shared_ptr<scenario_engine> scenario(const std::string& name) const;

  analysis_engine engine_;
  mutable std::shared_mutex models_mutex_;
  std::map<std::string, std::shared_ptr<const sd_fault_tree>> models_;

  /// Compiled scenarios, under the same lock. run()/evaluate_points() only
  /// read the compiled structure, so concurrent requests share an entry.
  std::map<std::string, std::shared_ptr<scenario_engine>> scenarios_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> errors_{0};
  std::atomic<std::size_t> active_{0};
  stopwatch uptime_;
};

}  // namespace sdft::serve
