#pragma once

#include <atomic>
#include <iosfwd>

#include "serve/service.hpp"

namespace sdft::serve {

/// Serial newline-delimited-JSON loop over a stream pair: one request per
/// line on `in`, one response per line on `out` (flushed per response, so
/// a piped client can interleave). Returns when `in` ends or a shutdown
/// request is handled. Blank lines are skipped.
void serve_stdio(analysis_service& service, std::istream& in,
                 std::ostream& out);

/// TCP NDJSON server on 127.0.0.1:`port` (0 = ephemeral). Each connection
/// gets its own handler thread running the same per-line loop, so
/// concurrent clients exercise the service's shared caches in parallel.
/// Blocks until a shutdown request is handled (from any connection), then
/// drains and joins. The bound port is stored into `*bound_port` (when
/// non-null) once listening, and a "listening on 127.0.0.1:<port>" line
/// goes to `log` — which is how scripted clients and the CI smoke job
/// find an ephemeral port. Throws sdft::error when the socket cannot be
/// bound.
void serve_tcp(analysis_service& service, unsigned short port,
               std::ostream& log, std::atomic<int>* bound_port = nullptr);

}  // namespace sdft::serve
