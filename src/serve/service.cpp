#include "serve/service.hpp"

#include <fstream>
#include <utility>

#include "engine/sweep.hpp"
#include "etree/scenario.hpp"
#include "obs/obs.hpp"
#include "sdft/parser.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace sdft::serve {

namespace {

/// Raw JSON literal of the request's "id" (string or number), empty when
/// absent — echoed verbatim so pipelined clients can match responses.
std::string id_literal(const json::value& root) {
  if (!root.contains("id")) return {};
  const json::value& id = root.at("id");
  if (id.is_string()) return "\"" + json::escape(id.as_string()) + "\"";
  if (id.is_number()) return json::number(id.as_number());
  throw error("serve: 'id' must be a string or a number");
}

double checked_probability(const std::string& name, double p) {
  require_model(p >= 0.0 && p <= 1.0,
                "serve: probability for '" + name + "' outside [0, 1]");
  return p;
}

/// Shared backend/"mc" request grammar of the analyze and sweep ops:
///   "backend": "mocus" | "bdd" | "mc",
///   "mc": {"method": "crude"|"forcing"|"splitting", "trajectories": N,
///          "seed": S, "batch": N, "levels": N, "replications": N}
void apply_backend_request(const json::value& root, analysis_options& opts) {
  if (root.contains("backend")) {
    const std::string& name = root.at("backend").as_string();
    require_model(parse_cutset_backend(name, opts.backend),
                  "serve: unknown backend '" + name + "'");
  }
  if (!root.contains("mc")) return;
  const json::value& mc = root.at("mc");
  require_model(mc.is_object(), "serve: 'mc' must be an object");
  if (mc.contains("method")) {
    const std::string& method = mc.at("method").as_string();
    require_model(sim::parse_mc_method(method, opts.mc.method),
                  "serve: unknown mc method '" + method + "'");
  }
  if (mc.contains("trajectories")) {
    opts.mc.trajectories =
        static_cast<std::size_t>(mc.at("trajectories").as_number());
  }
  if (mc.contains("seed")) {
    opts.mc.seed = static_cast<std::uint64_t>(mc.at("seed").as_number());
  }
  if (mc.contains("batch")) {
    opts.mc.batch = static_cast<std::size_t>(mc.at("batch").as_number());
  }
  if (mc.contains("levels")) {
    opts.mc.levels = static_cast<std::size_t>(mc.at("levels").as_number());
  }
  if (mc.contains("replications")) {
    opts.mc.replications =
        static_cast<std::size_t>(mc.at("replications").as_number());
  }
}

void write_uq_band(json::writer& w, const uncertainty_band& band) {
  w.key("uq")
      .begin_object()
      .key("mean")
      .number(band.mean)
      .key("p05")
      .number(band.p05)
      .key("p50")
      .number(band.p50)
      .key("p95")
      .number(band.p95)
      .end_object();
}

/// The per-result confidence-interval fields of an mc-backend response.
void write_mc_fields(json::writer& w, const sim::mc_result& mc) {
  w.key("mc_method").string(sim::to_string(mc.method));
  w.key("ci_low").number(mc.ci_low);
  w.key("ci_high").number(mc.ci_high);
  w.key("ci_half_width").number(mc.ci_half_width);
  w.key("relative_error").number(mc.relative_error);
  w.key("trajectories").integer(mc.trajectories);
  w.key("failures").integer(mc.failures);
}

}  // namespace

analysis_service::analysis_service(analysis_options engine_options)
    : engine_(std::move(engine_options)) {}

void analysis_service::load_file(const std::string& name,
                                 const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw error("serve: cannot open model file '" + path + "'");
  }
  store_model(name,
              std::make_shared<const sd_fault_tree>(parse_sd_fault_tree(in)));
}

void analysis_service::load_text(const std::string& name,
                                 const std::string& text) {
  store_model(name, std::make_shared<const sd_fault_tree>(
                        parse_sd_fault_tree_string(text)));
}

void analysis_service::load_etree_file(const std::string& name,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw error("serve: cannot open scenario file '" + path + "'");
  }
  scenario_model model = parse_scenario(in);
  scenario_options opts;
  opts.analysis = engine_.options();
  opts.analysis.inline_execution = true;
  auto compiled = std::make_shared<scenario_engine>(std::move(model), opts);
  std::unique_lock lock(models_mutex_);
  scenarios_[name] = std::move(compiled);
}

void analysis_service::load_etree_text(const std::string& name,
                                       const std::string& text) {
  scenario_model model = parse_scenario_string(text);
  scenario_options opts;
  opts.analysis = engine_.options();
  opts.analysis.inline_execution = true;
  auto compiled = std::make_shared<scenario_engine>(std::move(model), opts);
  std::unique_lock lock(models_mutex_);
  scenarios_[name] = std::move(compiled);
}

std::size_t analysis_service::num_models() const {
  std::shared_lock lock(models_mutex_);
  return models_.size();
}

std::size_t analysis_service::num_scenarios() const {
  std::shared_lock lock(models_mutex_);
  return scenarios_.size();
}

std::shared_ptr<scenario_engine> analysis_service::scenario(
    const std::string& name) const {
  std::shared_lock lock(models_mutex_);
  const auto it = scenarios_.find(name);
  require_model(it != scenarios_.end(),
                "serve: no scenario named '" + name +
                    "' (load_etree it first)");
  return it->second;
}

std::shared_ptr<const sd_fault_tree> analysis_service::model(
    const std::string& name) const {
  std::shared_lock lock(models_mutex_);
  const auto it = models_.find(name);
  require_model(it != models_.end(),
                "serve: no model named '" + name + "' (load it first)");
  return it->second;
}

void analysis_service::store_model(
    const std::string& name, std::shared_ptr<const sd_fault_tree> tree) {
  std::unique_lock lock(models_mutex_);
  models_[name] = std::move(tree);
}

std::string analysis_service::handle(const std::string& line) {
  auto& registry = obs::metrics_registry::global();
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry.get_counter("serve.requests").add(1);
  const std::size_t active = active_.fetch_add(1, std::memory_order_relaxed);
  registry.set_gauge("serve.active", static_cast<double>(active + 1));
  std::string id;
  std::string response;
  try {
    obs::span_scope span("serve.request", "serve");
    const json::value root = json::parse(line);
    if (!root.is_object()) throw error("serve: request must be a JSON object");
    id = id_literal(root);
    const std::string& op = root.at("op").as_string();

    json::writer w;
    w.begin_object().key("ok").boolean(true);
    if (!id.empty()) w.key("id").raw(id);
    w.key("op").string(op);

    if (op == "load") {
      const std::string& name = root.at("name").as_string();
      if (root.contains("path")) {
        load_file(name, root.at("path").as_string());
      } else if (root.contains("text")) {
        load_text(name, root.at("text").as_string());
      } else {
        throw error("serve: load needs a 'path' or a 'text' field");
      }
      w.key("model").string(name);
      w.key("nodes").integer(model(name)->structure().size());
    } else if (op == "unload") {
      const std::string& name = root.at("name").as_string();
      std::unique_lock lock(models_mutex_);
      require_model(models_.erase(name) + scenarios_.erase(name) > 0,
                    "serve: no model named '" + name + "'");
      w.key("model").string(name);
    } else if (op == "list") {
      w.key("models").begin_array();
      std::shared_lock lock(models_mutex_);
      for (const auto& [name, tree] : models_) {
        w.begin_object()
            .key("name")
            .string(name)
            .key("nodes")
            .integer(tree->structure().size())
            .end_object();
      }
      w.end_array();
      w.key("scenarios").begin_array();
      for (const auto& [name, compiled] : scenarios_) {
        w.begin_object()
            .key("name")
            .string(name)
            .key("sequences")
            .integer(compiled->compiled_event_tree().num_sequences())
            .key("end_states")
            .integer(compiled->end_state_names().size())
            .end_object();
      }
      lock.unlock();
      w.end_array();
    } else if (op == "load_etree") {
      const std::string& name = root.at("name").as_string();
      if (root.contains("path")) {
        load_etree_file(name, root.at("path").as_string());
      } else if (root.contains("text")) {
        load_etree_text(name, root.at("text").as_string());
      } else {
        throw error("serve: load_etree needs a 'path' or a 'text' field");
      }
      const auto compiled = scenario(name);
      w.key("scenario").string(name);
      w.key("sequences").integer(
          compiled->compiled_event_tree().num_sequences());
      w.key("end_states").integer(compiled->end_state_names().size());
    } else if (op == "etree") {
      const auto compiled = scenario(root.at("model").as_string());
      if (root.contains("params") || root.contains("points")) {
        // Point re-evaluation off the compiled scenario: the request
        // carries the sweep grammar of engine/sweep.hpp.
        const auto points = compiled->evaluate_points(parse_sweep_value(root));
        w.key("end_state_names").begin_array();
        for (const auto& es : compiled->end_state_names()) w.string(es);
        w.end_array();
        w.key("points").begin_array();
        for (const auto& point : points) {
          w.begin_object().key("label").string(point.label);
          w.key("sequences").begin_array();
          for (const double p : point.sequence_probabilities) w.number(p);
          w.end_array();
          w.key("end_states").begin_array();
          for (const double p : point.end_state_probabilities) w.number(p);
          w.end_array();
          w.end_object();
        }
        w.end_array();
      } else {
        std::size_t uq_samples = 0;
        std::uint64_t uq_seed = 1;
        if (root.contains("uq_samples")) {
          uq_samples =
              static_cast<std::size_t>(root.at("uq_samples").as_number());
        }
        if (root.contains("uq_seed")) {
          uq_seed = static_cast<std::uint64_t>(root.at("uq_seed").as_number());
        }
        const scenario_result result = compiled->run(uq_samples, uq_seed);
        w.key("initiating_probability").number(result.initiating_probability);
        w.key("sequences").begin_array();
        for (const auto& s : result.sequences) {
          w.begin_object()
              .key("label")
              .string(s.label)
              .key("end_state")
              .string(s.end_state)
              .key("probability")
              .number(s.probability)
              .key("mcs_probability")
              .number(s.mcs_probability)
              .key("cutsets")
              .integer(s.num_cutsets);
          if (uq_samples > 0) write_uq_band(w, s.uq);
          w.end_object();
        }
        w.end_array();
        w.key("end_states").begin_array();
        for (const auto& e : result.end_states) {
          w.begin_object()
              .key("name")
              .string(e.name)
              .key("sequences")
              .integer(e.num_sequences)
              .key("probability")
              .number(e.probability)
              .key("mcs_probability")
              .number(e.mcs_probability)
              .key("cutsets")
              .integer(e.num_cutsets);
          if (uq_samples > 0) write_uq_band(w, e.uq);
          w.end_object();
        }
        w.end_array();
        w.key("seconds").number(result.stats.scenario_total_seconds);
      }
    } else if (op == "analyze") {
      const auto tree = model(root.at("model").as_string());
      analysis_options opts = engine_.options();
      // Request handlers run concurrently (one per connection / sweep
      // worker); each analysis runs inline and shares the engine caches.
      opts.inline_execution = true;
      if (root.contains("horizon")) opts.horizon = root.at("horizon").as_number();
      if (root.contains("cutoff")) opts.cutoff = root.at("cutoff").as_number();
      if (root.contains("exact_static")) {
        opts.exact_static = root.at("exact_static").as_bool();
      }
      apply_backend_request(root, opts);
      analysis_result result;
      if (root.contains("overrides")) {
        sd_fault_tree perturbed = *tree;
        for (const auto& [name, v] : root.at("overrides").as_object()) {
          const node_index e = perturbed.structure().find(name);
          require_model(e != fault_tree::npos,
                        "serve: unknown event '" + name + "'");
          require_model(perturbed.is_static(e),
                        "serve: event '" + name +
                            "' is not a static basic event");
          perturbed.structure().set_probability(
              e, checked_probability(name, v.as_number()));
        }
        result = engine_.run(perturbed, opts);
      } else {
        result = engine_.run(*tree, opts);
      }
      w.key("probability").number(result.failure_probability);
      if (opts.exact_static) {
        w.key("exact_static_probability")
            .number(result.exact_static_probability);
      }
      if (opts.backend == cutset_backend::mc) {
        write_mc_fields(w, result.mc);
      } else {
        w.key("cutsets").integer(result.num_cutsets);
        w.key("dynamic_cutsets").integer(result.num_dynamic_cutsets);
        w.key("struct_cache_hit").boolean(result.stats.struct_cache_hits > 0);
      }
      w.key("seconds").number(result.total_seconds);
    } else if (op == "sweep") {
      const auto tree = model(root.at("model").as_string());
      analysis_options opts = engine_.options();
      if (root.contains("horizon")) opts.horizon = root.at("horizon").as_number();
      if (root.contains("cutoff")) opts.cutoff = root.at("cutoff").as_number();
      apply_backend_request(root, opts);
      // The request object itself carries the sweep grammar ("points" or
      // "params" arrays, see engine/sweep.hpp).
      const sweep_spec spec = resolve_sweep(parse_sweep_value(root), *tree);
      const sweep_result result = run_sweep(engine_, *tree, spec, opts);
      w.key("points").begin_array();
      for (std::size_t i = 0; i < result.points.size(); ++i) {
        w.begin_object()
            .key("label")
            .string(spec.points[i].label)
            .key("probability")
            .number(result.points[i].failure_probability);
        if (opts.backend == cutset_backend::mc) {
          write_mc_fields(w, result.points[i].mc);
        } else {
          w.key("cutsets").integer(result.points[i].num_cutsets);
        }
        w.end_object();
      }
      w.end_array();
      w.key("struct_cache_hits").integer(result.struct_cache_hits);
      w.key("prime_seconds").number(result.prime_seconds);
      w.key("seconds").number(result.total_seconds);
    } else if (op == "health") {
      w.key("status").string("ok");
      w.key("models").integer(num_models());
      w.key("scenarios").integer(num_scenarios());
      w.key("requests").integer(requests());
      w.key("errors").integer(errors());
      w.key("uptime_seconds").number(uptime_.seconds());
    } else if (op == "stats") {
      w.key("models").integer(num_models());
      w.key("uptime_seconds").number(uptime_.seconds());
      w.key("struct_cache").begin_object();
      const structure_cache& sc = engine_.structures();
      w.key("entries").integer(sc.size());
      w.key("capacity").integer(sc.capacity());
      w.key("hits").integer(sc.hits());
      w.key("misses").integer(sc.misses());
      w.key("evictions").integer(sc.evictions());
      w.end_object();
      w.key("quant_cache").begin_object();
      const quantification_cache& qc = engine_.cache();
      w.key("entries").integer(qc.size());
      w.key("capacity").integer(qc.capacity());
      w.key("hits").integer(qc.hits());
      w.key("misses").integer(qc.misses());
      w.key("evictions").integer(qc.evictions());
      w.end_object();
      w.key("metrics").raw(registry.to_json());
    } else if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      w.key("status").string("shutting down");
    } else {
      throw error("serve: unknown op '" + op + "'");
    }
    w.end_object();
    response = w.str();
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.get_counter("serve.errors").add(1);
    json::writer w;
    w.begin_object().key("ok").boolean(false);
    if (!id.empty()) w.key("id").raw(id);
    w.key("error").string(e.what());
    w.end_object();
    response = w.str();
  }
  const std::size_t now = active_.fetch_sub(1, std::memory_order_relaxed);
  registry.set_gauge("serve.active", static_cast<double>(now - 1));
  return response;
}

}  // namespace sdft::serve
