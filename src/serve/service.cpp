#include "serve/service.hpp"

#include <fstream>
#include <utility>

#include "engine/sweep.hpp"
#include "obs/obs.hpp"
#include "sdft/parser.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace sdft::serve {

namespace {

/// Raw JSON literal of the request's "id" (string or number), empty when
/// absent — echoed verbatim so pipelined clients can match responses.
std::string id_literal(const json::value& root) {
  if (!root.contains("id")) return {};
  const json::value& id = root.at("id");
  if (id.is_string()) return "\"" + json::escape(id.as_string()) + "\"";
  if (id.is_number()) return json::number(id.as_number());
  throw error("serve: 'id' must be a string or a number");
}

double checked_probability(const std::string& name, double p) {
  require_model(p >= 0.0 && p <= 1.0,
                "serve: probability for '" + name + "' outside [0, 1]");
  return p;
}

/// Shared backend/"mc" request grammar of the analyze and sweep ops:
///   "backend": "mocus" | "bdd" | "mc",
///   "mc": {"method": "crude"|"forcing"|"splitting", "trajectories": N,
///          "seed": S, "batch": N, "levels": N, "replications": N}
void apply_backend_request(const json::value& root, analysis_options& opts) {
  if (root.contains("backend")) {
    const std::string& name = root.at("backend").as_string();
    require_model(parse_cutset_backend(name, opts.backend),
                  "serve: unknown backend '" + name + "'");
  }
  if (!root.contains("mc")) return;
  const json::value& mc = root.at("mc");
  require_model(mc.is_object(), "serve: 'mc' must be an object");
  if (mc.contains("method")) {
    const std::string& method = mc.at("method").as_string();
    require_model(sim::parse_mc_method(method, opts.mc.method),
                  "serve: unknown mc method '" + method + "'");
  }
  if (mc.contains("trajectories")) {
    opts.mc.trajectories =
        static_cast<std::size_t>(mc.at("trajectories").as_number());
  }
  if (mc.contains("seed")) {
    opts.mc.seed = static_cast<std::uint64_t>(mc.at("seed").as_number());
  }
  if (mc.contains("batch")) {
    opts.mc.batch = static_cast<std::size_t>(mc.at("batch").as_number());
  }
  if (mc.contains("levels")) {
    opts.mc.levels = static_cast<std::size_t>(mc.at("levels").as_number());
  }
  if (mc.contains("replications")) {
    opts.mc.replications =
        static_cast<std::size_t>(mc.at("replications").as_number());
  }
}

/// The per-result confidence-interval fields of an mc-backend response.
void write_mc_fields(json::writer& w, const sim::mc_result& mc) {
  w.key("mc_method").string(sim::to_string(mc.method));
  w.key("ci_low").number(mc.ci_low);
  w.key("ci_high").number(mc.ci_high);
  w.key("ci_half_width").number(mc.ci_half_width);
  w.key("relative_error").number(mc.relative_error);
  w.key("trajectories").integer(mc.trajectories);
  w.key("failures").integer(mc.failures);
}

}  // namespace

analysis_service::analysis_service(analysis_options engine_options)
    : engine_(std::move(engine_options)) {}

void analysis_service::load_file(const std::string& name,
                                 const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw error("serve: cannot open model file '" + path + "'");
  }
  store_model(name,
              std::make_shared<const sd_fault_tree>(parse_sd_fault_tree(in)));
}

void analysis_service::load_text(const std::string& name,
                                 const std::string& text) {
  store_model(name, std::make_shared<const sd_fault_tree>(
                        parse_sd_fault_tree_string(text)));
}

std::size_t analysis_service::num_models() const {
  std::shared_lock lock(models_mutex_);
  return models_.size();
}

std::shared_ptr<const sd_fault_tree> analysis_service::model(
    const std::string& name) const {
  std::shared_lock lock(models_mutex_);
  const auto it = models_.find(name);
  require_model(it != models_.end(),
                "serve: no model named '" + name + "' (load it first)");
  return it->second;
}

void analysis_service::store_model(
    const std::string& name, std::shared_ptr<const sd_fault_tree> tree) {
  std::unique_lock lock(models_mutex_);
  models_[name] = std::move(tree);
}

std::string analysis_service::handle(const std::string& line) {
  auto& registry = obs::metrics_registry::global();
  requests_.fetch_add(1, std::memory_order_relaxed);
  registry.get_counter("serve.requests").add(1);
  const std::size_t active = active_.fetch_add(1, std::memory_order_relaxed);
  registry.set_gauge("serve.active", static_cast<double>(active + 1));
  std::string id;
  std::string response;
  try {
    obs::span_scope span("serve.request", "serve");
    const json::value root = json::parse(line);
    if (!root.is_object()) throw error("serve: request must be a JSON object");
    id = id_literal(root);
    const std::string& op = root.at("op").as_string();

    json::writer w;
    w.begin_object().key("ok").boolean(true);
    if (!id.empty()) w.key("id").raw(id);
    w.key("op").string(op);

    if (op == "load") {
      const std::string& name = root.at("name").as_string();
      if (root.contains("path")) {
        load_file(name, root.at("path").as_string());
      } else if (root.contains("text")) {
        load_text(name, root.at("text").as_string());
      } else {
        throw error("serve: load needs a 'path' or a 'text' field");
      }
      w.key("model").string(name);
      w.key("nodes").integer(model(name)->structure().size());
    } else if (op == "unload") {
      const std::string& name = root.at("name").as_string();
      std::unique_lock lock(models_mutex_);
      require_model(models_.erase(name) > 0,
                    "serve: no model named '" + name + "'");
      w.key("model").string(name);
    } else if (op == "list") {
      w.key("models").begin_array();
      std::shared_lock lock(models_mutex_);
      for (const auto& [name, tree] : models_) {
        w.begin_object()
            .key("name")
            .string(name)
            .key("nodes")
            .integer(tree->structure().size())
            .end_object();
      }
      lock.unlock();
      w.end_array();
    } else if (op == "analyze") {
      const auto tree = model(root.at("model").as_string());
      analysis_options opts = engine_.options();
      // Request handlers run concurrently (one per connection / sweep
      // worker); each analysis runs inline and shares the engine caches.
      opts.inline_execution = true;
      if (root.contains("horizon")) opts.horizon = root.at("horizon").as_number();
      if (root.contains("cutoff")) opts.cutoff = root.at("cutoff").as_number();
      if (root.contains("exact_static")) {
        opts.exact_static = root.at("exact_static").as_bool();
      }
      apply_backend_request(root, opts);
      analysis_result result;
      if (root.contains("overrides")) {
        sd_fault_tree perturbed = *tree;
        for (const auto& [name, v] : root.at("overrides").as_object()) {
          const node_index e = perturbed.structure().find(name);
          require_model(e != fault_tree::npos,
                        "serve: unknown event '" + name + "'");
          require_model(perturbed.is_static(e),
                        "serve: event '" + name +
                            "' is not a static basic event");
          perturbed.structure().set_probability(
              e, checked_probability(name, v.as_number()));
        }
        result = engine_.run(perturbed, opts);
      } else {
        result = engine_.run(*tree, opts);
      }
      w.key("probability").number(result.failure_probability);
      if (opts.exact_static) {
        w.key("exact_static_probability")
            .number(result.exact_static_probability);
      }
      if (opts.backend == cutset_backend::mc) {
        write_mc_fields(w, result.mc);
      } else {
        w.key("cutsets").integer(result.num_cutsets);
        w.key("dynamic_cutsets").integer(result.num_dynamic_cutsets);
        w.key("struct_cache_hit").boolean(result.stats.struct_cache_hits > 0);
      }
      w.key("seconds").number(result.total_seconds);
    } else if (op == "sweep") {
      const auto tree = model(root.at("model").as_string());
      analysis_options opts = engine_.options();
      if (root.contains("horizon")) opts.horizon = root.at("horizon").as_number();
      if (root.contains("cutoff")) opts.cutoff = root.at("cutoff").as_number();
      apply_backend_request(root, opts);
      // The request object itself carries the sweep grammar ("points" or
      // "params" arrays, see engine/sweep.hpp).
      const sweep_spec spec = resolve_sweep(parse_sweep_value(root), *tree);
      const sweep_result result = run_sweep(engine_, *tree, spec, opts);
      w.key("points").begin_array();
      for (std::size_t i = 0; i < result.points.size(); ++i) {
        w.begin_object()
            .key("label")
            .string(spec.points[i].label)
            .key("probability")
            .number(result.points[i].failure_probability);
        if (opts.backend == cutset_backend::mc) {
          write_mc_fields(w, result.points[i].mc);
        } else {
          w.key("cutsets").integer(result.points[i].num_cutsets);
        }
        w.end_object();
      }
      w.end_array();
      w.key("struct_cache_hits").integer(result.struct_cache_hits);
      w.key("prime_seconds").number(result.prime_seconds);
      w.key("seconds").number(result.total_seconds);
    } else if (op == "health") {
      w.key("status").string("ok");
      w.key("models").integer(num_models());
      w.key("requests").integer(requests());
      w.key("errors").integer(errors());
      w.key("uptime_seconds").number(uptime_.seconds());
    } else if (op == "stats") {
      w.key("models").integer(num_models());
      w.key("uptime_seconds").number(uptime_.seconds());
      w.key("struct_cache").begin_object();
      const structure_cache& sc = engine_.structures();
      w.key("entries").integer(sc.size());
      w.key("capacity").integer(sc.capacity());
      w.key("hits").integer(sc.hits());
      w.key("misses").integer(sc.misses());
      w.key("evictions").integer(sc.evictions());
      w.end_object();
      w.key("quant_cache").begin_object();
      const quantification_cache& qc = engine_.cache();
      w.key("entries").integer(qc.size());
      w.key("capacity").integer(qc.capacity());
      w.key("hits").integer(qc.hits());
      w.key("misses").integer(qc.misses());
      w.key("evictions").integer(qc.evictions());
      w.end_object();
      w.key("metrics").raw(registry.to_json());
    } else if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      w.key("status").string("shutting down");
    } else {
      throw error("serve: unknown op '" + op + "'");
    }
    w.end_object();
    response = w.str();
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    registry.get_counter("serve.errors").add(1);
    json::writer w;
    w.begin_object().key("ok").boolean(false);
    if (!id.empty()) w.key("id").raw(id);
    w.key("error").string(e.what());
    w.end_object();
    response = w.str();
  }
  const std::size_t now = active_.fetch_sub(1, std::memory_order_relaxed);
  registry.set_gauge("serve.active", static_cast<double>(now - 1));
  return response;
}

}  // namespace sdft::serve
