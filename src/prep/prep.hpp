#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Toggles for the preprocessing rewrites. Normalisation (lowering of
/// atleast gates to shared AND/OR networks) is NOT optional — both
/// backends require an AND/OR tree — so it has no switch here; `enabled`
/// and the per-rewrite flags only govern the optional simplifications and
/// modularization.
struct prep_options {
  /// Master switch: false runs normalisation only (equivalent to every
  /// per-rewrite flag being false).
  bool enabled = true;
  bool fold = true;              ///< constant / one-input gate folding
  bool coalesce = true;          ///< inline single-parent same-type children
  bool merge_duplicates = true;  ///< structural CSE of identical gates
  bool merge_common_args = true; ///< factor args shared across sibling gates
  bool absorb = true;            ///< depth-1 absorption: x + x.y = x
  bool modularize = true;        ///< detect module roots for the engine
  std::uint32_t max_passes = 8;  ///< fixpoint iteration cap
};

/// Counters describing what preprocess() did; mirrored into engine_stats
/// as the prep.* metrics family.
struct prep_stats {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t atleast_lowered = 0;
  std::size_t constants_folded = 0;
  std::size_t gates_coalesced = 0;
  std::size_t duplicates_merged = 0;
  std::size_t common_args_merged = 0;
  std::size_t absorptions = 0;
  std::size_t passes = 0;
  std::size_t modules_found = 0;
  double seconds = 0.0;

  /// Net shrink; 0 when normalisation grew the tree (atleast lowering
  /// trades one voting gate for O(N*K) small gates).
  std::size_t nodes_eliminated() const {
    return nodes_after < nodes_before ? nodes_before - nodes_after : 0;
  }
};

/// A rewritten tree plus the bookkeeping the engine needs to map results
/// back to the source tree.
struct prep_result {
  /// The simplified AND/OR tree. Every basic event keeps its source name
  /// and probability; gates may be renamed, merged or synthesised.
  fault_tree tree;

  /// For each node of `tree`, the index of the source node it descends
  /// from, or fault_tree::npos for synthesised gates. Basic events always
  /// map; cutsets over `tree` translate to source indices through this.
  std::vector<node_index> to_source;

  /// Module roots of `tree` in topological order (nested modules before
  /// their enclosing module, the top gate last). Contains at least the
  /// top gate. With modularize=false (or enabled=false) it is exactly
  /// {top}.
  std::vector<node_index> module_roots;

  prep_stats stats;
};

/// Rewrites `src` into an equivalent simplified AND/OR fault tree.
///
/// All rewrites preserve the monotone structure function over the source
/// basic events, hence the exact minimal-cutset list and the top-event
/// probability — not just approximately, but as the same boolean
/// function; this is what makes prep-on/prep-off runs bit-comparable.
///
///  - normalisation: atleast(k of n) gates become a shared suffix
///    network (O(n*k) gates instead of the C(n,k) eager expansion),
///    duplicate gate arguments are dropped.
///  - folding: one-input gates and constant (empty) gates disappear.
///  - coalescing: an AND under an AND (or OR under OR) with no other
///    parent is inlined.
///  - duplicate merging: structurally identical gates are shared.
///  - common-argument merging: OR(AND(x,A), AND(x,B)) becomes
///    AND(x, OR(A,B)) (and dually), undistributing shared arguments.
///  - absorption: AND(x, OR(x, y), r) drops the OR child (and dually).
///
/// The source tree must validate() and may contain atleast gates; the
/// result never does.
prep_result preprocess(const fault_tree& src, const prep_options& opts = {});

}  // namespace sdft
