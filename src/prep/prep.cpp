#include "prep/prep.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ft/modules.hpp"
#include "util/error.hpp"

namespace sdft {

namespace {

constexpr std::uint32_t wnpos = 0xffffffffU;

/// A node of the mutable working graph. Nodes are never erased while
/// rewriting; `workgraph::replace` redirects an id to its survivor and
/// the final emit drops everything unreachable from the top.
struct wnode {
  node_kind kind = node_kind::gate;
  gate_type type = gate_type::and_gate;
  std::uint32_t k = 0;  // threshold while still an atleast gate
  double probability = 0.0;
  std::string name;                        // empty for synthesised gates
  node_index source = fault_tree::npos;    // source-tree ancestry
  std::vector<std::uint32_t> inputs;       // working ids
};

class workgraph {
 public:
  explicit workgraph(const fault_tree& src) {
    // Children-first import of everything reachable from the source top.
    std::vector<node_index> order;
    {
      const auto all = src.topo_order();
      std::vector<char> live(src.size(), 0);
      for (node_index n : src.descendants(src.top())) live[n] = 1;
      for (node_index n : all) {
        if (live[n]) order.push_back(n);
      }
    }
    std::unordered_map<node_index, std::uint32_t> imported;
    for (node_index n : order) {
      const ft_node& node = src.node(n);
      wnode w;
      w.kind = node.kind;
      w.type = node.type;
      w.k = node.k;
      w.probability = node.probability;
      w.name = node.name;
      w.source = n;
      for (node_index child : node.inputs) {
        w.inputs.push_back(imported.at(child));
      }
      imported.emplace(n, add(std::move(w)));
    }
    top_ = imported.at(src.top());
  }

  wnode& node(std::uint32_t id) { return nodes_[id]; }
  const wnode& node(std::uint32_t id) const { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }
  std::uint32_t top() { return find(top_); }

  std::uint32_t add(wnode n) {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(std::move(n));
    redirect_.push_back(id);
    return id;
  }

  std::uint32_t add_gate(gate_type type, std::vector<std::uint32_t> inputs) {
    wnode w;
    w.kind = node_kind::gate;
    w.type = type;
    w.inputs = std::move(inputs);
    return add(std::move(w));
  }

  /// Union-find lookup with path compression.
  std::uint32_t find(std::uint32_t id) {
    std::uint32_t root = id;
    while (redirect_[root] != root) root = redirect_[root];
    while (redirect_[id] != root) {
      const std::uint32_t next = redirect_[id];
      redirect_[id] = root;
      id = next;
    }
    return root;
  }

  /// Redirects `id` (and everything already redirected to it) to `with`.
  void replace(std::uint32_t id, std::uint32_t with) {
    const std::uint32_t a = find(id);
    const std::uint32_t b = find(with);
    if (a != b) redirect_[a] = b;
  }

  /// Rewrites a gate's input list through find() and drops duplicates
  /// (AND(a, a) == AND(a) for monotone connectives). Returns true if the
  /// list changed.
  bool resolve(std::uint32_t id) {
    auto& in = nodes_[id].inputs;
    std::vector<std::uint32_t> out;
    out.reserve(in.size());
    std::unordered_set<std::uint32_t> seen;
    for (std::uint32_t c : in) {
      c = find(c);
      if (seen.insert(c).second) out.push_back(c);
    }
    const bool changed = out != in;
    if (changed) in = std::move(out);
    return changed;
  }

  /// Live nodes reachable from the (resolved) top, children before
  /// parents. Inputs are traversed through find() but not rewritten.
  std::vector<std::uint32_t> live_topo() {
    std::vector<char> seen(nodes_.size(), 0);
    std::vector<std::uint32_t> order;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    const std::uint32_t root = top();
    seen[root] = 1;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [id, next_input] = stack.back();
      const auto& in = nodes_[id].inputs;
      if (next_input < in.size()) {
        const std::uint32_t c = find(in[next_input++]);
        if (!seen[c]) {
          seen[c] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        order.push_back(id);
        stack.pop_back();
      }
    }
    return order;
  }

  /// Fan-out (number of distinct live parents) per node id, computed over
  /// the resolved live graph.
  std::vector<std::uint32_t> fanout(const std::vector<std::uint32_t>& live) {
    std::vector<std::uint32_t> out(nodes_.size(), 0);
    for (std::uint32_t id : live) {
      for (std::uint32_t c : nodes_[id].inputs) ++out[find(c)];
    }
    return out;
  }

 private:
  std::vector<wnode> nodes_;
  std::vector<std::uint32_t> redirect_;
  std::uint32_t top_ = wnpos;
};

/// Lowers one atleast gate into a shared suffix network:
/// f(i, j) = "at least j of inputs[i..n-1]" with
/// f(i, j) = OR(AND(x_i, f(i+1, j-1)), f(i+1, j)), the boundary cases
/// j == 1 (plain OR of the suffix) and j == count (plain AND) closing the
/// recursion. O(n*k) gates, against C(n, k) for the eager expansion.
void lower_atleast(workgraph& g, std::uint32_t id, prep_stats& stats) {
  const std::vector<std::uint32_t> xs = g.node(id).inputs;
  const auto n = static_cast<std::uint32_t>(xs.size());
  const std::uint32_t k = g.node(id).k;

  std::unordered_map<std::uint64_t, std::uint32_t> memo;
  const std::function<std::uint32_t(std::uint32_t, std::uint32_t)> f =
      [&](std::uint32_t i, std::uint32_t j) -> std::uint32_t {
    const std::uint32_t count = n - i;
    if (count == 1) return xs[i];  // j is 1 == count here
    const std::uint64_t key = (std::uint64_t{i} << 32) | j;
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    std::uint32_t r;
    if (j == count) {
      r = g.add_gate(gate_type::and_gate, {xs.begin() + i, xs.end()});
    } else if (j == 1) {
      r = g.add_gate(gate_type::or_gate, {xs.begin() + i, xs.end()});
    } else {
      const std::uint32_t take =
          g.add_gate(gate_type::and_gate, {xs[i], f(i + 1, j - 1)});
      const std::uint32_t skip = f(i + 1, j);
      r = g.add_gate(gate_type::or_gate, {take, skip});
    }
    memo.emplace(key, r);
    return r;
  };

  if (k == n) {
    g.node(id).type = gate_type::and_gate;
  } else if (k == 1) {
    g.node(id).type = gate_type::or_gate;
  } else {
    const std::uint32_t take =
        g.add_gate(gate_type::and_gate, {xs[0], f(1, k - 1)});
    const std::uint32_t skip = f(1, k);
    wnode& node = g.node(id);  // taken after all adds: ids are stable,
    node.type = gate_type::or_gate;  // references are not
    node.inputs = {take, skip};
  }
  g.node(id).k = 0;
  ++stats.atleast_lowered;
}

/// One-input gates collapse onto their input; the top gate only follows
/// suit when its single input is itself a gate (the tree stays rooted at
/// a gate either way).
bool pass_fold(workgraph& g, prep_stats& stats) {
  bool changed = false;
  const std::uint32_t top = g.top();
  for (std::uint32_t id : g.live_topo()) {
    if (g.node(id).kind != node_kind::gate) continue;
    changed |= g.resolve(id);
    const auto& in = g.node(id).inputs;
    if (in.size() != 1) continue;
    const std::uint32_t only = in.front();
    if (id == top && g.node(only).kind != node_kind::gate) continue;
    g.replace(id, only);
    ++stats.constants_folded;
    changed = true;
  }
  return changed;
}

/// Inlines same-type gate children with exactly one parent:
/// AND(AND(a, b), c) == AND(a, b, c). Children-first order flattens
/// whole chains in one sweep.
bool pass_coalesce(workgraph& g, prep_stats& stats) {
  bool changed = false;
  const auto live = g.live_topo();
  for (std::uint32_t id : live) g.resolve(id);
  const auto fanout = g.fanout(live);
  const std::uint32_t top = g.top();
  for (std::uint32_t id : live) {
    wnode& node = g.node(id);
    if (node.kind != node_kind::gate) continue;
    std::vector<std::uint32_t> out;
    out.reserve(node.inputs.size());
    std::unordered_set<std::uint32_t> seen;
    bool spliced = false;
    for (std::uint32_t c : node.inputs) {
      const wnode& child = g.node(c);
      if (child.kind == node_kind::gate && child.type == node.type &&
          fanout[c] == 1 && c != top) {
        for (std::uint32_t gc : child.inputs) {
          if (seen.insert(gc).second) out.push_back(gc);
        }
        ++stats.gates_coalesced;
        spliced = true;
      } else if (seen.insert(c).second) {
        out.push_back(c);
      }
    }
    if (spliced) {
      node.inputs = std::move(out);
      changed = true;
    }
  }
  return changed;
}

/// Depth-1 absorption. With S the direct inputs of gate g:
///  - an opposite-type gate child containing some x in S is dropped
///    (AND(x, OR(x, y)) == AND(x), dually for OR);
///  - a direct input x also fed into a same-type gate child is dropped
///    from g (AND(x, AND(x, y)) == AND(AND(x, y)), dually for OR).
bool pass_absorb(workgraph& g, prep_stats& stats) {
  bool changed = false;
  for (std::uint32_t id : g.live_topo()) {
    wnode& node = g.node(id);
    if (node.kind != node_kind::gate) continue;
    g.resolve(id);
    const std::unordered_set<std::uint32_t> direct(node.inputs.begin(),
                                                   node.inputs.end());
    // Direct inputs covered by a same-type gate child.
    std::unordered_set<std::uint32_t> covered;
    for (std::uint32_t c : node.inputs) {
      const wnode& child = g.node(c);
      if (child.kind != node_kind::gate || child.type != node.type) continue;
      for (std::uint32_t gc : child.inputs) {
        const std::uint32_t r = g.find(gc);
        if (r != c && direct.count(r)) covered.insert(r);
      }
    }
    std::vector<std::uint32_t> out;
    out.reserve(node.inputs.size());
    for (std::uint32_t c : node.inputs) {
      if (covered.count(c)) {
        ++stats.absorptions;
        changed = true;
        continue;
      }
      const wnode& child = g.node(c);
      bool absorbed = false;
      if (child.kind == node_kind::gate && child.type != node.type) {
        for (std::uint32_t gc : child.inputs) {
          if (direct.count(g.find(gc))) {
            absorbed = true;
            break;
          }
        }
      }
      if (absorbed) {
        ++stats.absorptions;
        changed = true;
      } else {
        out.push_back(c);
      }
    }
    if (out.size() != node.inputs.size()) node.inputs = std::move(out);
  }
  return changed;
}

/// Structural common-subexpression elimination: gates with equal type and
/// equal (resolved, order-insensitive) input sets share one node.
/// Children-first order lets equality cascade bottom-up in one sweep.
bool pass_merge_duplicates(workgraph& g, prep_stats& stats) {
  bool changed = false;
  std::unordered_map<std::string, std::uint32_t> seen;
  for (std::uint32_t id : g.live_topo()) {
    if (g.node(id).kind != node_kind::gate) continue;
    g.resolve(id);
    std::vector<std::uint32_t> sorted = g.node(id).inputs;
    std::sort(sorted.begin(), sorted.end());
    std::string key;
    key.reserve(sorted.size() * 4 + 1);
    key.push_back(g.node(id).type == gate_type::and_gate ? 'A' : 'O');
    for (std::uint32_t c : sorted) {
      key.append(reinterpret_cast<const char*>(&c), sizeof(c));
    }
    const auto [it, fresh] = seen.emplace(std::move(key), id);
    if (!fresh) {
      g.replace(id, it->second);
      ++stats.duplicates_merged;
      changed = true;
    }
  }
  return changed;
}

/// Undistributes one argument shared by several single-parent children:
/// OR(AND(x, A), AND(x, B), r) == OR(AND(x, OR(A, B)), r) and dually.
/// One factoring per gate per pass; the fixpoint loop iterates.
bool pass_merge_common_args(workgraph& g, prep_stats& stats) {
  bool changed = false;
  const auto live = g.live_topo();
  for (std::uint32_t id : live) g.resolve(id);
  const auto fanout = g.fanout(live);
  for (std::uint32_t id : live) {
    if (g.node(id).kind != node_kind::gate) continue;
    const gate_type inner = g.node(id).type == gate_type::and_gate
                                ? gate_type::or_gate
                                : gate_type::and_gate;
    // Rewritable children: opposite type, no other parent, >= 2 inputs.
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t c : g.node(id).inputs) {
      const wnode& child = g.node(c);
      if (child.kind == node_kind::gate && child.type == inner &&
          fanout[c] == 1 && child.inputs.size() >= 2) {
        candidates.push_back(c);
      }
    }
    if (candidates.size() < 2) continue;
    // Most frequent shared argument; ties break to the smallest id so the
    // rewrite is a pure function of the graph.
    std::unordered_map<std::uint32_t, std::uint32_t> freq;
    for (std::uint32_t c : candidates) {
      for (std::uint32_t x : g.node(c).inputs) ++freq[x];
    }
    std::uint32_t best = wnpos;
    std::uint32_t best_count = 1;
    for (const auto& [x, count] : freq) {
      if (count > best_count || (count == best_count && x < best)) {
        best = x;
        best_count = count;
      }
    }
    if (best == wnpos || best_count < 2) continue;

    std::vector<std::uint32_t> group;
    for (std::uint32_t c : candidates) {
      const auto& in = g.node(c).inputs;
      if (std::find(in.begin(), in.end(), best) != in.end()) {
        group.push_back(c);
      }
    }
    // Residues: each group member minus the shared argument (the member
    // itself has no other parent, so it is rewritten in place; a single
    // leftover input stands in for the whole gate).
    std::vector<std::uint32_t> residues;
    for (std::uint32_t c : group) {
      auto& in = g.node(c).inputs;
      in.erase(std::remove(in.begin(), in.end(), best), in.end());
      residues.push_back(in.size() == 1 ? in.front() : c);
    }
    const std::uint32_t merged =
        g.add_gate(g.node(id).type, std::move(residues));
    const std::uint32_t factored = g.add_gate(inner, {best, merged});
    auto& in = g.node(id).inputs;
    const std::unordered_set<std::uint32_t> drop(group.begin(), group.end());
    in.erase(std::remove_if(in.begin(), in.end(),
                            [&](std::uint32_t c) { return drop.count(c); }),
             in.end());
    in.push_back(factored);
    stats.common_args_merged += group.size();
    changed = true;
  }
  return changed;
}

}  // namespace

prep_result preprocess(const fault_tree& src, const prep_options& opts) {
  const auto started = std::chrono::steady_clock::now();
  src.validate();

  prep_result result;
  result.stats.nodes_before = src.descendants(src.top()).size();
  result.stats.gates_before = 0;
  for (node_index n : src.descendants(src.top())) {
    if (src.is_gate(n)) ++result.stats.gates_before;
  }

  workgraph g(src);

  // Normalisation is unconditional: the backends only speak AND/OR.
  for (std::uint32_t id = 0; id < g.size(); ++id) {
    if (g.node(id).kind == node_kind::gate &&
        g.node(id).type == gate_type::atleast_gate) {
      lower_atleast(g, id, result.stats);
    }
  }

  if (opts.enabled) {
    bool changed = true;
    while (changed && result.stats.passes < opts.max_passes) {
      ++result.stats.passes;
      changed = false;
      if (opts.fold) changed |= pass_fold(g, result.stats);
      if (opts.coalesce) changed |= pass_coalesce(g, result.stats);
      if (opts.absorb) changed |= pass_absorb(g, result.stats);
      if (opts.merge_duplicates) {
        changed |= pass_merge_duplicates(g, result.stats);
      }
      if (opts.merge_common_args) {
        changed |= pass_merge_common_args(g, result.stats);
      }
    }
  }

  // Emit: copy the live resolved graph into a fresh fault_tree, children
  // first. Source names survive; synthesised gates get positional names.
  const auto live = g.live_topo();
  for (std::uint32_t id : live) g.resolve(id);
  std::unordered_map<std::uint32_t, node_index> emitted;
  for (std::uint32_t id : live) {
    const wnode& node = g.node(id);
    node_index out;
    if (node.kind == node_kind::basic) {
      out = result.tree.add_basic_event(node.name, node.probability);
    } else {
      std::vector<node_index> inputs;
      inputs.reserve(node.inputs.size());
      for (std::uint32_t c : node.inputs) inputs.push_back(emitted.at(c));
      std::string name = node.name;
      if (name.empty()) {
        name = "prep::g" + std::to_string(result.tree.size());
      }
      while (result.tree.find(name) != fault_tree::npos) name += '~';
      out = result.tree.add_gate(name, node.type, inputs);
    }
    emitted.emplace(id, out);
    result.to_source.push_back(node.source);
  }
  result.tree.set_top(emitted.at(g.top()));
  result.tree.validate();
  result.stats.nodes_after = result.tree.size();
  result.stats.gates_after = result.tree.num_gates();

  if (opts.enabled && opts.modularize) {
    const auto roots = find_modules(result.tree);
    const std::unordered_set<node_index> is_root(roots.begin(), roots.end());
    for (node_index n : result.tree.topo_order()) {
      if (is_root.count(n)) result.module_roots.push_back(n);
    }
  } else {
    result.module_roots = {result.tree.top()};
  }
  result.stats.modules_found = result.module_roots.size();

  result.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  return result;
}

}  // namespace sdft
