#include "bdd/ft_bdd.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace sdft {

namespace {
/// Sifting is quadratic in the variable count with a BDD transform per
/// swap; above this many variables the expected ordering gain no longer
/// pays for it, so sift mode falls back to its DFS starting order.
constexpr std::uint32_t sift_variable_limit = 128;
}  // namespace

ft_bdd::ft_bdd(const fault_tree& ft, node_index root, bdd_ordering ordering)
    : ft_(ft), ordering_(ordering) {
  if (root == fault_tree::npos) root = ft.top();
  require_model(root != fault_tree::npos && root < ft.size(),
                "ft_bdd: no root node");

  // DFS-from-root discovery order: the default ordering and the starting
  // point (or tie-break) of the others.
  const std::function<void(node_index)> discover = [&](node_index n) {
    if (ft_.is_basic(n)) {
      if (event_to_var_.emplace(n, var_to_event_.size()).second) {
        var_to_event_.push_back(n);
      }
      return;
    }
    for (node_index child : ft_.node(n).inputs) discover(child);
  };
  discover(root);

  switch (ordering) {
    case bdd_ordering::dfs:
    case bdd_ordering::sift:  // sifting refines the DFS order post-compile
      break;
    case bdd_ordering::natural:
      std::sort(var_to_event_.begin(), var_to_event_.end());
      break;
    case bdd_ordering::weight: {
      // Top-down weight propagation: the root carries 1, every gate splits
      // its accumulated weight evenly among its inputs, events sum over all
      // paths. Reverse topological order finalises each node's weight
      // before it is spread (the DAG may share gates).
      std::vector<double> weight(ft_.size(), 0.0);
      weight[root] = 1.0;
      const std::vector<node_index> topo = ft_.topo_order();
      for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const node_index n = *it;
        if (!ft_.is_gate(n) || weight[n] == 0.0) continue;
        const auto& inputs = ft_.node(n).inputs;
        if (inputs.empty()) continue;
        const double share = weight[n] / static_cast<double>(inputs.size());
        for (node_index child : inputs) weight[child] += share;
      }
      // Descending weight; stable sort keeps the DFS rank as tie-break.
      std::stable_sort(
          var_to_event_.begin(), var_to_event_.end(),
          [&](node_index a, node_index b) { return weight[a] > weight[b]; });
      break;
    }
  }
  event_to_var_.clear();
  for (std::uint32_t v = 0; v < var_to_event_.size(); ++v) {
    event_to_var_.emplace(var_to_event_[v], v);
  }

  // Compile bottom-up with memoisation over shared gates.
  std::unordered_map<node_index, bdd_ref> memo;
  const std::function<bdd_ref(node_index)> compile =
      [&](node_index n) -> bdd_ref {
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    bdd_ref ref;
    if (ft_.is_basic(n)) {
      ref = manager_.var(event_to_var_.at(n));
    } else {
      const auto& gate = ft_.node(n);
      if (gate.type == gate_type::atleast_gate) {
        // Threshold DP over the inputs: at_least[j] after i children is
        // "at least j of the first i are failed". Polynomial in k * N,
        // no C(N, k) expansion.
        std::vector<bdd_ref> at_least(gate.k + 1, manager_.zero());
        at_least[0] = manager_.one();
        for (node_index child : gate.inputs) {
          const bdd_ref c = compile(child);
          for (std::uint32_t j = gate.k; j >= 1; --j) {
            at_least[j] = manager_.bdd_or(at_least[j],
                                          manager_.bdd_and(c, at_least[j - 1]));
          }
        }
        ref = at_least[gate.k];
      } else {
        const bool is_and = gate.type == gate_type::and_gate;
        ref = is_and ? manager_.one() : manager_.zero();
        for (node_index child : gate.inputs) {
          const bdd_ref c = compile(child);
          ref = is_and ? manager_.bdd_and(ref, c) : manager_.bdd_or(ref, c);
        }
      }
    }
    memo.emplace(n, ref);
    return ref;
  };
  root_ref_ = compile(root);

  if (ordering == bdd_ordering::sift) sift();
}

void ft_bdd::swap_positions(std::uint32_t p) {
  root_ref_ = manager_.swap_adjacent(root_ref_, p);
  std::swap(var_to_event_[p], var_to_event_[p + 1]);
  event_to_var_[var_to_event_[p]] = p;
  event_to_var_[var_to_event_[p + 1]] = p + 1;
  ++sift_swaps_;
}

void ft_bdd::sift() {
  const auto n = static_cast<std::uint32_t>(var_to_event_.size());
  if (n < 3 || n > sift_variable_limit) return;
  // One pass of Rudell sifting. Variables are processed by identity in
  // their initial (DFS) order — a deterministic schedule, so the final
  // order is a pure function of the input tree.
  const std::vector<node_index> schedule = var_to_event_;
  for (const node_index ev : schedule) {
    std::uint32_t cur = event_to_var_.at(ev);
    const std::size_t start_size = manager_.live_nodes(root_ref_);
    std::size_t best_size = start_size;
    std::uint32_t best_pos = cur;
    // Down sweep to the bottom, then up sweep to the top, recording the
    // smallest BDD seen. Abort a sweep once the BDD doubles.
    while (cur + 1 < n) {
      swap_positions(cur);
      ++cur;
      const std::size_t size = manager_.live_nodes(root_ref_);
      if (size < best_size) {
        best_size = size;
        best_pos = cur;
      }
      if (size > 2 * start_size) break;
    }
    while (cur > 0) {
      swap_positions(cur - 1);
      --cur;
      const std::size_t size = manager_.live_nodes(root_ref_);
      if (size < best_size) {
        best_size = size;
        best_pos = cur;
      }
      if (size > 2 * start_size) break;
    }
    // Settle at the best position seen and reclaim the swap garbage.
    while (cur < best_pos) swap_positions(cur++);
    while (cur > best_pos) swap_positions(--cur);
    root_ref_ = manager_.compact(root_ref_);
  }
}

double ft_bdd::probability() const {
  return probability({});
}

double ft_bdd::probability(
    const std::unordered_map<node_index, double>& overrides) const {
  std::vector<double> probs(var_to_event_.size(), 0.0);
  for (std::uint32_t v = 0; v < var_to_event_.size(); ++v) {
    const node_index b = var_to_event_[v];
    auto it = overrides.find(b);
    probs[v] = it != overrides.end() ? it->second : ft_.node(b).probability;
  }
  return manager_.probability(root_ref_, probs);
}

std::vector<cutset> ft_bdd::minimal_cutsets() const {
  const bdd_ref minsol = manager_.minimal_solutions(root_ref_);
  std::vector<cutset> out;
  for (const auto& product : manager_.enumerate_products(minsol)) {
    cutset c;
    c.reserve(product.size());
    for (std::uint32_t v : product) c.push_back(var_to_event_[v]);
    std::sort(c.begin(), c.end());
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  return out;
}

}  // namespace sdft
