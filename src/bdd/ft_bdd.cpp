#include "bdd/ft_bdd.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace sdft {

ft_bdd::ft_bdd(const fault_tree& ft, node_index root) : ft_(ft) {
  if (root == fault_tree::npos) root = ft.top();
  require_model(root != fault_tree::npos && root < ft.size(),
                "ft_bdd: no root node");

  // Assign variables in DFS-from-root discovery order.
  const std::function<void(node_index)> assign = [&](node_index n) {
    if (ft_.is_basic(n)) {
      if (event_to_var_.emplace(n, var_to_event_.size()).second) {
        var_to_event_.push_back(n);
      }
      return;
    }
    for (node_index child : ft_.node(n).inputs) assign(child);
  };
  assign(root);

  // Compile bottom-up with memoisation over shared gates.
  std::unordered_map<node_index, bdd_ref> memo;
  const std::function<bdd_ref(node_index)> compile =
      [&](node_index n) -> bdd_ref {
    auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    bdd_ref ref;
    if (ft_.is_basic(n)) {
      ref = manager_.var(event_to_var_.at(n));
    } else {
      const auto& gate = ft_.node(n);
      if (gate.type == gate_type::atleast_gate) {
        // Threshold DP over the inputs: at_least[j] after i children is
        // "at least j of the first i are failed". Polynomial in k * N,
        // no C(N, k) expansion.
        std::vector<bdd_ref> at_least(gate.k + 1, manager_.zero());
        at_least[0] = manager_.one();
        for (node_index child : gate.inputs) {
          const bdd_ref c = compile(child);
          for (std::uint32_t j = gate.k; j >= 1; --j) {
            at_least[j] = manager_.bdd_or(at_least[j],
                                          manager_.bdd_and(c, at_least[j - 1]));
          }
        }
        ref = at_least[gate.k];
      } else {
        const bool is_and = gate.type == gate_type::and_gate;
        ref = is_and ? manager_.one() : manager_.zero();
        for (node_index child : gate.inputs) {
          const bdd_ref c = compile(child);
          ref = is_and ? manager_.bdd_and(ref, c) : manager_.bdd_or(ref, c);
        }
      }
    }
    memo.emplace(n, ref);
    return ref;
  };
  root_ref_ = compile(root);
}

double ft_bdd::probability() const {
  return probability({});
}

double ft_bdd::probability(
    const std::unordered_map<node_index, double>& overrides) const {
  std::vector<double> probs(var_to_event_.size(), 0.0);
  for (std::uint32_t v = 0; v < var_to_event_.size(); ++v) {
    const node_index b = var_to_event_[v];
    auto it = overrides.find(b);
    probs[v] = it != overrides.end() ? it->second : ft_.node(b).probability;
  }
  return manager_.probability(root_ref_, probs);
}

std::vector<cutset> ft_bdd::minimal_cutsets() const {
  const bdd_ref minsol = manager_.minimal_solutions(root_ref_);
  std::vector<cutset> out;
  for (const auto& product : manager_.enumerate_products(minsol)) {
    cutset c;
    c.reserve(product.size());
    for (std::uint32_t v : product) c.push_back(var_to_event_[v]);
    std::sort(c.begin(), c.end());
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  return out;
}

}  // namespace sdft
