#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sdft {

/// Reference to a BDD node within a bdd_manager.
using bdd_ref = std::uint32_t;

/// A reduced ordered binary decision diagram manager.
///
/// Implements the classic unique-table + operation-cache design (Bryant).
/// Variables are dense integers ordered by their numeric value. The manager
/// also implements Rauzy's minimal-solutions operator for coherent
/// functions, which is what turns a fault-tree BDD into its minimal
/// cutsets; this is the engine commercial tools like RiskSpectrum pair with
/// MOCUS and serves here as an independent oracle for the MOCUS module.
///
/// Nodes are never garbage collected: managers are built per analysis and
/// dropped wholesale, which matches every use in this code base.
class bdd_manager {
 public:
  bdd_manager();

  bdd_ref zero() const { return 0; }
  bdd_ref one() const { return 1; }

  /// The projection function of variable `var`.
  bdd_ref var(std::uint32_t var);

  bdd_ref bdd_and(bdd_ref f, bdd_ref g);
  bdd_ref bdd_or(bdd_ref f, bdd_ref g);
  bdd_ref bdd_not(bdd_ref f);

  /// f with variable `var` fixed to `value`.
  bdd_ref restrict_var(bdd_ref f, std::uint32_t var, bool value);

  /// Probability that f evaluates to true when variable v is independently
  /// true with probability probs[v]. Exact (Shannon decomposition). Const:
  /// uses only a call-local memo, so concurrent evaluations of an already
  /// compiled diagram are safe (the scenario engine batches per-sequence
  /// evaluations on the pool this way).
  double probability(bdd_ref f, const std::vector<double>& probs) const;

  /// Rauzy's minimal-solutions operator for a coherent f: the result
  /// encodes exactly the minimal satisfying products of f.
  bdd_ref minimal_solutions(bdd_ref f);

  /// Enumerates the products of a minimal-solutions BDD: each inner vector
  /// is the set of variables taken positively on a 1-path with a "high"
  /// edge, in variable order. For minimal_solutions(f) of coherent f these
  /// are exactly the minimal cutsets.
  std::vector<std::vector<std::uint32_t>> enumerate_products(bdd_ref f) const;

  /// Returns f with the roles of the adjacent variables v and v+1
  /// exchanged: the result, read with the two variables' external meanings
  /// swapped, denotes the same function. This is the elementary step of
  /// sifting-based reordering. Purely functional — new nodes are created
  /// through the unique table, old ones become garbage until compact();
  /// existing refs and operation caches stay structurally valid.
  bdd_ref swap_adjacent(bdd_ref f, std::uint32_t v);

  /// Number of nodes reachable from f, terminals included — the size
  /// objective of sifting (size() also counts reordering garbage).
  std::size_t live_nodes(bdd_ref f) const;

  /// Rebuilds the manager retaining only the nodes reachable from `root`
  /// and returns the new root. Every other ref and all operation caches
  /// are invalidated; used to reclaim reordering garbage.
  bdd_ref compact(bdd_ref root);

  /// Number of allocated nodes (including both terminals and any
  /// reordering garbage; see live_nodes()).
  std::size_t size() const { return nodes_.size(); }

 private:
  struct node {
    std::uint32_t var;
    bdd_ref low;
    bdd_ref high;
  };

  struct unique_key {
    std::uint32_t var;
    bdd_ref low;
    bdd_ref high;
    bool operator==(const unique_key&) const = default;
  };
  struct unique_key_hash {
    std::size_t operator()(const unique_key& k) const;
  };

  bdd_ref make(std::uint32_t var, bdd_ref low, bdd_ref high);
  bdd_ref apply(int op, bdd_ref f, bdd_ref g);
  bdd_ref without(bdd_ref f, bdd_ref g);

  std::uint32_t var_of(bdd_ref f) const { return nodes_[f].var; }
  bool is_terminal(bdd_ref f) const { return f <= 1; }

  static constexpr std::uint32_t terminal_var = 0xffffffffU;

  std::vector<node> nodes_;
  std::unordered_map<unique_key, bdd_ref, unique_key_hash> unique_;
  std::unordered_map<std::uint64_t, bdd_ref> op_cache_;
  std::unordered_map<std::uint64_t, bdd_ref> without_cache_;
  std::unordered_map<bdd_ref, bdd_ref> minsol_cache_;
};

}  // namespace sdft
