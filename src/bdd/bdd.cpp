#include "bdd/bdd.hpp"

#include <functional>
#include <unordered_set>

#include "util/error.hpp"

namespace sdft {

namespace {
constexpr int op_and = 1;
constexpr int op_or = 2;
constexpr int op_not = 3;

std::uint64_t pair_key(bdd_ref a, bdd_ref b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

std::size_t bdd_manager::unique_key_hash::operator()(
    const unique_key& k) const {
  std::size_t h = k.var;
  h = h * 0x9e3779b97f4a7c15ULL + k.low;
  h = h * 0x9e3779b97f4a7c15ULL + k.high;
  return h;
}

bdd_manager::bdd_manager() {
  nodes_.push_back({terminal_var, 0, 0});  // zero
  nodes_.push_back({terminal_var, 1, 1});  // one
}

bdd_ref bdd_manager::make(std::uint32_t var, bdd_ref low, bdd_ref high) {
  if (low == high) return low;
  const unique_key key{var, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const auto ref = static_cast<bdd_ref>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

bdd_ref bdd_manager::var(std::uint32_t v) {
  require_model(v != terminal_var, "bdd: variable id reserved for terminals");
  return make(v, zero(), one());
}

bdd_ref bdd_manager::apply(int op, bdd_ref f, bdd_ref g) {
  if (op == op_and) {
    if (f == zero() || g == zero()) return zero();
    if (f == one()) return g;
    if (g == one()) return f;
    if (f == g) return f;
  } else {
    if (f == one() || g == one()) return one();
    if (f == zero()) return g;
    if (g == zero()) return f;
    if (f == g) return f;
  }
  if (f > g) std::swap(f, g);  // both ops are commutative
  const std::uint64_t key =
      static_cast<std::uint64_t>(op) | (static_cast<std::uint64_t>(f) << 2) |
      (static_cast<std::uint64_t>(g) << 33);
  auto it = op_cache_.find(key);
  if (it != op_cache_.end()) return it->second;

  const std::uint32_t xf = var_of(f);
  const std::uint32_t xg = var_of(g);
  const std::uint32_t x = std::min(xf, xg);
  const bdd_ref f0 = xf == x ? nodes_[f].low : f;
  const bdd_ref f1 = xf == x ? nodes_[f].high : f;
  const bdd_ref g0 = xg == x ? nodes_[g].low : g;
  const bdd_ref g1 = xg == x ? nodes_[g].high : g;
  const bdd_ref result = make(x, apply(op, f0, g0), apply(op, f1, g1));
  op_cache_.emplace(key, result);
  return result;
}

bdd_ref bdd_manager::bdd_and(bdd_ref f, bdd_ref g) {
  return apply(op_and, f, g);
}

bdd_ref bdd_manager::bdd_or(bdd_ref f, bdd_ref g) { return apply(op_or, f, g); }

bdd_ref bdd_manager::bdd_not(bdd_ref f) {
  if (f == zero()) return one();
  if (f == one()) return zero();
  const std::uint64_t key = static_cast<std::uint64_t>(op_not) |
                            (static_cast<std::uint64_t>(f) << 2);
  auto it = op_cache_.find(key);
  if (it != op_cache_.end()) return it->second;
  const bdd_ref result = make(var_of(f), bdd_not(nodes_[f].low),
                              bdd_not(nodes_[f].high));
  op_cache_.emplace(key, result);
  return result;
}

bdd_ref bdd_manager::restrict_var(bdd_ref f, std::uint32_t var, bool value) {
  std::unordered_map<bdd_ref, bdd_ref> memo;
  const std::function<bdd_ref(bdd_ref)> rec = [&](bdd_ref g) -> bdd_ref {
    if (is_terminal(g) || var_of(g) > var) return g;
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    bdd_ref result;
    if (var_of(g) == var) {
      result = value ? nodes_[g].high : nodes_[g].low;
    } else {
      result = make(var_of(g), rec(nodes_[g].low), rec(nodes_[g].high));
    }
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

double bdd_manager::probability(bdd_ref f,
                                const std::vector<double>& probs) const {
  std::unordered_map<bdd_ref, double> memo;
  const std::function<double(bdd_ref)> rec = [&](bdd_ref g) -> double {
    if (g == zero()) return 0.0;
    if (g == one()) return 1.0;
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const std::uint32_t v = var_of(g);
    require_model(v < probs.size(), "bdd: probability vector too small");
    const double p =
        probs[v] * rec(nodes_[g].high) + (1.0 - probs[v]) * rec(nodes_[g].low);
    memo.emplace(g, p);
    return p;
  };
  return rec(f);
}

bdd_ref bdd_manager::without(bdd_ref f, bdd_ref g) {
  if (g == one() || f == zero() || f == g) return zero();
  if (g == zero() || f == one()) return f;
  const std::uint64_t key = pair_key(f, g);
  auto it = without_cache_.find(key);
  if (it != without_cache_.end()) return it->second;

  const std::uint32_t xf = var_of(f);
  const std::uint32_t xg = var_of(g);
  bdd_ref result;
  if (xf == xg) {
    // Products of f containing x survive only if unsubsumed by g's products
    // with x (compare the x-cofactors) and by g's products without x.
    const bdd_ref high =
        without(without(nodes_[f].high, nodes_[g].high), nodes_[g].low);
    const bdd_ref low = without(nodes_[f].low, nodes_[g].low);
    result = make(xf, low, high);
  } else if (xf < xg) {
    result = make(xf, without(nodes_[f].low, g), without(nodes_[f].high, g));
  } else {
    // Products of f never contain xg, so only g-products without xg
    // (the low cofactor) can subsume them.
    result = without(f, nodes_[g].low);
  }
  without_cache_.emplace(key, result);
  return result;
}

bdd_ref bdd_manager::minimal_solutions(bdd_ref f) {
  if (is_terminal(f)) return f;
  auto it = minsol_cache_.find(f);
  if (it != minsol_cache_.end()) return it->second;
  const bdd_ref m0 = minimal_solutions(nodes_[f].low);
  const bdd_ref m1 = minimal_solutions(nodes_[f].high);
  // A minimal solution taking x must not subsume one that does not need x.
  const bdd_ref result = make(var_of(f), m0, without(m1, m0));
  minsol_cache_.emplace(f, result);
  return result;
}

bdd_ref bdd_manager::swap_adjacent(bdd_ref f, std::uint32_t v) {
  const std::uint32_t upper = v;
  const std::uint32_t lower = v + 1;
  std::unordered_map<bdd_ref, bdd_ref> memo;
  // Cofactor of h with respect to `var`, valid when var_of(h) >= var.
  const auto cof = [this](bdd_ref h, std::uint32_t var, bool high) {
    if (is_terminal(h) || var_of(h) != var) return h;
    return high ? nodes_[h].high : nodes_[h].low;
  };
  const std::function<bdd_ref(bdd_ref)> rec = [&](bdd_ref g) -> bdd_ref {
    // Nodes strictly below the swapped pair keep both their label and
    // their meaning.
    if (is_terminal(g) || var_of(g) > lower) return g;
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    bdd_ref result;
    if (var_of(g) < upper) {
      result = make(var_of(g), rec(nodes_[g].low), rec(nodes_[g].high));
    } else if (var_of(g) == lower) {
      // Reached without an `upper` node above it: the function here does
      // not depend on `upper`, so the `lower` dependence simply moves up.
      result = make(upper, nodes_[g].low, nodes_[g].high);
    } else {
      // var_of(g) == upper. With f_ab = g cofactored at (upper=a,
      // lower=b), the swapped node is h(a, b) = f_ba.
      const bdd_ref g0 = nodes_[g].low;
      const bdd_ref g1 = nodes_[g].high;
      const bdd_ref f00 = cof(g0, lower, false);
      const bdd_ref f01 = cof(g0, lower, true);
      const bdd_ref f10 = cof(g1, lower, false);
      const bdd_ref f11 = cof(g1, lower, true);
      result = make(upper, make(lower, f00, f10), make(lower, f01, f11));
    }
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

std::size_t bdd_manager::live_nodes(bdd_ref f) const {
  std::vector<bdd_ref> stack{f};
  std::unordered_set<bdd_ref> seen{f};
  while (!stack.empty()) {
    const bdd_ref g = stack.back();
    stack.pop_back();
    if (is_terminal(g)) continue;
    for (const bdd_ref child : {nodes_[g].low, nodes_[g].high}) {
      if (seen.insert(child).second) stack.push_back(child);
    }
  }
  // Both terminals always exist even if unreachable from f.
  for (bdd_ref t : {zero(), one()}) seen.insert(t);
  return seen.size();
}

bdd_ref bdd_manager::compact(bdd_ref root) {
  bdd_manager fresh;
  std::unordered_map<bdd_ref, bdd_ref> map{{zero(), zero()}, {one(), one()}};
  const std::function<bdd_ref(bdd_ref)> rec = [&](bdd_ref g) -> bdd_ref {
    auto it = map.find(g);
    if (it != map.end()) return it->second;
    const bdd_ref r =
        fresh.make(var_of(g), rec(nodes_[g].low), rec(nodes_[g].high));
    map.emplace(g, r);
    return r;
  };
  const bdd_ref new_root = rec(root);
  *this = std::move(fresh);
  return new_root;
}

std::vector<std::vector<std::uint32_t>> bdd_manager::enumerate_products(
    bdd_ref f) const {
  std::vector<std::vector<std::uint32_t>> out;
  std::vector<std::uint32_t> path;
  const std::function<void(bdd_ref)> rec = [&](bdd_ref g) {
    if (g == zero()) return;
    if (g == one()) {
      out.push_back(path);
      return;
    }
    rec(nodes_[g].low);
    path.push_back(var_of(g));
    rec(nodes_[g].high);
    path.pop_back();
  };
  rec(f);
  return out;
}

}  // namespace sdft
