#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sdft {

/// Variable-ordering heuristic of a fault-tree BDD. "BDDs Strike Back"
/// shows ordering is decisive for BDD-based fault-tree analysis: the same
/// tree compiles to BDDs orders of magnitude apart in size depending on
/// how basic events are ranked. Every ordering yields the identical
/// canonical minimal-cutset list; only BDD size (and the floating-point
/// association of the exact probability) differs.
enum class bdd_ordering : std::uint8_t {
  /// DFS-from-root discovery order (the classic static heuristic; keeps
  /// events of one subtree adjacent). The default, and the pre-ordering
  /// behaviour of this code base.
  dfs,

  /// Ascending node_index — the "no heuristic" baseline the orderings are
  /// measured against.
  natural,

  /// Descending structural weight: the top gate carries weight 1, every
  /// gate splits its weight evenly among its inputs, basic events
  /// accumulate over all paths. Events structurally "close" to the top
  /// come first; ties break by DFS order.
  weight,

  /// DFS start, then Rudell sifting: each variable is moved through every
  /// position by adjacent swaps and left where the BDD is smallest.
  sift,
};

inline const char* to_string(bdd_ordering ordering) {
  switch (ordering) {
    case bdd_ordering::dfs:
      return "dfs";
    case bdd_ordering::natural:
      return "natural";
    case bdd_ordering::weight:
      return "weight";
    case bdd_ordering::sift:
      return "sift";
  }
  return "?";
}

/// Parses an ordering name as spelled by to_string(); nullopt on anything
/// else. Used by the `--bdd-ordering` CLI flag.
inline std::optional<bdd_ordering> parse_bdd_ordering(std::string_view name) {
  if (name == "dfs") return bdd_ordering::dfs;
  if (name == "natural") return bdd_ordering::natural;
  if (name == "weight") return bdd_ordering::weight;
  if (name == "sift") return bdd_ordering::sift;
  return std::nullopt;
}

}  // namespace sdft
