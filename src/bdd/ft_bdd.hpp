#pragma once

#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

/// A fault tree compiled to a BDD.
///
/// Variables are assigned to basic events in DFS-from-top order (a standard
/// static ordering heuristic that keeps related events adjacent). Owns its
/// bdd_manager.
class ft_bdd {
 public:
  /// Compiles the structure under `root`; root defaults to the top gate.
  explicit ft_bdd(const fault_tree& ft,
                  node_index root = fault_tree::npos);

  /// Exact probability that the root fails, from the basic events'
  /// probabilities (no rare-event approximation).
  double probability() const;

  /// Exact probability with overridden per-event probabilities
  /// (indexed by node_index; events absent use their tree probability).
  double probability(
      const std::unordered_map<node_index, double>& overrides) const;

  /// All minimal cutsets of the root, as basic-event indices.
  std::vector<cutset> minimal_cutsets() const;

  /// Number of BDD nodes created while compiling.
  std::size_t node_count() const { return manager_.size(); }

 private:
  const fault_tree& ft_;
  mutable bdd_manager manager_;
  bdd_ref root_ref_ = 0;
  std::vector<node_index> var_to_event_;            // BDD var -> node_index
  std::unordered_map<node_index, std::uint32_t> event_to_var_;
};

}  // namespace sdft
