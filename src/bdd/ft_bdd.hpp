#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ordering.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"

namespace sdft {

/// A fault tree compiled to a BDD.
///
/// Variables are assigned to basic events according to the selected
/// bdd_ordering (DFS discovery order by default). Owns its bdd_manager.
class ft_bdd {
 public:
  /// Compiles the structure under `root`; root defaults to the top gate.
  explicit ft_bdd(const fault_tree& ft, node_index root = fault_tree::npos,
                  bdd_ordering ordering = bdd_ordering::dfs);

  /// Exact probability that the root fails, from the basic events'
  /// probabilities (no rare-event approximation).
  double probability() const;

  /// Exact probability with overridden per-event probabilities
  /// (indexed by node_index; events absent use their tree probability).
  double probability(
      const std::unordered_map<node_index, double>& overrides) const;

  /// All minimal cutsets of the root, as basic-event indices. The list is
  /// canonical (each cutset sorted, ordered by (size, content)) and thus
  /// identical for every variable ordering.
  std::vector<cutset> minimal_cutsets() const;

  /// Number of BDD nodes held by the manager. After sifting this is the
  /// compacted (live) count.
  std::size_t node_count() const { return manager_.size(); }

  bdd_ordering ordering() const { return ordering_; }

  /// Adjacent-variable swaps performed by sifting (0 unless
  /// bdd_ordering::sift ran).
  std::size_t sift_swaps() const { return sift_swaps_; }

 private:
  /// Rudell sifting on the compiled BDD: move every variable to its
  /// locally best position, compacting the manager between variables.
  void sift();

  /// Swaps variable positions p and p+1 (BDD transform + event maps).
  void swap_positions(std::uint32_t p);

  const fault_tree& ft_;
  mutable bdd_manager manager_;
  bdd_ref root_ref_ = 0;
  bdd_ordering ordering_ = bdd_ordering::dfs;
  std::size_t sift_swaps_ = 0;
  std::vector<node_index> var_to_event_;            // BDD var -> node_index
  std::unordered_map<node_index, std::uint32_t> event_to_var_;
};

}  // namespace sdft
