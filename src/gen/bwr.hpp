#pragma once

#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Configuration of the example boiling-water-reactor safety study
/// (paper §VI-A). The model covers the five cooling-related systems the
/// paper names — ECC, EFW, RHR plus the support systems CCW and SWS — each
/// with two redundant pump trains, the FEED&BLEED operator recovery, two
/// initiating events and the shared support structure (diesel generators
/// for the ECC pumps, condensate storage tank, room cooling, actuation
/// signals).
struct bwr_options {
  /// Mission time; static fail-in-operation probabilities are derived as
  /// 1 - exp(-lambda * horizon) so the static and dynamic variants of the
  /// model describe the same equipment.
  double horizon = 24.0;

  /// Replace the fail-in-operation events of pumps, diesel generators and
  /// the FEED&BLEED injection by dynamic Erlang chains. With this off the
  /// model is the purely static legacy study (the paper's "no timing" row).
  bool dynamic_events = false;

  /// Erlang phases k of dynamic events (paper §VI: k = 1 is exponential).
  int phases = 1;

  /// Repair rate of dynamic events (1/MTTR); 0 disables repairs.
  double repair_rate = 0.0;

  /// Passive (standby) degradation is active/passive_factor (paper: 100).
  double passive_factor = 100.0;

  /// Trigger switches, matching the cumulative rows of the paper's table:
  /// a second train's fail-in-operation becomes a *triggered* chain started
  /// by the failure of the first train of the same system; FEED&BLEED is
  /// triggered by the failure of the whole RHR system.
  bool trigger_feed_bleed = false;
  bool trigger_rhr = false;
  bool trigger_efw = false;
  bool trigger_ecc = false;
  bool trigger_sws = false;
  bool trigger_ccw = false;

  /// Include per-system common-cause failure events (static; the paper's
  /// dynamic analysis disregards CCF, which it names as one reason for the
  /// magnitude of the frequency drop).
  bool include_ccf = false;
};

/// Names of the trigger switches in the cumulative order of the paper's
/// table: FEED&BLEED, RHR, EFW, ECC, SWS, CCW.
inline constexpr int bwr_num_triggers = 6;

/// Returns `base` with the first `count` trigger switches (in paper order)
/// enabled.
bwr_options with_bwr_triggers(bwr_options base, int count);

/// Builds the BWR example study as an SD fault tree. With
/// options.dynamic_events == false the result contains only static events
/// and can be analysed by purely static means.
sd_fault_tree make_bwr_model(const bwr_options& options = {});

}  // namespace sdft
