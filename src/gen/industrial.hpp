#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Parameters of the synthetic industrial-scale PSA generator.
///
/// The paper's §VI-B models are proprietary nuclear safety studies
/// (Model 1: 2,995 basic events / 52,213 gates / 74,130 MCS). This
/// generator substitutes them with seeded synthetic studies of the same
/// *shape*: an event-tree layer of accident sequences (IE AND front-line
/// system failures, wrapped in transfer-gate chains as real PSA models
/// are), front-line systems of 2-3 redundant trains, per-train component
/// lists with failure-to-start and fail-in-operation modes, and a DAG of
/// shared support systems. Defaults produce a bench-sized model; scale up
/// for paper-order sizes.
struct industrial_options {
  std::uint64_t seed = 42;

  int num_support_systems = 6;
  int num_frontline_systems = 24;
  int num_initiating_events = 15;
  int sequences_per_ie = 8;
  int min_trains = 2;
  int max_trains = 3;
  int components_per_train = 5;

  /// Depth of single-input pass-through gates between sequence logic and
  /// system gates, mimicking the transfer gates that dominate gate counts
  /// in industrial studies.
  int transfer_depth = 3;

  /// Mission time used to turn fail-in-operation rates into the static
  /// probabilities of the legacy study (1 - exp(-lambda t)).
  double horizon = 24.0;

  /// Log-uniform range of per-demand failure probabilities (FTS events).
  /// Together with the cutoff 1e-15 these ranges control how many cutsets
  /// of the sequence cross-products stay relevant — the defaults keep a
  /// 2-system sequence around the cutoff, as in real PSA studies where
  /// truncation does most of the work.
  double fts_min = 3e-6;
  double fts_max = 3e-3;

  /// Log-uniform range of fail-in-operation rates (per hour).
  double fio_rate_min = 1.25e-7;
  double fio_rate_max = 1.25e-4;
};

/// One generated study plus the metadata dynamic annotation needs.
struct industrial_model {
  fault_tree ft;

  /// Fail-in-operation events: the candidates for dynamic replacement.
  std::vector<node_index> fio_events;

  /// Failure rate lambda (per hour) behind each FIO event's static
  /// probability.
  std::unordered_map<node_index, double> fio_rate;

  /// Redundancy group of each FIO event: events filling the same component
  /// slot in parallel trains of one system. Symmetric parts share failure
  /// data, so they tie in Fussell-Vesely importance — the paper chains
  /// triggers within such groups (§VI-B).
  std::unordered_map<node_index, int> redundancy_group;

  /// The component gate (OR of FTS and FIO) above each FIO event; failure
  /// of this gate is the trigger source when the event starts a chain.
  std::unordered_map<node_index, node_index> component_gate;
};

industrial_model generate_industrial(const industrial_options& options = {});

/// Controls for enriching a generated study with dynamic behaviour,
/// following the paper's §VI-B recipe.
struct annotation_options {
  /// Fraction of FIO events replaced by dynamic chains, chosen by
  /// decreasing Fussell-Vesely importance.
  double dynamic_fraction = 0.3;

  /// Fraction of the *dynamic* events arranged into trigger chains
  /// (the paper's "% trigg. BE" is a tenth of "% dyn. BE", which matches
  /// trigger_fraction ~ 0.1 of the dynamic events).
  double trigger_fraction = 0.1;

  int phases = 1;
  double repair_rate = 0.02;  // 1 / 50h
  double passive_factor = 100.0;
};

/// Replaces the top-importance FIO events of `model` by dynamic Erlang
/// chains and wires trigger chains inside redundancy groups (highest
/// importance first), as the paper does on its industrial models. `ranked`
/// must be the basic events ranked by decreasing Fussell-Vesely importance
/// of the static study (see rank_by_fussell_vesely()).
///
/// Returns the enriched SD fault tree; node indices equal those of
/// `model.ft`.
sd_fault_tree annotate_dynamic(const industrial_model& model,
                               const std::vector<node_index>& ranked,
                               const annotation_options& options);

}  // namespace sdft
