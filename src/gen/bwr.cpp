#include "gen/bwr.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "ctmc/triggered.hpp"
#include "util/error.hpp"

namespace sdft {

namespace {

/// Reliability parameters of the example study. Failure-to-start and other
/// demand failures are per-demand probabilities; fail-in-operation events
/// are rates per hour (converted to static probabilities over the horizon
/// when the model is built statically).
struct bwr_data {
  double pump_fts = 3e-3;
  double pump_fio_rate = 5e-4;
  double support_pump_fts = 1e-3;
  double support_pump_fio_rate = 1e-4;
  double dg_fts = 8e-3;
  double dg_fio_rate = 1e-3;
  double dg_breaker = 3e-4;
  double fb_operator = 1e-2;
  double fb_valve = 5e-4;
  double fb_fio_rate = 1e-3;
  double valve_fto = 3e-4;
  double valve_plug = 1.5e-4;
  double ctrl_signal = 3e-4;
  double ctrl_relay = 2e-4;
  double hx_fouling = 1e-4;
  double hx_leak = 5e-5;
  double strainer = 2e-4;
  double sws_valve = 2e-4;
  double battery = 5e-4;
  double cst = 3e-6;
  double signal = 1e-4;
  double room_cooling = 2e-4;
  double ccf = 1.5e-4;
  double ie_transient = 1e-3;
  double ie_loca = 1e-4;
  double ie_loop = 5e-4;
};

/// A local component of a train: one or more static failure modes,
/// wrapped in an OR gate when there are several (PSA component gates).
struct component_spec {
  std::string suffix;
  std::vector<std::pair<std::string, double>> modes;
};

/// Builder wiring the five systems and their support structure.
class bwr_builder {
 public:
  explicit bwr_builder(const bwr_options& options) : opt_(options) {
    require_model(opt_.phases >= 1, "bwr: phases must be >= 1");
  }

  sd_fault_tree build() {
    // Shared support equipment.
    const node_index cst = tree_.add_static_event("CST", data_.cst);
    node_index dg[2];
    node_index room[2];
    for (int i = 0; i < 2; ++i) {
      const std::string t = std::to_string(i + 1);
      dg[i] = tree_.add_gate(
          "DG" + t + "_F", gate_type::or_gate,
          {tree_.add_static_event("DG" + t + "_FTS", data_.dg_fts),
           fio_event("DG" + t + "_FIO", data_.dg_fio_rate, fault_tree::npos),
           tree_.add_static_event("DG" + t + "_BKR", data_.dg_breaker)});
      room[i] =
          tree_.add_static_event("ROOM" + t + "_COOLING", data_.room_cooling);
    }

    const component_spec valve{
        "VALVE",
        {{"FTO", data_.valve_fto}, {"PLUG", data_.valve_plug}}};
    const component_spec ctrl{
        "CTRL",
        {{"SIG", data_.ctrl_signal}, {"RELAY", data_.ctrl_relay}}};
    const component_spec hx{
        "HX", {{"FOUL", data_.hx_fouling}, {"LEAK", data_.hx_leak}}};
    const component_spec strainer{"STRAINER", {{"", data_.strainer}}};
    const component_spec sws_valve{"VALVE", {{"", data_.sws_valve}}};
    const component_spec battery{"BATTERY", {{"", data_.battery}}};

    // Support chain: SWS feeds CCW feeds the front-line trains. Train 2 of
    // a system is triggered by the failure of train 1 of the same system
    // when the corresponding switch is on (paper §VI-A).
    node_index sws_train[2];
    node_index ccw_train[2];
    node_index ecc_train[2];
    node_index efw_train[2];
    node_index rhr_train[2];
    for (int i = 0; i < 2; ++i) {
      const std::string t = std::to_string(i + 1);
      const bool second = i == 1;
      sws_train[i] = make_train(
          "SWS_T" + t, data_.support_pump_fts, data_.support_pump_fio_rate,
          {strainer, sws_valve}, {},
          second && opt_.trigger_sws ? sws_train[0] : fault_tree::npos);
      ccw_train[i] = make_train(
          "CCW_T" + t, data_.support_pump_fts, data_.support_pump_fio_rate,
          {valve}, {sws_train[i]},
          second && opt_.trigger_ccw ? ccw_train[0] : fault_tree::npos);
      ecc_train[i] = make_train(
          "ECC_T" + t, data_.pump_fts, data_.pump_fio_rate,
          {valve, ctrl, battery}, {ccw_train[i], dg[i], room[i]},
          second && opt_.trigger_ecc ? ecc_train[0] : fault_tree::npos);
      efw_train[i] = make_train(
          "EFW_T" + t, data_.pump_fts, data_.pump_fio_rate,
          {valve, ctrl, battery}, {ccw_train[i], cst, room[i]},
          second && opt_.trigger_efw ? efw_train[0] : fault_tree::npos);
      rhr_train[i] = make_train(
          "RHR_T" + t, data_.pump_fts, data_.pump_fio_rate, {hx, ctrl},
          {room[i]},
          second && opt_.trigger_rhr ? rhr_train[0] : fault_tree::npos);
    }
    make_system("SWS", sws_train);
    make_system("CCW", ccw_train);
    const node_index ecc_f = make_system("ECC", ecc_train);
    const node_index efw_f = make_system("EFW", efw_train);
    const node_index rhr_f = make_system("RHR", rhr_train);

    // FEED&BLEED recovery, demanded when RHR is lost.
    const node_index fb_fio = fio_event(
        "FB_FIO", data_.fb_fio_rate,
        opt_.trigger_feed_bleed ? rhr_f : fault_tree::npos);
    const node_index fb_f = tree_.add_gate(
        "FB_F", gate_type::or_gate,
        {tree_.add_static_event("FB_OPERATOR", data_.fb_operator), fb_fio,
         tree_.add_static_event("FB_VALVE", data_.fb_valve)});

    // Accident sequences and the top gate.
    const node_index ie_trans =
        tree_.add_static_event("IE_TRANSIENT", data_.ie_transient);
    const node_index ie_loca = tree_.add_static_event("IE_LOCA", data_.ie_loca);
    const node_index ie_loop = tree_.add_static_event("IE_LOOP", data_.ie_loop);
    const node_index seq1 = tree_.add_gate(
        "SEQ_TRANS_COOLING", gate_type::and_gate, {ie_trans, ecc_f, efw_f});
    const node_index seq2 = tree_.add_gate(
        "SEQ_TRANS_RHR", gate_type::and_gate, {ie_trans, rhr_f, fb_f});
    const node_index seq3 =
        tree_.add_gate("SEQ_LOCA", gate_type::and_gate, {ie_loca, ecc_f});
    const node_index seq4 = tree_.add_gate(
        "SEQ_LOOP_COOLING", gate_type::and_gate, {ie_loop, efw_f, ecc_f});
    tree_.set_top(tree_.add_gate("CORE_DAMAGE", gate_type::or_gate,
                                 {seq1, seq2, seq3, seq4}));

    tree_.validate();
    return std::move(tree_);
  }

 private:
  /// Creates the fail-in-operation event of one component: a static event
  /// (probability 1 - exp(-lambda t)) in the static variant, an Erlang
  /// chain in the dynamic one. A valid `trigger_gate` makes it a
  /// passive-start triggered chain switched by that gate's failure.
  node_index fio_event(const std::string& name, double rate,
                       node_index trigger_gate) {
    // The probability a static study would assign over the mission time;
    // dynamic events retain it as their reference for the static cutoff.
    const double p_static = 1.0 - std::exp(-rate * opt_.horizon);
    if (!opt_.dynamic_events) {
      return tree_.add_static_event(name, p_static);
    }
    if (trigger_gate != fault_tree::npos) {
      const node_index event = tree_.add_dynamic_event(
          name,
          make_erlang_triggered(opt_.phases, rate, opt_.repair_rate,
                                opt_.passive_factor),
          p_static);
      tree_.set_trigger(trigger_gate, event);
      return event;
    }
    return tree_.add_dynamic_event(
        name, make_erlang_active(opt_.phases, rate, opt_.repair_rate),
        p_static);
  }

  /// One pump train: OR over the pump (FTS + FIO), the local component
  /// gates, and shared support gates. A valid `trigger_gate` (train 1 of
  /// the same system) makes the FIO event a triggered chain.
  node_index make_train(const std::string& name, double fts, double fio_rate,
                        const std::vector<component_spec>& components,
                        const std::vector<node_index>& supports,
                        node_index trigger_gate) {
    const node_index fio = fio_event(
        name + "_FIO", fio_rate,
        opt_.dynamic_events ? trigger_gate : fault_tree::npos);
    const node_index pump = tree_.add_gate(
        name + "_PUMP", gate_type::or_gate,
        {tree_.add_static_event(name + "_FTS", fts), fio});
    std::vector<node_index> inputs{pump};
    for (const component_spec& comp : components) {
      const std::string base = name + "_" + comp.suffix;
      if (comp.modes.size() == 1) {
        inputs.push_back(
            tree_.add_static_event(base, comp.modes.front().second));
      } else {
        std::vector<node_index> modes;
        for (const auto& [mode, p] : comp.modes) {
          modes.push_back(tree_.add_static_event(base + "_" + mode, p));
        }
        inputs.push_back(tree_.add_gate(base, gate_type::or_gate, modes));
      }
    }
    for (node_index s : supports) inputs.push_back(s);
    return tree_.add_gate(name + "_F", gate_type::or_gate, inputs);
  }

  /// System failure: both trains lost, or the actuation signal (or the CCF
  /// event when enabled).
  node_index make_system(const std::string& name, const node_index trains[2]) {
    const node_index both = tree_.add_gate(
        name + "_TRAINS", gate_type::and_gate, {trains[0], trains[1]});
    std::vector<node_index> inputs{
        tree_.add_static_event(name + "_SIGNAL", data_.signal), both};
    if (opt_.include_ccf) {
      inputs.push_back(tree_.add_static_event(name + "_CCF", data_.ccf));
    }
    return tree_.add_gate(name + "_F", gate_type::or_gate, inputs);
  }

  const bwr_options opt_;
  const bwr_data data_;
  sd_fault_tree tree_;
};

}  // namespace

bwr_options with_bwr_triggers(bwr_options base, int count) {
  require_model(count >= 0 && count <= bwr_num_triggers,
                "bwr: trigger count out of range");
  bool* flags[bwr_num_triggers] = {
      &base.trigger_feed_bleed, &base.trigger_rhr, &base.trigger_efw,
      &base.trigger_ecc,        &base.trigger_sws, &base.trigger_ccw};
  for (int i = 0; i < bwr_num_triggers; ++i) *flags[i] = i < count;
  return base;
}

sd_fault_tree make_bwr_model(const bwr_options& options) {
  return bwr_builder(options).build();
}

}  // namespace sdft
