#include "gen/industrial.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "ctmc/triggered.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sdft {

namespace {

/// Log-uniform sample in [lo, hi].
double log_uniform(rng& random, double lo, double hi) {
  return std::exp(random.uniform(std::log(lo), std::log(hi)));
}

class industrial_builder {
 public:
  explicit industrial_builder(const industrial_options& options)
      : opt_(options), random_(options.seed) {
    require_model(opt_.num_support_systems >= 0 &&
                      opt_.num_frontline_systems >= 1 &&
                      opt_.num_initiating_events >= 1 &&
                      opt_.sequences_per_ie >= 1,
                  "industrial: system/sequence counts must be positive");
    require_model(opt_.min_trains >= 1 &&
                      opt_.max_trains >= opt_.min_trains &&
                      opt_.components_per_train >= 1,
                  "industrial: train/component counts out of range");
  }

  industrial_model build() {
    // Support systems first: lean (fewer components, no further
    // dependencies) so that referencing them does not blow up the
    // branching of the sequence cross-products.
    for (int j = 0; j < opt_.num_support_systems; ++j) {
      support_.push_back(make_system("SUP" + std::to_string(j), 0,
                                     std::max(2, opt_.components_per_train - 2)));
    }
    for (int k = 0; k < opt_.num_frontline_systems; ++k) {
      frontline_.push_back(make_system("SYS" + std::to_string(k),
                                       opt_.num_support_systems,
                                       opt_.components_per_train));
    }

    // Event-tree layer: sequences = IE AND a few front-line failures,
    // reached through transfer-gate chains.
    std::vector<node_index> sequences;
    for (int i = 0; i < opt_.num_initiating_events; ++i) {
      const node_index ie = model_.ft.add_basic_event(
          "IE" + std::to_string(i), log_uniform(random_, 1e-3, 1e-1));
      for (int q = 0; q < opt_.sequences_per_ie; ++q) {
        const std::string seq_name =
            "SEQ" + std::to_string(i) + "_" + std::to_string(q);
        // Two distinct front-line systems per sequence: deeper ANDs fall
        // below any realistic cutoff anyway, and the pairwise products are
        // where truncation does its work (paper §IV-B).
        std::vector<node_index> inputs{ie};
        const std::size_t first = random_.below(frontline_.size());
        std::size_t second = random_.below(frontline_.size() - 1);
        if (second >= first) ++second;
        inputs.push_back(transfer_chain(frontline_[first].gate, seq_name, 0));
        inputs.push_back(transfer_chain(frontline_[second].gate, seq_name, 1));
        sequences.push_back(
            model_.ft.add_gate(seq_name, gate_type::and_gate, inputs));
      }
    }
    model_.ft.set_top(model_.ft.add_gate("CORE_DAMAGE", gate_type::or_gate,
                                         sequences));
    model_.ft.validate();
    return std::move(model_);
  }

 private:
  struct system {
    node_index gate;
    std::vector<node_index> train_gates;
  };

  /// A chain of `transfer_depth` single-input pass-through OR gates, the
  /// way event-tree sequence logic references system fault trees in
  /// industrial PSA studies.
  node_index transfer_chain(node_index target, const std::string& seq_name,
                            int slot) {
    node_index current = target;
    for (int d = 0; d < opt_.transfer_depth; ++d) {
      current = model_.ft.add_gate(seq_name + "_X" + std::to_string(slot) +
                                       "_" + std::to_string(d),
                                   gate_type::or_gate, {current});
    }
    return current;
  }

  /// A redundant system: AND over trains; each train an OR over component
  /// gates plus at most one support-train reference.
  system make_system(const std::string& name, int support_pool,
                     int components) {
    system sys;
    const int trains =
        static_cast<int>(random_.between(opt_.min_trains, opt_.max_trains));

    // Symmetric trains share per-slot failure data: sample once per slot.
    struct slot_data {
      bool has_fio;
      double fts;
      double rate;
      int group;
    };
    std::vector<slot_data> slots;
    for (int c = 0; c < components; ++c) {
      slot_data s;
      s.has_fio = random_.chance(0.6);
      s.fts = log_uniform(random_, opt_.fts_min, opt_.fts_max);
      s.rate = log_uniform(random_, opt_.fio_rate_min, opt_.fio_rate_max);
      s.group = next_group_++;
      slots.push_back(s);
    }

    // Support references: the same supports for all trains, aligned by
    // train index (train i uses support train i mod its train count).
    std::vector<const system*> supports;
    if (support_pool > 0 && random_.chance(0.6)) {
      supports.push_back(&support_[random_.below(
          static_cast<std::uint64_t>(support_pool))]);
    }

    for (int tr = 0; tr < trains; ++tr) {
      const std::string train_name = name + "_T" + std::to_string(tr);
      std::vector<node_index> inputs;
      for (int c = 0; c < components; ++c) {
        const slot_data& s = slots[c];
        const std::string comp_name =
            train_name + "_C" + std::to_string(c);
        const node_index fts =
            model_.ft.add_basic_event(comp_name + "_FTS", s.fts);
        if (s.has_fio) {
          const double p = 1.0 - std::exp(-s.rate * opt_.horizon);
          const node_index fio =
              model_.ft.add_basic_event(comp_name + "_FIO", p);
          const node_index comp = model_.ft.add_gate(
              comp_name, gate_type::or_gate, {fts, fio});
          inputs.push_back(comp);
          model_.fio_events.push_back(fio);
          model_.fio_rate.emplace(fio, s.rate);
          model_.redundancy_group.emplace(fio, s.group);
          model_.component_gate.emplace(fio, comp);
        } else {
          inputs.push_back(fts);
        }
      }
      for (const system* sup : supports) {
        inputs.push_back(
            sup->train_gates[tr % sup->train_gates.size()]);
      }
      sys.train_gates.push_back(
          model_.ft.add_gate(train_name, gate_type::or_gate, inputs));
    }
    sys.gate =
        model_.ft.add_gate(name + "_F", gate_type::and_gate, sys.train_gates);
    return sys;
  }

  const industrial_options opt_;
  rng random_;
  industrial_model model_;
  std::vector<system> support_;
  std::vector<system> frontline_;
  int next_group_ = 0;
};

}  // namespace

industrial_model generate_industrial(const industrial_options& options) {
  return industrial_builder(options).build();
}

sd_fault_tree annotate_dynamic(const industrial_model& model,
                               const std::vector<node_index>& ranked,
                               const annotation_options& options) {
  require_model(options.dynamic_fraction >= 0.0 &&
                    options.dynamic_fraction <= 1.0 &&
                    options.trigger_fraction >= 0.0 &&
                    options.trigger_fraction <= 1.0,
                "annotate_dynamic: fractions must lie in [0, 1]");

  // Select the top-importance FIO events for dynamic replacement.
  const std::unordered_set<node_index> fio_set(model.fio_events.begin(),
                                               model.fio_events.end());
  const auto target_dynamic = static_cast<std::size_t>(
      std::llround(options.dynamic_fraction *
                   static_cast<double>(model.fio_events.size())));
  std::vector<node_index> selected;  // in decreasing importance
  for (node_index b : ranked) {
    if (selected.size() >= target_dynamic) break;
    if (fio_set.count(b)) selected.push_back(b);
  }
  const std::unordered_set<node_index> selected_set(selected.begin(),
                                                    selected.end());

  // Arrange trigger chains inside redundancy groups, highest importance
  // first: the first (most important) member keeps running from time 0 and
  // each further member is started by the failure of the previous member's
  // component (paper §VI-B).
  const auto target_triggered = static_cast<std::size_t>(
      std::llround(options.trigger_fraction *
                   static_cast<double>(selected.size())));
  std::unordered_map<int, node_index> chain_tail;  // group -> last member
  std::unordered_map<node_index, node_index> trigger_source;
  std::size_t triggered = 0;
  for (node_index e : selected) {
    if (triggered >= target_triggered) break;
    const int group = model.redundancy_group.at(e);
    auto it = chain_tail.find(group);
    if (it == chain_tail.end()) {
      chain_tail.emplace(group, e);  // chain head, stays untriggered
      continue;
    }
    trigger_source.emplace(e, model.component_gate.at(it->second));
    it->second = e;
    ++triggered;
  }

  sd_fault_tree tree(model.ft);
  for (node_index e : selected) {
    const double rate = model.fio_rate.at(e);
    auto src = trigger_source.find(e);
    if (src != trigger_source.end()) {
      tree.make_dynamic(e, make_erlang_triggered(options.phases, rate,
                                                 options.repair_rate,
                                                 options.passive_factor));
      tree.set_trigger(src->second, e);
    } else {
      tree.make_dynamic(
          e, make_erlang_active(options.phases, rate, options.repair_rate));
    }
  }
  tree.validate();
  return tree;
}

}  // namespace sdft
