#pragma once

#include <stdexcept>
#include <string>

namespace sdft {

/// Base class for all errors raised by the sdft libraries.
///
/// Construction errors (ill-formed models, bad arguments) throw subclasses of
/// this type; numerical routines signal convergence problems the same way.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// A model (fault tree, CTMC, SD fault tree) violates a structural
/// well-formedness rule, e.g. cyclic definitions or dangling references.
class model_error : public error {
 public:
  explicit model_error(const std::string& what) : error(what) {}
};

/// A numeric routine received parameters outside its domain or failed to
/// converge within its configured bounds.
class numeric_error : public error {
 public:
  explicit numeric_error(const std::string& what) : error(what) {}
};

/// Throws model_error with `what` unless `cond` holds.
inline void require_model(bool cond, const std::string& what) {
  if (!cond) throw model_error(what);
}

}  // namespace sdft
