#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sdft {

/// Plain-text table formatter for the benchmark harness.
///
/// Produces aligned, pipe-separated tables mirroring the layout of the
/// tables in the paper, so bench output can be compared side by side with
/// the published numbers.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

/// Formats a probability/frequency like the paper: "4.09e-09".
std::string sci(double value, int digits = 2);

/// Formats seconds as "7.9s" or "2m 12s" like the paper's analysis times.
std::string duration_str(double seconds);

}  // namespace sdft
