#include "util/xml.hpp"

#include <cctype>

#include "util/error.hpp"

namespace sdft {

const xml_node* xml_node::child(const std::string& tag_name) const {
  for (const auto& c : children) {
    if (c.tag == tag_name) return &c;
  }
  return nullptr;
}

std::vector<const xml_node*> xml_node::children_of(
    const std::string& tag_name) const {
  std::vector<const xml_node*> out;
  for (const auto& c : children) {
    if (c.tag == tag_name) out.push_back(&c);
  }
  return out;
}

const std::string& xml_node::attribute(const std::string& name) const {
  auto it = attributes.find(name);
  require_model(it != attributes.end(),
                "xml: element <" + tag + "> lacks attribute '" + name + "'");
  return it->second;
}

namespace {

class xml_parser {
 public:
  explicit xml_parser(const std::string& text) : text_(text) {}

  xml_node parse_document() {
    skip_misc();
    xml_node root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw model_error("xml parse error at offset " + std::to_string(pos_) +
                      ": " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool starts_with(const char* s) const {
    return text_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, comments, processing instructions and doctypes.
  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts_with("<!--")) {
        const auto end = text_.find("-->", pos_ + 4);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("<?") || starts_with("<!")) {
        const auto end = text_.find('>', pos_);
        if (end == std::string::npos) fail("unterminated declaration");
        pos_ = end + 1;
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return text_.substr(start, pos_ - start);
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted value");
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '&') {
        if (starts_with("&amp;")) {
          value += '&';
          pos_ += 5;
        } else if (starts_with("&lt;")) {
          value += '<';
          pos_ += 4;
        } else if (starts_with("&gt;")) {
          value += '>';
          pos_ += 4;
        } else if (starts_with("&quot;")) {
          value += '"';
          pos_ += 6;
        } else if (starts_with("&apos;")) {
          value += '\'';
          pos_ += 6;
        } else {
          fail("unsupported entity");
        }
      } else {
        value += text_[pos_++];
      }
    }
    if (pos_ >= text_.size()) fail("unterminated attribute value");
    ++pos_;  // closing quote
    return value;
  }

  xml_node parse_element() {
    if (peek() != '<') fail("expected '<'");
    ++pos_;
    xml_node node;
    node.tag = parse_name();
    for (;;) {
      skip_whitespace();
      const char c = peek();
      if (c == '/') {
        if (!starts_with("/>")) fail("expected '/>'");
        pos_ += 2;
        return node;  // self-closing
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      const std::string name = parse_name();
      skip_whitespace();
      if (peek() != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_whitespace();
      node.attributes[name] = parse_attribute_value();
    }
    // Children until the matching close tag. Text content is ignored.
    for (;;) {
      skip_misc();
      if (starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node.tag) {
          fail("mismatched close tag '" + closing + "' for <" + node.tag +
               ">");
        }
        skip_whitespace();
        if (peek() != '>') fail("expected '>' in close tag");
        ++pos_;
        return node;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
      } else if (pos_ >= text_.size()) {
        fail("unterminated element <" + node.tag + ">");
      } else {
        ++pos_;  // skip text content
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

xml_node parse_xml(const std::string& text) {
  return xml_parser(text).parse_document();
}

std::string xml_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace sdft
