#pragma once

// Minimal streaming JSON writer, the output-side companion of
// util/json.hpp: builds one JSON document into a string with correct
// comma/nesting bookkeeping. Doubles print with %.17g (round-trip exact,
// so equality of printed probabilities is equality of bits); NaN and
// infinities, which JSON cannot carry, degrade to null.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace sdft::json {

/// JSON string escaping (quotes, backslash, control characters).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Round-trip-exact numeric literal for `v` (null for non-finite values).
inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// One-document streaming writer. Usage:
///   writer w;
///   w.begin_object().key("ok").boolean(true).key("p").number(0.5);
///   w.end_object();
///   send(w.str());
class writer {
 public:
  writer& begin_object() {
    separate();
    out_.push_back('{');
    push(true);
    return *this;
  }
  writer& end_object() {
    out_.push_back('}');
    pop();
    return *this;
  }
  writer& begin_array() {
    separate();
    out_.push_back('[');
    push(true);
    return *this;
  }
  writer& end_array() {
    out_.push_back(']');
    pop();
    return *this;
  }
  writer& key(const std::string& k) {
    separate();
    out_.push_back('"');
    out_ += escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }
  writer& string(const std::string& v) {
    separate();
    out_.push_back('"');
    out_ += escape(v);
    out_.push_back('"');
    return *this;
  }
  writer& number(double v) {
    separate();
    out_ += json::number(v);
    return *this;
  }
  writer& integer(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  writer& boolean(bool v) {
    separate();
    out_ += v ? "true" : "false";
    return *this;
  }
  writer& null() {
    separate();
    out_ += "null";
    return *this;
  }
  /// Splices a pre-rendered JSON value (e.g. a registry to_json() dump).
  writer& raw(const std::string& json_text) {
    separate();
    out_ += json_text;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  void separate() {
    if (pending_value_) {
      // Value directly after key(): no comma.
      pending_value_ = false;
      return;
    }
    if (depth_ > 0 && !first_[depth_ - 1]) out_.push_back(',');
    if (depth_ > 0) first_[depth_ - 1] = false;
  }
  void push(bool) {
    if (depth_ < max_depth) first_[depth_] = true;
    ++depth_;
  }
  void pop() {
    if (depth_ > 0) --depth_;
  }

  static constexpr std::size_t max_depth = 64;
  std::string out_;
  bool first_[max_depth] = {};
  std::size_t depth_ = 0;
  bool pending_value_ = false;
};

}  // namespace sdft::json
