#include "util/fox_glynn.hpp"

#include <cmath>
#include <cstddef>

#include "util/error.hpp"

namespace sdft {

double log_factorial(std::size_t n) {
#if defined(__GLIBC__)
  // std::lgamma writes the global signgam — a data race when the engine
  // quantifies cutsets in parallel; glibc's reentrant variant does not.
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

namespace {

/// log P[X = k] for X ~ Poisson(lambda).
double log_poisson_pmf(double lambda, std::size_t k) {
  if (lambda == 0.0) return k == 0 ? 0.0 : -HUGE_VAL;
  return -lambda + static_cast<double>(k) * std::log(lambda) -
         log_factorial(k);
}

}  // namespace

poisson_window fox_glynn(double lambda, double epsilon) {
  if (!(lambda >= 0.0)) throw numeric_error("fox_glynn: lambda must be >= 0");
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw numeric_error("fox_glynn: epsilon must be in (0, 1)");
  }

  poisson_window w;
  if (lambda == 0.0) {
    w.left = w.right = 0;
    w.weights = {1.0};
    return w;
  }

  // Walk outwards from the mode until the cumulative retained mass reaches
  // 1 - epsilon. Working in log space keeps this stable for large lambda.
  const auto mode = static_cast<std::size_t>(std::floor(lambda));
  const double log_mode = log_poisson_pmf(lambda, mode);

  // Collect log-pmf values left and right of the mode. The pmf at distance d
  // from the mode decays superexponentially, so the loop terminates quickly.
  std::vector<double> right_logs{log_mode};  // mode, mode+1, ...
  std::vector<double> left_logs;             // mode-1, mode-2, ...

  double mass = std::exp(log_mode);  // retained probability mass so far
  const double target = 1.0 - epsilon;
  std::size_t lo = mode;
  std::size_t hi = mode;
  double log_lo = log_mode;
  double log_hi = log_mode;

  while (mass < target) {
    // Extend on whichever side currently has the larger next term.
    const double next_hi_log =
        log_hi + std::log(lambda) -
        std::log(static_cast<double>(hi) + 1.0);
    const double next_lo_log =
        lo == 0 ? -HUGE_VAL
                : log_lo + std::log(static_cast<double>(lo)) - std::log(lambda);
    const double before = mass;
    if (next_hi_log >= next_lo_log) {
      ++hi;
      log_hi = next_hi_log;
      right_logs.push_back(log_hi);
      mass += std::exp(log_hi);
    } else {
      --lo;
      log_lo = next_lo_log;
      left_logs.push_back(log_lo);
      mass += std::exp(log_lo);
    }
    // For epsilons near the accumulation roundoff (~n * 2^-52) the
    // remaining terms can underflow against the running sum before the
    // target is met; the window then already holds every term that is
    // representable next to the others, and normalisation below absorbs
    // the shortfall.
    if (mass == before) break;
    if (hi > mode + 100000000) {
      throw numeric_error("fox_glynn: window failed to converge");
    }
  }

  w.left = lo;
  w.right = hi;
  w.weights.resize(hi - lo + 1);
  for (std::size_t i = 0; i < left_logs.size(); ++i) {
    w.weights[mode - lo - 1 - i] = std::exp(left_logs[i]);
  }
  for (std::size_t i = 0; i < right_logs.size(); ++i) {
    w.weights[mode - lo + i] = std::exp(right_logs[i]);
  }

  // Normalise the window so downstream mixtures of distributions stay
  // substochastic only through genuine absorption, not truncation.
  double total = 0.0;
  for (double v : w.weights) total += v;
  for (double& v : w.weights) v /= total;
  return w;
}

}  // namespace sdft
