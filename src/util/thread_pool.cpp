#include "util/thread_pool.hpp"

#include <atomic>

namespace sdft {

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(job));
  }
  work_available_.notify_one();
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = nullptr;
    std::swap(e, first_exception_);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for(thread_pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One job per index; quantification jobs are heavy enough that chunking
  // would only complicate load balancing across very uneven MCS sizes.
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace sdft
