#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace sdft {

namespace {

/// Worker registration: which pool (if any) the current thread belongs to.
/// Workers of nested pools see their own pool, not the outer one.
thread_local const thread_pool* tls_pool = nullptr;
thread_local std::size_t tls_index = thread_pool::npos;

}  // namespace

double pool_counters::occupancy_since(const pool_counters& before) const {
  std::size_t sum = 0;
  std::size_t max = 0;
  for (std::size_t i = 0; i < executed.size(); ++i) {
    const std::size_t prior = i < before.executed.size() ? before.executed[i] : 0;
    const std::size_t ran = executed[i] - prior;
    sum += ran;
    max = std::max(max, ran);
  }
  if (max == 0) return 0.0;
  return static_cast<double>(sum) /
         (static_cast<double>(executed.size()) * static_cast<double>(max));
}

thread_pool::thread_pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  deques_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<work_deque>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t thread_pool::worker_index() const {
  return tls_pool == this ? tls_index : npos;
}

pool_counters thread_pool::counters() const {
  pool_counters out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.stolen = stolen_.load(std::memory_order_relaxed);
  out.executed.reserve(deques_.size());
  for (const auto& dq : deques_) {
    out.executed.push_back(dq->executed.load(std::memory_order_relaxed));
  }
  return out;
}

void thread_pool::submit(std::function<void()> job) {
  const std::size_t me = worker_index();
  const std::size_t target =
      me != npos
          ? me
          : next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
  // pending_ and queued_ go up before the push so neither can be observed
  // below the number of live jobs (queued_ may transiently exceed it, which
  // only makes a scanner re-check a deque).
  pending_.fetch_add(1);
  queued_.fetch_add(1);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  work_deque& dq = *deques_[target];
  {
    std::lock_guard lock(dq.mutex);
    dq.jobs.push_back(std::move(job));
    dq.approx_size.store(dq.jobs.size(), std::memory_order_relaxed);
  }
  // Wake a sleeper if there might be one. The seq_cst ordering between the
  // queued_ increment above and this sleepers_ read pairs with the reverse
  // order in worker_loop (sleepers_ increment, then queued_ check under
  // mutex_), so a worker about to sleep either sees the new job or is
  // notified under the lock.
  if (sleepers_.load() > 0) {
    std::lock_guard lock(mutex_);
    work_available_.notify_one();
  }
}

bool thread_pool::try_pop(work_deque& dq, bool steal,
                          std::function<void()>& out) {
  if (dq.approx_size.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard lock(dq.mutex);
  if (dq.jobs.empty()) return false;
  if (steal) {
    out = std::move(dq.jobs.front());
    dq.jobs.pop_front();
  } else {
    out = std::move(dq.jobs.back());
    dq.jobs.pop_back();
  }
  dq.approx_size.store(dq.jobs.size(), std::memory_order_relaxed);
  queued_.fetch_sub(1);
  return true;
}

std::function<void()> thread_pool::take(std::size_t me) {
  std::function<void()> job;
  if (try_pop(*deques_[me], /*steal=*/false, job)) return job;
  const std::size_t n = deques_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (try_pop(*deques_[(me + i) % n], /*steal=*/true, job)) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return job;
    }
  }
  return job;  // empty: nothing to run anywhere
}

void thread_pool::worker_loop(std::size_t me) {
  tls_pool = this;
  tls_index = me;
  obs::set_thread_label("pool-worker-" + std::to_string(me));
  for (;;) {
    std::function<void()> job = take(me);
    if (!job) {
      std::unique_lock lock(mutex_);
      if (stopping_ && queued_.load() == 0) return;
      sleepers_.fetch_add(1);
      work_available_.wait(
          lock, [this] { return stopping_ || queued_.load() > 0; });
      sleepers_.fetch_sub(1);
      if (stopping_ && queued_.load() == 0) return;
      continue;
    }
    try {
      job();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    deques_[me]->executed.fetch_add(1, std::memory_order_relaxed);
    if (pending_.fetch_sub(1) == 1) {
      std::lock_guard lock(mutex_);
      all_idle_.notify_all();
    }
  }
}

void thread_pool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return pending_.load() == 0; });
  if (first_exception_) {
    std::exception_ptr e = nullptr;
    std::swap(e, first_exception_);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void parallel_for(thread_pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One job per index; quantification jobs are heavy enough that chunking
  // would only complicate load balancing across very uneven MCS sizes, and
  // the work-stealing deques keep per-job overhead off the shared path.
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace sdft
