#pragma once

#include <cstdint>
#include <limits>

namespace sdft {

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Deterministic across platforms for a given seed, which the synthetic model
/// generators rely on: a model is fully identified by its parameters + seed.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via SplitMix64.
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace sdft
