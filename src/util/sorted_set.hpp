#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace sdft {

/// Operations on sets represented as sorted, duplicate-free vectors.
///
/// Cutsets are small (usually 2-8 elements), so sorted vectors beat
/// node-based sets and hash sets both in memory and in time; these helpers
/// keep the representation invariant in one place.
namespace sorted_set {

/// Sorts and deduplicates `v` in place, establishing the representation.
template <typename T>
void normalize(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

template <typename T>
bool contains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// True iff `sub` is a subset of `super` (both normalized).
template <typename T>
bool is_subset(const std::vector<T>& sub, const std::vector<T>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

/// Inserts `x` keeping the representation; no-op if already present.
template <typename T>
void insert(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

/// Removes `x` if present.
template <typename T>
void erase(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) v.erase(it);
}

template <typename T>
std::vector<T> set_union(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

template <typename T>
std::vector<T> set_intersection(const std::vector<T>& a,
                                const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename T>
std::vector<T> set_difference(const std::vector<T>& a,
                              const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace sorted_set
}  // namespace sdft
