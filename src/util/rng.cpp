#include "util/rng.hpp"

namespace sdft {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
}

rng::result_type rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t rng::below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t rng::between(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool rng::chance(double p) { return uniform() < p; }

}  // namespace sdft
