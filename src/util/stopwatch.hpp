#pragma once

#include <chrono>

namespace sdft {

/// Wall-clock stopwatch used by the analysis pipeline and the benchmark
/// harness to report per-phase timings.
class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sdft
