#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sdft {

/// Fixed-size thread pool used to quantify minimal cutsets in parallel.
///
/// Deliberately minimal: submit() enqueues void() jobs, wait_idle() blocks
/// until every submitted job has finished. Exceptions escaping a job
/// terminate the process (jobs are expected to capture and report their own
/// failures), matching the pipeline's use where a failing quantification is
/// recorded in the per-MCS result instead of thrown.
class thread_pool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit thread_pool(std::size_t threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool();

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
/// With an empty pool (threads == 0 resolved to 1 worker) this still works;
/// for n == 0 it returns immediately.
void parallel_for(thread_pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sdft
