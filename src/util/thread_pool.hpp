#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdft {

/// Snapshot of a pool's work-distribution counters. Counters are cumulative
/// over the pool's lifetime; callers interested in one phase take a snapshot
/// before and after and difference them.
struct pool_counters {
  std::size_t submitted = 0;  ///< jobs handed to submit()
  std::size_t stolen = 0;     ///< jobs a worker took from another worker's deque
  std::vector<std::size_t> executed;  ///< jobs run, per worker

  /// Load balance of the jobs executed since `before`: mean per-worker
  /// executed count divided by the maximum, in [0, 1]. 1 means every worker
  /// ran the same number of jobs; 0 means no jobs ran at all.
  double occupancy_since(const pool_counters& before) const;
};

/// Fixed-size thread pool with per-worker work-stealing deques, used for
/// parallel cutset generation (stage 2) and per-cutset quantification
/// (stage 3) of the analysis engine.
///
/// Each worker owns a deque: jobs submitted from a worker thread go to the
/// back of its own deque (no shared lock), and the worker pops from the
/// back (LIFO, depth-first locality). Idle workers steal from the front of
/// other deques (FIFO, breadth-side work, i.e. the largest unexplored
/// subproblems). Jobs submitted from outside the pool are distributed
/// round-robin.
///
/// submit() enqueues void() jobs, wait_idle() blocks until every submitted
/// job (including jobs submitted by running jobs) has finished. An
/// exception escaping a job is captured (first one wins; later ones are
/// dropped) and rethrown from the next wait_idle(), after every remaining
/// job has run — the pool keeps draining, so no submitted work is silently
/// skipped. An exception never claimed by wait_idle() is discarded by the
/// destructor.
class thread_pool {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit thread_pool(std::size_t threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool();

  /// Enqueues a job for asynchronous execution. Safe to call from worker
  /// jobs of this pool (the job lands on the calling worker's own deque).
  void submit(std::function<void()> job);

  /// Blocks until every deque is empty and all workers are idle, then
  /// rethrows the first exception that escaped a job since the last
  /// wait_idle() (clearing it, so the pool stays usable). Must not be
  /// called from a worker job of this pool.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Index of the calling thread within this pool ([0, size())), or npos
  /// when called from a thread that is not a worker of this pool.
  std::size_t worker_index() const;

  /// Snapshot of the cumulative work-distribution counters.
  pool_counters counters() const;

 private:
  /// One worker's deque, padded so the per-deque locks and counters of
  /// adjacent workers do not share cache lines.
  struct alignas(64) work_deque {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
    std::atomic<std::size_t> approx_size{0};  ///< lock-free emptiness probe
    std::atomic<std::size_t> executed{0};
  };

  bool try_pop(work_deque& dq, bool steal, std::function<void()>& out);
  std::function<void()> take(std::size_t me);
  void worker_loop(std::size_t me);

  std::vector<std::unique_ptr<work_deque>> deques_;
  std::vector<std::thread> workers_;

  std::atomic<std::size_t> queued_{0};   ///< jobs sitting in deques
  std::atomic<std::size_t> pending_{0};  ///< queued + currently running
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> stolen_{0};
  std::atomic<std::size_t> next_deque_{0};  ///< round-robin for external submits

  std::mutex mutex_;  ///< guards the condition variables, stopping_, exception
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  bool stopping_ = false;
  std::exception_ptr first_exception_;
};

/// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
/// With an empty pool (threads == 0 resolved to 1 worker) this still works;
/// for n == 0 it returns immediately, and n smaller than the pool simply
/// leaves workers idle. If `fn` throws for some index — including the very
/// first — every index still runs and the first exception is rethrown
/// afterwards.
void parallel_for(thread_pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sdft
