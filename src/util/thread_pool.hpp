#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sdft {

/// Fixed-size thread pool used to quantify minimal cutsets in parallel.
///
/// Deliberately minimal: submit() enqueues void() jobs, wait_idle() blocks
/// until every submitted job has finished. An exception escaping a job is
/// captured (first one wins; later ones are dropped) and rethrown from the
/// next wait_idle(), after every remaining job has run — the pool keeps
/// draining, so no submitted work is silently skipped. An exception never
/// claimed by wait_idle() is discarded by the destructor.
class thread_pool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit thread_pool(std::size_t threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool();

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle, then
  /// rethrows the first exception that escaped a job since the last
  /// wait_idle() (clearing it, so the pool stays usable).
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_exception_;
};

/// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
/// With an empty pool (threads == 0 resolved to 1 worker) this still works;
/// for n == 0 it returns immediately. If `fn` throws for some index, every
/// index still runs and the first exception is rethrown afterwards.
void parallel_for(thread_pool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sdft
