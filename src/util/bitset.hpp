#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdft {

/// A word-packed fixed-width bitvector for the set-heavy cutset kernels.
///
/// Cutset subsumption, MOCUS visited keys and the per-event index all ask
/// the same questions — "is a a subset of b?", "do a and b intersect?",
/// "are a and b equal?" — over small integer sets. Sorted vectors answer
/// them element-by-element; packing the sets into 64-bit words answers
/// them word-by-word ((a & ~b) == 0 for the subset test), which is what
/// storm's BitVector does for exactly these workloads. The width is fixed
/// at construction; all bit positions must be < size(). Bits above size()
/// in the last word are kept zero, so whole-word operations (count,
/// equality, hashing) never see junk.
class packed_bitset {
 public:
  using word = std::uint64_t;
  static constexpr std::size_t bits_per_word = 64;

  packed_bitset() = default;

  /// A bitset of `num_bits` bits, all zero. Width 0 is a valid empty set.
  explicit packed_bitset(std::size_t num_bits)
      : bits_(num_bits), words_((num_bits + bits_per_word - 1) / bits_per_word,
                                word{0}) {}

  std::size_t size() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }

  void set(std::size_t i) { words_[i >> 6] |= word{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(word{1} << (i & 63)); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & word{1};
  }

  /// Zeroes every bit, keeping the width.
  void clear() {
    for (word& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (word w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool none() const {
    for (word w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool any() const { return !none(); }

  /// In-place intersection / union with an equal-width bitset.
  packed_bitset& operator&=(const packed_bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  packed_bitset& operator|=(const packed_bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  friend packed_bitset operator&(packed_bitset a, const packed_bitset& b) {
    a &= b;
    return a;
  }
  friend packed_bitset operator|(packed_bitset a, const packed_bitset& b) {
    a |= b;
    return a;
  }

  /// True iff every bit of *this is set in `other` (equal widths). The
  /// word loop (a & ~b) == 0 is the packed form of std::includes and the
  /// hot test of cutset subsumption.
  bool is_subset_of(const packed_bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  /// True iff *this and `other` share at least one bit (equal widths).
  bool intersects(const packed_bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  bool operator==(const packed_bitset& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  /// FNV-1a over the words; equal sets hash equally regardless of how the
  /// bits were produced.
  std::size_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (word w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }

  /// Calls fn(i) for every set bit i, in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      word w = words_[wi];
      while (w != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(w));
        fn(wi * bits_per_word + bit);
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<word> words_;
};

struct packed_bitset_hash {
  std::size_t operator()(const packed_bitset& b) const { return b.hash(); }
};

}  // namespace sdft
