#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace sdft {

/// Splits `line` on whitespace; '#' starts a comment running to end of line.
inline std::vector<std::string> tokenize_line(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok.front() == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

}  // namespace sdft
