#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace sdft {

/// Bounded associative container with least-recently-used eviction, the
/// storage layer shared by the engine caches (quantification_cache,
/// structure_cache). Not thread-safe — callers hold their own lock.
///
/// A capacity of 0 means unbounded. find() counts as a use; insert()
/// refuses to overwrite (first writer wins, matching the caches' "benign
/// duplicate" contract) but still refreshes the existing entry's recency.
/// Evictions are counted so the caches can surface them in engine_stats.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class lru_map {
 public:
  explicit lru_map(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Pointer to the value (refreshed as most recent), or nullptr. The
  /// pointer is invalidated by any later insert/erase/set_capacity.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (key, value) as most recent, evicting from the cold end past
  /// capacity. Returns false (and only refreshes recency) if the key
  /// already exists.
  bool insert(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    trim();
    return true;
  }

  /// Inserts or overwrites (key, value) as most recent, evicting from the
  /// cold end past capacity.
  void assign(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    trim();
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }

  /// Changes the bound (0 = unbounded) and evicts immediately if needed.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    trim();
  }

  void clear() {
    order_.clear();
    index_.clear();
    evictions_ = 0;
  }

 private:
  void trim() {
    while (capacity_ != 0 && index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::size_t capacity_;
  std::size_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace sdft
