#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace sdft {

/// Minimal XML element tree, sufficient for the Open-PSA MEF subset this
/// library exchanges: elements, attributes, nesting, comments and
/// processing instructions (skipped). Text content, namespaces, entities
/// and CDATA are not supported — the MEF fault-tree constructs are purely
/// attribute-based.
struct xml_node {
  std::string tag;
  std::unordered_map<std::string, std::string> attributes;
  std::vector<xml_node> children;

  /// First child with the given tag, or nullptr.
  const xml_node* child(const std::string& tag_name) const;

  /// All children with the given tag.
  std::vector<const xml_node*> children_of(const std::string& tag_name) const;

  /// Attribute value; throws model_error when absent.
  const std::string& attribute(const std::string& name) const;

  bool has_attribute(const std::string& name) const {
    return attributes.find(name) != attributes.end();
  }
};

/// Parses one XML document (a single root element). Throws model_error
/// with a character offset on malformed input.
xml_node parse_xml(const std::string& text);

/// Escapes &, <, >, " for attribute values.
std::string xml_escape(const std::string& value);

}  // namespace sdft
