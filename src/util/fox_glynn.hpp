#pragma once

#include <cstddef>
#include <vector>

namespace sdft {

/// Truncated, normalised Poisson probabilities for uniformisation.
///
/// For a Poisson distribution with mean `lambda`, holds weights
/// `weight[k - left]` approximating P[X = k] for k in [left, right] such that
/// the truncated tail mass is below the requested accuracy. Computed in the
/// spirit of Fox & Glynn (1988): find the mode, recurse outwards in log space,
/// rescale to avoid under-/overflow, then normalise the retained window.
struct poisson_window {
  std::size_t left = 0;
  std::size_t right = 0;
  std::vector<double> weights;  ///< size right - left + 1, sums to ~1.

  double weight(std::size_t k) const {
    return (k < left || k > right) ? 0.0 : weights[k - left];
  }
};

/// Computes the truncated Poisson window for mean `lambda >= 0` with total
/// truncated mass at most `epsilon`.
///
/// Throws numeric_error for invalid parameters (negative lambda, epsilon
/// outside (0, 1)).
poisson_window fox_glynn(double lambda, double epsilon);

/// log(n!) via lgamma; exposed for tests.
double log_factorial(std::size_t n);

}  // namespace sdft
