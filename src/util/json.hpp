#pragma once

// Minimal JSON reader used by the observability schema tests and the
// obs_check CI tool to validate --trace-json / --metrics-json output.
// Covers the full value grammar (objects, arrays, strings with the common
// escapes, numbers, booleans, null); throws sdft::error with a byte offset
// on malformed input. Not a general-purpose library: no unicode surrogate
// handling, no streaming.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace sdft::json {

class value;
using object = std::map<std::string, value>;
using array = std::vector<value>;

class value {
 public:
  enum class kind { null, boolean, number, string, array, object };

  value() : kind_(kind::null) {}
  explicit value(bool b) : kind_(kind::boolean), boolean_(b) {}
  explicit value(double n) : kind_(kind::number), number_(n) {}
  explicit value(std::string s)
      : kind_(kind::string), string_(std::move(s)) {}
  explicit value(array a)
      : kind_(kind::array), array_(std::make_shared<array>(std::move(a))) {}
  explicit value(object o)
      : kind_(kind::object), object_(std::make_shared<object>(std::move(o))) {}

  kind type() const { return kind_; }
  bool is_null() const { return kind_ == kind::null; }
  bool is_number() const { return kind_ == kind::number; }
  bool is_string() const { return kind_ == kind::string; }
  bool is_array() const { return kind_ == kind::array; }
  bool is_object() const { return kind_ == kind::object; }

  bool as_bool() const {
    require(kind_ == kind::boolean, "not a boolean");
    return boolean_;
  }
  double as_number() const {
    require(kind_ == kind::number, "not a number");
    return number_;
  }
  const std::string& as_string() const {
    require(kind_ == kind::string, "not a string");
    return string_;
  }
  const array& as_array() const {
    require(kind_ == kind::array, "not an array");
    return *array_;
  }
  const object& as_object() const {
    require(kind_ == kind::object, "not an object");
    return *object_;
  }

  /// Object member access; throws when absent or not an object.
  const value& at(const std::string& key) const {
    const object& o = as_object();
    const auto it = o.find(key);
    require(it != o.end(), "missing key '" + key + "'");
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

 private:
  static void require(bool cond, const std::string& what) {
    if (!cond) throw error("json: " + what);
  }

  kind kind_;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<array> array_;
  std::shared_ptr<object> object_;
};

namespace detail {

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value parse() {
    const value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return value(parse_string());
      case 't':
        parse_literal("true");
        return value(true);
      case 'f':
        parse_literal("false");
        return value(false);
      case 'n':
        parse_literal("null");
        return value();
      default:
        return value(parse_number());
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  value parse_object() {
    expect('{');
    object out;
    skip_ws();
    if (consume('}')) return value(std::move(out));
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return value(std::move(out));
    }
  }

  value parse_array() {
    expect('[');
    array out;
    skip_ws();
    if (consume(']')) return value(std::move(out));
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return value(std::move(out));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // ASCII only; anything else is preserved as '?' (the checker
          // never needs non-ASCII content).
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      const std::string tok = text_.substr(start, pos_ - start);
      const double v = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number");
      return v;
    } catch (const error&) {
      throw;
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` into a value tree; throws sdft::error on malformed input.
inline value parse(const std::string& text) {
  return detail::parser(text).parse();
}

}  // namespace sdft::json
