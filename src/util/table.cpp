#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace sdft {

text_table::text_table(std::vector<std::string> header) {
  widths_.resize(header.size());
  add_row(std::move(header));
}

void text_table::add_row(std::vector<std::string> row) {
  require_model(row.size() == widths_.size(),
                "text_table: row arity does not match header");
  for (std::size_t i = 0; i < row.size(); ++i) {
    widths_[i] = std::max(widths_[i], row[i].size());
  }
  rows_.push_back(std::move(row));
}

std::string text_table::str() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "| ";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      const auto& cell = rows_[r][c];
      out << cell << std::string(widths_[c] - cell.size(), ' ');
      out << (c + 1 == rows_[r].size() ? " |" : " | ");
    }
    out << '\n';
    if (r == 0) {
      out << '|';
      for (std::size_t c = 0; c < widths_.size(); ++c) {
        out << std::string(widths_[c] + 2, '-')
            << (c + 1 == widths_.size() ? "|" : "|");
      }
      out << '\n';
    }
  }
  return out.str();
}

std::string sci(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string duration_str(double seconds) {
  char buf[64];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    const int mins = static_cast<int>(seconds) / 60;
    const int secs = static_cast<int>(std::lround(seconds)) % 60;
    std::snprintf(buf, sizeof buf, "%dm %02ds", mins, secs);
  }
  return buf;
}

}  // namespace sdft
