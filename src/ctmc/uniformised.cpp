#include "ctmc/uniformised.hpp"

namespace sdft {

uniformised_dtmc::uniformised_dtmc(const ctmc& chain,
                                   const std::vector<char>& absorbing) {
  n = chain.num_states();
  // Slightly inflate q so no diagonal entry is exactly 0; aperiodicity
  // improves uniformisation convergence.
  q = chain.max_exit_rate() * 1.02 + 1e-12;

  // Counting pass: row s contributes its off-diagonal entry count, with
  // absorbing rows contributing nothing. The prefix sum turns the counts
  // into row offsets, so every row — including skipped absorbing ones —
  // has a well-defined, monotone [row_start[s], row_start[s+1]) range.
  row_start.assign(n + 1, 0);
  for (state_index s = 0; s < n; ++s) {
    row_start[s + 1] = absorbing[s] ? 0 : chain.transitions_from(s).size();
  }
  for (std::size_t s = 0; s < n; ++s) row_start[s + 1] += row_start[s];

  col.resize(row_start[n]);
  value.resize(row_start[n]);
  diagonal.assign(n, 1.0);
  for (state_index s = 0; s < n; ++s) {
    if (absorbing[s]) continue;
    std::size_t k = row_start[s];
    double exit = 0.0;
    for (const auto& [target, rate] : chain.transitions_from(s)) {
      col[k] = target;
      value[k] = rate / q;
      exit += rate;
      ++k;
    }
    diagonal[s] = 1.0 - exit / q;
  }
}

void uniformised_dtmc::step(const std::vector<double>& in,
                            std::vector<double>& out) const {
  for (std::size_t s = 0; s < n; ++s) out[s] = in[s] * diagonal[s];
  for (std::size_t s = 0; s < n; ++s) {
    const double mass = in[s];
    if (mass == 0.0) continue;
    for (std::size_t k = row_start[s]; k < row_start[s + 1]; ++k) {
      out[col[k]] += mass * value[k];
    }
  }
}

}  // namespace sdft
