#include "ctmc/stationary.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace sdft {

std::vector<double> stationary_distribution(const ctmc& chain,
                                            double tolerance,
                                            std::size_t max_iterations) {
  chain.validate();
  const std::size_t n = chain.num_states();
  const double q = chain.max_exit_rate() * 1.02 + 1e-12;

  // Power iteration v <- v P with P = I + R/q, from the uniform
  // distribution (any strictly positive start works for irreducible
  // chains and makes the result independent of chain.initial()).
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    for (std::size_t s = 0; s < n; ++s) {
      next[s] = v[s] * (1.0 - chain.exit_rate(s) / q);
    }
    for (std::size_t s = 0; s < n; ++s) {
      for (const auto& [to, rate] : chain.transitions_from(s)) {
        next[to] += v[s] * rate / q;
      }
    }
    double delta = 0.0;
    for (std::size_t s = 0; s < n; ++s) delta += std::abs(next[s] - v[s]);
    v.swap(next);
    if (delta < tolerance) return v;
  }
  throw numeric_error(
      "stationary_distribution: power iteration did not converge "
      "(is the chain irreducible?)");
}

double asymptotic_unavailability(const ctmc& chain, double tolerance) {
  const auto pi = stationary_distribution(chain, tolerance);
  double mass = 0.0;
  for (state_index s = 0; s < chain.num_states(); ++s) {
    if (chain.failed(s)) mass += pi[s];
  }
  return mass;
}

double mean_time_to_failure(const ctmc& chain, double tolerance,
                            std::size_t max_iterations) {
  chain.validate();
  const std::size_t n = chain.num_states();
  const auto failed = chain.failed_states();
  require_model(!failed.empty(), "mean_time_to_failure: no failed states");

  // Backward reachability of F: states that cannot reach F have infinite
  // hitting time.
  std::vector<char> can_reach(n, 0);
  for (state_index f : failed) can_reach[f] = 1;
  bool grew = true;
  while (grew) {
    grew = false;
    for (state_index s = 0; s < n; ++s) {
      if (can_reach[s]) continue;
      for (const auto& [to, rate] : chain.transitions_from(s)) {
        if (rate > 0.0 && can_reach[to]) {
          can_reach[s] = 1;
          grew = true;
          break;
        }
      }
    }
  }
  // Forward reachability from the initial support: the hitting time is
  // finite iff every reachable state can still reach F (finite chains hit
  // F almost surely exactly in that case).
  std::vector<char> reachable(n, 0);
  std::vector<state_index> stack;
  for (state_index s = 0; s < n; ++s) {
    if (chain.initial(s) > 0.0) {
      reachable[s] = 1;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const state_index s = stack.back();
    stack.pop_back();
    if (!can_reach[s]) return std::numeric_limits<double>::infinity();
    if (chain.failed(s)) continue;  // absorbed for this purpose
    for (const auto& [to, rate] : chain.transitions_from(s)) {
      if (rate > 0.0 && !reachable[to]) {
        reachable[to] = 1;
        stack.push_back(to);
      }
    }
  }

  // Gauss-Seidel on exit(s) h(s) = 1 + sum_{s'} R(s, s') h(s'), h|F = 0.
  std::vector<char> is_failed(n, 0);
  for (state_index f : failed) is_failed[f] = 1;
  std::vector<double> h(n, 0.0);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    double delta = 0.0;
    for (state_index s = 0; s < n; ++s) {
      if (is_failed[s] || !can_reach[s]) continue;
      const double exit = chain.exit_rate(s);
      require_model(exit > 0.0,
                    "mean_time_to_failure: state with no outgoing rate "
                    "claims to reach failure");
      double sum = 1.0;
      for (const auto& [to, rate] : chain.transitions_from(s)) {
        if (can_reach[to] && !is_failed[to]) sum += rate * h[to];
      }
      const double updated = sum / exit;
      delta += std::abs(updated - h[s]);
      h[s] = updated;
    }
    if (delta < tolerance * (1.0 + std::abs(h[0]))) {
      double mttf = 0.0;
      for (state_index s = 0; s < n; ++s) {
        if (chain.initial(s) > 0.0) mttf += chain.initial(s) * h[s];
      }
      return mttf;
    }
  }
  throw numeric_error("mean_time_to_failure: solver did not converge");
}

}  // namespace sdft
