#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace sdft {

/// A triggered continuous-time Markov chain (paper §III-A): a CTMC whose
/// state space is partitioned into switched-off and switched-on states,
/// with total switching maps on: S_off -> S_on and off: S_on -> S_off.
///
/// Well-formedness (checked by validate()):
///  - failed states are switched on (F subset of S_on),
///  - the initial distribution supports only S_off,
///  - to_on maps off-states to on-states, to_off maps on-states to
///    off-states.
struct triggered_ctmc {
  ctmc chain;

  /// Per-state flag: 1 if the state is in S_on.
  std::vector<char> on_state;

  /// to_on[s] is on(s) for s in S_off (entries for on-states are unused).
  std::vector<state_index> to_on;

  /// to_off[s] is off(s) for s in S_on (entries for off-states are unused).
  std::vector<state_index> to_off;

  void validate() const;
};

/// The worst-case probability that the event fails at least once within
/// horizon `t` over all possible triggering patterns (paper §V-B2).
///
/// Computed for the pattern "triggered at time 0 and never untriggered":
/// the initial distribution is shifted through on(.) and the chain is run
/// without any further switching. This is exact for models where being
/// switched on dominates being off (on-states fail at least as fast), which
/// holds for all models in this code base (passive rates are scaled-down
/// active rates, per the paper's §VI setup).
double worst_case_failure_probability(const triggered_ctmc& model, double t,
                                      double epsilon = 1e-10);

/// Builds the Erlang-style triggered chain of the paper's §VI:
/// k active phases 0..k-1 plus a failed phase k, degradation rate
/// k*failure_rate between consecutive phases, repair from the failed phase
/// back to phase 0 at `repair_rate`, plus mirror passive phases with
/// degradation slowed by `passive_factor` (paper: 100) and no repair while
/// passive. The chain starts passive in phase 0.
///
/// States 0..k are active (on) phases, states k+1..2k+1 are the passive
/// mirrors of phases 0..k. Only active phase k is failed.
triggered_ctmc make_erlang_triggered(int phases, double failure_rate,
                                     double repair_rate,
                                     double passive_factor = 100.0);

/// The untriggered (always active) variant: k+1 states, Erlang degradation,
/// repair from the failed phase to phase 0, starting in phase 0.
ctmc make_erlang_active(int phases, double failure_rate, double repair_rate);

}  // namespace sdft
