#include "ctmc/triggered.hpp"

#include "ctmc/transient.hpp"
#include "util/error.hpp"

namespace sdft {

void triggered_ctmc::validate() const {
  chain.validate();
  const std::size_t n = chain.num_states();
  require_model(on_state.size() == n && to_on.size() == n && to_off.size() == n,
                "triggered_ctmc: partition/map vectors have wrong size");
  for (state_index s = 0; s < n; ++s) {
    if (on_state[s]) {
      require_model(to_off[s] < n && !on_state[to_off[s]],
                    "triggered_ctmc: off() must map S_on into S_off");
    } else {
      require_model(to_on[s] < n && on_state[to_on[s]],
                    "triggered_ctmc: on() must map S_off into S_on");
      require_model(!chain.failed(s),
                    "triggered_ctmc: failed states must be switched on");
      // Initial support must lie in S_off: nothing to check here for
      // off-states; the on-state branch below enforces it.
    }
  }
  for (state_index s = 0; s < n; ++s) {
    if (on_state[s]) {
      require_model(chain.initial(s) == 0.0,
                    "triggered_ctmc: initial distribution must support S_off");
    }
  }
}

double worst_case_failure_probability(const triggered_ctmc& model, double t,
                                      double epsilon) {
  model.validate();
  // Shift the initial distribution through on(.) and drop all switching:
  // the event behaves as if demanded from time 0 for the whole horizon.
  ctmc shifted = model.chain;
  for (state_index s = 0; s < shifted.num_states(); ++s) {
    const double p = model.chain.initial(s);
    if (p == 0.0 || model.on_state[s]) continue;
    shifted.set_initial(s, 0.0);
    shifted.set_initial(model.to_on[s],
                        shifted.initial(model.to_on[s]) + p);
  }
  return reach_failed_probability(shifted, t, epsilon);
}

ctmc make_erlang_active(int phases, double failure_rate, double repair_rate) {
  require_model(phases >= 1, "erlang chain needs at least one phase");
  const auto k = static_cast<state_index>(phases);
  ctmc chain(k + 1);
  chain.set_initial(0, 1.0);
  chain.set_failed(k);
  for (state_index i = 0; i < k; ++i) {
    chain.add_rate(i, i + 1, failure_rate * phases);
  }
  if (repair_rate > 0.0) chain.add_rate(k, 0, repair_rate);
  return chain;
}

triggered_ctmc make_erlang_triggered(int phases, double failure_rate,
                                     double repair_rate,
                                     double passive_factor) {
  require_model(phases >= 1, "erlang chain needs at least one phase");
  require_model(passive_factor >= 0.0,
                "passive factor must be non-negative (0 = no passive aging)");
  const auto k = static_cast<state_index>(phases);
  // Active phases 0..k, passive mirrors k+1 .. 2k+1 (passive(i) = k+1+i).
  const auto passive = [k](state_index i) { return k + 1 + i; };

  triggered_ctmc model;
  model.chain = ctmc(2 * (k + 1));
  model.on_state.assign(2 * (k + 1), 0);
  model.to_on.assign(2 * (k + 1), 0);
  model.to_off.assign(2 * (k + 1), 0);

  for (state_index i = 0; i <= k; ++i) {
    model.on_state[i] = 1;
    model.to_off[i] = passive(i);
    model.to_on[passive(i)] = i;
  }
  model.chain.set_failed(k);
  model.chain.set_initial(passive(0), 1.0);

  for (state_index i = 0; i < k; ++i) {
    model.chain.add_rate(i, i + 1, failure_rate * phases);
    if (passive_factor > 0.0) {
      model.chain.add_rate(passive(i), passive(i + 1),
                           failure_rate * phases / passive_factor);
    }
  }
  // Repair brings the equipment back to as-new, and only happens while the
  // event is triggered (nobody repairs a standby failure they cannot see).
  if (repair_rate > 0.0) model.chain.add_rate(k, 0, repair_rate);

  model.validate();
  return model;
}

}  // namespace sdft
