#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"

namespace sdft {

/// Long-run (stationary) distribution of an irreducible CTMC by power
/// iteration on the uniformised DTMC. Throws numeric_error if the
/// iteration does not converge within `max_iterations` (e.g. because the
/// chain is reducible and the limit depends on the initial distribution —
/// use transient analysis for such chains).
std::vector<double> stationary_distribution(const ctmc& chain,
                                            double tolerance = 1e-12,
                                            std::size_t max_iterations =
                                                1'000'000);

/// Long-run unavailability: stationary probability mass on failed states.
/// The classic repairable-component measure lambda/(lambda+mu) generalises
/// to arbitrary repairable chains.
double asymptotic_unavailability(const ctmc& chain, double tolerance = 1e-12);

/// Mean time to first failure from the initial distribution: the expected
/// hitting time of the failed states. Returns +infinity if failure is not
/// reachable from some initially supported state. Solved by Gauss-Seidel
/// on the hitting-time equations exit(s) h(s) = 1 + sum R(s,s') h(s').
double mean_time_to_failure(const ctmc& chain, double tolerance = 1e-12,
                            std::size_t max_iterations = 1'000'000);

}  // namespace sdft
