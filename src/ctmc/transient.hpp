#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"

namespace sdft {

/// Numerical accuracy for uniformisation (truncated Poisson tail mass).
inline constexpr double default_transient_epsilon = 1e-10;

/// Transient state distribution of `chain` at time `t >= 0` by
/// uniformisation with Fox–Glynn Poisson weights.
std::vector<double> transient_distribution(
    const ctmc& chain, double t, double epsilon = default_transient_epsilon);

/// Time-bounded reachability Pr[Reach<=t(F)] of the failed states of
/// `chain` (paper §III-C2): failed states are made absorbing and the
/// transient probability mass on them at time t is returned.
double reach_failed_probability(const ctmc& chain, double t,
                                double epsilon = default_transient_epsilon);

/// As reach_failed_probability, but for an arbitrary target set given as
/// per-state flags (size num_states).
double reach_probability(const ctmc& chain, const std::vector<char>& target,
                         double t,
                         double epsilon = default_transient_epsilon);

}  // namespace sdft
