#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace sdft {

/// Numerical accuracy for uniformisation (truncated Poisson tail mass).
inline constexpr double default_transient_epsilon = 1e-10;

/// Instrumentation of one uniformisation run.
struct transient_stats {
  /// SpMV steps the plain Fox–Glynn loop would execute (the window's
  /// right edge).
  std::size_t steps_planned = 0;

  /// SpMV steps actually executed before a cutoff fired (== steps_planned
  /// when neither cutoff applies).
  std::size_t steps_taken = 0;

  /// Absorbed-mass bound fired: the remaining Poisson tail times the
  /// still-live probability mass dropped below the termination threshold.
  bool early_terminated = false;

  /// Steady-state detection fired: successive iterates stopped moving.
  bool steady_state = false;

  /// Largest number of live (non-absorbing, mass-carrying) states the
  /// frontier SpMV iterated over in one step.
  std::size_t peak_frontier = 0;

  std::size_t steps_saved() const { return steps_planned - steps_taken; }
};

/// Optional knobs of the uniformisation loop. The cutoffs add at most
/// epsilon/100 each to the truncation error, so results stay within the
/// requested accuracy; they exist as toggles for A/B benchmarking and for
/// pinning either behaviour in tests.
struct transient_controls {
  /// Terminate once the remaining Poisson tail times the live (not yet
  /// absorbed) mass bounds the residual below epsilon/100. Absorbing
  /// states are extrapolated with their current (monotone) mass.
  bool early_termination = true;

  /// Freeze the iterate once ||current - next||_1 times the remaining
  /// step count drops below epsilon/100 (the L1 contraction of a
  /// stochastic matrix bounds all further movement by that product).
  bool steady_state_detection = true;

  /// Collects loop counters when non-null.
  transient_stats* stats = nullptr;
};

/// Transient state distribution of `chain` at time `t >= 0` by
/// uniformisation with Fox–Glynn Poisson weights. The SpMV iterates a
/// live-state frontier: states are touched only once probability mass
/// reaches them.
std::vector<double> transient_distribution(
    const ctmc& chain, double t, double epsilon = default_transient_epsilon,
    const transient_controls& controls = {});

/// Time-bounded reachability Pr[Reach<=t(F)] of the failed states of
/// `chain` (paper §III-C2): failed states are made absorbing and the
/// transient probability mass on them at time t is returned.
double reach_failed_probability(const ctmc& chain, double t,
                                double epsilon = default_transient_epsilon,
                                const transient_controls& controls = {});

/// As reach_failed_probability, but for an arbitrary target set given as
/// per-state flags (size num_states).
double reach_probability(const ctmc& chain, const std::vector<char>& target,
                         double t,
                         double epsilon = default_transient_epsilon,
                         const transient_controls& controls = {});

}  // namespace sdft
