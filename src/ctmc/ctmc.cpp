#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sdft {

ctmc::ctmc(std::size_t num_states)
    : rows_(num_states), initial_(num_states, 0.0), failed_(num_states, 0) {}

state_index ctmc::add_state() {
  rows_.emplace_back();
  initial_.push_back(0.0);
  failed_.push_back(0);
  return static_cast<state_index>(rows_.size() - 1);
}

void ctmc::add_rate(state_index from, state_index to, double rate) {
  require_model(from < rows_.size() && to < rows_.size(),
                "ctmc: transition endpoint out of range");
  require_model(from != to, "ctmc: self-loop rates are not allowed");
  require_model(rate >= 0.0 && std::isfinite(rate),
                "ctmc: rate must be finite and non-negative");
  if (rate == 0.0) return;
  for (auto& [target, r] : rows_[from]) {
    if (target == to) {
      r += rate;
      return;
    }
  }
  rows_[from].emplace_back(to, rate);
}

void ctmc::set_initial(state_index state, double p) {
  require_model(state < rows_.size(), "ctmc: state out of range");
  require_model(p >= 0.0 && p <= 1.0, "ctmc: initial probability not in [0,1]");
  initial_[state] = p;
}

void ctmc::set_failed(state_index state, bool failed) {
  require_model(state < rows_.size(), "ctmc: state out of range");
  failed_[state] = failed ? 1 : 0;
}

double ctmc::exit_rate(state_index state) const {
  double total = 0.0;
  for (const auto& [target, rate] : rows_[state]) total += rate;
  return total;
}

double ctmc::max_exit_rate() const {
  double best = 0.0;
  for (state_index s = 0; s < rows_.size(); ++s) {
    best = std::max(best, exit_rate(s));
  }
  return best;
}

double ctmc::initial_mass() const {
  double total = 0.0;
  for (double p : initial_) total += p;
  return total;
}

std::vector<state_index> ctmc::failed_states() const {
  std::vector<state_index> out;
  for (state_index s = 0; s < failed_.size(); ++s) {
    if (failed_[s]) out.push_back(s);
  }
  return out;
}

void ctmc::validate() const {
  require_model(num_states() > 0, "ctmc: chain has no states");
  require_model(std::abs(initial_mass() - 1.0) < 1e-9,
                "ctmc: initial distribution does not sum to 1");
}

ctmc make_repairable(double failure_rate, double repair_rate) {
  ctmc chain(2);
  chain.set_initial(0, 1.0);
  chain.set_failed(1);
  chain.add_rate(0, 1, failure_rate);
  chain.add_rate(1, 0, repair_rate);
  return chain;
}

ctmc make_static_event(double p) {
  ctmc chain(2);
  chain.set_initial(0, 1.0 - p);
  chain.set_initial(1, p);
  chain.set_failed(1);
  return chain;
}

}  // namespace sdft
