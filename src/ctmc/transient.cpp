#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/uniformised.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/fox_glynn.hpp"

namespace sdft {

namespace {

std::vector<double> transient_impl(const ctmc& chain,
                                   const std::vector<char>& absorbing,
                                   double t, double epsilon,
                                   const transient_controls& controls) {
  require_model(t >= 0.0 && std::isfinite(t),
                "transient analysis requires a finite horizon t >= 0");
  chain.validate();

  transient_stats local_stats;
  transient_stats& stats =
      controls.stats != nullptr ? *controls.stats : local_stats;
  stats = {};

  const std::size_t n = chain.num_states();
  std::vector<double> current(n);
  for (state_index s = 0; s < n; ++s) current[s] = chain.initial(s);
  if (t == 0.0) return current;

  const uniformised_dtmc dtmc(chain, absorbing);
  if (dtmc.q * t < 1e-300) return current;

  const poisson_window window = fox_glynn(dtmc.q * t, epsilon);
  stats.steps_planned = window.right;
  stats.steps_taken = window.right;

  // Each cutoff below may add at most this much to the truncation error,
  // keeping the total well inside the requested epsilon.
  const double cutoff = epsilon * 1e-2;

  // Frontier bookkeeping: `reached` lists the states carrying probability
  // mass, `live` the subset with off-diagonal rows (the only states the
  // SpMV has to read). Both only grow: the inflated uniformisation rate
  // keeps every diagonal positive, so mass never drains out of a state.
  std::vector<char> in_reached(n, 0);
  std::vector<state_index> reached;
  std::vector<state_index> live;
  const auto touch = [&](state_index s) {
    if (in_reached[s]) return;
    in_reached[s] = 1;
    reached.push_back(s);
    if (!dtmc.absorbing_row(s)) live.push_back(s);
  };
  for (state_index s = 0; s < n; ++s) {
    if (current[s] > 0.0) touch(s);
  }

  std::vector<double> result(n, 0.0);
  std::vector<double> next(n, 0.0);  // zero outside `reached`, always
  double weight_done = 0.0;

  for (std::size_t k = 0; k <= window.right; ++k) {
    const double w = k >= window.left ? window.weight(k) : 0.0;
    if (w != 0.0) {
      for (state_index s : reached) result[s] += w * current[s];
      weight_done += w;
    }
    if (k == window.right) break;
    const double tail = std::max(0.0, 1.0 - weight_done);

    if (controls.early_termination) {
      // Mass on absorbing states grows monotonically, so freezing the
      // distribution under-counts each result entry by at most the live
      // mass that could still be absorbed, weighted by the Poisson tail.
      double live_mass = 0.0;
      for (state_index s : live) live_mass += current[s];
      if (tail * live_mass < cutoff) {
        for (state_index s : reached) result[s] += tail * current[s];
        stats.early_terminated = true;
        stats.steps_taken = k;
        if (obs::enabled()) {
          static obs::counter& c = obs::metrics_registry::global().get_counter(
              "transient.early_terminated");
          c.add(1);
        }
        return result;
      }
    }

    // One SpMV step, restricted to the live frontier. `next` is all-zero
    // outside `reached` by the sweep at the bottom of the loop, so newly
    // touched targets accumulate from a clean slot.
    stats.peak_frontier = std::max(stats.peak_frontier, live.size());
    for (state_index s : live) next[s] = current[s] * dtmc.diagonal[s];
    for (state_index s : reached) {
      if (dtmc.absorbing_row(s)) next[s] = current[s];
    }
    const std::size_t live_before = live.size();
    for (std::size_t i = 0; i < live_before; ++i) {
      const state_index s = live[i];
      const double mass = current[s];
      if (mass == 0.0) continue;
      for (std::size_t e = dtmc.row_start[s]; e < dtmc.row_start[s + 1];
           ++e) {
        touch(dtmc.col[e]);
        next[dtmc.col[e]] += mass * dtmc.value[e];
      }
    }

    if (controls.steady_state_detection) {
      // P is stochastic, so iteration contracts in L1: once one step
      // moves the iterate by delta, m further steps move it by at most
      // m * delta. Freeze when the whole remaining run stays under the
      // cutoff.
      double delta = 0.0;
      for (state_index s : reached) delta += std::abs(next[s] - current[s]);
      const double remaining = static_cast<double>(window.right - k - 1);
      if (delta * remaining < cutoff) {
        for (state_index s : reached) result[s] += tail * next[s];
        stats.steady_state = true;
        stats.steps_taken = k + 1;
        if (obs::enabled()) {
          static obs::counter& c = obs::metrics_registry::global().get_counter(
              "transient.steady_state_detected");
          c.add(1);
        }
        return result;
      }
    }

    current.swap(next);
    for (state_index s : reached) next[s] = 0.0;
  }
  return result;
}

}  // namespace

std::vector<double> transient_distribution(const ctmc& chain, double t,
                                           double epsilon,
                                           const transient_controls& controls) {
  const std::vector<char> none(chain.num_states(), 0);
  return transient_impl(chain, none, t, epsilon, controls);
}

double reach_probability(const ctmc& chain, const std::vector<char>& target,
                         double t, double epsilon,
                         const transient_controls& controls) {
  require_model(target.size() == chain.num_states(),
                "reach_probability: target flag vector has wrong size");
  const auto dist = transient_impl(chain, target, t, epsilon, controls);
  double p = 0.0;
  for (state_index s = 0; s < chain.num_states(); ++s) {
    if (target[s]) p += dist[s];
  }
  return p;
}

double reach_failed_probability(const ctmc& chain, double t, double epsilon,
                                const transient_controls& controls) {
  std::vector<char> target(chain.num_states(), 0);
  for (state_index s = 0; s < chain.num_states(); ++s) {
    target[s] = chain.failed(s) ? 1 : 0;
  }
  return reach_probability(chain, target, t, epsilon, controls);
}

}  // namespace sdft
