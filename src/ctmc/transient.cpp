#include "ctmc/transient.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/fox_glynn.hpp"

namespace sdft {

namespace {

/// Compressed sparse rows of the uniformised DTMC P = I + R/q, with the
/// option to make a set of states absorbing (their row becomes the unit
/// vector, i.e. only the implicit diagonal remains).
struct uniformised_dtmc {
  std::size_t n;
  double q;
  std::vector<std::size_t> row_start;    // size n+1
  std::vector<state_index> col;          // off-diagonal targets
  std::vector<double> value;             // off-diagonal probabilities
  std::vector<double> diagonal;          // P(s, s)

  uniformised_dtmc(const ctmc& chain, const std::vector<char>& absorbing) {
    n = chain.num_states();
    // Slightly inflate q so no diagonal entry is exactly 0; aperiodicity
    // improves uniformisation convergence.
    q = chain.max_exit_rate() * 1.02 + 1e-12;
    row_start.assign(n + 1, 0);
    diagonal.assign(n, 1.0);
    for (state_index s = 0; s < n; ++s) {
      row_start[s] = col.size();
      if (absorbing[s]) continue;
      double exit = 0.0;
      for (const auto& [target, rate] : chain.transitions_from(s)) {
        col.push_back(target);
        value.push_back(rate / q);
        exit += rate;
      }
      diagonal[s] = 1.0 - exit / q;
    }
    row_start[n] = col.size();
  }

  /// out = in * P (distribution-vector times matrix).
  void step(const std::vector<double>& in, std::vector<double>& out) const {
    for (std::size_t s = 0; s < n; ++s) out[s] = in[s] * diagonal[s];
    for (std::size_t s = 0; s < n; ++s) {
      const double mass = in[s];
      if (mass == 0.0) continue;
      for (std::size_t k = row_start[s]; k < row_start[s + 1]; ++k) {
        out[col[k]] += mass * value[k];
      }
    }
  }
};

std::vector<double> transient_impl(const ctmc& chain,
                                   const std::vector<char>& absorbing,
                                   double t, double epsilon) {
  require_model(t >= 0.0 && std::isfinite(t),
                "transient analysis requires a finite horizon t >= 0");
  chain.validate();

  const std::size_t n = chain.num_states();
  std::vector<double> current(n);
  for (state_index s = 0; s < n; ++s) current[s] = chain.initial(s);
  if (t == 0.0) return current;

  const uniformised_dtmc dtmc(chain, absorbing);
  if (dtmc.q * t < 1e-300) return current;

  const poisson_window window = fox_glynn(dtmc.q * t, epsilon);

  std::vector<double> result(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t k = 0; k <= window.right; ++k) {
    if (k >= window.left) {
      const double w = window.weight(k);
      for (std::size_t s = 0; s < n; ++s) result[s] += w * current[s];
    }
    if (k < window.right) {
      dtmc.step(current, next);
      current.swap(next);
    }
  }
  return result;
}

}  // namespace

std::vector<double> transient_distribution(const ctmc& chain, double t,
                                           double epsilon) {
  const std::vector<char> none(chain.num_states(), 0);
  return transient_impl(chain, none, t, epsilon);
}

double reach_probability(const ctmc& chain, const std::vector<char>& target,
                         double t, double epsilon) {
  require_model(target.size() == chain.num_states(),
                "reach_probability: target flag vector has wrong size");
  const auto dist = transient_impl(chain, target, t, epsilon);
  double p = 0.0;
  for (state_index s = 0; s < chain.num_states(); ++s) {
    if (target[s]) p += dist[s];
  }
  return p;
}

double reach_failed_probability(const ctmc& chain, double t, double epsilon) {
  std::vector<char> target(chain.num_states(), 0);
  for (state_index s = 0; s < chain.num_states(); ++s) {
    target[s] = chain.failed(s) ? 1 : 0;
  }
  return reach_probability(chain, target, t, epsilon);
}

}  // namespace sdft
