#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace sdft {

/// Compressed sparse rows of the uniformised DTMC P = I + R/q of a CTMC,
/// with the option to make a set of states absorbing (their row becomes
/// the unit vector, i.e. only the implicit diagonal remains).
///
/// Construction runs an explicit counting pass first, so row_start is
/// monotone by construction: row_start[s+1] - row_start[s] is the number
/// of off-diagonal entries of row s (0 for absorbing rows), and
/// row_start[n] == col.size() == value.size().
struct uniformised_dtmc {
  std::size_t n = 0;
  double q = 0;
  std::vector<std::size_t> row_start;  ///< size n+1, non-decreasing
  std::vector<state_index> col;        ///< off-diagonal targets
  std::vector<double> value;           ///< off-diagonal probabilities
  std::vector<double> diagonal;        ///< P(s, s); 1 for absorbing rows

  uniformised_dtmc(const ctmc& chain, const std::vector<char>& absorbing);

  /// True iff row s is the unit vector: no off-diagonal entries. Covers
  /// both explicitly-absorbing states and states without any outgoing
  /// rate (e.g. failed product states that were never expanded).
  bool absorbing_row(state_index s) const {
    return row_start[s] == row_start[s + 1];
  }

  /// out = in * P (distribution-vector times matrix), dense over all
  /// states. The frontier-restricted variant lives in the transient
  /// solver; this one is the reference used by tests.
  void step(const std::vector<double>& in, std::vector<double>& out) const;
};

}  // namespace sdft
