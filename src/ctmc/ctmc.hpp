#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sdft {

/// State index within a ctmc.
using state_index = std::uint32_t;

/// A finite continuous-time Markov chain (paper §III-A): an initial
/// distribution, a rate matrix held sparsely per row, and a set of failed
/// states.
///
/// Rates accumulate: calling add_rate(s, s', r) twice sums the rates, which
/// matches merging parallel transitions of the product construction.
class ctmc {
 public:
  explicit ctmc(std::size_t num_states = 0);

  std::size_t num_states() const { return rows_.size(); }

  /// Appends a state; returns its index.
  state_index add_state();

  /// Adds `rate >= 0` from `from` to `to` (accumulating). Self-loops are
  /// rejected: they are meaningless in a CTMC rate matrix.
  void add_rate(state_index from, state_index to, double rate);

  /// Sets the initial probability of `state` (overwriting).
  void set_initial(state_index state, double p);

  void set_failed(state_index state, bool failed = true);

  double initial(state_index state) const { return initial_[state]; }
  bool failed(state_index state) const { return failed_[state] != 0; }

  /// Outgoing transitions of `state` as (target, rate) pairs.
  const std::vector<std::pair<state_index, double>>& transitions_from(
      state_index state) const {
    return rows_[state];
  }

  /// Sum of outgoing rates of `state`.
  double exit_rate(state_index state) const;

  /// Largest exit rate over all states (the uniformisation rate base).
  double max_exit_rate() const;

  /// Sum of the initial distribution (should be ~1 for a valid chain).
  double initial_mass() const;

  /// Indices of failed states.
  std::vector<state_index> failed_states() const;

  /// Checks distribution mass ~1 and non-negative rates; throws model_error.
  void validate() const;

 private:
  std::vector<std::vector<std::pair<state_index, double>>> rows_;
  std::vector<double> initial_;
  std::vector<char> failed_;
};

/// Convenience factory: the two-state chain of a repairable component that
/// starts working, fails with `failure_rate` and is repaired with
/// `repair_rate` (Example 2 of the paper). State 0 = ok, state 1 = failed.
ctmc make_repairable(double failure_rate, double repair_rate);

/// Convenience factory for a static basic event expressed as a chain
/// (paper §III-C): two states, zero rate matrix, initial probability `p`
/// of starting failed. State 0 = ok, state 1 = failed.
ctmc make_static_event(double p);

}  // namespace sdft
