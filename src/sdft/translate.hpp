#pragma once

#include <unordered_map>

#include "ft/fault_tree.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// The static fault tree FT-bar induced by an SD fault tree (paper §V-B):
/// same minimal cutsets, with trigger edges compiled into AND gates and
/// dynamic events carrying worst-case static probabilities.
struct static_translation {
  fault_tree ft_bar;

  /// node in the SD tree -> corresponding node in ft_bar (basic events and
  /// gates; trigger-wrapper AND gates of ft_bar have no preimage).
  std::unordered_map<node_index, node_index> to_bar;

  /// basic event in ft_bar -> originating basic event in the SD tree.
  std::unordered_map<node_index, node_index> to_sd;

  /// Worst-case probability p(a) assigned to each dynamic basic event
  /// (paper §V-B2), keyed by SD-tree node index.
  std::unordered_map<node_index, double> worst_case;
};

/// Builds FT-bar for `tree` with horizon `t`:
///  - each triggered dynamic event b with triggering gate g becomes an AND
///    gate over (b, g), and all former parents of b point to that AND;
///  - every dynamic event gets the worst-case probability that it fails at
///    least once within t ("triggered at 0, never untriggered");
///  - trigger edges are dropped.
///
/// The result has exactly the minimal cutsets of `tree` (paper §V-B1), and
/// the MOCUS cutoff on it is conservative with respect to the dynamic
/// quantification (paper eq. (1)).
///
/// With `reference_cutoff` set, dynamic events that carry a non-zero
/// reference static probability use it in FT-bar instead of the worst
/// case — the paper's "static cutoff" (§VI), which keeps the generated
/// cutset list independent of the dynamic models (e.g. of the Erlang phase
/// count). The worst-case map is still computed and returned.
static_translation translate_to_static(const sd_fault_tree& tree, double t,
                                       double epsilon = 1e-10,
                                       bool reference_cutoff = false);

}  // namespace sdft
