#pragma once

#include <unordered_map>
#include <variant>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/triggered.hpp"
#include "ft/fault_tree.hpp"

namespace sdft {

/// The stochastic model of a dynamic basic event (paper §III-B):
/// an untriggered event evolves from time 0 as a plain CTMC; a triggered
/// event is a triggered CTMC switched by the failure of its triggering gate.
using dynamic_model = std::variant<ctmc, triggered_ctmc>;

/// A static and dynamic (SD) fault tree (paper §III-B).
///
/// Structurally a coherent AND/OR fault tree whose leaves are partitioned
/// into static basic events (carrying a failure probability) and dynamic
/// basic events (carrying a CTMC). Failures of gates may trigger dynamic
/// basic events; each dynamic event has at most one triggering gate and the
/// trigger structure must be acyclic together with the tree edges.
class sd_fault_tree {
 public:
  sd_fault_tree() = default;

  /// Adopts an existing static fault tree; node indices are preserved.
  /// Basic events can subsequently be promoted with make_dynamic(), which
  /// is how the generators enrich legacy static studies (paper §VI-B).
  explicit sd_fault_tree(fault_tree base) : ft_(std::move(base)) {}

  /// The underlying DAG. Dynamic basic events appear as basic events with
  /// probability 0 (their quantification comes from their chains).
  const fault_tree& structure() const { return ft_; }
  fault_tree& structure() { return ft_; }

  node_index add_static_event(std::string name, double p);

  /// Adds an untriggered dynamic basic event (active from time 0).
  /// `reference_p` is an optional legacy static probability for the event
  /// (the value a static study would use); it is retained on the node and
  /// can drive the paper's "static cutoff" during MCS generation (§VI).
  node_index add_dynamic_event(std::string name, ctmc chain,
                               double reference_p = 0.0);

  /// Adds a dynamic basic event that must be given a trigger with
  /// set_trigger() before the tree validates.
  node_index add_dynamic_event(std::string name, triggered_ctmc model,
                               double reference_p = 0.0);

  /// Promotes an existing static basic event to an untriggered dynamic
  /// one. Its static probability is retained as the reference probability.
  void make_dynamic(node_index event, ctmc chain);

  /// Promotes an existing static basic event to a triggered dynamic one;
  /// pair with set_trigger() before validate(). The static probability is
  /// retained as the reference probability.
  void make_dynamic(node_index event, triggered_ctmc model);

  /// The reference static probability of a dynamic event (0 if none).
  double reference_probability(node_index event) const;

  node_index add_gate(std::string name, gate_type type,
                      std::vector<node_index> inputs = {});
  void add_input(node_index gate, node_index input);
  void set_top(node_index gate);

  /// Declares that the failure of `gate` triggers `event` (a dynamic basic
  /// event with a triggered_ctmc model). An event can be triggered by at
  /// most one gate (paper §III-B; connect multiple would-be triggering
  /// gates by an OR first).
  void set_trigger(node_index gate, node_index event);

  bool is_dynamic(node_index n) const { return dynamic_.count(n) > 0; }
  bool is_static(node_index n) const {
    return ft_.is_basic(n) && !is_dynamic(n);
  }

  const dynamic_model& model_of(node_index event) const;

  /// True iff the dynamic event carries a triggered_ctmc model.
  bool has_triggered_model(node_index event) const;

  /// The gate triggering `event`, or fault_tree::npos if none.
  node_index trigger_gate_of(node_index event) const;

  /// The dynamic events triggered by `gate` (empty for most gates).
  std::vector<node_index> triggered_events(node_index gate) const;

  std::vector<node_index> dynamic_events() const;
  std::vector<node_index> static_events() const;

  /// Full well-formedness check (paper §III-B): the structure validates,
  /// every chain validates, triggered models are exactly the triggered
  /// events, and the graph with reversed trigger edges is acyclic.
  /// Throws model_error.
  void validate() const;

 private:
  fault_tree ft_;
  std::unordered_map<node_index, dynamic_model> dynamic_;
  std::unordered_map<node_index, node_index> trigger_of_;  // event -> gate
  std::unordered_map<node_index, std::vector<node_index>> triggers_;
};

}  // namespace sdft
