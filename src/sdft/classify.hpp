#pragma once

#include <string>
#include <vector>

#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// The tractability classes of trigger-gate subtrees (paper §V-A), ordered
/// by the cost of the per-cutset quantification they induce:
///  - static_branching: Rel_a = Dyn_a intersected with the cutset,
///  - static_joins:     Rel_a = all dynamic events of the subtree,
///  - general:          Rel_a = everything but static events of the cutset.
enum class trigger_class { static_branching, static_joins, general };

std::string to_string(trigger_class c);

/// True iff the subtree of `gate` contains a dynamic basic event
/// ("dynamic gate", paper §V-A). Also true when `gate` is itself a dynamic
/// basic event, which lets the predicate run on arbitrary children.
bool is_dynamic_node(const sd_fault_tree& tree, node_index node);

/// Static branching: every OR gate in the subtree of `gate` (including
/// `gate` itself) has at most one dynamic child.
bool has_static_branching(const sd_fault_tree& tree, node_index gate);

/// Static joins: no AND gate in the subtree of `gate` (including `gate`)
/// has a dynamic child.
bool has_static_joins(const sd_fault_tree& tree, node_index gate);

/// Uniform triggering: every dynamic basic event under `gate` is triggered
/// and all of them share one triggering gate (paper §V-A). Vacuously true
/// when the subtree has no dynamic events.
bool has_uniform_triggering(const sd_fault_tree& tree, node_index gate);

/// The cheapest class `gate` qualifies for: static branching is preferred,
/// then static joins, then the general case.
trigger_class classify_trigger_gate(const sd_fault_tree& tree,
                                    node_index gate);

/// Diagnostic report on the triggering structure of a whole tree: for each
/// triggering gate, its class, and whether chained static-joins triggers
/// have the uniform-triggering property the paper requires for efficiency.
struct trigger_report {
  struct entry {
    node_index gate;
    trigger_class cls;
    bool uniform_triggering;
  };
  std::vector<entry> gates;

  /// True iff every triggering gate has static branching, or static joins
  /// with uniform triggering — the paper's condition for guaranteed-small
  /// per-cutset Markov chains (§V-C).
  bool efficient = true;
};

trigger_report analyze_triggers(const sd_fault_tree& tree);

}  // namespace sdft
