#include "sdft/classify.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace sdft {

std::string to_string(trigger_class c) {
  switch (c) {
    case trigger_class::static_branching:
      return "static-branching";
    case trigger_class::static_joins:
      return "static-joins";
    case trigger_class::general:
      return "general";
  }
  return "?";
}

bool is_dynamic_node(const sd_fault_tree& tree, node_index node) {
  for (node_index n : tree.structure().descendants(node)) {
    if (tree.structure().is_basic(n) && tree.is_dynamic(n)) return true;
  }
  return false;
}

namespace {

/// Memoised per-node dynamicity over one subtree walk.
std::unordered_map<node_index, bool> dynamic_map(const sd_fault_tree& tree,
                                                 node_index root) {
  std::unordered_map<node_index, bool> dyn;
  // descendants() returns parents before children is not guaranteed, so
  // resolve with an explicit post-order evaluation.
  const auto& ft = tree.structure();
  std::vector<std::pair<node_index, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    if (dyn.count(n)) continue;
    if (ft.is_basic(n)) {
      dyn[n] = tree.is_dynamic(n);
      continue;
    }
    if (!expanded) {
      stack.push_back({n, true});
      for (node_index child : ft.node(n).inputs) {
        if (!dyn.count(child)) stack.push_back({child, false});
      }
    } else {
      bool d = false;
      for (node_index child : ft.node(n).inputs) d = d || dyn.at(child);
      dyn[n] = d;
    }
  }
  return dyn;
}

}  // namespace

bool has_static_branching(const sd_fault_tree& tree, node_index gate) {
  const auto& ft = tree.structure();
  const auto dyn = dynamic_map(tree, gate);
  for (node_index n : ft.descendants(gate)) {
    if (!ft.is_gate(n) || ft.node(n).type != gate_type::or_gate) continue;
    int dynamic_children = 0;
    for (node_index child : ft.node(n).inputs) {
      if (dyn.at(child)) ++dynamic_children;
    }
    if (dynamic_children > 1) return false;
  }
  return true;
}

bool has_static_joins(const sd_fault_tree& tree, node_index gate) {
  const auto& ft = tree.structure();
  const auto dyn = dynamic_map(tree, gate);
  for (node_index n : ft.descendants(gate)) {
    if (!ft.is_gate(n) || ft.node(n).type != gate_type::and_gate) continue;
    for (node_index child : ft.node(n).inputs) {
      if (dyn.at(child)) return false;
    }
  }
  return true;
}

bool has_uniform_triggering(const sd_fault_tree& tree, node_index gate) {
  const auto& ft = tree.structure();
  node_index common = fault_tree::npos;
  bool first = true;
  for (node_index n : ft.descendants(gate)) {
    if (!ft.is_basic(n) || !tree.is_dynamic(n)) continue;
    const node_index trig = tree.trigger_gate_of(n);
    if (trig == fault_tree::npos) return false;  // untriggered dynamic event
    if (first) {
      common = trig;
      first = false;
    } else if (trig != common) {
      return false;
    }
  }
  return true;
}

trigger_class classify_trigger_gate(const sd_fault_tree& tree,
                                    node_index gate) {
  require_model(tree.structure().is_gate(gate),
                "classify_trigger_gate: node is not a gate");
  if (has_static_branching(tree, gate)) return trigger_class::static_branching;
  if (has_static_joins(tree, gate)) return trigger_class::static_joins;
  return trigger_class::general;
}

trigger_report analyze_triggers(const sd_fault_tree& tree) {
  trigger_report report;
  for (node_index g : tree.structure().gates()) {
    if (tree.triggered_events(g).empty()) continue;
    trigger_report::entry e;
    e.gate = g;
    e.cls = classify_trigger_gate(tree, g);
    e.uniform_triggering = has_uniform_triggering(tree, g);
    if (e.cls == trigger_class::general ||
        (e.cls == trigger_class::static_joins && !e.uniform_triggering)) {
      // General gates and non-uniform static joins are only safe at the
      // start of triggering sequences (paper §V-C); flag the model so the
      // user can predict quantification cost.
      report.efficient = false;
    }
    report.gates.push_back(e);
  }
  return report;
}

}  // namespace sdft
