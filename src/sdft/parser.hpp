#pragma once

#include <iosfwd>
#include <string>

#include "sdft/sd_fault_tree.hpp"

namespace sdft {

/// Line-oriented text format for SD fault trees, extending the static
/// format of ft/parser.hpp:
///
/// ```
/// be   <name> <probability>          # static basic event
/// and  <name> [<child> ...]          # gates; children may be forward refs
/// or   <name> [<child> ...]
/// top  <name>
///
/// dyn  <name> erlang <phases> <lambda> <mu>
///      # untriggered Erlang chain, active from time 0
/// dyn  <name> erlang-triggered <phases> <lambda> <mu> <passive-factor>
///      # triggered Erlang chain; pair with a trigger line
/// dyn  <name> chain <num-states>     # explicit CTMC block, ends with "end"
///   init   <state> <p>
///   failed <state> [<state> ...]
///   rate   <from> <to> <lambda>
///   on     <off-state> <on-state>    # switching maps; their presence makes
///   off    <on-state> <off-state>    # the chain a triggered CTMC
/// end
///
/// trigger <gate> <event> [<event> ...]
/// ```
///
/// The chain block's on/off lines must form total maps between the two
/// state classes (S_on = the keys of "off" lines). Throws model_error with
/// a line number on any problem.
sd_fault_tree parse_sd_fault_tree(std::istream& in);
sd_fault_tree parse_sd_fault_tree_string(const std::string& text);

/// Serialises `tree` in the format accepted by parse_sd_fault_tree().
/// Dynamic events are written as explicit chain blocks (factory-built
/// chains do not round-trip to their factory form, only to their states).
std::string write_sd_fault_tree(const sd_fault_tree& tree);

}  // namespace sdft
