#include "sdft/sd_fault_tree.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace sdft {

node_index sd_fault_tree::add_static_event(std::string name, double p) {
  return ft_.add_basic_event(std::move(name), p);
}

node_index sd_fault_tree::add_dynamic_event(std::string name, ctmc chain,
                                            double reference_p) {
  chain.validate();
  const node_index idx = ft_.add_basic_event(std::move(name), reference_p);
  dynamic_.emplace(idx, std::move(chain));
  return idx;
}

node_index sd_fault_tree::add_dynamic_event(std::string name,
                                            triggered_ctmc model,
                                            double reference_p) {
  model.validate();
  const node_index idx = ft_.add_basic_event(std::move(name), reference_p);
  dynamic_.emplace(idx, std::move(model));
  return idx;
}

double sd_fault_tree::reference_probability(node_index event) const {
  require_model(is_dynamic(event),
                "sd_fault_tree: node is not a dynamic basic event");
  return ft_.node(event).probability;
}

void sd_fault_tree::make_dynamic(node_index event, ctmc chain) {
  chain.validate();
  require_model(event < ft_.size() && is_static(event),
                "sd_fault_tree: make_dynamic target must be a static event");
  dynamic_.emplace(event, std::move(chain));
}

void sd_fault_tree::make_dynamic(node_index event, triggered_ctmc model) {
  model.validate();
  require_model(event < ft_.size() && is_static(event),
                "sd_fault_tree: make_dynamic target must be a static event");
  dynamic_.emplace(event, std::move(model));
}

node_index sd_fault_tree::add_gate(std::string name, gate_type type,
                                   std::vector<node_index> inputs) {
  return ft_.add_gate(std::move(name), type, std::move(inputs));
}

void sd_fault_tree::add_input(node_index gate, node_index input) {
  ft_.add_input(gate, input);
}

void sd_fault_tree::set_top(node_index gate) { ft_.set_top(gate); }

void sd_fault_tree::set_trigger(node_index gate, node_index event) {
  require_model(gate < ft_.size() && ft_.is_gate(gate),
                "sd_fault_tree: trigger source must be a gate");
  require_model(is_dynamic(event),
                "sd_fault_tree: triggered node must be a dynamic basic event");
  require_model(has_triggered_model(event),
                "sd_fault_tree: triggered event needs a triggered CTMC model");
  require_model(trigger_of_.find(event) == trigger_of_.end(),
                "sd_fault_tree: event '" + ft_.node(event).name +
                    "' already has a triggering gate");
  trigger_of_.emplace(event, gate);
  triggers_[gate].push_back(event);
}

const dynamic_model& sd_fault_tree::model_of(node_index event) const {
  auto it = dynamic_.find(event);
  require_model(it != dynamic_.end(),
                "sd_fault_tree: node is not a dynamic basic event");
  return it->second;
}

bool sd_fault_tree::has_triggered_model(node_index event) const {
  return std::holds_alternative<triggered_ctmc>(model_of(event));
}

node_index sd_fault_tree::trigger_gate_of(node_index event) const {
  auto it = trigger_of_.find(event);
  return it == trigger_of_.end() ? fault_tree::npos : it->second;
}

std::vector<node_index> sd_fault_tree::triggered_events(
    node_index gate) const {
  auto it = triggers_.find(gate);
  return it == triggers_.end() ? std::vector<node_index>{} : it->second;
}

std::vector<node_index> sd_fault_tree::dynamic_events() const {
  std::vector<node_index> out;
  for (node_index b : ft_.basic_events()) {
    if (is_dynamic(b)) out.push_back(b);
  }
  return out;
}

std::vector<node_index> sd_fault_tree::static_events() const {
  std::vector<node_index> out;
  for (node_index b : ft_.basic_events()) {
    if (!is_dynamic(b)) out.push_back(b);
  }
  return out;
}

void sd_fault_tree::validate() const {
  ft_.validate();

  for (const auto& [event, model] : dynamic_) {
    const bool triggered_model = std::holds_alternative<triggered_ctmc>(model);
    const bool has_trigger = trigger_of_.find(event) != trigger_of_.end();
    require_model(
        triggered_model == has_trigger,
        "sd_fault_tree: dynamic event '" + ft_.node(event).name +
            "' must have a triggered CTMC model iff it has a triggering gate");
    if (triggered_model) {
      std::get<triggered_ctmc>(model).validate();
    } else {
      std::get<ctmc>(model).validate();
    }
  }

  // Acyclicity of tree edges (gate -> input) enriched with reversed trigger
  // edges (event -> triggering gate), paper §III-B. A cycle here is exactly
  // a triggering deadlock.
  enum : char { white, grey, black };
  std::vector<char> colour(ft_.size(), white);
  const std::function<void(node_index)> visit = [&](node_index n) {
    colour[n] = grey;
    const auto step = [&](node_index next) {
      if (colour[next] == grey) {
        throw model_error(
            "sd_fault_tree: cyclic trigger dependency through '" +
            ft_.node(next).name + "'");
      }
      if (colour[next] == white) visit(next);
    };
    for (node_index child : ft_.node(n).inputs) step(child);
    if (ft_.is_basic(n)) {
      const node_index g = trigger_gate_of(n);
      if (g != fault_tree::npos) step(g);
    }
    colour[n] = black;
  };
  for (node_index n = 0; n < ft_.size(); ++n) {
    if (colour[n] == white) visit(n);
  }
}

}  // namespace sdft
