#include "sdft/translate.hpp"

#include <functional>

#include "ctmc/transient.hpp"
#include "ctmc/triggered.hpp"
#include "util/error.hpp"

namespace sdft {

static_translation translate_to_static(const sd_fault_tree& tree, double t,
                                       double epsilon,
                                       bool reference_cutoff) {
  tree.validate();
  static_translation out;
  const fault_tree& src = tree.structure();

  // Worst-case probabilities for dynamic events (paper §V-B2).
  for (node_index e : tree.dynamic_events()) {
    const dynamic_model& model = tree.model_of(e);
    double p;
    if (std::holds_alternative<triggered_ctmc>(model)) {
      p = worst_case_failure_probability(std::get<triggered_ctmc>(model), t,
                                         epsilon);
    } else {
      p = reach_failed_probability(std::get<ctmc>(model), t, epsilon);
    }
    out.worst_case.emplace(e, p);
  }

  // copy(n): the ft_bar node standing for the SD node n as a *subtree root*
  // (for a triggered event that is the bare event; parents reference it via
  // wrapper(n) instead). Recursion over tree edges plus trigger edges
  // terminates because the combined graph is acyclic (validated above).
  std::unordered_map<node_index, node_index> wrapper;
  const std::function<node_index(node_index)> copy =
      [&](node_index n) -> node_index {
    auto it = out.to_bar.find(n);
    if (it != out.to_bar.end()) return it->second;
    node_index bar;
    const ft_node& node = src.node(n);
    if (src.is_basic(n)) {
      double p = node.probability;
      if (tree.is_dynamic(n) && !(reference_cutoff && p > 0.0)) {
        p = out.worst_case.at(n);
      }
      bar = out.ft_bar.add_basic_event(node.name, p);
      out.to_sd.emplace(bar, n);
    } else {
      std::vector<node_index> inputs;
      inputs.reserve(node.inputs.size());
      for (node_index child : node.inputs) {
        // Triggered dynamic events are referenced through their AND wrapper.
        if (src.is_basic(child) &&
            tree.trigger_gate_of(child) != fault_tree::npos) {
          auto wit = wrapper.find(child);
          if (wit == wrapper.end()) {
            const node_index child_bar = copy(child);
            const node_index gate_bar = copy(tree.trigger_gate_of(child));
            const node_index wrap = out.ft_bar.add_gate(
                src.node(child).name + "::trig", gate_type::and_gate,
                {child_bar, gate_bar});
            wit = wrapper.emplace(child, wrap).first;
          }
          inputs.push_back(wit->second);
        } else {
          inputs.push_back(copy(child));
        }
      }
      if (node.type == gate_type::atleast_gate) {
        bar = out.ft_bar.add_atleast_gate(node.name, node.k, inputs);
      } else {
        bar = out.ft_bar.add_gate(node.name, node.type, inputs);
      }
    }
    out.to_bar.emplace(n, bar);
    return bar;
  };

  out.ft_bar.set_top(copy(src.top()));
  out.ft_bar.validate();
  return out;
}

}  // namespace sdft
