#include "sdft/parser.hpp"

#include <istream>
#include <map>
#include <sstream>
#include <variant>
#include <vector>

#include "ctmc/triggered.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace sdft {

namespace {

constexpr const char* parse_error_prefix = "SD fault tree parse error";

bool has_parse_prefix(const std::string& what) {
  return what.rfind(parse_error_prefix, 0) == 0;
}

/// Wraps `what` with the parse prefix and `line` — exactly once. A message
/// that already carries the prefix was wrapped at an inner (more precise)
/// line and is rethrown untouched, so nested catch sites can all call
/// fail() without stacking prefixes.
[[noreturn]] void fail(std::size_t line, const std::string& what) {
  if (has_parse_prefix(what)) throw model_error(what);
  throw model_error(std::string(parse_error_prefix) + ", line " +
                    std::to_string(line) + ": " + what);
}

double parse_number(const std::string& tok, std::size_t line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line, "trailing characters in number");
    return v;
  } catch (const std::exception&) {
    fail(line, "cannot parse number '" + tok + "'");
  }
}

std::uint32_t parse_index(const std::string& tok, std::size_t line,
                          std::uint32_t bound) {
  const double v = parse_number(tok, line);
  const auto i = static_cast<std::uint32_t>(v);
  if (v != static_cast<double>(i) || i >= bound) {
    fail(line, "state index '" + tok + "' out of range");
  }
  return i;
}

struct gate_record {
  std::string name;
  gate_type type;
  std::uint32_t k = 0;  // threshold of an atleast gate
  std::vector<std::string> children;
  std::size_t line;
};

struct trigger_record {
  std::string gate;
  std::vector<std::string> events;
  std::size_t line;
};

struct dyn_record {
  std::string name;
  dynamic_model model;
  std::size_t line;
};

/// Parses one explicit chain block (after "dyn <name> chain <n>") up to
/// the terminating "end" line.
dynamic_model parse_chain_block(std::istream& in, std::size_t& line_no,
                                std::uint32_t num_states) {
  ctmc chain(num_states);
  std::map<state_index, state_index> to_on;   // off -> on
  std::map<state_index, state_index> to_off;  // on -> off

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tok = tokenize_line(line);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];
    if (cmd == "end") {
      if (to_on.empty() && to_off.empty()) {
        // Validate plain chains here, not when the tree later adopts the
        // model: the error must carry this block's line context.
        try {
          chain.validate();
        } catch (const model_error& e) {
          fail(line_no, e.what());
        }
        return chain;
      }

      // Triggered chain: S_on is exactly the key set of the off map.
      triggered_ctmc model;
      model.chain = std::move(chain);
      const std::size_t n = model.chain.num_states();
      model.on_state.assign(n, 0);
      model.to_on.assign(n, 0);
      model.to_off.assign(n, 0);
      for (const auto& [on, off] : to_off) {
        model.on_state[on] = 1;
        model.to_off[on] = off;
      }
      for (const auto& [off, on] : to_on) {
        if (model.on_state[off]) {
          fail(line_no, "state " + std::to_string(off) +
                            " used both as on- and off-state");
        }
        model.to_on[off] = on;
      }
      for (state_index s = 0; s < n; ++s) {
        if (!model.on_state[s] && to_on.find(s) == to_on.end()) {
          fail(line_no,
               "off-state " + std::to_string(s) + " has no 'on' mapping");
        }
      }
      try {
        model.validate();
      } catch (const model_error& e) {
        fail(line_no, e.what());
      }
      return model;
    }
    if (cmd == "init") {
      if (tok.size() != 3) fail(line_no, "expected: init <state> <p>");
      try {
        chain.set_initial(parse_index(tok[1], line_no, num_states),
                          parse_number(tok[2], line_no));
      } catch (const model_error& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "failed") {
      if (tok.size() < 2) fail(line_no, "expected: failed <state> ...");
      for (std::size_t i = 1; i < tok.size(); ++i) {
        chain.set_failed(parse_index(tok[i], line_no, num_states));
      }
    } else if (cmd == "rate") {
      if (tok.size() != 4) fail(line_no, "expected: rate <from> <to> <l>");
      try {
        chain.add_rate(parse_index(tok[1], line_no, num_states),
                       parse_index(tok[2], line_no, num_states),
                       parse_number(tok[3], line_no));
      } catch (const model_error& e) {
        fail(line_no, e.what());
      }
    } else if (cmd == "on") {
      if (tok.size() != 3) fail(line_no, "expected: on <off> <on>");
      to_on[parse_index(tok[1], line_no, num_states)] =
          parse_index(tok[2], line_no, num_states);
    } else if (cmd == "off") {
      if (tok.size() != 3) fail(line_no, "expected: off <on> <off>");
      to_off[parse_index(tok[1], line_no, num_states)] =
          parse_index(tok[2], line_no, num_states);
    } else {
      fail(line_no, "unknown chain directive '" + cmd + "'");
    }
  }
  fail(line_no, "chain block not terminated by 'end'");
}

}  // namespace

sd_fault_tree parse_sd_fault_tree(std::istream& in) {
  sd_fault_tree tree;
  std::vector<gate_record> gates;
  std::vector<trigger_record> triggers;
  std::string top_name;
  std::size_t top_line = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tok = tokenize_line(line);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];
    if (cmd == "be") {
      if (tok.size() != 3) fail(line_no, "expected: be <name> <prob>");
      tree.add_static_event(tok[1], parse_number(tok[2], line_no));
    } else if (cmd == "and" || cmd == "or") {
      if (tok.size() < 2) fail(line_no, "expected: " + cmd + " <name> ...");
      gates.push_back({tok[1],
                       cmd == "and" ? gate_type::and_gate : gate_type::or_gate,
                       0,
                       {tok.begin() + 2, tok.end()},
                       line_no});
    } else if (cmd == "atleast") {
      if (tok.size() < 3) fail(line_no, "expected: atleast <name> <k> ...");
      const double k = parse_number(tok[2], line_no);
      if (k < 1.0 || k != static_cast<double>(static_cast<std::uint32_t>(k))) {
        fail(line_no, "atleast threshold '" + tok[2] +
                          "' is not a positive integer");
      }
      gates.push_back({tok[1],
                       gate_type::atleast_gate,
                       static_cast<std::uint32_t>(k),
                       {tok.begin() + 3, tok.end()},
                       line_no});
    } else if (cmd == "top") {
      if (tok.size() != 2) fail(line_no, "expected: top <name>");
      if (!top_name.empty()) fail(line_no, "duplicate top declaration");
      top_name = tok[1];
      top_line = line_no;
    } else if (cmd == "dyn") {
      if (tok.size() < 3) fail(line_no, "expected: dyn <name> <kind> ...");
      const std::string& kind = tok[2];
      if (kind == "erlang") {
        if (tok.size() != 6) {
          fail(line_no, "expected: dyn <name> erlang <k> <lambda> <mu>");
        }
        try {
          tree.add_dynamic_event(
              tok[1], make_erlang_active(
                          static_cast<int>(parse_number(tok[3], line_no)),
                          parse_number(tok[4], line_no),
                          parse_number(tok[5], line_no)));
        } catch (const model_error& e) {
          fail(line_no, e.what());
        }
      } else if (kind == "erlang-triggered") {
        if (tok.size() != 7) {
          fail(line_no,
               "expected: dyn <name> erlang-triggered <k> <lambda> <mu> "
               "<passive-factor>");
        }
        try {
          tree.add_dynamic_event(
              tok[1], make_erlang_triggered(
                          static_cast<int>(parse_number(tok[3], line_no)),
                          parse_number(tok[4], line_no),
                          parse_number(tok[5], line_no),
                          parse_number(tok[6], line_no)));
        } catch (const model_error& e) {
          fail(line_no, e.what());
        }
      } else if (kind == "chain") {
        if (tok.size() != 4) {
          fail(line_no, "expected: dyn <name> chain <num-states>");
        }
        const auto n = static_cast<std::uint32_t>(
            parse_number(tok[3], line_no));
        if (n == 0) fail(line_no, "chain needs at least one state");
        dynamic_model model = parse_chain_block(in, line_no, n);
        // Adoption revalidates the model; fail() keeps the inner line of
        // any error already wrapped inside the chain block.
        try {
          if (std::holds_alternative<ctmc>(model)) {
            tree.add_dynamic_event(tok[1], std::get<ctmc>(std::move(model)));
          } else {
            tree.add_dynamic_event(
                tok[1], std::get<triggered_ctmc>(std::move(model)));
          }
        } catch (const model_error& e) {
          fail(line_no, e.what());
        }
      } else {
        fail(line_no, "unknown dynamic event kind '" + kind + "'");
      }
    } else if (cmd == "trigger") {
      if (tok.size() < 3) fail(line_no, "expected: trigger <gate> <event>...");
      triggers.push_back({tok[1], {tok.begin() + 2, tok.end()}, line_no});
    } else {
      fail(line_no, "unknown directive '" + cmd + "'");
    }
  }

  // Wire gates (two passes: create, then connect forward references).
  for (const auto& rec : gates) {
    const node_index g = tree.add_gate(rec.name, rec.type);
    if (rec.type == gate_type::atleast_gate) {
      tree.structure().set_threshold(g, rec.k);
    }
  }
  const fault_tree& ft = tree.structure();
  for (const auto& rec : gates) {
    const node_index g = ft.find(rec.name);
    for (const auto& child : rec.children) {
      const node_index c = ft.find(child);
      if (c == fault_tree::npos) {
        fail(rec.line, "gate '" + rec.name + "' references undeclared node '" +
                           child + "'");
      }
      tree.add_input(g, c);
    }
  }
  for (const auto& rec : triggers) {
    const node_index g = ft.find(rec.gate);
    if (g == fault_tree::npos || !ft.is_gate(g)) {
      fail(rec.line, "trigger source '" + rec.gate + "' is not a gate");
    }
    for (const auto& event : rec.events) {
      const node_index e = ft.find(event);
      if (e == fault_tree::npos) {
        fail(rec.line, "trigger target '" + event + "' is not declared");
      }
      try {
        tree.set_trigger(g, e);
      } catch (const model_error& err) {
        fail(rec.line, err.what());
      }
    }
  }
  if (top_name.empty()) fail(line_no == 0 ? 1 : line_no, "no top declaration");
  const node_index top = ft.find(top_name);
  if (top == fault_tree::npos || !ft.is_gate(top)) {
    fail(top_line, "top '" + top_name + "' is not a declared gate");
  }
  tree.set_top(top);
  try {
    tree.validate();
  } catch (const model_error& e) {
    if (has_parse_prefix(e.what())) throw;
    throw model_error(std::string(parse_error_prefix) + ": " + e.what());
  }
  return tree;
}

sd_fault_tree parse_sd_fault_tree_string(const std::string& text) {
  std::istringstream in(text);
  return parse_sd_fault_tree(in);
}

std::string write_sd_fault_tree(const sd_fault_tree& tree) {
  std::ostringstream out;
  out.precision(17);
  const fault_tree& ft = tree.structure();

  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_basic(i)) continue;
    const auto& node = ft.node(i);
    if (!tree.is_dynamic(i)) {
      out << "be " << node.name << ' ' << node.probability << '\n';
      continue;
    }
    const dynamic_model& model = tree.model_of(i);
    const bool triggered = std::holds_alternative<triggered_ctmc>(model);
    const ctmc& chain = triggered ? std::get<triggered_ctmc>(model).chain
                                  : std::get<ctmc>(model);
    out << "dyn " << node.name << " chain " << chain.num_states() << '\n';
    for (state_index s = 0; s < chain.num_states(); ++s) {
      if (chain.initial(s) > 0.0) {
        out << "  init " << s << ' ' << chain.initial(s) << '\n';
      }
    }
    const auto failed = chain.failed_states();
    if (!failed.empty()) {
      out << "  failed";
      for (state_index s : failed) out << ' ' << s;
      out << '\n';
    }
    for (state_index s = 0; s < chain.num_states(); ++s) {
      for (const auto& [to, rate] : chain.transitions_from(s)) {
        out << "  rate " << s << ' ' << to << ' ' << rate << '\n';
      }
    }
    if (triggered) {
      const auto& trig = std::get<triggered_ctmc>(model);
      for (state_index s = 0; s < chain.num_states(); ++s) {
        if (trig.on_state[s]) {
          out << "  off " << s << ' ' << trig.to_off[s] << '\n';
        } else {
          out << "  on " << s << ' ' << trig.to_on[s] << '\n';
        }
      }
    }
    out << "end\n";
  }

  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_gate(i)) continue;
    const auto& node = ft.node(i);
    if (node.type == gate_type::atleast_gate) {
      out << "atleast " << node.name << ' ' << node.k;
    } else {
      out << (node.type == gate_type::and_gate ? "and " : "or ") << node.name;
    }
    for (node_index child : node.inputs) out << ' ' << ft.node(child).name;
    out << '\n';
  }
  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_gate(i)) continue;
    const auto events = tree.triggered_events(i);
    if (events.empty()) continue;
    out << "trigger " << ft.node(i).name;
    for (node_index e : events) out << ' ' << ft.node(e).name;
    out << '\n';
  }
  if (ft.top() != fault_tree::npos) {
    out << "top " << ft.node(ft.top()).name << '\n';
  }
  return out.str();
}

}  // namespace sdft
