#include "ft/parser.hpp"

#include <istream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/text.hpp"

namespace sdft {

namespace {

struct gate_record {
  std::string name;
  gate_type type;
  std::vector<std::string> children;
  std::size_t line;
};

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw model_error("fault tree parse error, line " + std::to_string(line) +
                    ": " + what);
}

double parse_probability(const std::string& tok, std::size_t line) {
  try {
    std::size_t used = 0;
    const double p = std::stod(tok, &used);
    if (used != tok.size()) fail(line, "trailing characters in number");
    return p;
  } catch (const std::exception&) {
    fail(line, "cannot parse probability '" + tok + "'");
  }
}

}  // namespace

fault_tree parse_fault_tree(std::istream& in) {
  fault_tree ft;
  std::vector<gate_record> gates;
  std::string top_name;
  std::size_t top_line = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize_line(line);
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];
    if (cmd == "be") {
      if (tokens.size() != 3) fail(line_no, "expected: be <name> <prob>");
      ft.add_basic_event(tokens[1], parse_probability(tokens[2], line_no));
    } else if (cmd == "and" || cmd == "or") {
      if (tokens.size() < 2) fail(line_no, "expected: " + cmd + " <name> ...");
      gate_record rec;
      rec.name = tokens[1];
      rec.type = cmd == "and" ? gate_type::and_gate : gate_type::or_gate;
      rec.children.assign(tokens.begin() + 2, tokens.end());
      rec.line = line_no;
      gates.push_back(std::move(rec));
    } else if (cmd == "top") {
      if (tokens.size() != 2) fail(line_no, "expected: top <name>");
      if (!top_name.empty()) fail(line_no, "duplicate top declaration");
      top_name = tokens[1];
      top_line = line_no;
    } else {
      fail(line_no, "unknown directive '" + cmd + "'");
    }
  }

  // Second pass: create gates (so forward references resolve), then wire.
  for (const auto& rec : gates) ft.add_gate(rec.name, rec.type);
  for (const auto& rec : gates) {
    const node_index g = ft.find(rec.name);
    for (const auto& child : rec.children) {
      const node_index c = ft.find(child);
      if (c == fault_tree::npos) {
        fail(rec.line, "gate '" + rec.name + "' references undeclared node '" +
                           child + "'");
      }
      ft.add_input(g, c);
    }
  }
  if (top_name.empty()) fail(line_no == 0 ? 1 : line_no, "no top declaration");
  const node_index top = ft.find(top_name);
  if (top == fault_tree::npos || !ft.is_gate(top)) {
    fail(top_line, "top '" + top_name + "' is not a declared gate");
  }
  ft.set_top(top);
  ft.validate();
  return ft;
}

fault_tree parse_fault_tree_string(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_tree(in);
}

std::string write_fault_tree(const fault_tree& ft) {
  std::ostringstream out;
  out.precision(17);
  for (node_index i = 0; i < ft.size(); ++i) {
    const auto& n = ft.node(i);
    if (n.kind == node_kind::basic) {
      out << "be " << n.name << ' ' << n.probability << '\n';
    }
  }
  for (node_index i = 0; i < ft.size(); ++i) {
    const auto& n = ft.node(i);
    if (n.kind != node_kind::gate) continue;
    out << (n.type == gate_type::and_gate ? "and " : "or ") << n.name;
    for (node_index child : n.inputs) out << ' ' << ft.node(child).name;
    out << '\n';
  }
  if (ft.top() != fault_tree::npos) {
    out << "top " << ft.node(ft.top()).name << '\n';
  }
  return out.str();
}

}  // namespace sdft
