#pragma once

#include <string>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Adds a k-out-of-N voting gate: failed iff at least `k` of the `inputs`
/// are failed. Industrial fault trees use these for redundant trains with
/// partial success criteria (e.g. 2-of-3 pumps needed -> 2oo3 failure).
///
/// Expanded structurally: k = 1 becomes a plain OR, k = N a plain AND,
/// otherwise an OR over all C(N, k) AND combinations (named
/// "<name>::<i>"). The expansion is exponential in N; N is limited to 12.
/// MOCUS, BDD, the product construction and every other consumer then see
/// ordinary coherent gates.
node_index add_voting_gate(fault_tree& ft, const std::string& name, int k,
                           const std::vector<node_index>& inputs);

}  // namespace sdft
