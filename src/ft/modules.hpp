#pragma once

#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Finds the module roots of `ft`: gates whose strict subtree is
/// referenced from nowhere outside the subtree. Modules are statistically
/// independent of the rest of the tree, the key fact behind modular
/// fault-tree analysis (Dutuit & Rauzy) and behind the mixed static/
/// dynamic approach of [16] the paper compares against.
///
/// The top gate is always a module. Linear time: one DFS from the top
/// assigns visit timestamps (revisits touch a node without descending), a
/// bottom-up sweep aggregates each gate's descendant first/last touches,
/// and a gate is a module iff those all fall strictly inside the gate's
/// own first-expansion window. Returns the top first, then module gates
/// in DFS first-visit order.
std::vector<node_index> find_modules(const fault_tree& ft);

/// Exact top-gate failure probability by modular decomposition: each
/// module is compiled to its own (small) BDD with nested modules folded
/// into pseudo basic events carrying their already-computed probability.
/// Equal to ft_bdd(ft).probability() but with BDDs only ever as large as
/// one module.
double modular_probability(const fault_tree& ft);

}  // namespace sdft
