#pragma once

#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Repeated-evaluation helper: caches the topological order of a fault tree
/// so each evaluation is a single linear pass. The product-CTMC construction
/// evaluates the same small tree for every explored state and update step,
/// where fault_tree::evaluate()'s per-call topological sort would dominate.
///
/// The referenced fault_tree must outlive the evaluator and must not be
/// mutated after construction.
class ft_evaluator {
 public:
  explicit ft_evaluator(const fault_tree& ft)
      : ft_(ft), topo_(ft.topo_order()) {}

  /// Writes per-node failure flags into `out` (resized to ft.size()).
  /// `failed_basic` is indexed by node_index; gate entries are ignored.
  void evaluate(const std::vector<char>& failed_basic,
                std::vector<char>& out) const {
    out.assign(ft_.size(), 0);
    for (node_index n : topo_) {
      const ft_node& node = ft_.node(n);
      if (node.kind == node_kind::basic) {
        out[n] = failed_basic[n];
      } else if (node.type == gate_type::and_gate) {
        char all = 1;
        for (node_index child : node.inputs) all &= out[child];
        out[n] = all;
      } else if (node.type == gate_type::atleast_gate) {
        std::uint32_t count = 0;
        for (node_index child : node.inputs) count += out[child] ? 1U : 0U;
        out[n] = count >= node.k ? 1 : 0;
      } else {
        char any = 0;
        for (node_index child : node.inputs) any |= out[child];
        out[n] = any;
      }
    }
  }

 private:
  const fault_tree& ft_;
  std::vector<node_index> topo_;
};

/// Evaluator restricted to the sub-DAG feeding a set of target nodes: the
/// topological order is filtered down to the targets' descendant closure,
/// so evaluating costs only the nodes that can influence the targets.
/// The product-CTMC builder uses two of these — one over the trigger
/// gates (for settle()) and one over the top gate (for is_failed()) —
/// instead of sweeping the whole MCS-model tree for either question.
///
/// evaluate() writes only the restricted nodes of `out`; entries outside
/// the closure are left untouched, so callers must only read targets (or
/// their descendants) from the output.
class subtree_evaluator {
 public:
  subtree_evaluator(const fault_tree& ft,
                    const std::vector<node_index>& targets)
      : ft_(ft) {
    std::vector<char> needed(ft.size(), 0);
    // Descendant closure by downward sweep over the reverse topological
    // order: a node is needed if it is a target or feeds a needed gate.
    const std::vector<node_index> topo = ft.topo_order();
    for (node_index t : targets) needed[t] = 1;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      if (!needed[*it]) continue;
      const ft_node& node = ft.node(*it);
      if (node.kind != node_kind::gate) continue;
      for (node_index child : node.inputs) needed[child] = 1;
    }
    for (node_index n : topo) {
      if (needed[n]) topo_.push_back(n);
    }
  }

  bool empty() const { return topo_.empty(); }

  /// Writes failure flags for the restricted nodes into `out` (which must
  /// be pre-sized to ft.size(); the caller owns and reuses the buffer).
  void evaluate(const std::vector<char>& failed_basic,
                std::vector<char>& out) const {
    for (node_index n : topo_) {
      const ft_node& node = ft_.node(n);
      if (node.kind == node_kind::basic) {
        out[n] = failed_basic[n];
      } else if (node.type == gate_type::and_gate) {
        char all = 1;
        for (node_index child : node.inputs) all &= out[child];
        out[n] = all;
      } else if (node.type == gate_type::atleast_gate) {
        std::uint32_t count = 0;
        for (node_index child : node.inputs) count += out[child] ? 1U : 0U;
        out[n] = count >= node.k ? 1 : 0;
      } else {
        char any = 0;
        for (node_index child : node.inputs) any |= out[child];
        out[n] = any;
      }
    }
  }

 private:
  const fault_tree& ft_;
  std::vector<node_index> topo_;
};

}  // namespace sdft
