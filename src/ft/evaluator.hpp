#pragma once

#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Repeated-evaluation helper: caches the topological order of a fault tree
/// so each evaluation is a single linear pass. The product-CTMC construction
/// evaluates the same small tree for every explored state and update step,
/// where fault_tree::evaluate()'s per-call topological sort would dominate.
///
/// The referenced fault_tree must outlive the evaluator and must not be
/// mutated after construction.
class ft_evaluator {
 public:
  explicit ft_evaluator(const fault_tree& ft)
      : ft_(ft), topo_(ft.topo_order()) {}

  /// Writes per-node failure flags into `out` (resized to ft.size()).
  /// `failed_basic` is indexed by node_index; gate entries are ignored.
  void evaluate(const std::vector<char>& failed_basic,
                std::vector<char>& out) const {
    out.assign(ft_.size(), 0);
    for (node_index n : topo_) {
      const ft_node& node = ft_.node(n);
      if (node.kind == node_kind::basic) {
        out[n] = failed_basic[n];
      } else if (node.type == gate_type::and_gate) {
        char all = 1;
        for (node_index child : node.inputs) all &= out[child];
        out[n] = all;
      } else {
        char any = 0;
        for (node_index child : node.inputs) any |= out[child];
        out[n] = any;
      }
    }
  }

 private:
  const fault_tree& ft_;
  std::vector<node_index> topo_;
};

}  // namespace sdft
