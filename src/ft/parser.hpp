#pragma once

#include <iosfwd>
#include <string>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Line-oriented text format for static fault trees.
///
/// ```
/// # comment
/// be   <name> <probability>
/// and  <name> [<child> ...]
/// or   <name> [<child> ...]
/// top  <name>
/// ```
///
/// Children may be referenced before their declaration; the parser resolves
/// names in a second pass. Throws model_error with a line number on any
/// syntactic or structural problem.
fault_tree parse_fault_tree(std::istream& in);
fault_tree parse_fault_tree_string(const std::string& text);

/// Serialises `ft` in the format accepted by parse_fault_tree(). The result
/// round-trips: parsing it yields a tree with identical structure, names and
/// probabilities (indices may differ).
std::string write_fault_tree(const fault_tree& ft);

}  // namespace sdft
