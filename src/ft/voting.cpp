#include "ft/voting.hpp"

#include <bit>

#include "util/error.hpp"

namespace sdft {

node_index add_voting_gate(fault_tree& ft, const std::string& name, int k,
                           const std::vector<node_index>& inputs) {
  const int n = static_cast<int>(inputs.size());
  require_model(n >= 1 && n <= 12,
                "voting gate: between 1 and 12 inputs supported");
  require_model(k >= 1 && k <= n,
                "voting gate: k must lie in [1, #inputs]");
  if (k == 1) return ft.add_gate(name, gate_type::or_gate, inputs);
  if (k == n) return ft.add_gate(name, gate_type::and_gate, inputs);

  const node_index top = ft.add_gate(name, gate_type::or_gate);
  std::size_t combo = 0;
  const std::size_t total = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < total; ++mask) {
    if (std::popcount(mask) != k) continue;
    const node_index conj = ft.add_gate(
        name + "::" + std::to_string(combo++), gate_type::and_gate);
    for (int i = 0; i < n; ++i) {
      if (mask >> i & 1U) ft.add_input(conj, inputs[i]);
    }
    ft.add_input(top, conj);
  }
  return top;
}

}  // namespace sdft
