#include "ft/fault_tree.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/sorted_set.hpp"

namespace sdft {

node_index fault_tree::add_node(ft_node n) {
  require_model(!n.name.empty(), "fault_tree: node name must not be empty");
  require_model(by_name_.find(n.name) == by_name_.end(),
                "fault_tree: duplicate node name '" + n.name + "'");
  const auto idx = static_cast<node_index>(nodes_.size());
  by_name_.emplace(n.name, idx);
  nodes_.push_back(std::move(n));
  return idx;
}

node_index fault_tree::add_basic_event(std::string name, double p) {
  require_model(p >= 0.0 && p <= 1.0,
                "fault_tree: probability of '" + name + "' outside [0, 1]");
  ft_node n;
  n.name = std::move(name);
  n.kind = node_kind::basic;
  n.probability = p;
  return add_node(std::move(n));
}

node_index fault_tree::add_gate(std::string name, gate_type type,
                                std::vector<node_index> inputs) {
  ft_node n;
  n.name = std::move(name);
  n.kind = node_kind::gate;
  n.type = type;
  const auto idx = add_node(std::move(n));
  for (node_index input : inputs) add_input(idx, input);
  return idx;
}

node_index fault_tree::add_atleast_gate(std::string name, std::uint32_t k,
                                        std::vector<node_index> inputs) {
  require_model(k >= 1, "fault_tree: atleast gate '" + name +
                            "' needs a threshold of at least 1");
  ft_node n;
  n.name = std::move(name);
  n.kind = node_kind::gate;
  n.type = gate_type::atleast_gate;
  n.k = k;
  const auto idx = add_node(std::move(n));
  for (node_index input : inputs) add_input(idx, input);
  require_model(k <= nodes_[idx].inputs.size(),
                "fault_tree: atleast gate '" + nodes_[idx].name +
                    "' has threshold " + std::to_string(k) + " but only " +
                    std::to_string(nodes_[idx].inputs.size()) + " inputs");
  return idx;
}

void fault_tree::set_threshold(node_index gate, std::uint32_t k) {
  require_model(gate < nodes_.size() && is_gate(gate) &&
                    nodes_[gate].type == gate_type::atleast_gate,
                "fault_tree: set_threshold target is not an atleast gate");
  require_model(k >= 1, "fault_tree: atleast gate '" + nodes_[gate].name +
                            "' needs a threshold of at least 1");
  nodes_[gate].k = k;
}

void fault_tree::add_input(node_index gate, node_index input) {
  require_model(gate < nodes_.size() && input < nodes_.size(),
                "fault_tree: add_input with out-of-range node index");
  require_model(is_gate(gate), "fault_tree: add_input target is not a gate");
  auto& inputs = nodes_[gate].inputs;
  if (std::find(inputs.begin(), inputs.end(), input) == inputs.end()) {
    inputs.push_back(input);
  }
}

void fault_tree::set_probability(node_index basic, double p) {
  require_model(basic < nodes_.size() && is_basic(basic),
                "fault_tree: set_probability target is not a basic event");
  require_model(p >= 0.0 && p <= 1.0,
                "fault_tree: probability outside [0, 1]");
  nodes_[basic].probability = p;
}

void fault_tree::set_top(node_index gate) {
  require_model(gate < nodes_.size() && is_gate(gate),
                "fault_tree: top node must be a gate");
  top_ = gate;
}

node_index fault_tree::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? npos : it->second;
}

std::vector<node_index> fault_tree::basic_events() const {
  std::vector<node_index> out;
  for (node_index i = 0; i < nodes_.size(); ++i) {
    if (is_basic(i)) out.push_back(i);
  }
  return out;
}

std::vector<node_index> fault_tree::gates() const {
  std::vector<node_index> out;
  for (node_index i = 0; i < nodes_.size(); ++i) {
    if (is_gate(i)) out.push_back(i);
  }
  return out;
}

std::size_t fault_tree::num_basic_events() const {
  return basic_events().size();
}

std::size_t fault_tree::num_gates() const { return gates().size(); }

void fault_tree::validate() const {
  require_model(top_ != npos, "fault_tree: no top gate set");
  for (node_index n = 0; n < nodes_.size(); ++n) {
    const ft_node& node = nodes_[n];
    if (node.kind != node_kind::gate || node.type != gate_type::atleast_gate) {
      continue;
    }
    require_model(node.k >= 1 && node.k <= node.inputs.size(),
                  "fault_tree: atleast gate '" + node.name +
                      "' has threshold " + std::to_string(node.k) +
                      " outside [1, " + std::to_string(node.inputs.size()) +
                      "]");
  }
  topo_order();  // throws on cycles
}

std::vector<node_index> fault_tree::topo_order() const {
  // Iterative DFS with colouring; grey-on-grey means a cycle.
  enum : char { white, grey, black };
  std::vector<char> colour(nodes_.size(), white);
  std::vector<node_index> order;
  order.reserve(nodes_.size());

  std::vector<std::pair<node_index, std::size_t>> stack;
  for (node_index root = 0; root < nodes_.size(); ++root) {
    if (colour[root] != white) continue;
    stack.emplace_back(root, 0);
    colour[root] = grey;
    while (!stack.empty()) {
      auto& [n, next_input] = stack.back();
      const auto& inputs = nodes_[n].inputs;
      if (next_input < inputs.size()) {
        const node_index child = inputs[next_input++];
        if (colour[child] == grey) {
          throw model_error("fault_tree: cycle through node '" +
                            nodes_[child].name + "'");
        }
        if (colour[child] == white) {
          colour[child] = grey;
          stack.emplace_back(child, 0);
        }
      } else {
        colour[n] = black;
        order.push_back(n);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::vector<node_index> fault_tree::descendants(node_index root) const {
  require_model(root < nodes_.size(), "fault_tree: descendants of bad index");
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<node_index> stack{root};
  std::vector<node_index> out;
  seen[root] = 1;
  while (!stack.empty()) {
    const node_index n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (node_index child : nodes_[n].inputs) {
      if (!seen[child]) {
        seen[child] = 1;
        stack.push_back(child);
      }
    }
  }
  return out;
}

std::vector<char> fault_tree::evaluate(
    const std::vector<char>& failed_basic) const {
  require_model(failed_basic.size() >= nodes_.size(),
                "fault_tree: scenario vector too small");
  std::vector<char> failed(nodes_.size(), 0);
  for (node_index n : topo_order()) {
    if (is_basic(n)) {
      failed[n] = failed_basic[n];
      continue;
    }
    const auto& inputs = nodes_[n].inputs;
    if (nodes_[n].type == gate_type::and_gate) {
      // AND over the empty set is TRUE: a constant-failed gate.
      char all = 1;
      for (node_index child : inputs) all &= failed[child];
      failed[n] = all;
    } else if (nodes_[n].type == gate_type::atleast_gate) {
      std::uint32_t count = 0;
      for (node_index child : inputs) count += failed[child] ? 1U : 0U;
      failed[n] = count >= nodes_[n].k ? 1 : 0;
    } else {
      char any = 0;
      for (node_index child : inputs) any |= failed[child];
      failed[n] = any;
    }
  }
  return failed;
}

bool fault_tree::fails(node_index target,
                       const std::vector<char>& failed_basic) const {
  require_model(target < nodes_.size(), "fault_tree: fails() bad index");
  return evaluate(failed_basic)[target] != 0;
}

double fault_tree::probability_brute_force() const {
  validate();
  const auto events = basic_events();
  require_model(events.size() <= 24,
                "fault_tree: brute force limited to 24 basic events");
  const std::size_t combos = std::size_t{1} << events.size();
  std::vector<char> scenario(nodes_.size(), 0);
  double total = 0.0;
  for (std::size_t mask = 0; mask < combos; ++mask) {
    double p = 1.0;
    for (std::size_t b = 0; b < events.size(); ++b) {
      const bool fails_b = (mask >> b) & 1U;
      scenario[events[b]] = fails_b ? 1 : 0;
      p *= fails_b ? nodes_[events[b]].probability
                   : 1.0 - nodes_[events[b]].probability;
    }
    if (p > 0.0 && fails(top_, scenario)) total += p;
  }
  return total;
}

}  // namespace sdft
