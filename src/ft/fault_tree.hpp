#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sdft {

/// Gate connective of a coherent fault tree (paper §II). K-out-of-N voting
/// gates are first-class: parsers keep them structural and the prep layer
/// lowers them late (see prep/prep.hpp), so cutset generation never pays
/// for an eager C(N, K) expansion it may not need.
enum class gate_type : std::uint8_t {
  and_gate,      ///< failed iff all inputs are failed
  or_gate,       ///< failed iff at least one input is failed
  atleast_gate,  ///< failed iff at least k of the inputs are failed
};

enum class node_kind : std::uint8_t { basic, gate };

/// Index of a node within its fault_tree. Basic events and gates share one
/// id space; fault_tree::npos marks "no node".
using node_index = std::uint32_t;

/// One node of a fault tree: either a basic event (leaf, carries a failure
/// probability) or a gate (inner node, carries a connective and inputs).
struct ft_node {
  std::string name;
  node_kind kind = node_kind::basic;
  gate_type type = gate_type::or_gate;   // meaningful for gates only
  std::uint32_t k = 0;                   // threshold of an atleast gate
  double probability = 0.0;              // meaningful for basic events only
  std::vector<node_index> inputs;        // gate children (empty for leaves)
};

/// A coherent static fault tree: a DAG of AND/OR gates over basic events
/// with a distinguished top gate (paper §II).
///
/// Nodes are created through add_basic_event()/add_gate() and addressed by
/// node_index. Sharing is allowed (the structure is a DAG, not a tree);
/// validate() rejects cycles, which can only arise through add_input().
///
/// Zero-input gates are permitted as boolean constants: an AND with no
/// inputs is always failed (TRUE), an OR with no inputs never fails (FALSE).
/// The per-cutset model construction of SD analysis (paper §V-C) uses the
/// former for triggers that are already failed by static assumptions.
class fault_tree {
 public:
  static constexpr node_index npos = 0xffffffffU;

  /// Adds a basic event; `p` is its probability of failing, in [0, 1].
  /// Throws model_error on duplicate name or probability out of range.
  node_index add_basic_event(std::string name, double p);

  /// Adds a gate with the given inputs (which must already exist).
  node_index add_gate(std::string name, gate_type type,
                      std::vector<node_index> inputs = {});

  /// Adds a K-out-of-N voting gate: failed iff at least `k` of the inputs
  /// are failed. Requires 1 <= k <= inputs.size(). The gate stays
  /// structural; the prep layer lowers it to AND/OR before cutset
  /// generation (add_voting_gate() in ft/voting.hpp is the eager variant).
  node_index add_atleast_gate(std::string name, std::uint32_t k,
                              std::vector<node_index> inputs);

  /// Sets the threshold of an atleast gate created before its inputs were
  /// wired (two-pass builders such as the SD parser). validate() checks
  /// k against the final input count.
  void set_threshold(node_index gate, std::uint32_t k);

  /// Appends an input to an existing gate. Duplicate inputs are ignored
  /// (AND(a, a) == AND(a)). May create a cycle, which validate() detects.
  void add_input(node_index gate, node_index input);

  /// Replaces the probability of a basic event.
  void set_probability(node_index basic, double p);

  /// Declares the top gate. Must refer to a gate.
  void set_top(node_index gate);

  node_index top() const { return top_; }
  std::size_t size() const { return nodes_.size(); }
  const ft_node& node(node_index i) const { return nodes_[i]; }
  bool is_basic(node_index i) const {
    return nodes_[i].kind == node_kind::basic;
  }
  bool is_gate(node_index i) const { return nodes_[i].kind == node_kind::gate; }

  /// Index of the node called `name`, or npos.
  node_index find(const std::string& name) const;

  /// All basic-event indices in insertion order.
  std::vector<node_index> basic_events() const;

  /// All gate indices in insertion order.
  std::vector<node_index> gates() const;

  /// Count of basic events / gates.
  std::size_t num_basic_events() const;
  std::size_t num_gates() const;

  /// Checks structural well-formedness: a top gate is set, the graph is
  /// acyclic, and every non-constant gate's inputs exist. Throws model_error.
  void validate() const;

  /// Nodes in a topological order with inputs before the gates using them.
  /// Throws model_error if the graph has a cycle.
  std::vector<node_index> topo_order() const;

  /// All nodes in the subtree rooted at `root` (including `root`),
  /// in no particular order.
  std::vector<node_index> descendants(node_index root) const;

  /// Evaluates all nodes under the scenario `failed_basic` (indexed by
  /// node_index; entries for gates are ignored). Returns a per-node vector:
  /// result[i] != 0 iff node i is failed by the scenario (paper §II).
  std::vector<char> evaluate(const std::vector<char>& failed_basic) const;

  /// True iff `target` is failed by the scenario (convenience over
  /// evaluate() for one-off queries).
  bool fails(node_index target, const std::vector<char>& failed_basic) const;

  /// Exact failure probability by exhaustive scenario enumeration
  /// (paper §II, eq. for p(FT)). Exponential in the number of basic
  /// events; intended as a test oracle for trees with <= ~20 events.
  double probability_brute_force() const;

 private:
  node_index add_node(ft_node n);

  std::vector<ft_node> nodes_;
  node_index top_ = npos;
  std::unordered_map<std::string, node_index> by_name_;
};

}  // namespace sdft
