#pragma once

#include <string>

#include "ft/fault_tree.hpp"

namespace sdft {

/// Open-PSA Model Exchange Format (MEF) interchange for static fault
/// trees — the XML format used by open-source PSA tools such as SCRAM and
/// XFTA. The supported subset:
///
/// ```xml
/// <opsa-mef>
///   <define-fault-tree name="FT">
///     <define-gate name="top">
///       <or> <gate name="g1"/> <basic-event name="b"/> </or>
///     </define-gate>
///     <define-gate name="g1">
///       <atleast min="2"> <basic-event name="a"/> ... </atleast>
///     </define-gate>
///   </define-fault-tree>
///   <model-data>
///     <define-basic-event name="b"> <float value="1e-3"/> </define-basic-event>
///   </model-data>
/// </opsa-mef>
/// ```
///
/// - Connectives: and, or, atleast (min attribute; kept structural as
///   gate_type::atleast_gate — the prep layer lowers voting gates late).
/// - References: <gate name=>, <basic-event name=>, <event name=>.
/// - define-basic-event may appear inside define-fault-tree or model-data;
///   its probability comes from a <float value=>.
/// - The top gate is the unique defined gate never referenced by another
///   gate; ambiguity is an error.
///
/// Throws model_error on anything outside this subset.
fault_tree parse_openpsa(const std::string& xml_text);

/// Serialises `ft` as an Open-PSA MEF document parseable by
/// parse_openpsa() (and by SCRAM/XFTA for the constructs used here).
std::string write_openpsa(const fault_tree& ft,
                          const std::string& model_name = "sdft-export");

}  // namespace sdft
