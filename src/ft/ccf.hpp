#pragma once

#include <string>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// A common-cause failure group: redundant components whose failures are
/// statistically coupled. Expansion follows the standard parametric models
/// of nuclear PSA (beta-factor and alpha-factor, cf. NUREG/CR-5485): each
/// member event is replaced by an OR of an independent part and explicit
/// shared CCF events, which then show up in minimal cutsets like any other
/// basic event. (The paper's §VI-A notes that CCF contributions usually
/// dominate static results — this module makes that modelling available.)
struct ccf_group {
  enum class parametric_model { beta_factor, alpha_factor };

  std::string name;
  std::vector<node_index> members;  ///< basic events of the group (n >= 2)
  parametric_model model = parametric_model::beta_factor;

  /// beta-factor model: fraction of each member's total failure
  /// probability attributed to the failure of the whole group.
  double beta = 0.1;

  /// alpha-factor model: alpha[k-1] is the fraction of failure *events*
  /// involving exactly k components (k = 1..n). Must have size n and sum
  /// to ~1.
  std::vector<double> alpha;
};

/// Expands the CCF groups of `ft` into an equivalent fault tree with
/// explicit common-cause basic events:
///  - each member m with total probability Q becomes an OR gate
///    "<m>_CCF" over the independent event "<m>_I" and every CCF event of
///    a subgroup containing m;
///  - beta-factor: one group event "<group>_CCF" with probability
///    beta * Q; independent parts carry (1 - beta) * Q;
///  - alpha-factor: one event per subgroup S with |S| = k >= 2, named
///    "<group>_CCF_<members>", with the standard non-staggered formula
///    Q_k = k / C(n-1, k-1) * alpha_k / alpha_t * Q, alpha_t = sum k*alpha_k.
///
/// Members must currently share the same total probability Q (symmetric
/// redundancy, as the parametric models assume). Group sizes are limited
/// to 8 for the alpha model (subset expansion is exponential).
///
/// Returns a new tree; node names of non-members are preserved.
fault_tree expand_ccf(const fault_tree& ft,
                      const std::vector<ccf_group>& groups);

/// Binomial coefficient used by the alpha-factor formula; exposed for
/// tests.
double binomial(int n, int k);

}  // namespace sdft
