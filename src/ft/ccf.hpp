#pragma once

#include <string>
#include <vector>

#include "ft/fault_tree.hpp"

namespace sdft {

/// A common-cause failure group: redundant components whose failures are
/// statistically coupled. Expansion follows the standard parametric models
/// of nuclear PSA (beta-factor and alpha-factor, cf. NUREG/CR-5485): each
/// member event is replaced by an OR of an independent part and explicit
/// shared CCF events, which then show up in minimal cutsets like any other
/// basic event. (The paper's §VI-A notes that CCF contributions usually
/// dominate static results — this module makes that modelling available.)
struct ccf_group {
  enum class parametric_model { beta_factor, alpha_factor };

  std::string name;
  std::vector<node_index> members;  ///< basic events of the group (n >= 2)
  parametric_model model = parametric_model::beta_factor;

  /// beta-factor model: fraction of each member's total failure
  /// probability attributed to the failure of the whole group.
  double beta = 0.1;

  /// alpha-factor model: alpha[k-1] is the fraction of failure *events*
  /// involving exactly k components (k = 1..n). Must have size n and sum
  /// to ~1.
  std::vector<double> alpha;
};

/// Expands the CCF groups of `ft` into an equivalent fault tree with
/// explicit common-cause basic events:
///  - each member m with total probability Q becomes an OR gate
///    "<m>_CCF" over the independent event "<m>_I" and every CCF event of
///    a subgroup containing m;
///  - beta-factor: one group event "<group>_CCF" with probability
///    beta * Q; independent parts carry (1 - beta) * Q;
///  - alpha-factor: one event per subgroup S with |S| = k >= 2, named
///    "<group>_CCF_<members>", with the standard non-staggered formula
///    Q_k = k / C(n-1, k-1) * alpha_k / alpha_t * Q, alpha_t = sum k*alpha_k.
///
/// Members must currently share the same total probability Q (symmetric
/// redundancy, as the parametric models assume). Group sizes are limited
/// to 8 for the alpha model (subset expansion is exponential).
///
/// Returns a new tree; node names of non-members are preserved.
fault_tree expand_ccf(const fault_tree& ft,
                      const std::vector<ccf_group>& groups);

/// Provenance of one basic event of the expanded tree: its probability is
/// `scale * Q(source)`, where Q(source) is the total probability of the
/// `source` basic event in the ORIGINAL tree. Both parametric models are
/// linear in the group's common Q, so re-drawing Q (parameter-uncertainty
/// sampling) re-derives every expanded probability exactly by multiplying
/// the recorded coefficient — no re-expansion needed.
struct ccf_trace_entry {
  node_index source = fault_tree::npos;  ///< node of the original tree
  double scale = 1.0;
};

/// expand_ccf() plus the per-event provenance trace the scenario engine's
/// uncertainty propagation scales parameter draws through.
struct ccf_expansion {
  fault_tree tree;

  /// Indexed by node_index of `tree`; meaningful for basic events only
  /// (gate entries keep source == npos). Events untouched by expansion
  /// trace to themselves with scale 1; a member's independent part traces
  /// to the member; shared CCF events trace to the group's first member
  /// (the models assume symmetric redundancy, so any member's Q works —
  /// the choice only matters when members are sampled asymmetrically).
  std::vector<ccf_trace_entry> trace;

  std::size_t events_added = 0;       ///< explicit CCF basic events created
  std::size_t members_expanded = 0;   ///< members replaced by OR gates
};

ccf_expansion expand_ccf_traced(const fault_tree& ft,
                                const std::vector<ccf_group>& groups);

/// Binomial coefficient used by the alpha-factor formula; exposed for
/// tests.
double binomial(int n, int k);

}  // namespace sdft
