#include "ft/modules.hpp"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace sdft {

std::vector<node_index> find_modules(const fault_tree& ft) {
  require_model(ft.top() != fault_tree::npos, "modules: no top gate");

  // Parent lists restricted to nodes reachable from the top.
  const auto reachable = ft.descendants(ft.top());
  std::unordered_set<node_index> live(reachable.begin(), reachable.end());
  std::unordered_map<node_index, std::vector<node_index>> parents;
  for (node_index n : reachable) {
    for (node_index child : ft.node(n).inputs) {
      parents[child].push_back(n);
    }
  }

  std::vector<node_index> modules;
  for (node_index g : reachable) {
    if (!ft.is_gate(g)) continue;
    if (g == ft.top()) {
      modules.push_back(g);
      continue;
    }
    const auto subtree = ft.descendants(g);
    const std::unordered_set<node_index> inside(subtree.begin(),
                                                subtree.end());
    bool is_module = true;
    for (node_index x : subtree) {
      if (x == g) continue;
      for (node_index parent : parents[x]) {
        if (!inside.count(parent)) {
          is_module = false;
          break;
        }
      }
      if (!is_module) break;
    }
    if (is_module) modules.push_back(g);
  }
  return modules;
}

double modular_probability(const fault_tree& ft) {
  const auto module_roots = find_modules(ft);
  const std::unordered_set<node_index> is_module(module_roots.begin(),
                                                 module_roots.end());
  std::unordered_map<node_index, double> module_prob;

  // Topological order guarantees nested modules are solved first.
  for (node_index n : ft.topo_order()) {
    if (!is_module.count(n)) continue;

    // One fresh manager per module keeps variable spaces module-sized.
    bdd_manager manager;
    std::vector<double> probs;
    std::unordered_map<node_index, std::uint32_t> var_of;
    std::unordered_map<node_index, bdd_ref> memo;
    const std::function<bdd_ref(node_index)> compile =
        [&](node_index x) -> bdd_ref {
      auto it = memo.find(x);
      if (it != memo.end()) return it->second;
      bdd_ref ref;
      const bool pseudo_leaf =
          ft.is_basic(x) || (x != n && is_module.count(x));
      if (pseudo_leaf) {
        auto vit = var_of.find(x);
        if (vit == var_of.end()) {
          vit = var_of.emplace(x, static_cast<std::uint32_t>(probs.size()))
                    .first;
          probs.push_back(ft.is_basic(x) ? ft.node(x).probability
                                         : module_prob.at(x));
        }
        ref = manager.var(vit->second);
      } else {
        const auto& gate = ft.node(x);
        const bool is_and = gate.type == gate_type::and_gate;
        ref = is_and ? manager.one() : manager.zero();
        for (node_index child : gate.inputs) {
          const bdd_ref c = compile(child);
          ref = is_and ? manager.bdd_and(ref, c) : manager.bdd_or(ref, c);
        }
      }
      memo.emplace(x, ref);
      return ref;
    };
    module_prob[n] = manager.probability(compile(n), probs);
  }
  return module_prob.at(ft.top());
}

}  // namespace sdft
