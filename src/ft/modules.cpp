#include "ft/modules.hpp"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace sdft {

std::vector<node_index> find_modules(const fault_tree& ft) {
  require_model(ft.top() != fault_tree::npos, "modules: no top gate");

  // Dutuit & Rauzy's linear algorithm. One DFS from the top: the first
  // visit of a node expands its children, every later visit merely
  // "touches" it. The timestamp counter advances on every touch and on
  // every expansion exit, so during a gate's first expansion only its
  // descendants can be touched. A gate g is then a module iff every
  // descendant's first AND last touch fall strictly inside g's
  // first-expansion window (enter(g), exit(g)): a touch before enter(g)
  // or after exit(g) can only come from a path avoiding g.
  const std::size_t n = ft.size();
  constexpr std::uint64_t unvisited = ~std::uint64_t{0};
  std::vector<std::uint64_t> first_touch(n, unvisited);
  std::vector<std::uint64_t> last_touch(n, 0);
  std::vector<std::uint64_t> enter(n, 0);
  std::vector<std::uint64_t> exit(n, 0);
  std::vector<node_index> preorder;  // gates in DFS first-visit order

  std::uint64_t clock = 0;
  std::vector<std::pair<node_index, std::size_t>> stack;
  const auto touch = [&](node_index x) {
    const std::uint64_t t = clock++;
    if (first_touch[x] == unvisited) first_touch[x] = t;
    last_touch[x] = t;
    return first_touch[x] == t;
  };
  if (touch(ft.top())) {
    enter[ft.top()] = first_touch[ft.top()];
    preorder.push_back(ft.top());
    stack.emplace_back(ft.top(), 0);
  }
  while (!stack.empty()) {
    auto& [g, next_input] = stack.back();
    const auto& inputs = ft.node(g).inputs;
    if (next_input < inputs.size()) {
      const node_index child = inputs[next_input++];
      if (touch(child) && ft.is_gate(child)) {
        enter[child] = first_touch[child];
        preorder.push_back(child);
        stack.emplace_back(child, 0);
      }
    } else {
      exit[g] = clock++;
      last_touch[g] = exit[g];
      stack.pop_back();
    }
  }

  // Bottom-up in topological order (children strictly before parents, so
  // DAG cross edges to earlier-visited nodes aggregate finished values):
  // min first-touch / max last-touch over all strict descendants.
  std::vector<std::uint64_t> dmin(n, unvisited);
  std::vector<std::uint64_t> dmax(n, 0);
  for (node_index g : ft.topo_order()) {
    if (!ft.is_gate(g) || first_touch[g] == unvisited) continue;
    for (node_index child : ft.node(g).inputs) {
      dmin[g] = std::min(dmin[g], first_touch[child]);
      dmax[g] = std::max(dmax[g], last_touch[child]);
      if (ft.is_gate(child)) {
        dmin[g] = std::min(dmin[g], dmin[child]);
        dmax[g] = std::max(dmax[g], dmax[child]);
      }
    }
  }

  std::vector<node_index> modules{ft.top()};
  for (node_index g : preorder) {
    if (g == ft.top()) continue;
    if (dmin[g] > enter[g] && dmax[g] < exit[g]) modules.push_back(g);
  }
  return modules;
}

double modular_probability(const fault_tree& ft) {
  const auto module_roots = find_modules(ft);
  const std::unordered_set<node_index> is_module(module_roots.begin(),
                                                 module_roots.end());
  std::unordered_map<node_index, double> module_prob;

  // Topological order guarantees nested modules are solved first.
  for (node_index n : ft.topo_order()) {
    if (!is_module.count(n)) continue;

    // One fresh manager per module keeps variable spaces module-sized.
    bdd_manager manager;
    std::vector<double> probs;
    std::unordered_map<node_index, std::uint32_t> var_of;
    std::unordered_map<node_index, bdd_ref> memo;
    const std::function<bdd_ref(node_index)> compile =
        [&](node_index x) -> bdd_ref {
      auto it = memo.find(x);
      if (it != memo.end()) return it->second;
      bdd_ref ref;
      const bool pseudo_leaf =
          ft.is_basic(x) || (x != n && is_module.count(x));
      if (pseudo_leaf) {
        auto vit = var_of.find(x);
        if (vit == var_of.end()) {
          vit = var_of.emplace(x, static_cast<std::uint32_t>(probs.size()))
                    .first;
          probs.push_back(ft.is_basic(x) ? ft.node(x).probability
                                         : module_prob.at(x));
        }
        ref = manager.var(vit->second);
      } else {
        const auto& gate = ft.node(x);
        if (gate.type == gate_type::atleast_gate) {
          std::vector<bdd_ref> at_least(gate.k + 1, manager.zero());
          at_least[0] = manager.one();
          for (node_index child : gate.inputs) {
            const bdd_ref c = compile(child);
            for (std::uint32_t j = gate.k; j >= 1; --j) {
              at_least[j] = manager.bdd_or(
                  at_least[j], manager.bdd_and(c, at_least[j - 1]));
            }
          }
          ref = at_least[gate.k];
        } else {
          const bool is_and = gate.type == gate_type::and_gate;
          ref = is_and ? manager.one() : manager.zero();
          for (node_index child : gate.inputs) {
            const bdd_ref c = compile(child);
            ref = is_and ? manager.bdd_and(ref, c) : manager.bdd_or(ref, c);
          }
        }
      }
      memo.emplace(x, ref);
      return ref;
    };
    module_prob[n] = manager.probability(compile(n), probs);
  }
  return module_prob.at(ft.top());
}

}  // namespace sdft
