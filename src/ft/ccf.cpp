#include "ft/ccf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace sdft {

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

namespace {

void validate_group(const fault_tree& ft, const ccf_group& group) {
  require_model(group.members.size() >= 2,
                "ccf: group '" + group.name + "' needs at least two members");
  std::unordered_set<node_index> seen;
  double q = -1.0;
  for (node_index m : group.members) {
    require_model(m < ft.size() && ft.is_basic(m),
                  "ccf: group member is not a basic event");
    require_model(seen.insert(m).second,
                  "ccf: duplicate member in group '" + group.name + "'");
    const double p = ft.node(m).probability;
    require_model(q < 0.0 || std::abs(p - q) < 1e-12,
                  "ccf: members of group '" + group.name +
                      "' must share one probability (symmetric redundancy)");
    q = p;
  }
  if (group.model == ccf_group::parametric_model::beta_factor) {
    require_model(group.beta >= 0.0 && group.beta <= 1.0,
                  "ccf: beta must lie in [0, 1]");
  } else {
    const int n = static_cast<int>(group.members.size());
    require_model(n <= 8, "ccf: alpha-factor groups limited to 8 members");
    require_model(group.alpha.size() == group.members.size(),
                  "ccf: alpha vector must have one entry per member count");
    double sum = 0.0;
    for (double a : group.alpha) {
      require_model(a >= 0.0, "ccf: alpha factors must be non-negative");
      sum += a;
    }
    require_model(std::abs(sum - 1.0) < 1e-9,
                  "ccf: alpha factors must sum to 1");
  }
}

/// One CCF event a member participates in: its name, the coefficient of
/// the group's common Q, and the original-tree node the trace anchors to.
struct shared_event {
  std::string name;
  double scale;
  node_index anchor;
};

/// Per-member replacement plan: the independent part's Q-coefficient and
/// the shared CCF events the member participates in.
struct member_plan {
  double independent_scale;
  std::vector<shared_event> shared;
};

}  // namespace

fault_tree expand_ccf(const fault_tree& ft,
                      const std::vector<ccf_group>& groups) {
  return expand_ccf_traced(ft, groups).tree;
}

ccf_expansion expand_ccf_traced(const fault_tree& ft,
                                const std::vector<ccf_group>& groups) {
  std::unordered_map<node_index, member_plan> plans;
  for (const auto& group : groups) {
    validate_group(ft, group);
    const int n = static_cast<int>(group.members.size());
    const node_index anchor = group.members.front();

    if (group.model == ccf_group::parametric_model::beta_factor) {
      const std::string event = group.name + "_CCF";
      for (node_index m : group.members) {
        require_model(plans.find(m) == plans.end(),
                      "ccf: event in more than one group");
        member_plan plan;
        plan.independent_scale = 1.0 - group.beta;
        plan.shared.push_back({event, group.beta, anchor});
        plans.emplace(m, plan);
      }
      continue;
    }

    // Alpha-factor: Q_k = k / C(n-1, k-1) * alpha_k / alpha_t * Q. The
    // coefficient of Q is what we record, so a re-drawn Q scales exactly.
    double alpha_t = 0.0;
    for (int k = 1; k <= n; ++k) alpha_t += k * group.alpha[k - 1];
    std::vector<double> scale_k(n + 1, 0.0);
    for (int k = 1; k <= n; ++k) {
      scale_k[k] = static_cast<double>(k) / binomial(n - 1, k - 1) *
                   group.alpha[k - 1] / alpha_t;
    }
    for (node_index m : group.members) {
      require_model(plans.find(m) == plans.end(),
                    "ccf: event in more than one group");
      plans.emplace(m, member_plan{scale_k[1], {}});
    }
    // One explicit event per subgroup of size >= 2.
    const auto total = std::size_t{1} << n;
    for (std::size_t mask = 0; mask < total; ++mask) {
      const int k = std::popcount(mask);
      if (k < 2) continue;
      std::string name = group.name + "_CCF";
      for (int i = 0; i < n; ++i) {
        if (mask >> i & 1U) {
          name += "_" + ft.node(group.members[i]).name;
        }
      }
      for (int i = 0; i < n; ++i) {
        if (mask >> i & 1U) {
          plans.at(group.members[i]).shared.push_back(
              {name, scale_k[k], anchor});
        }
      }
    }
  }

  // Rebuild the tree with members replaced by OR gates, recording for
  // every basic event where its probability comes from.
  ccf_expansion out;
  out.members_expanded = plans.size();
  const auto record = [&out](node_index expanded, node_index source,
                             double scale) {
    if (out.trace.size() <= expanded) out.trace.resize(expanded + 1);
    out.trace[expanded] = {source, scale};
  };
  std::unordered_map<std::string, node_index> ccf_events;
  std::unordered_map<node_index, node_index> mapped;
  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_basic(i)) continue;
    const auto& node = ft.node(i);
    auto plan = plans.find(i);
    if (plan == plans.end()) {
      const node_index e = out.tree.add_basic_event(node.name,
                                                    node.probability);
      record(e, i, 1.0);
      mapped.emplace(i, e);
      continue;
    }
    const node_index independent = out.tree.add_basic_event(
        node.name + "_I", plan->second.independent_scale * node.probability);
    record(independent, i, plan->second.independent_scale);
    std::vector<node_index> inputs{independent};
    for (const auto& ccf : plan->second.shared) {
      auto it = ccf_events.find(ccf.name);
      if (it == ccf_events.end()) {
        const node_index e = out.tree.add_basic_event(
            ccf.name, ccf.scale * ft.node(ccf.anchor).probability);
        record(e, ccf.anchor, ccf.scale);
        ++out.events_added;
        it = ccf_events.emplace(ccf.name, e).first;
      }
      inputs.push_back(it->second);
    }
    mapped.emplace(i, out.tree.add_gate(node.name + "_CCF",
                                        gate_type::or_gate, inputs));
  }
  for (node_index i : ft.topo_order()) {
    if (!ft.is_gate(i)) continue;
    const auto& node = ft.node(i);
    std::vector<node_index> inputs;
    inputs.reserve(node.inputs.size());
    for (node_index child : node.inputs) inputs.push_back(mapped.at(child));
    const node_index g =
        node.type == gate_type::atleast_gate
            ? out.tree.add_atleast_gate(node.name, node.k, std::move(inputs))
            : out.tree.add_gate(node.name, node.type, std::move(inputs));
    mapped.emplace(i, g);
  }
  if (ft.top() != fault_tree::npos) out.tree.set_top(mapped.at(ft.top()));
  out.trace.resize(out.tree.size());
  return out;
}

}  // namespace sdft
