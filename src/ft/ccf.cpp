#include "ft/ccf.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace sdft {

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

namespace {

void validate_group(const fault_tree& ft, const ccf_group& group) {
  require_model(group.members.size() >= 2,
                "ccf: group '" + group.name + "' needs at least two members");
  std::unordered_set<node_index> seen;
  double q = -1.0;
  for (node_index m : group.members) {
    require_model(m < ft.size() && ft.is_basic(m),
                  "ccf: group member is not a basic event");
    require_model(seen.insert(m).second,
                  "ccf: duplicate member in group '" + group.name + "'");
    const double p = ft.node(m).probability;
    require_model(q < 0.0 || std::abs(p - q) < 1e-12,
                  "ccf: members of group '" + group.name +
                      "' must share one probability (symmetric redundancy)");
    q = p;
  }
  if (group.model == ccf_group::parametric_model::beta_factor) {
    require_model(group.beta >= 0.0 && group.beta <= 1.0,
                  "ccf: beta must lie in [0, 1]");
  } else {
    const int n = static_cast<int>(group.members.size());
    require_model(n <= 8, "ccf: alpha-factor groups limited to 8 members");
    require_model(group.alpha.size() == group.members.size(),
                  "ccf: alpha vector must have one entry per member count");
    double sum = 0.0;
    for (double a : group.alpha) {
      require_model(a >= 0.0, "ccf: alpha factors must be non-negative");
      sum += a;
    }
    require_model(std::abs(sum - 1.0) < 1e-9,
                  "ccf: alpha factors must sum to 1");
  }
}

/// Per-member replacement plan: the independent probability and the list
/// of (CCF event name, probability) the member participates in.
struct member_plan {
  double independent;
  std::vector<std::pair<std::string, double>> shared;  // name, probability
};

}  // namespace

fault_tree expand_ccf(const fault_tree& ft,
                      const std::vector<ccf_group>& groups) {
  std::unordered_map<node_index, member_plan> plans;
  for (const auto& group : groups) {
    validate_group(ft, group);
    const int n = static_cast<int>(group.members.size());
    const double q = ft.node(group.members.front()).probability;

    if (group.model == ccf_group::parametric_model::beta_factor) {
      const std::string event = group.name + "_CCF";
      for (node_index m : group.members) {
        require_model(plans.find(m) == plans.end(),
                      "ccf: event in more than one group");
        member_plan plan;
        plan.independent = (1.0 - group.beta) * q;
        plan.shared.emplace_back(event, group.beta * q);
        plans.emplace(m, plan);
      }
      continue;
    }

    // Alpha-factor: Q_k = k / C(n-1, k-1) * alpha_k / alpha_t * Q.
    double alpha_t = 0.0;
    for (int k = 1; k <= n; ++k) alpha_t += k * group.alpha[k - 1];
    std::vector<double> q_k(n + 1, 0.0);
    for (int k = 1; k <= n; ++k) {
      q_k[k] = static_cast<double>(k) / binomial(n - 1, k - 1) *
               group.alpha[k - 1] / alpha_t * q;
    }
    for (node_index m : group.members) {
      require_model(plans.find(m) == plans.end(),
                    "ccf: event in more than one group");
      plans.emplace(m, member_plan{q_k[1], {}});
    }
    // One explicit event per subgroup of size >= 2.
    const auto total = std::size_t{1} << n;
    for (std::size_t mask = 0; mask < total; ++mask) {
      const int k = std::popcount(mask);
      if (k < 2) continue;
      std::string name = group.name + "_CCF";
      for (int i = 0; i < n; ++i) {
        if (mask >> i & 1U) {
          name += "_" + ft.node(group.members[i]).name;
        }
      }
      for (int i = 0; i < n; ++i) {
        if (mask >> i & 1U) {
          plans.at(group.members[i]).shared.emplace_back(name, q_k[k]);
        }
      }
    }
  }

  // Rebuild the tree with members replaced by OR gates.
  fault_tree out;
  std::unordered_map<std::string, node_index> ccf_events;
  std::unordered_map<node_index, node_index> mapped;
  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_basic(i)) continue;
    const auto& node = ft.node(i);
    auto plan = plans.find(i);
    if (plan == plans.end()) {
      mapped.emplace(i, out.add_basic_event(node.name, node.probability));
      continue;
    }
    std::vector<node_index> inputs{
        out.add_basic_event(node.name + "_I", plan->second.independent)};
    for (const auto& [ccf_name, p] : plan->second.shared) {
      auto it = ccf_events.find(ccf_name);
      if (it == ccf_events.end()) {
        it = ccf_events.emplace(ccf_name, out.add_basic_event(ccf_name, p))
                 .first;
      }
      inputs.push_back(it->second);
    }
    mapped.emplace(
        i, out.add_gate(node.name + "_CCF", gate_type::or_gate, inputs));
  }
  for (node_index i : ft.topo_order()) {
    if (!ft.is_gate(i)) continue;
    const auto& node = ft.node(i);
    std::vector<node_index> inputs;
    inputs.reserve(node.inputs.size());
    for (node_index child : node.inputs) inputs.push_back(mapped.at(child));
    mapped.emplace(i, out.add_gate(node.name, node.type, inputs));
  }
  if (ft.top() != fault_tree::npos) out.set_top(mapped.at(ft.top()));
  return out;
}

}  // namespace sdft
