#include "ft/openpsa.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/error.hpp"
#include "util/xml.hpp"

namespace sdft {

namespace {

struct gate_definition {
  std::string name;
  const xml_node* formula;  // the connective element
};

double parse_float_value(const xml_node& define_be) {
  const xml_node* value = define_be.child("float");
  require_model(value != nullptr,
                "openpsa: define-basic-event '" +
                    define_be.attribute("name") +
                    "' needs a <float value=.../>");
  try {
    return std::stod(value->attribute("value"));
  } catch (const std::exception&) {
    throw model_error("openpsa: cannot parse probability of '" +
                      define_be.attribute("name") + "'");
  }
}

/// Recursively collects definitions from opsa-mef, define-fault-tree and
/// model-data containers. Basic events keep their document order (the
/// last definition of a name wins) so node numbering — and thus the
/// written form — is a pure function of the document.
void collect(const xml_node& node,
             std::vector<gate_definition>& gates,
             std::vector<std::pair<std::string, double>>& probabilities,
             std::unordered_map<std::string, std::size_t>& probability_index) {
  for (const auto& child : node.children) {
    if (child.tag == "define-fault-tree" || child.tag == "model-data") {
      collect(child, gates, probabilities, probability_index);
    } else if (child.tag == "define-gate") {
      require_model(child.children.size() == 1,
                    "openpsa: define-gate '" + child.attribute("name") +
                        "' must contain exactly one formula");
      gates.push_back({child.attribute("name"), &child.children.front()});
    } else if (child.tag == "define-basic-event") {
      const std::string name = child.attribute("name");
      const double p = parse_float_value(child);
      const auto [it, fresh] =
          probability_index.emplace(name, probabilities.size());
      if (fresh) {
        probabilities.emplace_back(name, p);
      } else {
        probabilities[it->second].second = p;
      }
    } else if (child.tag == "label" || child.tag == "attributes") {
      continue;  // harmless metadata
    } else {
      throw model_error("openpsa: unsupported element <" + child.tag + ">");
    }
  }
}

/// Names referenced by a formula element (gate/basic-event/event refs).
void collect_references(const xml_node& formula,
                        std::vector<std::string>& out) {
  for (const auto& child : formula.children) {
    if (child.tag == "gate" || child.tag == "basic-event" ||
        child.tag == "event") {
      out.push_back(child.attribute("name"));
    } else {
      throw model_error("openpsa: unsupported formula operand <" +
                        child.tag + "> (nested formulas must be named "
                        "gates in this subset)");
    }
  }
}

}  // namespace

fault_tree parse_openpsa(const std::string& xml_text) {
  const xml_node root = parse_xml(xml_text);
  require_model(root.tag == "opsa-mef",
                "openpsa: root element must be <opsa-mef>");

  std::vector<gate_definition> gates;
  std::vector<std::pair<std::string, double>> probabilities;
  std::unordered_map<std::string, std::size_t> probability_index;
  collect(root, gates, probabilities, probability_index);
  require_model(!gates.empty(), "openpsa: no define-gate found");

  fault_tree ft;
  // Basic events first (anything with a probability definition), then
  // gates, then wiring; references to names without any definition fail.
  for (const auto& [name, p] : probabilities) {
    require_model(p >= 0.0 && p <= 1.0,
                  "openpsa: probability of '" + name + "' outside [0, 1]");
    ft.add_basic_event(name, p);
  }

  // Pre-create plain AND/OR gates; voting gates need their inputs first,
  // so they are expanded in a dependency-ordered second phase.
  std::unordered_map<std::string, const xml_node*> formula_of;
  for (const auto& g : gates) {
    require_model(formula_of.emplace(g.name, g.formula).second,
                  "openpsa: duplicate gate '" + g.name + "'");
  }
  for (const auto& g : gates) {
    if (g.formula->tag == "and") {
      ft.add_gate(g.name, gate_type::and_gate);
    } else if (g.formula->tag == "or") {
      ft.add_gate(g.name, gate_type::or_gate);
    } else if (g.formula->tag != "atleast") {
      throw model_error("openpsa: unsupported connective <" +
                        g.formula->tag + "> in gate '" + g.name + "'");
    }
  }
  // Create atleast gates in an order where their operands already exist —
  // they stay structural (gate_type::atleast_gate); the prep layer lowers
  // them late instead of an eager C(N, K) expansion here. (Repeat until no
  // progress; cycles through atleast gates are rejected.)
  std::vector<const gate_definition*> pending;
  for (const auto& g : gates) {
    if (g.formula->tag == "atleast") pending.push_back(&g);
  }
  while (!pending.empty()) {
    const std::size_t before = pending.size();
    for (auto it = pending.begin(); it != pending.end();) {
      std::vector<std::string> refs;
      collect_references(*(*it)->formula, refs);
      bool ready = true;
      for (const auto& ref : refs) {
        if (ft.find(ref) == fault_tree::npos) ready = false;
      }
      if (!ready) {
        ++it;
        continue;
      }
      std::vector<node_index> inputs;
      for (const auto& ref : refs) inputs.push_back(ft.find(ref));
      int min = 0;
      try {
        min = std::stoi((*it)->formula->attribute("min"));
      } catch (const std::exception&) {
        throw model_error("openpsa: bad 'min' on atleast gate '" +
                          (*it)->name + "'");
      }
      require_model(min >= 1 && static_cast<std::size_t>(min) <= inputs.size(),
                    "openpsa: 'min' of atleast gate '" + (*it)->name +
                        "' outside [1, #operands]");
      ft.add_atleast_gate((*it)->name, static_cast<std::uint32_t>(min),
                          inputs);
      it = pending.erase(it);
    }
    require_model(pending.size() < before,
                  "openpsa: unresolvable atleast gate dependencies "
                  "(cycle or undefined operand)");
  }
  // Wire AND/OR inputs.
  for (const auto& g : gates) {
    if (g.formula->tag == "atleast") continue;
    std::vector<std::string> refs;
    collect_references(*g.formula, refs);
    const node_index gate = ft.find(g.name);
    for (const auto& ref : refs) {
      const node_index target = ft.find(ref);
      require_model(target != fault_tree::npos,
                    "openpsa: gate '" + g.name +
                        "' references undefined '" + ref + "'");
      ft.add_input(gate, target);
    }
  }

  // Top gate: the unique defined gate not referenced by any other gate.
  std::unordered_set<std::string> referenced;
  for (const auto& g : gates) {
    std::vector<std::string> refs;
    collect_references(*g.formula, refs);
    referenced.insert(refs.begin(), refs.end());
  }
  std::vector<std::string> roots;
  for (const auto& g : gates) {
    if (!referenced.count(g.name)) roots.push_back(g.name);
  }
  require_model(roots.size() == 1,
                "openpsa: expected exactly one unreferenced (top) gate, "
                "found " + std::to_string(roots.size()));
  ft.set_top(ft.find(roots.front()));
  ft.validate();
  return ft;
}

std::string write_openpsa(const fault_tree& ft,
                          const std::string& model_name) {
  std::ostringstream out;
  out.precision(17);
  out << "<?xml version=\"1.0\"?>\n<opsa-mef>\n  <define-fault-tree name=\""
      << xml_escape(model_name) << "\">\n";
  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_gate(i)) continue;
    const auto& gate = ft.node(i);
    std::string connective;
    std::string open_attrs;
    if (gate.type == gate_type::and_gate) {
      connective = "and";
    } else if (gate.type == gate_type::atleast_gate) {
      connective = "atleast";
      open_attrs = " min=\"" + std::to_string(gate.k) + "\"";
    } else {
      connective = "or";
    }
    out << "    <define-gate name=\"" << xml_escape(gate.name) << "\">\n"
        << "      <" << connective << open_attrs << ">\n";
    for (node_index child : gate.inputs) {
      out << "        <" << (ft.is_gate(child) ? "gate" : "basic-event")
          << " name=\"" << xml_escape(ft.node(child).name) << "\"/>\n";
    }
    out << "      </" << connective << ">\n    </define-gate>\n";
  }
  out << "  </define-fault-tree>\n  <model-data>\n";
  for (node_index i = 0; i < ft.size(); ++i) {
    if (!ft.is_basic(i)) continue;
    out << "    <define-basic-event name=\"" << xml_escape(ft.node(i).name)
        << "\">\n      <float value=\"" << ft.node(i).probability
        << "\"/>\n    </define-basic-event>\n";
  }
  out << "  </model-data>\n</opsa-mef>\n";
  return out.str();
}

}  // namespace sdft
