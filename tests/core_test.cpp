#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/analyzer.hpp"
#include "core/mcs_model.hpp"
#include "product/product_ctmc.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

cutset named_cutset(const sd_fault_tree& tree,
                    std::vector<std::string> names) {
  cutset c;
  for (const auto& n : names) c.push_back(tree.structure().find(n));
  std::sort(c.begin(), c.end());
  return c;
}

// --- FT_C construction on the running example ---------------------------

TEST(McsModel, StaticBranchingTriggerAlreadyFailedByStatics) {
  // Cutset {a, d} of the running example: d's trigger PUMP1 = OR(a, b) is
  // failed by the static a in C, so the trigger model is constant TRUE and
  // no event is added.
  const sd_fault_tree tree = testing::example3_sd();
  const mcs_model model =
      build_mcs_model(tree, named_cutset(tree, {"a", "d"}));
  EXPECT_NEAR(model.static_factor, testing::p_fts, 1e-18);
  EXPECT_EQ(model.cutset_dynamic.size(), 1u);
  EXPECT_TRUE(model.added_dynamic.empty());
  EXPECT_TRUE(model.added_static.empty());
  ASSERT_EQ(model.used_classes.size(), 1u);
  EXPECT_EQ(model.used_classes[0], trigger_class::static_branching);

  // d is active from time 0, so p-tilde = p(a) * (1 - e^{-lambda t}).
  const double t = 24.0;
  const double p = quantify_mcs_model(model, t);
  EXPECT_NEAR(p, testing::p_fts * (1.0 - std::exp(-1e-3 * t)), 1e-9);
}

TEST(McsModel, StaticBranchingTriggerFromCutsetEvent) {
  // Cutset {b, d}: the trigger model of PUMP1 reduces to the single
  // dynamic event b (Rel = Dyn intersect C = {b}).
  const sd_fault_tree tree = testing::example3_sd();
  const mcs_model model =
      build_mcs_model(tree, named_cutset(tree, {"b", "d"}));
  EXPECT_DOUBLE_EQ(model.static_factor, 1.0);
  EXPECT_EQ(model.cutset_dynamic.size(), 2u);
  EXPECT_TRUE(model.added_dynamic.empty());

  // Cross-check against the exact product semantics of FT_C itself and
  // against a restricted original model where a, c, e cannot fail: in both
  // cases the runs reaching Failed({b, d}) coincide.
  const double t = 24.0;
  const double via_model = quantify_mcs_model(model, t);
  sd_fault_tree restricted = testing::example3_sd(1e-3, 5e-2);
  restricted.structure().set_probability(restricted.structure().find("a"), 0);
  restricted.structure().set_probability(restricted.structure().find("c"), 0);
  restricted.structure().set_probability(restricted.structure().find("e"), 0);
  const double via_product = exact_failure_probability(restricted, t);
  EXPECT_NEAR(via_model, via_product, 1e-10);
}

TEST(McsModel, RejectsPurelyStaticCutset) {
  const sd_fault_tree tree = testing::example3_sd();
  EXPECT_THROW(build_mcs_model(tree, named_cutset(tree, {"a", "c"})),
               model_error);
}

// --- Example 11: static joins require the added event -------------------

/// e, f dynamic; G = OR(e, f) triggers g; top = AND(e, g).
struct joins_fixture {
  sd_fault_tree tree;
  node_index e, f, g;

  explicit joins_fixture(double repair = 0.2) {
    e = tree.add_dynamic_event("e", make_repairable(0.05, repair));
    f = tree.add_dynamic_event("f", make_repairable(0.08, repair));
    const node_index trig_gate =
        tree.add_gate("G", gate_type::or_gate, {e, f});
    g = tree.add_dynamic_event("g", testing::example2_pump2(0.1, repair));
    tree.set_top(tree.add_gate("top", gate_type::and_gate, {e, g}));
    tree.set_trigger(trig_gate, g);
    tree.validate();
  }
};

TEST(McsModel, StaticJoinsAddsInterferingEvent) {
  const joins_fixture fx;
  const mcs_model model =
      build_mcs_model(fx.tree, cutset{fx.e, fx.g});
  // Rel_g = all dynamic events under G = {e, f}: f is added.
  EXPECT_EQ(model.added_dynamic, std::vector<node_index>{fx.f});
  ASSERT_EQ(model.used_classes.size(), 1u);
  EXPECT_EQ(model.used_classes[0], trigger_class::static_joins);
  // The quantification matches the full product semantics: {e, g} is the
  // only MCS and every failure run fails both e and g simultaneously.
  const double t = 10.0;
  EXPECT_NEAR(quantify_mcs_model(model, t),
              exact_failure_probability(fx.tree, t), 1e-9);
}

TEST(McsModel, UnderApproximationDropsInterference) {
  // Example 11's point: without f, runs where f starts g early (and f then
  // recovers) are lost, so the under-approximation is strictly smaller.
  const joins_fixture fx;
  const double t = 10.0;
  const double exact =
      quantify_mcs_model(build_mcs_model(fx.tree, cutset{fx.e, fx.g}), t);
  const double under = quantify_mcs_model(
      build_mcs_model(fx.tree, cutset{fx.e, fx.g},
                      approx_mode::under_approximate),
      t);
  EXPECT_LT(under, exact);
}

// --- Example 10: the general case adds static guards --------------------

/// a, b, c dynamic, d static; G = AND(OR(a, b), OR(c, d)) triggers e;
/// top = AND(a, c, e). The minimal trigger sets are {a,c}, {a,d}, {b,c},
/// {b,d} as in paper Example 10.
struct general_fixture {
  sd_fault_tree tree;
  node_index a, b, c, d, e;

  general_fixture() {
    a = tree.add_dynamic_event("a", make_repairable(0.03, 0.3));
    b = tree.add_dynamic_event("b", make_repairable(0.02, 0.3));
    c = tree.add_dynamic_event("c", make_repairable(0.03, 0.3));
    d = tree.add_static_event("d", 0.05);
    const node_index g1 = tree.add_gate("G1", gate_type::or_gate, {a, b});
    const node_index g2 = tree.add_gate("G2", gate_type::or_gate, {c, d});
    const node_index g = tree.add_gate("G", gate_type::and_gate, {g1, g2});
    e = tree.add_dynamic_event("e", testing::example2_pump2(0.1, 0.3));
    tree.set_top(tree.add_gate("top", gate_type::and_gate, {a, c, e}));
    tree.set_trigger(g, e);
    tree.validate();
  }
};

TEST(McsModel, GeneralCaseAddsGuardsAndDynamics) {
  const general_fixture fx;
  const mcs_model model =
      build_mcs_model(fx.tree, cutset{fx.a, fx.c, fx.e});
  ASSERT_EQ(model.used_classes.size(), 1u);
  EXPECT_EQ(model.used_classes[0], trigger_class::general);
  // Rel_e = {a, b, c, d} (paper Example 10): b and the static guard d are
  // added to FT_C.
  EXPECT_EQ(model.added_dynamic, std::vector<node_index>{fx.b});
  EXPECT_EQ(model.added_static, std::vector<node_index>{fx.d});
  // The trigger model must contain the four minimal trigger sets as AND
  // gates under an OR.
  const node_index trig = model.tree.structure().find("trig::G");
  ASSERT_NE(trig, fault_tree::npos);
  EXPECT_EQ(model.tree.structure().node(trig).inputs.size(), 4u);
}

TEST(McsModel, GeneralCaseMatchesExactProduct) {
  const general_fixture fx;
  const double t = 8.0;
  const mcs_model model =
      build_mcs_model(fx.tree, cutset{fx.a, fx.c, fx.e});
  // {a, c, e} is the only MCS of the tree, so p-tilde(C) equals the exact
  // failure probability.
  EXPECT_NEAR(quantify_mcs_model(model, t),
              exact_failure_probability(fx.tree, t), 1e-9);
}

TEST(McsModel, OverApproximationAssumesGuardsFailed) {
  const general_fixture fx;
  const double t = 8.0;
  const double exact = quantify_mcs_model(
      build_mcs_model(fx.tree, cutset{fx.a, fx.c, fx.e}), t);
  const double over = quantify_mcs_model(
      build_mcs_model(fx.tree, cutset{fx.a, fx.c, fx.e},
                      approx_mode::over_approximate),
      t);
  const double under = quantify_mcs_model(
      build_mcs_model(fx.tree, cutset{fx.a, fx.c, fx.e},
                      approx_mode::under_approximate),
      t);
  EXPECT_GE(over, exact - 1e-12);
  EXPECT_LE(under, exact + 1e-12);
}

// --- Chained static joins with uniform triggering (Fig. 1 right, 3) -----

/// Three chained two-component systems: G1 = OR(e1, f1) triggers e2 and
/// f2; G2 = OR(e2, f2) triggers e3 and f3. All dynamic events under each
/// triggering gate share one trigger, so the gates have static joins with
/// uniform triggering and the per-cutset construction never needs the
/// general case (paper §V-C, footnote 3).
struct chain_fixture {
  sd_fault_tree tree;
  node_index e1, f1, e2, f2, e3, f3;

  chain_fixture() {
    e1 = tree.add_dynamic_event("e1", make_repairable(0.04, 0.2));
    f1 = tree.add_dynamic_event("f1", make_repairable(0.06, 0.2));
    const node_index g1 = tree.add_gate("G1", gate_type::or_gate, {e1, f1});
    e2 = tree.add_dynamic_event("e2", testing::example2_pump2(0.05, 0.2));
    f2 = tree.add_dynamic_event("f2", testing::example2_pump2(0.07, 0.2));
    const node_index g2 = tree.add_gate("G2", gate_type::or_gate, {e2, f2});
    e3 = tree.add_dynamic_event("e3", testing::example2_pump2(0.08, 0.2));
    f3 = tree.add_dynamic_event("f3", testing::example2_pump2(0.09, 0.2));
    const node_index g3 = tree.add_gate("G3", gate_type::or_gate, {e3, f3});
    tree.set_top(tree.add_gate("top", gate_type::and_gate, {g1, g2, g3}));
    tree.set_trigger(g1, e2);
    tree.set_trigger(g1, f2);
    tree.set_trigger(g2, e3);
    tree.set_trigger(g2, f3);
    tree.validate();
  }
};

TEST(McsModel, UniformTriggeringChainsNeverUseGeneralCase) {
  const chain_fixture fx;
  // Both triggering gates have static joins; G1 starts the chain (its
  // dynamics are untriggered, so no uniform triggering — the paper's
  // "beginning of each triggering sequence" case), while G2's dynamics
  // share G1 as their trigger: uniform triggering.
  const auto report = analyze_triggers(fx.tree);
  ASSERT_EQ(report.gates.size(), 2u);
  for (const auto& entry : report.gates) {
    EXPECT_EQ(entry.cls, trigger_class::static_joins);
    const bool is_g1 =
        fx.tree.structure().node(entry.gate).name == "G1";
    EXPECT_EQ(entry.uniform_triggering, !is_g1);
  }
  // Cutset {e1, e2, e3}: modelling e3's trigger G2 adds f2, whose trigger
  // G1 is already part of FT_C (it was modelled for e2) — step 3 reuses it
  // and the general case never fires (paper footnote 3).
  const mcs_model model =
      build_mcs_model(fx.tree, cutset{fx.e1, fx.e2, fx.e3});
  for (trigger_class cls : model.used_classes) {
    EXPECT_NE(cls, trigger_class::general);
  }
  // f1 (Rel of G1) and f2 (Rel of G2) are pulled in as interfering
  // events; f3 appears in no relevant set.
  EXPECT_EQ(model.added_dynamic.size(), 2u);
  EXPECT_TRUE(model.added_static.empty());
}

TEST(McsModel, UniformTriggeringChainQuantifiesAgainstExact) {
  const chain_fixture fx;
  const double t = 6.0;
  analysis_options opts;
  opts.horizon = t;
  const analysis_result result = analyze(fx.tree, opts);
  for (const auto& q : result.cutsets) EXPECT_TRUE(q.error.empty()) << q.error;
  const double exact = exact_failure_probability(fx.tree, t);
  EXPECT_GE(result.failure_probability, exact - 1e-10);
  EXPECT_LE(result.failure_probability, 3.0 * exact);
}

// --- The full pipeline ---------------------------------------------------

TEST(Analyzer, RunningExampleAgainstExactSemantics) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options opts;
  opts.horizon = 24.0;
  opts.threads = 2;
  const analysis_result result = analyze(tree, opts);

  EXPECT_EQ(result.num_cutsets, 5u);      // {e},{a,c},{a,d},{b,c},{b,d}
  EXPECT_EQ(result.num_dynamic_cutsets, 3u);

  const double exact = exact_failure_probability(tree, opts.horizon);
  // Rare-event over-approximation, but tight for these probabilities.
  EXPECT_GE(result.failure_probability, exact - 1e-12);
  EXPECT_LT(result.failure_probability, exact * 1.01);
}

TEST(Analyzer, CutsetBreakdownOfRunningExample) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options opts;
  opts.horizon = 24.0;
  const analysis_result result = analyze(tree, opts);
  ASSERT_EQ(result.cutsets.size(), 5u);

  double sum = 0.0;
  for (const auto& q : result.cutsets) {
    EXPECT_TRUE(q.error.empty()) << q.error;
    sum += q.probability;
    if (q.dynamic) {
      EXPECT_GT(q.chain_states, 0u);
    } else {
      EXPECT_EQ(q.chain_states, 0u);
    }
  }
  EXPECT_NEAR(sum, result.failure_probability, 1e-15);

  // The static cutsets carry their product probabilities.
  const cutset ac = named_cutset(tree, {"a", "c"});
  const auto it = std::find_if(
      result.cutsets.begin(), result.cutsets.end(),
      [&](const cutset_result& q) { return q.events == ac; });
  ASSERT_NE(it, result.cutsets.end());
  EXPECT_NEAR(it->probability, testing::p_fts * testing::p_fts, 1e-18);
}

TEST(Analyzer, CutoffDropsIrrelevantCutsets) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options all;
  analysis_options cut;
  cut.cutoff = 1e-5;
  const double full = analyze(tree, all).failure_probability;
  const analysis_result trimmed = analyze(tree, cut);
  EXPECT_LE(trimmed.failure_probability, full);
  EXPECT_LT(trimmed.num_cutsets, 5u);
}

TEST(Analyzer, StaticOnlyTreeReducesToRareEventApproximation) {
  sd_fault_tree tree(testing::example1_static());
  const analysis_result result = analyze(tree);
  EXPECT_EQ(result.num_dynamic_cutsets, 0u);
  const double expected = testing::p_tank + testing::p_fts * testing::p_fts +
                          2 * testing::p_fts * testing::p_fio +
                          testing::p_fio * testing::p_fio;
  EXPECT_NEAR(result.failure_probability, expected, 1e-15);
}

TEST(Analyzer, HorizonMonotonicity) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options opts;
  double last = 0.0;
  for (double t : {6.0, 24.0, 48.0, 96.0}) {
    opts.horizon = t;
    const double p = analyze(tree, opts).failure_probability;
    EXPECT_GT(p, last);
    last = p;
  }
}

TEST(Analyzer, RepairsReduceFailureProbability) {
  analysis_options opts;
  opts.horizon = 48.0;
  const double no_repair =
      analyze(testing::example3_sd(1e-3, 0.0), opts).failure_probability;
  const double with_repair =
      analyze(testing::example3_sd(1e-3, 5e-2), opts).failure_probability;
  EXPECT_LT(with_repair, no_repair);
}

TEST(Analyzer, HistogramCountsDynamicEvents) {
  const joins_fixture fx;
  const analysis_result result = analyze(fx.tree);
  // Single MCS {e, g} with the added f: 3 dynamic events.
  ASSERT_EQ(result.num_dynamic_cutsets, 1u);
  ASSERT_GE(result.dynamic_events_histogram.size(), 4u);
  EXPECT_EQ(result.dynamic_events_histogram[3], 1u);
  EXPECT_NEAR(result.mean_dynamic_events, 3.0, 1e-12);
  EXPECT_NEAR(result.mean_added_dynamic_events, 1.0, 1e-12);
}

TEST(Analyzer, ProductLimitFallsBackConservatively) {
  const joins_fixture fx;
  analysis_options opts;
  opts.max_product_states = 2;  // force the fallback path
  const analysis_result result = analyze(fx.tree, opts);
  ASSERT_EQ(result.cutsets.size(), 1u);
  EXPECT_FALSE(result.cutsets[0].error.empty());
  // The fallback is the FT-bar worst-case product, an upper bound.
  const double exact = exact_failure_probability(fx.tree, opts.horizon);
  EXPECT_GE(result.failure_probability, exact - 1e-12);
}

}  // namespace
}  // namespace sdft
