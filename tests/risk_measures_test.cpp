#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "core/risk_measures.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

class RiskMeasuresRunningExample : public ::testing::Test {
 protected:
  RiskMeasuresRunningExample() : tree_(testing::example3_sd()) {
    analysis_options opts;
    opts.horizon = 24.0;
    result_ = analyze(tree_, opts);
  }

  sd_fault_tree tree_;
  analysis_result result_;
};

TEST_F(RiskMeasuresRunningExample, FussellVeselySumsCutsets) {
  const auto fv = fussell_vesely_sd(tree_, result_);
  // Every event appears in some cutset; FV values lie in (0, 1].
  for (node_index b : tree_.structure().basic_events()) {
    EXPECT_GT(fv.at(b), 0.0) << tree_.structure().node(b).name;
    EXPECT_LE(fv.at(b), 1.0);
  }
  // The dynamic pump events dominate the static FTS events here (their
  // 24h failure probability is ~2.4e-2 vs 3e-3).
  EXPECT_GT(fv.at(tree_.structure().find("b")),
            fv.at(tree_.structure().find("a")));
  // The tank is the least important contributor.
  for (const char* name : {"a", "b", "c", "d"}) {
    EXPECT_GT(fv.at(tree_.structure().find(name)),
              fv.at(tree_.structure().find("e")));
  }
}

TEST_F(RiskMeasuresRunningExample, RiskWithoutEventDropsContribution) {
  const node_index e = tree_.structure().find("e");
  const double without_tank = risk_without_event(result_, e);
  EXPECT_NEAR(without_tank,
              result_.failure_probability - testing::p_tank, 1e-12);
  // Removing a pump event must remove more risk than removing the tank.
  const double without_b =
      risk_without_event(result_, tree_.structure().find("b"));
  EXPECT_LT(without_b, without_tank);
}

TEST_F(RiskMeasuresRunningExample, UncertaintyBracketsPointEstimate) {
  uncertainty_options opts;
  opts.samples = 4000;
  opts.seed = 99;
  opts.error_factor = 3.0;
  const uncertainty_result u = uncertainty_analysis(result_, opts);
  EXPECT_EQ(u.samples.size(), opts.samples);
  EXPECT_LE(u.p05, u.median);
  EXPECT_LE(u.median, u.p95);
  // The median of the sampled distribution sits near the point estimate
  // (multipliers have median 1), while the mean exceeds it (lognormal
  // skew).
  EXPECT_NEAR(u.median, u.point_estimate, 0.35 * u.point_estimate);
  EXPECT_GT(u.mean, u.point_estimate);
  // With EF = 3 per event and 2-event cutsets dominating, the 90% band is
  // within about an order of magnitude around the median.
  EXPECT_LT(u.p95 / u.median, 12.0);
  EXPECT_GT(u.median / u.p05, 1.5);
}

TEST_F(RiskMeasuresRunningExample, UncertaintyIsDeterministicPerSeed) {
  uncertainty_options opts;
  opts.samples = 200;
  opts.seed = 7;
  const uncertainty_result a = uncertainty_analysis(result_, opts);
  const uncertainty_result b = uncertainty_analysis(result_, opts);
  EXPECT_EQ(a.samples, b.samples);
  opts.seed = 8;
  const uncertainty_result c = uncertainty_analysis(result_, opts);
  EXPECT_NE(a.samples, c.samples);
}

TEST_F(RiskMeasuresRunningExample, UnitErrorFactorIsDegenerate) {
  uncertainty_options opts;
  opts.samples = 50;
  opts.error_factor = 1.0;  // no uncertainty: every sample = point estimate
  const uncertainty_result u = uncertainty_analysis(result_, opts);
  EXPECT_NEAR(u.p05, u.p95, 1e-12);
  EXPECT_NEAR(u.median, u.point_estimate, 1e-12);
}

TEST(RiskMeasures, RejectsBadOptions) {
  analysis_result empty;
  uncertainty_options opts;
  opts.samples = 0;
  EXPECT_THROW(uncertainty_analysis(empty, opts), model_error);
  opts.samples = 10;
  opts.error_factor = 0.5;
  EXPECT_THROW(uncertainty_analysis(empty, opts), model_error);
}

}  // namespace
}  // namespace sdft
