#include <gtest/gtest.h>

#include <string>

#include "product/product_ctmc.hpp"
#include "sdft/parser.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(SdParser, RoundTripsRunningExample) {
  const sd_fault_tree tree = testing::example3_sd();
  const std::string text = write_sd_fault_tree(tree);
  const sd_fault_tree parsed = parse_sd_fault_tree_string(text);

  EXPECT_EQ(parsed.structure().num_basic_events(), 5u);
  EXPECT_EQ(parsed.structure().num_gates(), 4u);
  EXPECT_EQ(parsed.dynamic_events().size(), 2u);
  const node_index d = parsed.structure().find("d");
  EXPECT_EQ(parsed.trigger_gate_of(d), parsed.structure().find("PUMP1"));

  // Semantics round-trip: the exact failure probability is preserved.
  const double t = 24.0;
  EXPECT_NEAR(exact_failure_probability(parsed, t),
              exact_failure_probability(tree, t), 1e-12);
}

TEST(SdParser, SecondRoundTripIsIdentical) {
  const std::string once = write_sd_fault_tree(testing::example3_sd());
  const std::string twice =
      write_sd_fault_tree(parse_sd_fault_tree_string(once));
  EXPECT_EQ(once, twice);
}

TEST(SdParser, ParsesErlangFactories) {
  const sd_fault_tree tree = parse_sd_fault_tree_string(
      "dyn x erlang 2 0.01 0.1\n"
      "dyn y erlang-triggered 1 0.02 0.1 100\n"
      "or G x\n"
      "and top G y\n"
      "trigger G y\n"
      "top top\n");
  EXPECT_EQ(tree.dynamic_events().size(), 2u);
  EXPECT_TRUE(tree.has_triggered_model(tree.structure().find("y")));
  EXPECT_FALSE(tree.has_triggered_model(tree.structure().find("x")));
  // x: Erlang-2 chain has 3 states; y: triggered Erlang-1 has 4.
  EXPECT_EQ(std::get<ctmc>(tree.model_of(tree.structure().find("x")))
                .num_states(),
            3u);
}

TEST(SdParser, ParsesExplicitChainBlocks) {
  const sd_fault_tree tree = parse_sd_fault_tree_string(
      "dyn x chain 2\n"
      "  init 0 1\n"
      "  failed 1\n"
      "  rate 0 1 0.05\n"
      "  rate 1 0 0.5\n"
      "end\n"
      "or top x\n"
      "top top\n");
  const auto& chain = std::get<ctmc>(tree.model_of(tree.structure().find("x")));
  EXPECT_EQ(chain.num_states(), 2u);
  EXPECT_TRUE(chain.failed(1));
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 0.05);
}

TEST(SdParser, ParsesTriggeredChainBlocks) {
  const sd_fault_tree tree = parse_sd_fault_tree_string(
      "be s 0.01\n"
      "dyn y chain 4\n"
      "  init 0 1\n"
      "  failed 3\n"
      "  rate 2 3 0.1\n"
      "  on 0 2\n"
      "  on 1 3\n"
      "  off 2 0\n"
      "  off 3 1\n"
      "end\n"
      "or G s\n"
      "and top G y\n"
      "trigger G y\n"
      "top top\n");
  const node_index y = tree.structure().find("y");
  ASSERT_TRUE(tree.has_triggered_model(y));
  const auto& model = std::get<triggered_ctmc>(tree.model_of(y));
  EXPECT_EQ(model.on_state, (std::vector<char>{0, 0, 1, 1}));
}

class SdParserRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(SdParserRandomTrees, RoundTripsRandomSdTrees) {
  // parse(write(tree)) must reproduce the structure, the trigger wiring
  // and the semantics; write o parse must be a fixpoint on the text.
  const sd_fault_tree tree =
      testing::make_random_sd_tree(0x2f0 + static_cast<std::uint64_t>(GetParam()))
          .tree;
  const std::string text = write_sd_fault_tree(tree);
  const sd_fault_tree parsed = parse_sd_fault_tree_string(text);

  const fault_tree& ft = tree.structure();
  const fault_tree& pft = parsed.structure();
  ASSERT_EQ(pft.size(), ft.size());
  EXPECT_EQ(pft.num_basic_events(), ft.num_basic_events());
  EXPECT_EQ(pft.num_gates(), ft.num_gates());
  EXPECT_EQ(parsed.dynamic_events().size(), tree.dynamic_events().size());
  for (node_index n = 0; n < ft.size(); ++n) {
    const node_index m = pft.find(ft.node(n).name);
    ASSERT_NE(m, fault_tree::npos) << ft.node(n).name;
    EXPECT_EQ(pft.node(m).type, ft.node(n).type) << ft.node(n).name;
    EXPECT_EQ(pft.node(m).inputs.size(), ft.node(n).inputs.size())
        << ft.node(n).name;
    const node_index trig = tree.trigger_gate_of(n);
    if (trig == fault_tree::npos) {
      EXPECT_EQ(parsed.trigger_gate_of(m), fault_tree::npos);
    } else {
      ASSERT_NE(parsed.trigger_gate_of(m), fault_tree::npos);
      EXPECT_EQ(pft.node(parsed.trigger_gate_of(m)).name,
                ft.node(trig).name);
    }
  }
  EXPECT_EQ(pft.node(pft.top()).name, ft.node(ft.top()).name);
  EXPECT_EQ(write_sd_fault_tree(parsed), text);
}

TEST_P(SdParserRandomTrees, RoundTripsRandomStaticTrees) {
  const sd_fault_tree tree = testing::make_random_static_tree(
      0x77a + static_cast<std::uint64_t>(GetParam()));
  const std::string text = write_sd_fault_tree(tree);
  const sd_fault_tree parsed = parse_sd_fault_tree_string(text);
  EXPECT_TRUE(parsed.dynamic_events().empty());
  EXPECT_EQ(parsed.structure().num_basic_events(),
            tree.structure().num_basic_events());
  EXPECT_EQ(parsed.structure().num_gates(), tree.structure().num_gates());
  EXPECT_NEAR(parsed.structure().probability_brute_force(),
              tree.structure().probability_brute_force(), 1e-15);
  EXPECT_EQ(write_sd_fault_tree(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdParserRandomTrees, ::testing::Range(0, 12));

TEST(SdParser, RejectsIncompleteSwitchMaps) {
  EXPECT_THROW(parse_sd_fault_tree_string(
                   "dyn y chain 4\n"
                   "  init 0 1\n"
                   "  failed 3\n"
                   "  rate 2 3 0.1\n"
                   "  on 0 2\n"  // off-state 1 has no mapping
                   "  off 2 0\n"
                   "  off 3 1\n"
                   "end\n"
                   "or G y\n"
                   "top G\n"),
               model_error);
}

TEST(SdParser, RejectsUnterminatedChain) {
  EXPECT_THROW(parse_sd_fault_tree_string("dyn x chain 2\n  init 0 1\n"),
               model_error);
}

TEST(SdParser, RejectsTriggerOnUntriggeredModel) {
  EXPECT_THROW(parse_sd_fault_tree_string(
                   "dyn x erlang 1 0.1 0\n"
                   "be s 0.1\n"
                   "or G s\n"
                   "and top G x\n"
                   "trigger G x\n"
                   "top top\n"),
               model_error);
}

TEST(SdParser, RejectsTriggeredModelWithoutTrigger) {
  EXPECT_THROW(parse_sd_fault_tree_string(
                   "dyn y erlang-triggered 1 0.1 0 100\n"
                   "or top y\n"
                   "top top\n"),
               model_error);
}

TEST(SdParser, ReportsLineNumbers) {
  try {
    parse_sd_fault_tree_string("be x 0.1\ndyn y erlang nonsense 0.1 0\n");
    FAIL() << "expected parse error";
  } catch (const model_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SdParser, RejectsBadStateIndices) {
  EXPECT_THROW(parse_sd_fault_tree_string(
                   "dyn x chain 2\n  init 7 1\nend\nor top x\ntop top\n"),
               model_error);
}

// Counts occurrences of the parse-error prefix: errors must be wrapped
// exactly once, whatever nesting of validation they bubbled through.
std::size_t prefix_count(const std::string& what) {
  const std::string prefix = "SD fault tree parse error";
  std::size_t count = 0;
  for (std::size_t at = what.find(prefix); at != std::string::npos;
       at = what.find(prefix, at + prefix.size())) {
    ++count;
  }
  return count;
}

// Expects `text` to be rejected with the prefix exactly once and the given
// line fragment in the message; returns the message for extra checks.
std::string expect_single_wrap(const std::string& text,
                               const std::string& line_fragment) {
  try {
    parse_sd_fault_tree_string(text);
  } catch (const model_error& e) {
    const std::string what = e.what();
    EXPECT_EQ(prefix_count(what), 1u) << what;
    EXPECT_NE(what.find(line_fragment), std::string::npos) << what;
    return what;
  }
  ADD_FAILURE() << "expected parse error for: " << text;
  return {};
}

TEST(SdParser, PlainChainValidationWrapsOnceWithChainLine) {
  // Missing initial distribution surfaces from ctmc::validate, which fires
  // when the block closes — the message must carry the 'end' line, once.
  const std::string what = expect_single_wrap(
      "dyn d chain 2\n  rate 0 1 0.1\n  failed 1\nend\n"
      "be b 0.5\nor g1 d b\ntop g1\n",
      "line 4");
  EXPECT_NE(what.find("ctmc:"), std::string::npos) << what;
}

TEST(SdParser, ChainDirectiveErrorsWrapOnceWithDirectiveLine) {
  // Self-loop rate: thrown by ctmc::add_rate inside the block.
  expect_single_wrap(
      "dyn d chain 2\n  init 0 1\n  rate 0 0 0.1\n  failed 1\nend\n"
      "be b 0.5\nor g1 d b\ntop g1\n",
      "line 3");
  // Out-of-range initial probability: thrown by ctmc::set_initial.
  expect_single_wrap(
      "dyn d chain 2\n  init 0 2.0\n  failed 1\nend\n"
      "be b 0.5\nor g1 d b\ntop g1\n",
      "line 2");
}

TEST(SdParser, TriggeredChainValidationWrapsOnce) {
  // Failed off-state: rejected by triggered_ctmc::validate at 'end'.
  expect_single_wrap(
      "dyn d chain 3\n  init 0 1\n  rate 1 2 0.1\n  failed 2\n"
      "  on 0 1\n  on 2 1\n  off 1 0\nend\n"
      "be b 0.5\nand g1 d b\ntrigger g1 d\ntop g1\n",
      "line 8");
}

TEST(SdParser, ErlangFactoryErrorsWrapOnceWithDynLine) {
  expect_single_wrap("dyn d erlang 0 0.1 0.2\nbe b 0.5\nor g1 d b\ntop g1\n",
                     "line 1");
}

TEST(SdParser, TruncatedChainBlockWrapsOnce) {
  const std::string what = expect_single_wrap(
      "be b 0.5\ndyn d chain 2\n  init 0 1\n  rate 0 1 0.1\n", "line 4");
  EXPECT_NE(what.find("not terminated"), std::string::npos) << what;
}

TEST(SdParser, OutOfRangeStateIndexWrapsOnce) {
  expect_single_wrap(
      "dyn d chain 2\n  init 0 1\n  rate 0 9 0.1\n  failed 1\nend\n"
      "be b 0.5\nor g1 d b\ntop g1\n",
      "line 3");
}

TEST(SdParser, TreeLevelValidationErrorsWrapOnce) {
  // Plain chain used with a trigger: rejected when the tree is wired up.
  const std::string what = expect_single_wrap(
      "be b 0.5\ndyn d chain 2\n  init 0 1\n  rate 0 1 0.1\n  failed 1\nend\n"
      "and g1 d b\ntrigger g1 d\ntop g1\n",
      "line 8");
  EXPECT_NE(what.find("triggered"), std::string::npos) << what;
}

}  // namespace
}  // namespace sdft
