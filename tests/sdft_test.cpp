#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ctmc/transient.hpp"
#include "mcs/mocus.hpp"
#include "sdft/classify.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "sdft/translate.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(SdFaultTree, RunningExampleValidates) {
  const sd_fault_tree tree = testing::example3_sd();
  EXPECT_EQ(tree.dynamic_events().size(), 2u);
  EXPECT_EQ(tree.static_events().size(), 3u);
  const node_index d = tree.structure().find("d");
  EXPECT_EQ(tree.trigger_gate_of(d), tree.structure().find("PUMP1"));
  EXPECT_TRUE(tree.has_triggered_model(d));
  EXPECT_FALSE(tree.has_triggered_model(tree.structure().find("b")));
}

TEST(SdFaultTree, TriggeredEventNeedsTriggeredModel) {
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(0.1, 0.0));
  const node_index g = tree.add_gate("g", gate_type::or_gate, {x});
  tree.set_top(g);
  // x has a plain chain: giving it a trigger must fail.
  EXPECT_THROW(tree.set_trigger(g, x), model_error);
}

TEST(SdFaultTree, TriggeredModelWithoutTriggerFailsValidation) {
  sd_fault_tree tree;
  const node_index y =
      tree.add_dynamic_event("y", testing::example2_pump2());
  tree.set_top(tree.add_gate("g", gate_type::or_gate, {y}));
  EXPECT_THROW(tree.validate(), model_error);
}

TEST(SdFaultTree, AtMostOneTriggerPerEvent) {
  sd_fault_tree tree;
  const node_index s = tree.add_static_event("s", 0.1);
  const node_index y =
      tree.add_dynamic_event("y", testing::example2_pump2());
  const node_index g1 = tree.add_gate("g1", gate_type::or_gate, {s});
  const node_index g2 = tree.add_gate("g2", gate_type::or_gate, {s});
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {g1, g2, y}));
  tree.set_trigger(g1, y);
  EXPECT_THROW(tree.set_trigger(g2, y), model_error);
}

TEST(SdFaultTree, DetectsTriggerCycle) {
  // y is triggered by a gate above y itself: a triggering deadlock.
  sd_fault_tree tree;
  const node_index y =
      tree.add_dynamic_event("y", testing::example2_pump2());
  const node_index g = tree.add_gate("g", gate_type::or_gate, {y});
  tree.set_top(g);
  tree.set_trigger(g, y);
  EXPECT_THROW(tree.validate(), model_error);
}

TEST(SdFaultTree, MakeDynamicPromotesStaticEvent) {
  fault_tree base = testing::example1_static();
  sd_fault_tree tree(std::move(base));
  const node_index b = tree.structure().find("b");
  tree.make_dynamic(b, make_repairable(1e-3, 5e-2));
  EXPECT_TRUE(tree.is_dynamic(b));
  EXPECT_THROW(tree.make_dynamic(b, make_repairable(0.1, 0.0)), model_error);
  tree.validate();
}

// --- Classification (paper §V-A / Figure 1) ---------------------------

/// Figure 1 left: OR gate over a static and a dynamic event.
sd_fault_tree branching_model() {
  sd_fault_tree tree;
  const node_index s = tree.add_static_event("s", 0.01);
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(1e-3, 0.0));
  const node_index y =
      tree.add_dynamic_event("y", testing::example2_pump2());
  const node_index g = tree.add_gate("G", gate_type::or_gate, {s, x});
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {g, y}));
  tree.set_trigger(g, y);
  tree.validate();
  return tree;
}

/// Figure 1 right: OR gate over two dynamic events.
sd_fault_tree joins_model() {
  sd_fault_tree tree;
  const node_index e =
      tree.add_dynamic_event("e", make_repairable(1e-3, 5e-2));
  const node_index f =
      tree.add_dynamic_event("f", make_repairable(2e-3, 5e-2));
  const node_index g = tree.add_gate("G", gate_type::or_gate, {e, f});
  const node_index z =
      tree.add_dynamic_event("z", testing::example2_pump2());
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {e, z}));
  tree.add_input(tree.structure().find("top"), g);
  tree.set_trigger(g, z);
  tree.validate();
  return tree;
}

/// Example 9/10-like general trigger: AND(OR(a, b), OR(c, d)) with a, b, c
/// dynamic and d static.
sd_fault_tree general_model() {
  sd_fault_tree tree;
  const node_index a =
      tree.add_dynamic_event("a", make_repairable(2e-3, 1e-1));
  const node_index b =
      tree.add_dynamic_event("b", make_repairable(1e-3, 1e-1));
  const node_index c =
      tree.add_dynamic_event("c", make_repairable(2e-3, 1e-1));
  const node_index d = tree.add_static_event("d", 0.02);
  const node_index g1 = tree.add_gate("G1", gate_type::or_gate, {a, b});
  const node_index g2 = tree.add_gate("G2", gate_type::or_gate, {c, d});
  const node_index g = tree.add_gate("G", gate_type::and_gate, {g1, g2});
  const node_index e =
      tree.add_dynamic_event("e", testing::example2_pump2());
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {a, c, e}));
  tree.set_trigger(g, e);
  tree.validate();
  return tree;
}

TEST(Classify, StaticBranching) {
  const sd_fault_tree tree = branching_model();
  const node_index g = tree.structure().find("G");
  EXPECT_TRUE(has_static_branching(tree, g));
  EXPECT_TRUE(has_static_joins(tree, g));  // no ANDs in the subtree at all
  EXPECT_EQ(classify_trigger_gate(tree, g),
            trigger_class::static_branching);
}

TEST(Classify, StaticJoins) {
  const sd_fault_tree tree = joins_model();
  const node_index g = tree.structure().find("G");
  EXPECT_FALSE(has_static_branching(tree, g));  // OR with two dynamic kids
  EXPECT_TRUE(has_static_joins(tree, g));
  EXPECT_EQ(classify_trigger_gate(tree, g), trigger_class::static_joins);
}

TEST(Classify, GeneralCase) {
  const sd_fault_tree tree = general_model();
  const node_index g = tree.structure().find("G");
  EXPECT_FALSE(has_static_branching(tree, g));  // G1 has two dynamic kids
  EXPECT_FALSE(has_static_joins(tree, g));      // G has dynamic children
  EXPECT_EQ(classify_trigger_gate(tree, g), trigger_class::general);
}

TEST(Classify, UniformTriggering) {
  const sd_fault_tree tree = branching_model();
  // Subtree of "top" holds x (untriggered) and y: not uniform.
  EXPECT_FALSE(has_uniform_triggering(tree, tree.structure().find("top")));
  // Subtree of G holds only x, untriggered: not uniform either.
  EXPECT_FALSE(has_uniform_triggering(tree, tree.structure().find("G")));
}

TEST(Classify, UniformTriggeringHolds) {
  // G = OR(y1, y2), both triggered by the same gate H.
  sd_fault_tree tree;
  const node_index s = tree.add_static_event("s", 0.01);
  const node_index h = tree.add_gate("H", gate_type::or_gate, {s});
  const node_index y1 =
      tree.add_dynamic_event("y1", testing::example2_pump2());
  const node_index y2 =
      tree.add_dynamic_event("y2", testing::example2_pump2());
  const node_index g = tree.add_gate("G", gate_type::or_gate, {y1, y2});
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {g, h}));
  tree.set_trigger(h, y1);
  tree.set_trigger(h, y2);
  tree.validate();
  EXPECT_TRUE(has_uniform_triggering(tree, g));
  const trigger_report report = analyze_triggers(tree);
  ASSERT_EQ(report.gates.size(), 1u);
  EXPECT_EQ(report.gates[0].gate, h);
}

TEST(Classify, ReportFlagsInefficientTriggers) {
  EXPECT_FALSE(analyze_triggers(general_model()).efficient);
  // Static branching triggers are always efficient.
  EXPECT_TRUE(analyze_triggers(branching_model()).efficient);
}

// --- Translation to FT-bar (paper §V-B) --------------------------------

TEST(Translate, RunningExampleStructure) {
  const sd_fault_tree tree = testing::example3_sd();
  const static_translation tr = translate_to_static(tree, 24.0);
  // One wrapper AND gate is added for the triggered event d.
  EXPECT_EQ(tr.ft_bar.num_gates(), tree.structure().num_gates() + 1);
  EXPECT_EQ(tr.ft_bar.num_basic_events(), 5u);
  const node_index wrap = tr.ft_bar.find("d::trig");
  ASSERT_NE(wrap, fault_tree::npos);
  EXPECT_EQ(tr.ft_bar.node(wrap).type, gate_type::and_gate);
  EXPECT_EQ(tr.ft_bar.node(wrap).inputs.size(), 2u);
}

TEST(Translate, PreservesMinimalCutsets) {
  const sd_fault_tree tree = testing::example3_sd();
  const static_translation tr = translate_to_static(tree, 24.0);
  auto cutsets = mocus(tr.ft_bar).cutsets;
  // Map back to SD indices and compare against the static tree's MCSs
  // (paper §V-B1: FT and FT-bar have the same minimal cutsets).
  std::vector<cutset> mapped;
  for (auto& c : cutsets) {
    cutset m;
    for (node_index b : c) m.push_back(tr.to_sd.at(b));
    std::sort(m.begin(), m.end());
    mapped.push_back(std::move(m));
  }
  const auto expected = mocus(testing::example1_static()).cutsets;
  // example1_static shares the node layout of example3_sd's structure.
  EXPECT_EQ(minimize_cutsets(std::move(mapped)), expected);
}

TEST(Translate, WorstCaseProbabilities) {
  const sd_fault_tree tree = testing::example3_sd();
  const double t = 24.0;
  const static_translation tr = translate_to_static(tree, t);
  const node_index b = tree.structure().find("b");
  const node_index d = tree.structure().find("d");
  // b: untriggered repairable chain, P[visit failed by t] = 1 - e^{-lt}.
  EXPECT_NEAR(tr.worst_case.at(b), 1.0 - std::exp(-1e-3 * t), 1e-9);
  // d: worst case is "triggered at 0", identical failure law to b.
  EXPECT_NEAR(tr.worst_case.at(d), tr.worst_case.at(b), 1e-9);
  // FT-bar carries these as static probabilities.
  EXPECT_NEAR(tr.ft_bar.node(tr.to_bar.at(b)).probability,
              tr.worst_case.at(b), 0.0);
}

TEST(Translate, StaticEventsKeepProbability) {
  const sd_fault_tree tree = testing::example3_sd();
  const static_translation tr = translate_to_static(tree, 24.0);
  const node_index a = tree.structure().find("a");
  EXPECT_DOUBLE_EQ(tr.ft_bar.node(tr.to_bar.at(a)).probability,
                   testing::p_fts);
}

TEST(Translate, ReferenceCutoffUsesStaticProbabilities) {
  // An Erlang-3 dynamic event with a retained reference probability: the
  // worst case differs from the reference, and the reference_cutoff flag
  // selects which one FT-bar carries (the paper's static cutoff, §VI).
  sd_fault_tree tree;
  const double ref = 0.05;
  const node_index x = tree.add_dynamic_event(
      "x", make_erlang_active(3, 2e-3, 0.0), ref);
  tree.set_top(tree.add_gate("top", gate_type::or_gate, {x}));
  tree.validate();

  const double t = 24.0;
  const static_translation worst = translate_to_static(tree, t);
  const static_translation reference =
      translate_to_static(tree, t, 1e-10, /*reference_cutoff=*/true);
  EXPECT_NE(worst.ft_bar.node(worst.to_bar.at(x)).probability, ref);
  EXPECT_DOUBLE_EQ(reference.ft_bar.node(reference.to_bar.at(x)).probability,
                   ref);
  // The worst-case map itself is unaffected by the flag.
  EXPECT_NEAR(worst.worst_case.at(x), reference.worst_case.at(x), 0.0);
}

TEST(Translate, ReferenceCutoffFallsBackToWorstCase) {
  // Dynamic events without a reference probability keep the worst case
  // even under reference_cutoff.
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_erlang_active(1, 2e-3, 0.0));
  tree.set_top(tree.add_gate("top", gate_type::or_gate, {x}));
  tree.validate();
  const static_translation tr =
      translate_to_static(tree, 24.0, 1e-10, /*reference_cutoff=*/true);
  EXPECT_NEAR(tr.ft_bar.node(tr.to_bar.at(x)).probability,
              tr.worst_case.at(x), 0.0);
}

TEST(Translate, CutoffConservativity) {
  // Paper eq. (1): for any cutset, the FT-bar probability product bounds
  // the dynamic quantification from above. Spot-check on {a, d}.
  const sd_fault_tree tree = testing::example3_sd();
  const double t = 24.0;
  const static_translation tr = translate_to_static(tree, t);
  const node_index d = tree.structure().find("d");
  // p(a) * worst_case(d) >= p(a) * P[d fails by t | triggered at 0] and the
  // worst case is exactly that triggering pattern here.
  EXPECT_GE(testing::p_fts * tr.worst_case.at(d), 0.0);
  const double direct = worst_case_failure_probability(
      std::get<triggered_ctmc>(tree.model_of(d)), t);
  EXPECT_NEAR(tr.worst_case.at(d), direct, 1e-12);
}

}  // namespace
}  // namespace sdft
