#include <gtest/gtest.h>

#include <algorithm>

#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

class ImportanceExample1 : public ::testing::Test {
 protected:
  ImportanceExample1()
      : ft_(testing::example1_static()), cutsets_(mocus(ft_).cutsets),
        measures_(importance_analysis(ft_, cutsets_)) {}

  fault_tree ft_;
  std::vector<cutset> cutsets_;
  std::unordered_map<node_index, importance_measures> measures_;
};

TEST_F(ImportanceExample1, FussellVeselyValues) {
  const double total = rare_event_probability(ft_, cutsets_);
  // a appears in {a,c} and {a,d}.
  const double with_a = testing::p_fts * testing::p_fts +
                        testing::p_fts * testing::p_fio;
  EXPECT_NEAR(measures_[ft_.find("a")].fussell_vesely, with_a / total, 1e-12);
  // e appears only in {e}.
  EXPECT_NEAR(measures_[ft_.find("e")].fussell_vesely,
              testing::p_tank / total, 1e-12);
}

TEST_F(ImportanceExample1, BirnbaumIsPartialDerivative) {
  // d p_rea / d p(a) = p(c) + p(d).
  EXPECT_NEAR(measures_[ft_.find("a")].birnbaum,
              testing::p_fts + testing::p_fio, 1e-12);
  // For e the derivative is 1 (singleton cutset).
  EXPECT_NEAR(measures_[ft_.find("e")].birnbaum, 1.0, 1e-12);
}

TEST_F(ImportanceExample1, RawAndRrwAreConsistent) {
  const double total = rare_event_probability(ft_, cutsets_);
  for (node_index b : ft_.basic_events()) {
    const auto& m = measures_[b];
    EXPECT_GE(m.raw, 1.0);
    EXPECT_GE(m.rrw, 1.0);
    // raw = p_rea[p(b)=1] / p_rea: check against a direct recomputation.
    fault_tree modified = ft_;
    modified.set_probability(b, 1.0);
    const double achieved = rare_event_probability(modified, cutsets_);
    EXPECT_NEAR(m.raw, achieved / total, 1e-9);
  }
}

TEST_F(ImportanceExample1, RankingPutsSymmetricEventsTogether) {
  const auto ranked = rank_by_fussell_vesely(ft_, cutsets_);
  ASSERT_EQ(ranked.size(), 5u);
  // a and c are symmetric (both 3e-3 FTS events), as are b and d; the
  // FTS events dominate the FIO events; the tank is least important.
  auto pos = [&](const char* name) {
    const node_index n = ft_.find(name);
    return std::find(ranked.begin(), ranked.end(), n) - ranked.begin();
  };
  EXPECT_LT(pos("a"), 2);
  EXPECT_LT(pos("c"), 2);
  EXPECT_GE(pos("b"), 2);
  EXPECT_GE(pos("d"), 2);
  EXPECT_EQ(pos("e"), 4);
}

TEST(Importance, EventAbsentFromCutsetsHasZeroImportance) {
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.5);
  const node_index y = ft.add_basic_event("y", 0.5);
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {x}));
  const auto cuts = mocus(ft).cutsets;
  const auto measures = importance_analysis(ft, cuts);
  EXPECT_DOUBLE_EQ(measures.at(y).fussell_vesely, 0.0);
  EXPECT_DOUBLE_EQ(measures.at(y).raw, 1.0);
  EXPECT_DOUBLE_EQ(measures.at(y).rrw, 1.0);
}

TEST(Importance, ZeroProbabilityEventsDefineDegenerateMeasures) {
  // Every cutset has probability 0, so the top probability is 0: the
  // measures are defined explicitly as FV = 0, RAW = 1, RRW = 1.
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.0);
  const node_index y = ft.add_basic_event("y", 0.0);
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {x, y}));
  const auto cuts = mocus(ft).cutsets;
  ASSERT_FALSE(cuts.empty());
  const auto measures = importance_analysis(ft, cuts);
  for (node_index b : {x, y}) {
    EXPECT_DOUBLE_EQ(measures.at(b).fussell_vesely, 0.0);
    EXPECT_DOUBLE_EQ(measures.at(b).raw, 1.0);
    EXPECT_DOUBLE_EQ(measures.at(b).rrw, 1.0);
  }
}

TEST(Importance, EmptyCutsetListDefinesDegenerateMeasures) {
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.3);
  const node_index y = ft.add_basic_event("y", 0.3);
  ft.set_top(ft.add_gate("top", gate_type::and_gate, {x, y}));
  const auto measures = importance_analysis(ft, {});
  for (node_index b : {x, y}) {
    EXPECT_DOUBLE_EQ(measures.at(b).fussell_vesely, 0.0);
    EXPECT_DOUBLE_EQ(measures.at(b).birnbaum, 0.0);
    EXPECT_DOUBLE_EQ(measures.at(b).raw, 1.0);
    EXPECT_DOUBLE_EQ(measures.at(b).rrw, 1.0);
  }
}

TEST(Importance, FussellVeselyTiesBreakByEventIndex) {
  // Four equally probable singleton cutsets: all FV values tie, so the
  // ranking must fall back to the event index, ascending.
  fault_tree ft;
  std::vector<node_index> events;
  for (const char* name : {"e0", "e1", "e2", "e3"}) {
    events.push_back(ft.add_basic_event(name, 0.1));
  }
  ft.set_top(ft.add_gate("top", gate_type::or_gate, events));
  const auto ranked = rank_by_fussell_vesely(ft, mocus(ft).cutsets);
  EXPECT_EQ(ranked, events);
}

}  // namespace
}  // namespace sdft
