// Property tests of the BDD variable-ordering heuristics: every ordering
// (natural / dfs / weight / sift) must produce the identical canonical
// minimal-cutset list (ordering changes BDD shape, never the encoded
// function), the same exact probability up to floating-point association,
// and the engine's --exact-static probability must sit inside its analytic
// bracket (above every single cutset and the Bonferroni lower bound, below
// the rare-event sum and the min-cut upper bound).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bdd/ft_bdd.hpp"
#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

const bdd_ordering kAllOrderings[] = {bdd_ordering::dfs, bdd_ordering::natural,
                                      bdd_ordering::weight,
                                      bdd_ordering::sift};

/// Compiles `ft` under every ordering and asserts: bit-identical canonical
/// cutset lists (also equal to MOCUS's), near-equal exact probabilities.
void expect_ordering_invariant(const fault_tree& ft, const std::string& model) {
  const ft_bdd reference(ft);
  const std::vector<cutset> reference_mcs = reference.minimal_cutsets();
  const double reference_p = reference.probability();
  ASSERT_FALSE(reference_mcs.empty()) << model;
  EXPECT_EQ(reference.ordering(), bdd_ordering::dfs) << model;
  EXPECT_EQ(reference.sift_swaps(), 0u) << model;

  for (const bdd_ordering ordering : kAllOrderings) {
    const ft_bdd compiled(ft, fault_tree::npos, ordering);
    EXPECT_EQ(compiled.ordering(), ordering) << model;
    EXPECT_EQ(compiled.minimal_cutsets(), reference_mcs)
        << model << " ordering " << to_string(ordering);
    // Shannon sums associate differently per ordering: near-equality, not
    // bit-equality, is the contract for the probability.
    EXPECT_NEAR(compiled.probability(), reference_p,
                1e-12 * std::max(reference_p, 1e-300))
        << model << " ordering " << to_string(ordering);
  }

  // MOCUS agrees on the same canonical list (AND/OR trees only).
  const mocus_result mcs = mocus(ft);
  EXPECT_EQ(mcs.cutsets, reference_mcs) << model;
}

TEST(BddOrdering, RunningExampleInvariantAcrossOrderings) {
  expect_ordering_invariant(testing::example1_static(), "example1");
}

TEST(BddOrdering, RandomStaticTreesInvariantAcrossOrderings) {
  for (const std::uint64_t seed : {11u, 21u, 31u, 41u, 51u}) {
    const sd_fault_tree tree = testing::make_random_static_tree(seed, 10, 6);
    expect_ordering_invariant(tree.structure(),
                              "random seed " + std::to_string(seed));
  }
}

TEST(BddOrdering, IndustrialModelInvariantAcrossOrderings) {
  industrial_options gopt;
  gopt.seed = 9;
  gopt.num_frontline_systems = 4;
  gopt.num_support_systems = 1;
  gopt.num_initiating_events = 2;
  gopt.sequences_per_ie = 2;
  gopt.components_per_train = 2;
  const industrial_model model = generate_industrial(gopt);
  const ft_bdd reference(model.ft);
  const std::vector<cutset> reference_mcs = reference.minimal_cutsets();
  ASSERT_FALSE(reference_mcs.empty());
  for (const bdd_ordering ordering : kAllOrderings) {
    const ft_bdd compiled(model.ft, fault_tree::npos, ordering);
    EXPECT_EQ(compiled.minimal_cutsets(), reference_mcs)
        << "ordering " << to_string(ordering);
    EXPECT_NEAR(compiled.probability(), reference.probability(),
                1e-12 * std::max(reference.probability(), 1e-300))
        << "ordering " << to_string(ordering);
  }
}

TEST(BddOrdering, SiftingActuallySwapsAndNeverGrowsTheCompactedBdd) {
  const fault_tree ft = testing::example1_static();
  const ft_bdd sifted(ft, fault_tree::npos, bdd_ordering::sift);
  EXPECT_GT(sifted.sift_swaps(), 0u);
  // After sifting the manager is compacted to live nodes; the DFS build
  // also holds its construction garbage, so sift can only be smaller.
  const ft_bdd dfs(ft);
  EXPECT_LE(sifted.node_count(), dfs.node_count());
}

TEST(BddOrdering, ExactProbabilityMatchesBruteForce) {
  // The strongest oracle available: exhaustive scenario enumeration, for
  // every ordering (trees are small enough for 2^n sweeps).
  const fault_tree ft = testing::example1_static();
  const double brute = ft.probability_brute_force();
  for (const bdd_ordering ordering : kAllOrderings) {
    const ft_bdd compiled(ft, fault_tree::npos, ordering);
    EXPECT_NEAR(compiled.probability(), brute, 1e-14)
        << "ordering " << to_string(ordering);
  }
}

/// Analytic bracket for the exact static probability of a coherent tree
/// with minimal cutsets `mcs`:
///   max_C p(C)  and  S1 - S2 (Bonferroni)  <=  exact  <=
///   min(rare-event sum S1, min-cut upper bound).
void expect_exact_within_bounds(const fault_tree& ft,
                                const std::vector<cutset>& mcs, double exact,
                                const std::string& model) {
  ASSERT_FALSE(mcs.empty()) << model;
  double max_single = 0.0;
  for (const cutset& c : mcs) {
    max_single = std::max(max_single, cutset_probability(ft, c));
  }
  const double s1 = rare_event_probability(ft, mcs);
  double s2 = 0.0;
  for (std::size_t i = 0; i < mcs.size(); ++i) {
    for (std::size_t j = i + 1; j < mcs.size(); ++j) {
      cutset joint = mcs[i];
      joint.insert(joint.end(), mcs[j].begin(), mcs[j].end());
      std::sort(joint.begin(), joint.end());
      joint.erase(std::unique(joint.begin(), joint.end()), joint.end());
      s2 += cutset_probability(ft, joint);
    }
  }
  const double mcub = min_cut_upper_bound(ft, mcs);
  const double slack = 1e-12 * std::max(s1, 1e-300);
  EXPECT_GE(exact, max_single - slack) << model;
  EXPECT_GE(exact, s1 - s2 - slack) << model;
  EXPECT_LE(exact, s1 + slack) << model;
  EXPECT_LE(exact, mcub + slack) << model;
}

TEST(BddOrdering, ExactStaticSitsInsideItsAnalyticBracket) {
  for (const std::uint64_t seed : {5u, 15u, 25u}) {
    const sd_fault_tree tree = testing::make_random_static_tree(seed, 10, 6);
    const fault_tree& ft = tree.structure();
    const ft_bdd compiled(ft);
    expect_exact_within_bounds(ft, compiled.minimal_cutsets(),
                               compiled.probability(),
                               "seed " + std::to_string(seed));
  }
}

TEST(BddOrdering, EngineExactStaticOnStaticModel) {
  // On a purely static model FT-bar is the structure itself, so the
  // engine's --exact-static probability must equal brute force and bound
  // the truncated rare-event pipeline result from below.
  const sd_fault_tree tree(testing::example1_static());
  for (const bdd_ordering ordering : kAllOrderings) {
    analysis_options opts;
    opts.exact_static = true;
    opts.bdd_ordering = ordering;
    const analysis_result result = analyze(tree, opts);
    EXPECT_NEAR(result.exact_static_probability,
                tree.structure().probability_brute_force(), 1e-14)
        << "ordering " << to_string(ordering);
    // Without truncation the pipeline sum is the full rare-event sum S1,
    // an upper bound on the exact probability; the gap is at most the
    // second Bonferroni term S2.
    EXPECT_GE(result.failure_probability,
              result.exact_static_probability - 1e-15)
        << "ordering " << to_string(ordering);
    EXPECT_LE(result.failure_probability - result.exact_static_probability,
              1e-7)
        << "ordering " << to_string(ordering);
    EXPECT_GT(result.exact_static_probability, 0.0);
  }
}

TEST(BddOrdering, EngineExactStaticOnBwrStudy) {
  // SD model: exact static probability of FT-bar (worst-case dynamic
  // probabilities) certifies the static cutset sum from above.
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  const sd_fault_tree tree = make_bwr_model(with_bwr_triggers(opt, 2));
  analysis_options opts;
  opts.exact_static = true;
  opts.cutoff = 1e-12;
  double reference = -1.0;
  for (const bdd_ordering ordering : kAllOrderings) {
    opts.bdd_ordering = ordering;
    const analysis_result result = analyze(tree, opts);
    ASSERT_GT(result.exact_static_probability, 0.0)
        << "ordering " << to_string(ordering);
    EXPECT_GT(result.stats.exact_static_seconds, 0.0);
    if (reference < 0.0) {
      reference = result.exact_static_probability;
    } else {
      EXPECT_NEAR(result.exact_static_probability, reference,
                  1e-12 * reference)
          << "ordering " << to_string(ordering);
    }
  }
}

TEST(BddOrdering, ParseRoundTrips) {
  for (const bdd_ordering ordering : kAllOrderings) {
    const auto parsed = parse_bdd_ordering(to_string(ordering));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ordering);
  }
  EXPECT_FALSE(parse_bdd_ordering("bogus").has_value());
  EXPECT_FALSE(parse_bdd_ordering("").has_value());
}

}  // namespace
}  // namespace sdft
