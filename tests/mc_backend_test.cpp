// Monte-Carlo backend tests: statistical validation at fixed seeds (CIs
// bracket analytic answers on the BWR and industrial studies), exact
// degeneration of forcing to crude on non-rare models, unbiasedness of
// forcing and splitting on closed-form micro-models, rare-event behaviour
// (crude empty where forcing stays tight), and the engine integration
// surface (analysis_result.mc, engine_stats mc.*, derived splitting
// levels).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "sim/mc.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

using sim::mc_method;
using sim::mc_options;
using sim::mc_result;

mc_result run_mc(const sd_fault_tree& tree, double horizon, mc_method method,
                 std::size_t trajectories, std::uint64_t seed) {
  mc_options opts;
  opts.method = method;
  opts.trajectories = trajectories;
  opts.seed = seed;
  return sim::estimate_failure_probability_mc(tree, horizon, opts);
}

/// A closed-form micro-model: a static structure whose top probability is
/// known exactly. Horizon is irrelevant for pure static trees.
struct micro_model {
  std::string name;
  sd_fault_tree tree;
  double exact;
};

std::vector<micro_model> closed_form_micro_models() {
  std::vector<micro_model> out;
  {
    sd_fault_tree t;
    t.set_top(t.add_gate("top", gate_type::or_gate,
                         {t.add_static_event("x", 0.3)}));
    out.push_back({"single event", std::move(t), 0.3});
  }
  {
    sd_fault_tree t;
    t.set_top(t.add_gate("top", gate_type::and_gate,
                         {t.add_static_event("x", 0.2),
                          t.add_static_event("y", 0.4)}));
    out.push_back({"AND pair", std::move(t), 0.2 * 0.4});
  }
  {
    sd_fault_tree t;
    t.set_top(t.add_gate("top", gate_type::or_gate,
                         {t.add_static_event("x", 0.2),
                          t.add_static_event("y", 0.4)}));
    out.push_back({"OR pair", std::move(t), 1.0 - 0.8 * 0.6});
  }
  {
    fault_tree ft;
    ft.set_top(ft.add_atleast_gate("top", 2,
                                   {ft.add_basic_event("x", 0.3),
                                    ft.add_basic_event("y", 0.3),
                                    ft.add_basic_event("z", 0.3)}));
    // 2-of-3: 3 p^2 (1-p) + p^3.
    out.push_back(
        {"2-of-3", sd_fault_tree(std::move(ft)), 3 * 0.09 * 0.7 + 0.027});
  }
  {
    // One dynamic exponential event: P = 1 - e^{-lambda t} at t = 10.
    sd_fault_tree t;
    t.set_top(t.add_gate(
        "top", gate_type::or_gate,
        {t.add_dynamic_event("x", make_repairable(0.05, 0.0))}));
    out.push_back({"exponential", std::move(t), 1.0 - std::exp(-0.05 * 10.0)});
  }
  return out;
}

TEST(McBackend, UnbiasedOnClosedFormMicroModels) {
  // Every estimator family must reproduce the closed-form answer of each
  // micro-model (the unbiasedness property: forced trajectories are
  // reweighted by the likelihood ratio; splitting telescopes conditional
  // level-crossing probabilities). The matrix makes 15 checks whose
  // streams share one seed, so assert a 4-sigma band rather than the
  // strict 95% interval — wide enough that a correlated seed excursion
  // cannot flake it, narrow enough that any real estimator bias at this
  // budget blows through it.
  for (const micro_model& m : closed_form_micro_models()) {
    for (mc_method method :
         {mc_method::crude, mc_method::forcing, mc_method::splitting}) {
      const mc_result r = run_mc(m.tree, 10.0, method, 60'000, 19);
      ASSERT_GT(r.std_error, 0.0) << m.name << " via " << to_string(method);
      EXPECT_NEAR(r.estimate, m.exact, 4 * r.std_error)
          << m.name << " via " << to_string(method) << ": " << r.estimate
          << " vs " << m.exact << " [" << r.ci_low << ", " << r.ci_high
          << "]";
    }
  }
}

TEST(McBackend, ForcingDegradesToCrudeExactlyWhenNothingIsRare) {
  // When the static probability mass already exceeds the forcing target,
  // the clamp q_e = max(p_e * boost, p_e) leaves every probability at its
  // nominal value: forcing must then be bit-identical to crude (same
  // streams, all weights one).
  sd_fault_tree tree;
  std::vector<node_index> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(
        tree.add_static_event("e" + std::to_string(i), 0.45));
  }
  tree.set_top(tree.add_gate("top", gate_type::and_gate, events));
  const mc_result crude = run_mc(tree, 1.0, mc_method::crude, 20'000, 5);
  const mc_result forcing = run_mc(tree, 1.0, mc_method::forcing, 20'000, 5);
  EXPECT_EQ(forcing.estimate, crude.estimate);
  EXPECT_EQ(forcing.std_error, crude.std_error);
  EXPECT_EQ(forcing.failures, crude.failures);
}

TEST(McBackend, MethodsAgreeOnNonRareRunningExample) {
  // All three estimators against the exact product-CTMC answer of the
  // (sped-up) running example — and hence against each other.
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  const double t = 24.0;
  const double exact = exact_failure_probability(tree, t);
  ASSERT_GT(exact, 0.05);
  for (mc_method method :
       {mc_method::crude, mc_method::forcing, mc_method::splitting}) {
    const mc_result r = run_mc(tree, t, method, 40'000, 11);
    EXPECT_TRUE(r.consistent_with(exact))
        << to_string(method) << ": " << r.estimate << " vs " << exact
        << " [" << r.ci_low << ", " << r.ci_high << "]";
  }
}

TEST(McBackend, ForcingTightWhereCrudeIsEmpty) {
  // AND of two 1e-5 events: exact 1e-10. At a 50k budget crude MC cannot
  // see a single failure (expected hits 5e-6) while forcing still returns
  // a bracketing interval with small relative error.
  sd_fault_tree tree;
  tree.set_top(tree.add_gate("top", gate_type::and_gate,
                             {tree.add_static_event("x", 1e-5),
                              tree.add_static_event("y", 1e-5)}));
  const double exact = 1e-10;
  const mc_result crude = run_mc(tree, 1.0, mc_method::crude, 50'000, 1);
  EXPECT_TRUE(crude.empty());
  EXPECT_EQ(crude.estimate, 0.0);

  const mc_result forcing = run_mc(tree, 1.0, mc_method::forcing, 50'000, 1);
  EXPECT_FALSE(forcing.empty());
  EXPECT_TRUE(forcing.consistent_with(exact))
      << forcing.estimate << " [" << forcing.ci_low << ", "
      << forcing.ci_high << "]";
  // Rule-of-three bound on what crude could resolve at this budget:
  // rel err >= (3/N)/p. Forcing must beat it by far more than 10x.
  const double crude_bound = (3.0 / 50'000) / exact;
  EXPECT_LT(forcing.relative_error, crude_bound / 10.0);
}

TEST(McBackend, StreamAdditivityAcrossCampaigns) {
  // The per-trajectory stream contract: campaigns [0, n) and [n, n + m)
  // concatenate to exactly the campaign [0, n + m).
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  mc_options opts;
  opts.method = mc_method::crude;
  opts.seed = 77;
  opts.trajectories = 2'000;
  const mc_result whole =
      sim::estimate_failure_probability_mc(tree, 12.0, opts);
  opts.trajectories = 1'000;
  const mc_result first =
      sim::estimate_failure_probability_mc(tree, 12.0, opts);
  opts.first_trajectory = 1'000;
  const mc_result second =
      sim::estimate_failure_probability_mc(tree, 12.0, opts);
  EXPECT_EQ(first.failures + second.failures, whole.failures);
  EXPECT_NE(first.failures, second.failures);  // streams actually differ
}

TEST(McBackend, CIsBracketAnalyticOnStaticBwrStudy) {
  // Forcing MC against the engine's rare-event sum on the static BWR
  // study, at the horizon where the approximation is validated (see
  // sim_test.cpp). Forcing needs 40x fewer trajectories than the crude
  // cross-validation to reach a comparable interval.
  const sd_fault_tree tree = make_bwr_model({});
  const double t = 200.0;
  analysis_options aopts;
  aopts.horizon = t;
  const double analytic = analyze(tree, aopts).failure_probability;
  ASSERT_GT(analytic, 0.0);
  const mc_result r = run_mc(tree, t, mc_method::forcing, 100'000, 1);
  EXPECT_TRUE(r.consistent_with(analytic))
      << r.estimate << " vs " << analytic << " [" << r.ci_low << ", "
      << r.ci_high << "]";
}

TEST(McBackend, CIsBracketExactOnStaticIndustrialStudy) {
  // Forcing MC against the exact-static BDD answer of a downsized
  // industrial study with raised probabilities (so the 95% interval is
  // reachable at a test-sized budget).
  industrial_options gopt;
  gopt.seed = 9;
  gopt.num_frontline_systems = 4;
  gopt.num_support_systems = 1;
  gopt.num_initiating_events = 3;
  gopt.sequences_per_ie = 2;
  gopt.components_per_train = 2;
  gopt.fts_min = 3e-3;
  gopt.fts_max = 3e-2;
  gopt.fio_rate_min = 1e-4;
  gopt.fio_rate_max = 1e-3;
  const sd_fault_tree tree(generate_industrial(gopt).ft);

  analysis_options aopts;
  aopts.horizon = 24.0;
  aopts.exact_static = true;
  const double exact = analyze(tree, aopts).exact_static_probability;
  ASSERT_GT(exact, 0.0);

  const mc_result r = run_mc(tree, 24.0, mc_method::forcing, 100'000, 4);
  EXPECT_TRUE(r.consistent_with(exact))
      << r.estimate << " vs " << exact << " [" << r.ci_low << ", "
      << r.ci_high << "]";
}

TEST(McBackend, EngineRunMatchesDirectEstimator) {
  // `--backend mc` through the engine must reproduce the direct estimator
  // call bit for bit and surface the campaign in analysis_result.mc and
  // the mc.* stats vocabulary.
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  analysis_options opts;
  opts.horizon = 24.0;
  opts.backend = cutset_backend::mc;
  opts.mc.method = mc_method::forcing;
  opts.mc.trajectories = 20'000;
  opts.mc.seed = 3;
  const analysis_result r = analyze(tree, opts);

  mc_options direct = opts.mc;
  const mc_result reference =
      sim::estimate_failure_probability_mc(tree, 24.0, direct);
  EXPECT_EQ(r.failure_probability, reference.estimate);
  EXPECT_EQ(r.mc.estimate, reference.estimate);
  EXPECT_EQ(r.mc.ci_low, reference.ci_low);
  EXPECT_EQ(r.mc.ci_high, reference.ci_high);
  EXPECT_EQ(r.mc.failures, reference.failures);
  EXPECT_EQ(r.num_cutsets, 0u);

  EXPECT_EQ(r.stats.backend, "mc");
  EXPECT_EQ(r.stats.mc_method, "forcing");
  EXPECT_EQ(r.stats.mc_trajectories, reference.trajectories);
  EXPECT_EQ(r.stats.mc_failures, reference.failures);
  EXPECT_GT(r.stats.mc_seconds, 0.0);
  EXPECT_EQ(r.stats.mc_estimate, reference.estimate);
}

TEST(McBackend, EngineDerivesSplittingLevelsFromPrepDepth) {
  // With levels = 0 the engine derives the splitting levels from the
  // preprocessed FT-bar's depth-to-top, clamped to [2, 8].
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  analysis_options opts;
  opts.horizon = 24.0;
  opts.backend = cutset_backend::mc;
  opts.mc.method = mc_method::splitting;
  opts.mc.trajectories = 10'000;
  opts.mc.seed = 6;
  const analysis_result r = analyze(tree, opts);
  EXPECT_GE(r.mc.levels_used, 2u);
  EXPECT_LE(r.mc.levels_used, 8u);
  EXPECT_EQ(r.stats.mc_levels, r.mc.levels_used);
  EXPECT_GT(r.mc.replications, 0u);
}

TEST(McBackend, EngineCombinesMcWithExactStatic) {
  const sd_fault_tree tree(testing::example1_static());
  analysis_options opts;
  opts.horizon = 5.0;
  opts.backend = cutset_backend::mc;
  opts.exact_static = true;
  opts.mc.method = mc_method::forcing;
  opts.mc.trajectories = 400'000;
  opts.mc.seed = 8;
  const analysis_result r = analyze(tree, opts);
  const double exact = testing::example1_static().probability_brute_force();
  EXPECT_NEAR(r.exact_static_probability, exact, 1e-12);
  EXPECT_TRUE(r.mc.consistent_with(exact))
      << r.mc.estimate << " vs " << exact << " [" << r.mc.ci_low << ", "
      << r.mc.ci_high << "]";
}

TEST(McBackend, RejectsZeroTrajectories) {
  const sd_fault_tree tree = testing::example3_sd();
  mc_options opts;
  opts.trajectories = 0;
  EXPECT_THROW(sim::estimate_failure_probability_mc(tree, 1.0, opts),
               model_error);
}

TEST(McBackend, ParsesMethodNames) {
  mc_method m = mc_method::crude;
  EXPECT_TRUE(sim::parse_mc_method("forcing", m));
  EXPECT_EQ(m, mc_method::forcing);
  EXPECT_TRUE(sim::parse_mc_method("splitting", m));
  EXPECT_EQ(m, mc_method::splitting);
  EXPECT_TRUE(sim::parse_mc_method("crude", m));
  EXPECT_EQ(m, mc_method::crude);
  EXPECT_FALSE(sim::parse_mc_method("metropolis", m));
}

}  // namespace
}  // namespace sdft
