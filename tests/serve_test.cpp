// Serve-layer tests: the NDJSON protocol (every op, id echo, error
// responses), bit-exactness of served probabilities against direct engine
// runs (%.17g round-trips doubles exactly), the stdio and TCP transports,
// and a concurrent request hammer (a TSan target) over the shared caches.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/scenario.hpp"
#include "etree/scenario.hpp"
#include "sdft/parser.hpp"
#include "serve/service.hpp"
#include "serve/transport.hpp"
#include "test_models.hpp"
#include "util/json.hpp"

namespace sdft {
namespace {

using namespace sdft::testing;

std::string example_text() { return write_sd_fault_tree(example3_sd()); }

serve::analysis_service make_service() {
  analysis_options opts;
  opts.horizon = 24.0;
  return serve::analysis_service(opts);
}

json::value handle(serve::analysis_service& service, const std::string& req) {
  return json::parse(service.handle(req));
}

TEST(Serve, LoadListAnalyzeUnload) {
  serve::analysis_service service = make_service();
  service.load_text("cooling", example_text());
  EXPECT_EQ(service.num_models(), 1u);

  const json::value list = handle(service, R"({"op":"list"})");
  EXPECT_TRUE(list.at("ok").as_bool());
  ASSERT_EQ(list.at("models").as_array().size(), 1u);
  EXPECT_EQ(list.at("models").as_array()[0].at("name").as_string(),
            "cooling");

  const json::value r =
      handle(service, R"({"op":"analyze","model":"cooling"})");
  ASSERT_TRUE(r.at("ok").as_bool());
  analysis_options opts;
  opts.horizon = 24.0;
  const analysis_result direct = analyze(example3_sd(), opts);
  // %.17g round-trips doubles exactly, so JSON equality is bit equality.
  EXPECT_EQ(r.at("probability").as_number(), direct.failure_probability);
  EXPECT_EQ(static_cast<std::size_t>(r.at("cutsets").as_number()),
            direct.num_cutsets);

  const json::value gone =
      handle(service, R"({"op":"unload","name":"cooling"})");
  EXPECT_TRUE(gone.at("ok").as_bool());
  EXPECT_EQ(service.num_models(), 0u);
  EXPECT_FALSE(handle(service, R"({"op":"analyze","model":"cooling"})")
                   .at("ok")
                   .as_bool());
}

TEST(Serve, AnalyzeOverridesAndWarmCache) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());

  const json::value cold = handle(
      service, R"({"op":"analyze","model":"m","overrides":{"a":0.01}})");
  ASSERT_TRUE(cold.at("ok").as_bool());
  EXPECT_FALSE(cold.at("struct_cache_hit").as_bool());

  const json::value warm = handle(
      service, R"({"op":"analyze","model":"m","overrides":{"a":0.005}})");
  ASSERT_TRUE(warm.at("ok").as_bool());
  EXPECT_TRUE(warm.at("struct_cache_hit").as_bool());

  sd_fault_tree perturbed = example3_sd();
  perturbed.structure().set_probability(perturbed.structure().find("a"),
                                        0.005);
  analysis_options opts;
  opts.horizon = 24.0;
  EXPECT_EQ(warm.at("probability").as_number(),
            analyze(perturbed, opts).failure_probability);
}

TEST(Serve, AnalyzePerRequestOptions) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  const json::value r = handle(
      service,
      R"({"op":"analyze","model":"m","horizon":96,"cutoff":1e-9,
          "exact_static":true})");
  ASSERT_TRUE(r.at("ok").as_bool());
  analysis_options opts;
  opts.horizon = 96.0;
  opts.cutoff = 1e-9;
  opts.exact_static = true;
  const analysis_result direct = analyze(example3_sd(), opts);
  EXPECT_EQ(r.at("probability").as_number(), direct.failure_probability);
  EXPECT_EQ(r.at("exact_static_probability").as_number(),
            direct.exact_static_probability);
}

TEST(Serve, AnalyzeMcBackendReturnsConfidenceInterval) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  const json::value r = handle(
      service,
      R"({"op":"analyze","model":"m","backend":"mc",
          "mc":{"method":"forcing","trajectories":20000,"seed":3}})");
  ASSERT_TRUE(r.at("ok").as_bool());

  analysis_options opts;
  opts.horizon = 24.0;
  opts.backend = cutset_backend::mc;
  opts.inline_execution = true;
  opts.mc.method = sim::mc_method::forcing;
  opts.mc.trajectories = 20'000;
  opts.mc.seed = 3;
  const analysis_result direct = analyze(example3_sd(), opts);
  EXPECT_EQ(r.at("probability").as_number(), direct.failure_probability);
  EXPECT_EQ(r.at("mc_method").as_string(), "forcing");
  EXPECT_EQ(r.at("ci_low").as_number(), direct.mc.ci_low);
  EXPECT_EQ(r.at("ci_high").as_number(), direct.mc.ci_high);
  EXPECT_EQ(r.at("trajectories").as_number(), 20'000.0);
  EXPECT_GT(r.at("failures").as_number(), 0.0);
  EXPECT_FALSE(r.contains("cutsets"));

  // Unknown backends and methods are taxonomy errors, not crashes.
  EXPECT_FALSE(handle(service,
                      R"({"op":"analyze","model":"m","backend":"qmc"})")
                   .at("ok")
                   .as_bool());
  EXPECT_FALSE(
      handle(service,
             R"({"op":"analyze","model":"m","backend":"mc",
                 "mc":{"method":"metropolis"}})")
          .at("ok")
          .as_bool());
}

TEST(Serve, SweepMcBackendReturnsPerPointIntervals) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  const json::value r = handle(
      service,
      R"({"op":"sweep","model":"m","backend":"mc",
          "mc":{"method":"forcing","trajectories":5000,"seed":2},
          "params":[{"name":"a","lo":0.001,"hi":0.01,"n":3,"scale":"log"}]})");
  ASSERT_TRUE(r.at("ok").as_bool());
  const json::array& points = r.at("points").as_array();
  ASSERT_EQ(points.size(), 3u);
  for (const json::value& p : points) {
    EXPECT_LE(p.at("ci_low").as_number(), p.at("probability").as_number());
    EXPECT_GE(p.at("ci_high").as_number(), p.at("probability").as_number());
    EXPECT_EQ(p.at("trajectories").as_number(), 5000.0);
    EXPECT_FALSE(p.contains("cutsets"));
  }
}

TEST(Serve, SweepRequestMatchesDirectRuns) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  const json::value r = handle(
      service,
      R"({"op":"sweep","model":"m",
          "params":[{"name":"a","lo":0.001,"hi":0.01,"n":4,"scale":"log"}]})");
  ASSERT_TRUE(r.at("ok").as_bool());
  const json::array& points = r.at("points").as_array();
  ASSERT_EQ(points.size(), 4u);
  // The last grid point is exactly a=0.01; check it against a direct run.
  sd_fault_tree perturbed = example3_sd();
  perturbed.structure().set_probability(perturbed.structure().find("a"),
                                        0.01);
  analysis_options opts;
  opts.horizon = 24.0;
  EXPECT_EQ(points.back().at("probability").as_number(),
            analyze(perturbed, opts).failure_probability);
  EXPECT_EQ(static_cast<std::size_t>(r.at("struct_cache_hits").as_number()),
            4u);
}

TEST(Serve, IdEchoAndErrorTaxonomy) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());

  const json::value with_string_id =
      handle(service, R"({"op":"health","id":"req-1"})");
  EXPECT_EQ(with_string_id.at("id").as_string(), "req-1");
  const json::value with_number_id =
      handle(service, R"({"op":"health","id":7})");
  EXPECT_EQ(with_number_id.at("id").as_number(), 7.0);

  // Errors carry ok:false + error, echo the id, and count in errors().
  const std::size_t errors_before = service.errors();
  const json::value unknown_op =
      handle(service, R"({"op":"frobnicate","id":3})");
  EXPECT_FALSE(unknown_op.at("ok").as_bool());
  EXPECT_EQ(unknown_op.at("id").as_number(), 3.0);
  EXPECT_NE(unknown_op.at("error").as_string().find("unknown op"),
            std::string::npos);

  EXPECT_FALSE(handle(service, "{malformed").at("ok").as_bool());
  EXPECT_FALSE(handle(service, R"("just a string")").at("ok").as_bool());
  EXPECT_FALSE(handle(service, R"({"op":"analyze"})").at("ok").as_bool());
  EXPECT_FALSE(
      handle(service, R"({"op":"analyze","model":"nope"})").at("ok").as_bool());
  EXPECT_FALSE(
      handle(service,
             R"({"op":"analyze","model":"m","overrides":{"zz":0.1}})")
          .at("ok")
          .as_bool());
  EXPECT_FALSE(handle(service, R"({"op":"health","id":[1]})").at("ok").as_bool());
  EXPECT_EQ(service.errors(), errors_before + 7);
}

TEST(Serve, HealthStatsAndShutdown) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  (void)handle(service, R"({"op":"analyze","model":"m"})");

  const json::value health = handle(service, R"({"op":"health"})");
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("models").as_number(), 1.0);
  EXPECT_GE(health.at("requests").as_number(), 2.0);

  const json::value stats = handle(service, R"({"op":"stats"})");
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("struct_cache").at("entries").as_number(), 1.0);
  EXPECT_TRUE(stats.at("metrics").is_object());
  EXPECT_TRUE(stats.at("metrics").contains("struct_cache.hits"));

  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_TRUE(handle(service, R"({"op":"shutdown"})").at("ok").as_bool());
  EXPECT_TRUE(service.shutdown_requested());
}

std::string etree_text() {
  return R"(be IE 1e-2
be A 1e-3
be B 2e-3
be C 5e-4
or G1 A C
and G2 A B
or TOP G1 G2
top TOP

etree T
initiating IE
functional F1 G1
functional F2 G2
sequence OK S -
sequence OK F S
sequence CD F F

dist A lognormal 3
)";
}

TEST(Serve, EtreeLoadQuantifySweepUnload) {
  serve::analysis_service service = make_service();
  service.load_etree_text("plant", etree_text());
  EXPECT_EQ(service.num_scenarios(), 1u);

  const json::value list = handle(service, R"({"op":"list"})");
  ASSERT_EQ(list.at("scenarios").as_array().size(), 1u);
  EXPECT_EQ(list.at("scenarios").as_array()[0].at("name").as_string(),
            "plant");
  EXPECT_EQ(list.at("scenarios").as_array()[0].at("sequences").as_number(),
            3.0);

  // Served probabilities are bit-identical to a direct engine run: the
  // compiled structure is shared and %.17g round-trips doubles exactly.
  scenario_result direct = run_scenario(parse_scenario_string(etree_text()));
  const json::value r = handle(service, R"({"op":"etree","model":"plant"})");
  ASSERT_TRUE(r.at("ok").as_bool());
  const auto& seqs = r.at("sequences").as_array();
  ASSERT_EQ(seqs.size(), direct.sequences.size());
  for (std::size_t s = 0; s < seqs.size(); ++s) {
    EXPECT_EQ(seqs[s].at("label").as_string(), direct.sequences[s].label);
    EXPECT_EQ(seqs[s].at("probability").as_number(),
              direct.sequences[s].probability);
    EXPECT_EQ(seqs[s].at("mcs_probability").as_number(),
              direct.sequences[s].mcs_probability);
    EXPECT_FALSE(seqs[s].contains("uq"));
  }
  ASSERT_EQ(r.at("end_states").as_array().size(), 2u);

  // Per-request UQ: bands appear, repeat with the same seed is identical.
  const std::string uq_req =
      R"({"op":"etree","model":"plant","uq_samples":64,"uq_seed":9})";
  const json::value u1 = handle(service, uq_req);
  ASSERT_TRUE(u1.at("ok").as_bool());
  const json::value& band = u1.at("sequences").as_array()[2].at("uq");
  EXPECT_GT(band.at("p95").as_number(), band.at("p05").as_number());
  const json::value u2 = handle(service, uq_req);
  const json::value& band2 = u2.at("sequences").as_array()[2].at("uq");
  EXPECT_EQ(band.at("mean").as_number(), band2.at("mean").as_number());
  EXPECT_EQ(band.at("p50").as_number(), band2.at("p50").as_number());

  // Point re-evaluation off the compiled scenario.
  const json::value pts = handle(
      service,
      R"({"op":"etree","model":"plant","params":[{"name":"A","lo":1e-4,"hi":1e-2,"n":3,"scale":"log"}]})");
  ASSERT_TRUE(pts.at("ok").as_bool());
  ASSERT_EQ(pts.at("points").as_array().size(), 3u);
  EXPECT_EQ(pts.at("end_state_names").as_array()[1].as_string(), "CD");
  const auto& cd0 = pts.at("points").as_array()[0].at("end_states");
  EXPECT_GT(cd0.as_array()[1].as_number(), 0.0);

  EXPECT_FALSE(
      handle(service, R"({"op":"etree","model":"nope"})").at("ok").as_bool());
  EXPECT_TRUE(
      handle(service, R"({"op":"unload","name":"plant"})").at("ok").as_bool());
  EXPECT_EQ(service.num_scenarios(), 0u);
}

TEST(Serve, StdioTransportRoundTrip) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());
  std::istringstream in(
      "{\"op\":\"health\"}\n"
      "\n"  // blank lines are skipped
      "{\"op\":\"analyze\",\"model\":\"m\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"health\"}\n");  // after shutdown: not processed
  std::ostringstream out;
  serve::serve_stdio(service, in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<json::value> responses;
  while (std::getline(lines, line)) responses.push_back(json::parse(line));
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].at("op").as_string(), "health");
  EXPECT_EQ(responses[1].at("op").as_string(), "analyze");
  EXPECT_EQ(responses[2].at("op").as_string(), "shutdown");
}

TEST(ServeConcurrent, HammerSharedService) {
  // TSan target: concurrent handle() calls mixing analyses, sweeps,
  // loads and stats against one service. Every analyze response must be
  // bit-identical to the single-threaded reference of its point.
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());

  analysis_options opts;
  opts.horizon = 24.0;
  std::vector<double> reference;
  for (int k = 0; k < 4; ++k) {
    sd_fault_tree perturbed = example3_sd();
    perturbed.structure().set_probability(perturbed.structure().find("a"),
                                          1e-3 * (k + 1));
    reference.push_back(analyze(perturbed, opts).failure_probability);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        const int k = (t + round) % 4;
        char req[160];
        std::snprintf(req, sizeof req,
                      "{\"op\":\"analyze\",\"model\":\"m\","
                      "\"overrides\":{\"a\":%.17g}}",
                      1e-3 * (k + 1));
        const json::value r = json::parse(service.handle(req));
        if (!r.at("ok").as_bool() ||
            r.at("probability").as_number() !=
                reference[static_cast<std::size_t>(k)]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (round == 3) {
          (void)service.handle("{\"op\":\"stats\"}");
          (void)service.handle(
              "{\"op\":\"sweep\",\"model\":\"m\",\"params\":"
              "[{\"name\":\"c\",\"lo\":0.001,\"hi\":0.01,\"n\":2}]}");
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.errors(), 0u);
}

TEST(ServeTcp, EndToEndOverLoopback) {
  serve::analysis_service service = make_service();
  service.load_text("m", example_text());

  std::atomic<int> port{0};
  std::ostringstream log;
  std::thread server(
      [&] { serve::serve_tcp(service, 0, log, &port); });
  while (port.load() == 0) std::this_thread::yield();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<unsigned short>(port.load()));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  const auto request = [&](const std::string& req) {
    const std::string line = req + "\n";
    EXPECT_EQ(::send(fd, line.data(), line.size(), 0),
              static_cast<ssize_t>(line.size()));
    std::string buf;
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') buf.push_back(c);
    return json::parse(buf);
  };

  const json::value health = request(R"({"op":"health","id":"tcp"})");
  EXPECT_TRUE(health.at("ok").as_bool());
  EXPECT_EQ(health.at("id").as_string(), "tcp");
  const json::value r = request(R"({"op":"analyze","model":"m"})");
  ASSERT_TRUE(r.at("ok").as_bool());
  analysis_options opts;
  opts.horizon = 24.0;
  EXPECT_EQ(r.at("probability").as_number(),
            analyze(example3_sd(), opts).failure_probability);
  EXPECT_TRUE(request(R"({"op":"shutdown"})").at("ok").as_bool());
  ::close(fd);
  server.join();
  EXPECT_NE(log.str().find("listening on 127.0.0.1:"), std::string::npos);
}

}  // namespace
}  // namespace sdft
