// Structure-preservation tests for the src/prep rewrite layer: every
// rewrite (atleast lowering, folding, coalescing, duplicate merging,
// common-argument factoring, absorption) must leave the monotone structure
// function over the source basic events untouched — checked by exhaustive
// scenario enumeration, by minimal-cutset-list agreement and by running
// the full engine with prep on vs off across backends and thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bdd/ft_bdd.hpp"
#include "engine/engine.hpp"
#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"
#include "mcs/mocus.hpp"
#include "prep/prep.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

/// Maps cutsets over the prep tree back to source indices and re-sorts
/// canonically (size, then content), mirroring the engine's order.
std::vector<cutset> mapped_to_source(const prep_result& prep,
                                     std::vector<cutset> sets) {
  for (cutset& c : sets) {
    for (node_index& e : c) e = prep.to_source[e];
    std::sort(c.begin(), c.end());
  }
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return sets;
}

std::vector<cutset> sorted_canonically(std::vector<cutset> sets) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return sets;
}

/// Exhaustively checks that the prep tree computes the same boolean
/// function of the source basic events as the source tree.
void expect_same_structure_function(const fault_tree& src,
                                    const prep_result& prep) {
  const std::vector<node_index> basics = src.basic_events();
  ASSERT_LE(basics.size(), 16u) << "scenario enumeration oracle limit";
  for (std::uint64_t mask = 0; mask < (1ull << basics.size()); ++mask) {
    std::vector<char> src_failed(src.size(), 0);
    for (std::size_t b = 0; b < basics.size(); ++b) {
      src_failed[basics[b]] = static_cast<char>((mask >> b) & 1u);
    }
    std::vector<char> prep_failed(prep.tree.size(), 0);
    for (node_index i = 0; i < prep.tree.size(); ++i) {
      if (!prep.tree.is_basic(i)) continue;
      ASSERT_NE(prep.to_source[i], fault_tree::npos);
      prep_failed[i] = src_failed[prep.to_source[i]];
    }
    ASSERT_EQ(src.fails(src.top(), src_failed),
              prep.tree.fails(prep.tree.top(), prep_failed))
        << "scenario mask " << mask;
  }
}

TEST(Prep, AtleastLoweringMatchesBruteForce) {
  for (std::uint32_t n = 2; n <= 6; ++n) {
    for (std::uint32_t k = 1; k <= n; ++k) {
      fault_tree src;
      std::vector<node_index> events;
      for (std::uint32_t i = 0; i < n; ++i) {
        events.push_back(src.add_basic_event("e" + std::to_string(i),
                                             0.05 + 0.03 * i));
      }
      src.set_top(src.add_atleast_gate("vote", k, events));
      const prep_result prep = preprocess(src);
      for (node_index i = 0; i < prep.tree.size(); ++i) {
        if (prep.tree.is_gate(i)) {
          EXPECT_NE(prep.tree.node(i).type, gate_type::atleast_gate);
        }
      }
      expect_same_structure_function(src, prep);
      EXPECT_NEAR(prep.tree.probability_brute_force(),
                  src.probability_brute_force(), 1e-15)
          << k << "/" << n;
      // The lowered network must yield exactly the C(n, k) minimal cutsets.
      const std::vector<cutset> mcs = mapped_to_source(
          prep, mocus(prep.tree, mocus_options{}).cutsets);
      EXPECT_EQ(mcs, sorted_canonically(minimal_cutsets_brute_force(src)))
          << k << "/" << n;
      EXPECT_TRUE(are_minimal_cutsets(src, mcs));
    }
  }
}

TEST(Prep, RandomTreesPreserveStructureFunctionAndCutsets) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sd_fault_tree sd = testing::make_random_static_tree(0xb0 + seed);
    const fault_tree& src = sd.structure();
    const prep_result prep = preprocess(src);
    expect_same_structure_function(src, prep);

    // The prep tree's cutsets, mapped back, equal the source tree's own.
    const std::vector<cutset> from_prep = mapped_to_source(
        prep, mocus(prep.tree, mocus_options{}).cutsets);
    EXPECT_EQ(from_prep,
              sorted_canonically(mocus(src, mocus_options{}).cutsets))
        << "seed " << seed;

    // Exact top-event probability is preserved (BDD on both trees).
    EXPECT_NEAR(ft_bdd(prep.tree).probability(), ft_bdd(src).probability(),
                1e-14)
        << "seed " << seed;
  }
}

TEST(Prep, DisabledKeepsNormalisationOnly) {
  fault_tree src;
  std::vector<node_index> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(src.add_basic_event("e" + std::to_string(i), 0.1));
  }
  const node_index vote = src.add_atleast_gate("vote", 2, events);
  const node_index chain =
      src.add_gate("chain", gate_type::or_gate, {vote});  // foldable
  src.set_top(src.add_gate("top", gate_type::or_gate, {chain, events[0]}));

  prep_options opts;
  opts.enabled = false;
  const prep_result prep = preprocess(src, opts);
  for (node_index i = 0; i < prep.tree.size(); ++i) {
    if (prep.tree.is_gate(i)) {
      EXPECT_NE(prep.tree.node(i).type, gate_type::atleast_gate);
    }
  }
  EXPECT_GT(prep.stats.atleast_lowered, 0u);
  EXPECT_EQ(prep.stats.constants_folded, 0u);
  EXPECT_EQ(prep.stats.gates_coalesced, 0u);
  EXPECT_EQ(prep.stats.duplicates_merged, 0u);
  EXPECT_EQ(prep.stats.common_args_merged, 0u);
  EXPECT_EQ(prep.stats.absorptions, 0u);
  EXPECT_EQ(prep.module_roots,
            std::vector<node_index>{prep.tree.top()});
  expect_same_structure_function(src, prep);
}

TEST(Prep, RewritesFireOnRedundantTree) {
  // OR(AND(x, a), AND(x, b), OR(x, y), x) exercises factoring, absorption
  // and folding together; the function collapses to OR(x, y).
  fault_tree src;
  const node_index x = src.add_basic_event("x", 0.1);
  const node_index y = src.add_basic_event("y", 0.2);
  const node_index a = src.add_basic_event("a", 0.3);
  const node_index b = src.add_basic_event("b", 0.4);
  const node_index g1 = src.add_gate("g1", gate_type::and_gate, {x, a});
  const node_index g2 = src.add_gate("g2", gate_type::and_gate, {x, b});
  const node_index g3 = src.add_gate("g3", gate_type::or_gate, {x, y});
  src.set_top(src.add_gate("top", gate_type::or_gate, {g1, g2, g3, x}));

  const prep_result prep = preprocess(src);
  expect_same_structure_function(src, prep);
  EXPECT_LT(prep.tree.size(), src.size());
  EXPECT_GT(prep.stats.nodes_eliminated(), 0u);
  const std::vector<cutset> mcs = mapped_to_source(
      prep, mocus(prep.tree, mocus_options{}).cutsets);
  EXPECT_EQ(mcs, (std::vector<cutset>{{x}, {y}}));
}

TEST(Prep, ToSourceMapsBasicEventsFaithfully) {
  const sd_fault_tree sd = testing::make_random_static_tree(0xfeed);
  const fault_tree& src = sd.structure();
  const prep_result prep = preprocess(src);
  std::size_t mapped = 0;
  for (node_index i = 0; i < prep.tree.size(); ++i) {
    if (!prep.tree.is_basic(i)) continue;
    const node_index s = prep.to_source[i];
    ASSERT_NE(s, fault_tree::npos);
    ASSERT_TRUE(src.is_basic(s));
    EXPECT_EQ(prep.tree.node(i).name, src.node(s).name);
    EXPECT_EQ(prep.tree.node(i).probability, src.node(s).probability);
    ++mapped;
  }
  EXPECT_GT(mapped, 0u);
  // Module roots are topological with the top gate last.
  ASSERT_FALSE(prep.module_roots.empty());
  EXPECT_EQ(prep.module_roots.back(), prep.tree.top());
}

/// Engine-level agreement: with prep on, with prep off, and with
/// modularization alone disabled, both backends and several thread counts
/// must produce the bit-identical probability and cutset list.
void expect_engine_agreement(const sd_fault_tree& tree, double horizon,
                             double cutoff, const std::string& model) {
  analysis_options opts;
  opts.horizon = horizon;
  opts.cutoff = cutoff;
  opts.keep_cutset_details = true;
  opts.threads = 1;
  opts.backend = cutset_backend::mocus;
  opts.prep.enabled = false;
  const analysis_result reference = analyze(tree, opts);
  ASSERT_GT(reference.num_cutsets, 0u) << model;
  std::vector<cutset> reference_list;
  for (const auto& q : reference.cutsets) reference_list.push_back(q.events);

  for (const bool prep_enabled : {true, false}) {
    for (const bool modularize : {true, false}) {
      if (!prep_enabled && !modularize) continue;  // duplicate of (false, *)
      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        for (const cutset_backend backend :
             {cutset_backend::mocus, cutset_backend::bdd}) {
          opts.threads = threads;
          opts.backend = backend;
          opts.prep = prep_options{};
          opts.prep.enabled = prep_enabled;
          opts.prep.modularize = modularize;
          const analysis_result r = analyze(tree, opts);
          const std::string label =
              model + ": " + to_string(backend) +
              " threads=" + std::to_string(threads) +
              (prep_enabled ? " prep" : " no-prep") +
              (modularize ? "" : " no-modules");
          std::vector<cutset> list;
          for (const auto& q : r.cutsets) list.push_back(q.events);
          EXPECT_EQ(list, reference_list) << label;
          EXPECT_EQ(r.failure_probability, reference.failure_probability)
              << label;
        }
      }
    }
  }
}

TEST(Prep, EngineAgreementExample3) {
  expect_engine_agreement(testing::example3_sd(), 24.0, 0.0, "example3");
}

TEST(Prep, EngineAgreementRandomSdTrees) {
  for (int seed : {3, 11}) {
    const testing::random_sd_tree r =
        testing::make_random_sd_tree(0x9c + static_cast<std::uint64_t>(seed));
    expect_engine_agreement(r.tree, 12.0, 0.0,
                            "random seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace sdft
