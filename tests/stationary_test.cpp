#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/ctmc.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/triggered.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(Stationary, RepairableComponentClosedForm) {
  const double lambda = 0.2;
  const double mu = 1.5;
  const ctmc chain = make_repairable(lambda, mu);
  const auto pi = stationary_distribution(chain);
  EXPECT_NEAR(pi[0], mu / (lambda + mu), 1e-9);
  EXPECT_NEAR(pi[1], lambda / (lambda + mu), 1e-9);
  EXPECT_NEAR(asymptotic_unavailability(chain), lambda / (lambda + mu),
              1e-9);
}

TEST(Stationary, ErlangWithRepairSumsToOne) {
  const ctmc chain = make_erlang_active(3, 0.1, 0.5);
  const auto pi = stationary_distribution(chain);
  double sum = 0.0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Balance check: flow into the failed phase equals flow out.
  EXPECT_NEAR(pi[2] * 0.3, pi[3] * 0.5, 1e-9);
}

TEST(Stationary, BirthDeathThreeStates) {
  // 0 <-> 1 <-> 2 with distinct rates; detailed balance gives the ratios.
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 2.0);
  chain.add_rate(1, 2, 0.5);
  chain.add_rate(2, 1, 3.0);
  const auto pi = stationary_distribution(chain);
  EXPECT_NEAR(pi[1] / pi[0], 0.5, 1e-8);
  EXPECT_NEAR(pi[2] / pi[1], 0.5 / 3.0, 1e-8);
}

TEST(Mttf, ExponentialComponent) {
  const double lambda = 0.04;
  EXPECT_NEAR(mean_time_to_failure(make_repairable(lambda, 0.0)),
              1.0 / lambda, 1e-6);
}

TEST(Mttf, ErlangPreservesMeanRegardlessOfPhases) {
  const double lambda = 0.01;
  for (int k : {1, 2, 5}) {
    EXPECT_NEAR(mean_time_to_failure(make_erlang_active(k, lambda, 0.0)),
                1.0 / lambda, 1e-4)
        << "phases " << k;
  }
}

TEST(Mttf, RepairBeforeFailureExtendsMttf) {
  // A two-phase chain where the first phase can be "repaired" back:
  // 0 -> 1 (rate a), 1 -> 0 (repair r), 1 -> 2 failed (rate b).
  // MTTF from 0: h0 = 1/a + h1, h1 = (1 + r h0) / (r + b).
  const double a = 0.5, r = 2.0, b = 0.25;
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.set_failed(2);
  chain.add_rate(0, 1, a);
  chain.add_rate(1, 0, r);
  chain.add_rate(1, 2, b);
  // Solve the 2x2 system by hand.
  const double h1 = (1.0 + r / a) / b;
  const double h0 = 1.0 / a + h1;
  EXPECT_NEAR(mean_time_to_failure(chain), h0, 1e-6);
  EXPECT_GT(h0, 1.0 / a + 1.0 / b - 1e-9);  // repair only delays failure
}

TEST(Mttf, UnreachableFailureIsInfinite) {
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.set_failed(2);
  chain.add_rate(0, 1, 1.0);  // 2 is disconnected
  EXPECT_TRUE(std::isinf(mean_time_to_failure(chain)));
}

TEST(Mttf, EscapableFailureIsInfinite) {
  // From 0 the chain may wander into absorbing state 1 (not failed), so
  // failure is not almost-sure and the mean is infinite.
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.set_failed(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 1.0);
  EXPECT_TRUE(std::isinf(mean_time_to_failure(chain)));
}

TEST(Mttf, RequiresFailedStates) {
  ctmc chain(1);
  chain.set_initial(0, 1.0);
  EXPECT_THROW(mean_time_to_failure(chain), model_error);
}

}  // namespace
}  // namespace sdft
