#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/fox_glynn.hpp"
#include "util/rng.hpp"
#include "util/sorted_set.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sdft {
namespace {

TEST(Rng, DeterministicForSeed) {
  rng a(7);
  rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  rng r(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(7), 7u);
}

TEST(Rng, BetweenInclusive) {
  rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentred) {
  rng r(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

double poisson_pmf(double lambda, std::size_t k) {
  return std::exp(-lambda + k * std::log(lambda) - log_factorial(k));
}

TEST(FoxGlynn, MatchesDirectPmfSmallLambda) {
  const auto w = fox_glynn(2.5, 1e-12);
  for (std::size_t k = w.left; k <= w.right; ++k) {
    EXPECT_NEAR(w.weight(k), poisson_pmf(2.5, k), 1e-10);
  }
}

TEST(FoxGlynn, MatchesDirectPmfLargeLambda) {
  const auto w = fox_glynn(500.0, 1e-12);
  for (std::size_t k = w.left; k <= w.right; k += 17) {
    EXPECT_NEAR(w.weight(k), poisson_pmf(500.0, k), 1e-9);
  }
}

TEST(FoxGlynn, WeightsSumToOne) {
  for (double lambda : {0.01, 1.0, 7.3, 123.0, 4000.0}) {
    const auto w = fox_glynn(lambda, 1e-10);
    const double sum =
        std::accumulate(w.weights.begin(), w.weights.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "lambda=" << lambda;
  }
}

TEST(FoxGlynn, WindowCoversRequestedMass) {
  const double lambda = 42.0;
  const auto w = fox_glynn(lambda, 1e-8);
  double outside = 0.0;
  for (std::size_t k = 0; k < w.left; ++k) outside += poisson_pmf(lambda, k);
  for (std::size_t k = w.right + 1; k < w.right + 200; ++k) {
    outside += poisson_pmf(lambda, k);
  }
  EXPECT_LT(outside, 1e-7);
}

TEST(FoxGlynn, ZeroLambdaIsPointMass) {
  const auto w = fox_glynn(0.0, 1e-10);
  EXPECT_EQ(w.left, 0u);
  EXPECT_EQ(w.right, 0u);
  EXPECT_DOUBLE_EQ(w.weight(0), 1.0);
}

TEST(FoxGlynn, RejectsBadArguments) {
  EXPECT_THROW(fox_glynn(-1.0, 1e-10), numeric_error);
  EXPECT_THROW(fox_glynn(1.0, 0.0), numeric_error);
  EXPECT_THROW(fox_glynn(1.0, 1.0), numeric_error);
}

TEST(SortedSet, NormalizeSortsAndDedupes) {
  std::vector<int> v{3, 1, 3, 2, 1};
  sorted_set::normalize(v);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(SortedSet, SubsetAndContains) {
  const std::vector<int> super{1, 2, 4, 6};
  EXPECT_TRUE(sorted_set::is_subset({2, 6}, super));
  EXPECT_FALSE(sorted_set::is_subset({2, 5}, super));
  EXPECT_TRUE(sorted_set::is_subset({}, super));
  EXPECT_TRUE(sorted_set::contains(super, 4));
  EXPECT_FALSE(sorted_set::contains(super, 5));
}

TEST(SortedSet, InsertEraseKeepInvariant) {
  std::vector<int> v{1, 3};
  sorted_set::insert(v, 2);
  sorted_set::insert(v, 2);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
  sorted_set::erase(v, 1);
  sorted_set::erase(v, 99);
  EXPECT_EQ(v, (std::vector<int>{2, 3}));
}

TEST(SortedSet, BinaryOperations) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{2, 3, 4};
  EXPECT_EQ(sorted_set::set_union(a, b), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sorted_set::set_intersection(a, b), (std::vector<int>{2, 3}));
  EXPECT_EQ(sorted_set::set_difference(a, b), (std::vector<int>{1}));
}

TEST(ThreadPool, RunsAllJobs) {
  thread_pool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  thread_pool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, WaitIdleRethrowsFirstJobException) {
  thread_pool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i % 5 == 0) throw std::runtime_error("job failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Every job ran despite the failures — the pool drains, it doesn't stop.
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, UsableAfterRethrow) {
  thread_pool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The exception was claimed; the pool accepts and runs new jobs.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, UnclaimedExceptionDoesNotTerminate) {
  // An exception never collected by wait_idle() must be dropped by the
  // destructor, not terminate the process.
  thread_pool pool(1);
  pool.submit([] { throw std::runtime_error("dropped"); });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(pool, hits.size(),
                            [&hits](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i == 7) throw std::runtime_error("index 7");
                            }),
               std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  thread_pool pool(8);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForExceptionFromFirstChunk) {
  thread_pool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 32,
                            [&ran](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 0) throw std::runtime_error("index 0");
                            }),
               std::runtime_error);
  // The failing first index must not abandon the remaining jobs.
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SubmitFromWorkerJob) {
  // Jobs submitted from inside a worker land on that worker's own deque;
  // wait_idle() must still cover the whole transitive job tree.
  thread_pool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      for (int j = 0; j < 16; ++j) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPool, WorkerIndexIdentifiesWorkers) {
  thread_pool pool(4);
  EXPECT_EQ(pool.worker_index(), thread_pool::npos);
  std::mutex mutex;
  std::set<std::size_t> seen;
  parallel_for(pool, 64, [&](std::size_t) {
    const std::size_t me = pool.worker_index();
    ASSERT_LT(me, pool.size());
    std::lock_guard lock(mutex);
    seen.insert(me);
  });
  EXPECT_EQ(pool.worker_index(), thread_pool::npos);
  EXPECT_GE(seen.size(), 1u);
  for (std::size_t w : seen) EXPECT_LT(w, pool.size());
}

TEST(ThreadPool, CountersTrackSubmissionsAndExecutions) {
  thread_pool pool(2);
  const pool_counters before = pool.counters();
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  const pool_counters after = pool.counters();
  EXPECT_EQ(after.submitted - before.submitted, 50u);
  ASSERT_EQ(after.executed.size(), pool.size());
  std::size_t executed = 0;
  for (std::size_t i = 0; i < after.executed.size(); ++i) {
    executed += after.executed[i] - before.executed[i];
  }
  EXPECT_EQ(executed, 50u);
  EXPECT_GT(after.occupancy_since(before), 0.0);
  EXPECT_LE(after.occupancy_since(before), 1.0);
}

TEST(ThreadPool, ChildJobsAreStolenFromBusyWorker) {
  // The parent job parks on its worker and spins until both children have
  // run. The children sit on the parent's own deque, so the only way they
  // can ever run is another worker stealing them — this deadlocks (and
  // times out) if stealing is broken.
  thread_pool pool(4);
  std::atomic<int> done{0};
  pool.submit([&pool, &done] {
    for (int i = 0; i < 2; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    while (done.load() < 2) std::this_thread::yield();
  });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
  EXPECT_GE(pool.counters().stolen, 2u);
}

TEST(TextTable, AlignsColumnsAndRejectsBadRows) {
  text_table t({"setting", "value"});
  t.add_row({"horizon", "24h"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| setting | value |"), std::string::npos);
  EXPECT_NE(s.find("| horizon | 24h   |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), model_error);
}

TEST(Formatting, SciAndDuration) {
  EXPECT_EQ(sci(4.09e-9), "4.09e-09");
  EXPECT_EQ(duration_str(7.9), "7.9s");
  EXPECT_EQ(duration_str(132.0), "2m 12s");
}

}  // namespace
}  // namespace sdft
