#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "core/analyzer.hpp"
#include "etree/event_tree.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

/// A two-function event tree over a small fault tree:
///   IE, then HP (high-pressure injection), then LP (low-pressure).
/// Sequences: HP ok -> OK; HP fails, LP ok -> OK; both fail -> CD.
class et_fixture {
 public:
  fault_tree ft;
  node_index ie, hp_gate, lp_gate;

  et_fixture() {
    ie = ft.add_basic_event("IE", 1e-2);
    const node_index hp_pump = ft.add_basic_event("HP_PUMP", 2e-2);
    const node_index hp_valve = ft.add_basic_event("HP_VALVE", 1e-2);
    const node_index lp_pump = ft.add_basic_event("LP_PUMP", 3e-2);
    const node_index shared = ft.add_basic_event("SHARED_SIGNAL", 5e-3);
    hp_gate = ft.add_gate("HP_F", gate_type::or_gate,
                          {hp_pump, hp_valve, shared});
    lp_gate = ft.add_gate("LP_F", gate_type::or_gate, {lp_pump, shared});
    ft.set_top(ft.add_gate("ANY", gate_type::or_gate, {hp_gate, lp_gate}));

    et_.emplace(ft, ie, "DEMO");
    et_->add_functional_event("HP", hp_gate);
    et_->add_functional_event("LP", lp_gate);
    et_->add_sequence({branch_outcome::success, branch_outcome::bypass},
                      "OK");
    et_->add_sequence({branch_outcome::failure, branch_outcome::success},
                      "OK");
    et_->add_sequence({branch_outcome::failure, branch_outcome::failure},
                      "CD");
    et_->validate();
  }

  const event_tree& et() const { return *et_; }

 private:
  std::optional<event_tree> et_;
};

TEST(EventTree, ValidationCatchesMistakes) {
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.1);
  const node_index g = ft.add_gate("g", gate_type::or_gate, {b});
  ft.set_top(g);
  EXPECT_THROW(event_tree(ft, g), model_error);  // IE must be basic

  event_tree et(ft, b);
  EXPECT_THROW(et.add_functional_event("F", b), model_error);  // not a gate
  et.add_functional_event("F", g);
  EXPECT_THROW(et.add_sequence({}, "CD"), model_error);  // arity mismatch
  et.add_sequence({branch_outcome::failure}, "CD");
  et.add_sequence({branch_outcome::failure}, "CD2");
  EXPECT_THROW(et.validate(), model_error);  // duplicate outcomes
}

TEST(EventTree, ExactEntryPointsValidateFirst) {
  // The *_exact entry points must run the full validation themselves: an
  // event tree with duplicate sequence outcomes used to sail straight into
  // compilation and return a number for a malformed model.
  fault_tree ft;
  const node_index b = ft.add_basic_event("b", 0.1);
  const node_index g = ft.add_gate("g", gate_type::or_gate, {b});
  ft.set_top(g);
  event_tree et(ft, b);
  et.add_functional_event("F", g);
  et.add_sequence({branch_outcome::failure}, "CD");
  et.add_sequence({branch_outcome::failure}, "CD2");  // duplicate outcomes
  EXPECT_THROW(sequence_probability_exact(et, 0), model_error);
  EXPECT_THROW(end_state_probability_exact(et, "CD"), model_error);
  EXPECT_THROW(end_state_fault_tree(et, "CD"), model_error);
}

TEST(EventTree, AtleastFunctionalEventIsExact) {
  // Regression: et_bdd::compile used to lower atleast gates as plain ORs,
  // corrupting every sequence probability under a k-of-n functional event.
  // A 2-of-3 vote separates the two readings decisively: P(>=2 of 3) =
  // 0.098 here, while the OR reading gives 1 - 0.9*0.8*0.7 = 0.496.
  fault_tree ft;
  const node_index ie = ft.add_basic_event("IE", 0.5);
  const node_index a = ft.add_basic_event("A", 0.1);
  const node_index b = ft.add_basic_event("B", 0.2);
  const node_index c = ft.add_basic_event("C", 0.3);
  const node_index vote = ft.add_atleast_gate("VOTE", 2, {a, b, c});
  ft.set_top(vote);

  event_tree et(ft, ie, "V");
  et.add_functional_event("V", vote);
  et.add_sequence({branch_outcome::failure}, "CD");
  et.add_sequence({branch_outcome::success}, "OK");

  const double p2of3 = 0.1 * 0.2 * 0.7 + 0.1 * 0.8 * 0.3 + 0.9 * 0.2 * 0.3 +
                       0.1 * 0.2 * 0.3;
  EXPECT_NEAR(sequence_probability_exact(et, 0), 0.5 * p2of3, 1e-15);
  // The negated branch must be exact too (1 - p over the same BDD).
  EXPECT_NEAR(sequence_probability_exact(et, 1), 0.5 * (1.0 - p2of3), 1e-15);
  EXPECT_NEAR(end_state_probability_exact(et, "CD") +
                  end_state_probability_exact(et, "OK"),
              0.5, 1e-15);
}

TEST(EventTree, EndStateFaultTreeDedupsSynthesizedNames) {
  // Regression: a model that already contains nodes named like the
  // synthesized sequence/top gates ("<et>::SEQ<k>", "<et>::<end state>")
  // used to make end_state_fault_tree emit duplicate names.
  fault_tree ft;
  const node_index ie = ft.add_basic_event("IE", 1e-2);
  const node_index trap_seq = ft.add_basic_event("ET::SEQ0", 1e-3);
  const node_index trap_top = ft.add_basic_event("ET::CD", 2e-3);
  const node_index g =
      ft.add_gate("G_F", gate_type::or_gate, {trap_seq, trap_top});
  ft.set_top(ft.add_gate("ANY", gate_type::or_gate, {g}));

  event_tree et(ft, ie, "ET");
  et.add_functional_event("G", g);
  et.add_sequence({branch_outcome::failure}, "CD");

  const fault_tree cd = end_state_fault_tree(et, "CD");
  // The pre-existing events keep their names; the synthesized gates moved
  // to deduplicated ones — and the result still validates and quantifies.
  EXPECT_NE(cd.find("ET::SEQ0"), fault_tree::npos);
  EXPECT_TRUE(cd.is_basic(cd.find("ET::SEQ0")));
  EXPECT_NE(cd.find("ET::SEQ0#2"), fault_tree::npos);
  EXPECT_NE(cd.find("ET::CD#2"), fault_tree::npos);
  const double p_or = 1.0 - (1.0 - 1e-3) * (1.0 - 2e-3);
  EXPECT_NEAR(cd.probability_brute_force(), 1e-2 * p_or, 1e-15);
}

TEST(EventTree, SequenceProbabilityExact) {
  const et_fixture fx;
  // P(CD sequence) = p(IE) * P(HP_F and LP_F), with the shared signal
  // coupling the two functions.
  const double p_hp_pump = 2e-2, p_hp_valve = 1e-2, p_lp = 3e-2, p_sig = 5e-3;
  // P(HP and LP) = P(sig) + (1-P(sig)) * P(hp fails w/o sig) * P(lp w/o sig)
  const double hp_local = 1 - (1 - p_hp_pump) * (1 - p_hp_valve);
  const double both = p_sig + (1 - p_sig) * hp_local * p_lp;
  EXPECT_NEAR(sequence_probability_exact(fx.et(), 2), 1e-2 * both, 1e-12);
}

TEST(EventTree, SuccessBranchesAreExact) {
  const et_fixture fx;
  // Sequence 1 = IE and HP fails and LP succeeds.
  const double p2 = sequence_probability_exact(fx.et(), 2);
  const double p1 = sequence_probability_exact(fx.et(), 1);
  const double p0 = sequence_probability_exact(fx.et(), 0);
  // The three sequences partition {IE occurs}: probabilities sum to p(IE).
  EXPECT_NEAR(p0 + p1 + p2, 1e-2, 1e-12);
}

TEST(EventTree, EndStateAggregation) {
  const et_fixture fx;
  EXPECT_NEAR(end_state_probability_exact(fx.et(), "CD"),
              sequence_probability_exact(fx.et(), 2), 1e-15);
  EXPECT_NEAR(end_state_probability_exact(fx.et(), "OK"),
              sequence_probability_exact(fx.et(), 0) +
                  sequence_probability_exact(fx.et(), 1),
              1e-15);
  EXPECT_DOUBLE_EQ(end_state_probability_exact(fx.et(), "NONSENSE"), 0.0);
}

TEST(EventTree, EndStateFaultTreeIsConservative) {
  const et_fixture fx;
  const fault_tree cd = end_state_fault_tree(fx.et(), "CD");
  cd.validate();
  // The coherent tree drops success terms, so its probability dominates
  // the exact sequence quantification.
  const double coherent = cd.probability_brute_force();
  const double exact = end_state_probability_exact(fx.et(), "CD");
  EXPECT_GE(coherent, exact - 1e-15);
  // For this tree (CD has no success branches) they coincide.
  EXPECT_NEAR(coherent, exact, 1e-12);
  // MCS of the CD tree: {IE, sig}, {IE, hp_pump, lp}, {IE, hp_valve, lp}.
  EXPECT_EQ(mocus(cd).cutsets.size(), 3u);
}

TEST(EventTree, EndStateFaultTreeDropsSuccessTerms) {
  const et_fixture fx;
  const fault_tree ok = end_state_fault_tree(fx.et(), "OK");
  // Sequence 0 keeps only the IE (HP success dropped); the coherent OK
  // probability is then just p(IE), above the exact OK probability.
  EXPECT_NEAR(ok.probability_brute_force(), 1e-2, 1e-12);
  EXPECT_LT(end_state_probability_exact(fx.et(), "OK"), 1e-2);
}

TEST(EventTree, DemandTriggersFollowFunctionOrder) {
  // SD variant: both functions have an untriggered dynamic pump event.
  sd_fault_tree tree;
  const node_index ie = tree.add_static_event("IE", 1e-2);
  const node_index hp_fio =
      tree.add_dynamic_event("HP_FIO", make_repairable(1e-3, 0.0));
  const node_index lp_fio =
      tree.add_dynamic_event("LP_FIO", make_repairable(1e-3, 0.0));
  const node_index hp =
      tree.add_gate("HP_F", gate_type::or_gate, {hp_fio});
  const node_index lp =
      tree.add_gate("LP_F", gate_type::or_gate, {lp_fio});
  tree.set_top(tree.add_gate("TOP", gate_type::and_gate, {ie, hp, lp}));
  tree.validate();

  event_tree et(tree.structure(), ie, "SD");
  et.add_functional_event("HP", hp);
  et.add_functional_event("LP", lp);
  et.add_sequence({branch_outcome::failure, branch_outcome::failure}, "CD");
  et.add_sequence({branch_outcome::failure, branch_outcome::success}, "OK");
  et.add_sequence({branch_outcome::success, branch_outcome::bypass}, "OK");

  const auto suggestions = suggest_demand_triggers(et, tree);
  ASSERT_EQ(suggestions.size(), 1u);
  EXPECT_EQ(suggestions[0].trigger_gate, hp);
  EXPECT_EQ(suggestions[0].events, std::vector<node_index>{lp_fio});
}

TEST(EventTree, DemandTriggersSkipSharedEvents) {
  // A dynamic event under BOTH functions must not be suggested (it would
  // create a trigger cycle).
  sd_fault_tree tree;
  const node_index ie = tree.add_static_event("IE", 1e-2);
  const node_index shared =
      tree.add_dynamic_event("SHARED", make_repairable(1e-3, 0.0));
  const node_index hp =
      tree.add_gate("HP_F", gate_type::or_gate, {shared});
  const node_index lp =
      tree.add_gate("LP_F", gate_type::or_gate, {shared});
  tree.set_top(tree.add_gate("TOP", gate_type::and_gate, {ie, hp, lp}));

  event_tree et(tree.structure(), ie, "SD");
  et.add_functional_event("HP", hp);
  et.add_functional_event("LP", lp);
  et.add_sequence({branch_outcome::failure, branch_outcome::failure}, "CD");

  EXPECT_TRUE(suggest_demand_triggers(et, tree).empty());
}

}  // namespace
}  // namespace sdft
