// Tests of the pluggable analysis-engine layer: backend-agnostic cutset
// sources (MOCUS vs BDD), the memoising quantification stage, and the
// engine_stats instrumentation. Includes the property tests asserting both
// backends produce identical cutsets and failure probabilities on the
// generated BWR and industrial models.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "sdft/translate.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

std::vector<cutset> sorted_cutsets(std::vector<cutset> sets) {
  std::sort(sets.begin(), sets.end(), [](const cutset& a, const cutset& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  });
  return sets;
}

/// Asserts both cutset sources agree on the relevant minimal cutsets and
/// the engine reproduces the same failure probability through either.
void expect_backend_agreement(const sd_fault_tree& tree,
                              analysis_options opts) {
  const static_translation tr =
      translate_to_static(tree, opts.horizon, opts.epsilon,
                          opts.reference_cutoff);
  const cutset_generation via_mocus =
      mocus_source().generate(tr.ft_bar, opts.cutoff, nullptr);
  const cutset_generation via_bdd = bdd_source().generate(tr.ft_bar, opts.cutoff, nullptr);
  EXPECT_EQ(sorted_cutsets(via_mocus.cutsets),
            sorted_cutsets(via_bdd.cutsets));

  opts.backend = cutset_backend::mocus;
  const analysis_result mocus_result = analyze(tree, opts);
  opts.backend = cutset_backend::bdd;
  const analysis_result bdd_result = analyze(tree, opts);
  EXPECT_EQ(mocus_result.num_cutsets, bdd_result.num_cutsets);
  EXPECT_NEAR(mocus_result.failure_probability,
              bdd_result.failure_probability, 1e-12);
  EXPECT_EQ(mocus_result.stats.backend, "mocus");
  EXPECT_EQ(bdd_result.stats.backend, "bdd");
  EXPECT_GT(bdd_result.stats.bdd_nodes, 0u);
}

// --- Cutset sources ------------------------------------------------------

TEST(CutsetSource, BackendsAgreeOnRunningExample) {
  analysis_options opts;
  opts.horizon = 24.0;
  expect_backend_agreement(testing::example3_sd(), opts);
}

TEST(CutsetSource, BackendsAgreeUnderCutoff) {
  // The cutoff drops cutsets below 1e-5 on FT-bar in both sources with
  // identical semantics (product >= cutoff survives).
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-5;
  const sd_fault_tree tree = testing::example3_sd();
  const static_translation tr = translate_to_static(tree, opts.horizon);
  const cutset_generation via_mocus =
      mocus_source().generate(tr.ft_bar, opts.cutoff, nullptr);
  const cutset_generation via_bdd = bdd_source().generate(tr.ft_bar, opts.cutoff, nullptr);
  EXPECT_LT(via_mocus.cutsets.size(), 5u);
  EXPECT_EQ(sorted_cutsets(via_mocus.cutsets),
            sorted_cutsets(via_bdd.cutsets));
  EXPECT_GT(via_bdd.discarded, 0u);
  expect_backend_agreement(tree, opts);
}

TEST(CutsetSource, FactoryMatchesBackendNames) {
  EXPECT_STREQ(make_cutset_source(cutset_backend::mocus)->name(), "mocus");
  EXPECT_STREQ(make_cutset_source(cutset_backend::bdd)->name(), "bdd");
  EXPECT_STREQ(to_string(cutset_backend::bdd), "bdd");
}

// --- Backend equivalence on the paper-scale generators (property) --------

TEST(CutsetSource, BackendsAgreeOnBwrModels) {
  for (int triggers : {0, 2, 4}) {
    bwr_options bopts;
    bopts.dynamic_events = true;
    bopts.repair_rate = 0.02;
    const sd_fault_tree tree =
        make_bwr_model(with_bwr_triggers(bopts, triggers));
    analysis_options opts;
    opts.horizon = 24.0;
    opts.cutoff = 1e-15;
    expect_backend_agreement(tree, opts);
  }
}

TEST(CutsetSource, BackendsAgreeOnIndustrialModel) {
  industrial_options gopts;
  gopts.seed = 7;
  gopts.num_frontline_systems = 6;
  gopts.num_support_systems = 2;
  gopts.num_initiating_events = 4;
  gopts.sequences_per_ie = 3;
  gopts.components_per_train = 3;
  const industrial_model model = generate_industrial(gopts);
  mocus_options mopts;
  mopts.cutoff = 1e-15;
  const mocus_result mcs = mocus(model.ft, mopts);
  const auto ranked = rank_by_fussell_vesely(model.ft, mcs.cutsets);
  annotation_options aopts;
  aopts.dynamic_fraction = 0.3;
  aopts.trigger_fraction = 0.1;
  const sd_fault_tree tree = annotate_dynamic(model, ranked, aopts);

  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-15;
  opts.threads = 2;
  opts.keep_cutset_details = false;
  expect_backend_agreement(tree, opts);
}

// --- The memoising quantification stage ----------------------------------

/// Two cutsets {s1, d} and {s2, d} sharing the dynamic event d: their
/// FT_C (top AND over {d}) is structurally identical, only the factored
/// static probabilities differ, so one transient solve serves both.
struct shared_dynamic_fixture {
  sd_fault_tree tree;

  shared_dynamic_fixture() {
    const node_index s1 = tree.add_static_event("s1", 0.01);
    const node_index s2 = tree.add_static_event("s2", 0.02);
    const node_index d =
        tree.add_dynamic_event("d", make_repairable(1e-3, 5e-2));
    const node_index left =
        tree.add_gate("left", gate_type::and_gate, {s1, d});
    const node_index right =
        tree.add_gate("right", gate_type::and_gate, {s2, d});
    tree.set_top(tree.add_gate("top", gate_type::or_gate, {left, right}));
    tree.validate();
  }
};

TEST(QuantificationCache, SharedDynamicStructureHitsWithinOneRun) {
  const shared_dynamic_fixture fx;
  analysis_engine engine{analysis_options{}};
  const analysis_result result = engine.run(fx.tree);
  ASSERT_EQ(result.num_cutsets, 2u);
  EXPECT_EQ(result.stats.cache_misses, 1u);
  EXPECT_EQ(result.stats.cache_hits, 1u);
  EXPECT_EQ(engine.cache().size(), 1u);

  // The memoised path reproduces the uncached probabilities exactly.
  analysis_options uncached;
  uncached.cache_quantifications = false;
  const analysis_result reference = analyze(fx.tree, uncached);
  EXPECT_EQ(reference.stats.cache_hits + reference.stats.cache_misses, 0u);
  EXPECT_NEAR(result.failure_probability, reference.failure_probability,
              1e-15);

  // Per-cutset: p = p(s) * Pr[d fails within t], same chain term in both.
  ASSERT_EQ(result.cutsets.size(), 2u);
  const double chain0 = result.cutsets[0].probability /
                        (result.cutsets[0].events.front() == 0 ? 0.01 : 0.02);
  const double chain1 = result.cutsets[1].probability /
                        (result.cutsets[1].events.front() == 0 ? 0.01 : 0.02);
  EXPECT_NEAR(chain0, chain1, 1e-15);
  EXPECT_TRUE(result.cutsets[0].cache_hit || result.cutsets[1].cache_hit);
}

TEST(QuantificationCache, PersistsAcrossRunsOfOneEngine) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_engine engine{analysis_options{}};
  const analysis_result first = engine.run(tree);
  const analysis_result second = engine.run(tree);
  EXPECT_GT(first.stats.cache_misses, 0u);
  // Every dynamic solve of the second run is served from the cache.
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hits, first.stats.cache_misses);
  EXPECT_NEAR(first.failure_probability, second.failure_probability, 1e-15);
}

TEST(QuantificationCache, DisabledMeansNoLookups) {
  analysis_options opts;
  opts.cache_quantifications = false;
  analysis_engine engine(opts);
  const analysis_result result = engine.run(testing::example3_sd());
  EXPECT_EQ(result.stats.cache_hits + result.stats.cache_misses, 0u);
  EXPECT_EQ(engine.cache().size(), 0u);
  for (const auto& q : result.cutsets) EXPECT_FALSE(q.cache_hit);
}

TEST(QuantificationCache, SignatureSeparatesHorizons) {
  const sd_fault_tree tree = testing::example3_sd();
  cutset bd{tree.structure().find("b"), tree.structure().find("d")};
  std::sort(bd.begin(), bd.end());
  const mcs_model model = build_mcs_model(tree, bd);
  EXPECT_NE(mcs_model_signature(model, 24.0, 1e-10),
            mcs_model_signature(model, 48.0, 1e-10));
  EXPECT_NE(mcs_model_signature(model, 24.0, 1e-10),
            mcs_model_signature(model, 24.0, 1e-8));
  EXPECT_EQ(mcs_model_signature(model, 24.0, 1e-10),
            mcs_model_signature(model, 24.0, 1e-10));
}

TEST(QuantificationCache, FallbackDoesNotPoisonCache) {
  // Force the conservative fallback on every dynamic cutset by making the
  // product state limit impossible to meet: the bound must be returned
  // deterministically, and nothing may be stored in the cache — a later
  // engine with a real budget has to re-attempt the exact solve.
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options strangled;
  strangled.max_product_states = 1;
  analysis_engine engine(strangled);

  const analysis_result first = engine.run(tree);
  EXPECT_GT(first.stats.failed_quantifications, 0u);
  EXPECT_EQ(engine.cache().size(), 0u);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  EXPECT_GT(first.stats.cache_misses, 0u);

  // Re-running is deterministic and still never hits: the fallback path
  // is cache-bypassed, not cached-as-zero or cached-as-bound.
  const analysis_result second = engine.run(tree);
  EXPECT_EQ(second.failure_probability, first.failure_probability);
  EXPECT_EQ(second.stats.cache_hits, 0u);
  EXPECT_EQ(engine.cache().size(), 0u);

  // The bound is conservative: at least the exact probability.
  const double exact = analyze(tree, analysis_options{}).failure_probability;
  EXPECT_GE(first.failure_probability, exact);

  // A fresh engine with the default budget solves exactly again — no
  // poisoned entry can shadow the real solve (misses, then stores).
  analysis_engine healthy{analysis_options{}};
  const analysis_result third = healthy.run(tree);
  EXPECT_EQ(third.stats.failed_quantifications, 0u);
  EXPECT_GT(healthy.cache().size(), 0u);
  EXPECT_NEAR(third.failure_probability, exact, 1e-15);
}

TEST(QuantificationCache, ClearResetsCountersAndEntries) {
  quantification_cache cache;
  cache.store("k", {0.5, 3});
  ASSERT_TRUE(cache.find("k").has_value());
  EXPECT_EQ(cache.hits(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.find("k").has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

// --- Engine stats and compatibility --------------------------------------

TEST(EngineStats, MirrorsLegacyFieldsAndCountsStages) {
  analysis_options opts;
  opts.horizon = 24.0;
  opts.threads = 2;
  const analysis_result result = analyze(testing::example3_sd(), opts);
  EXPECT_EQ(result.stats.backend, "mocus");
  EXPECT_EQ(result.stats.num_cutsets, result.num_cutsets);
  EXPECT_EQ(result.stats.static_cutsets + result.stats.dynamic_cutsets,
            result.num_cutsets);
  EXPECT_EQ(result.stats.dynamic_cutsets, result.num_dynamic_cutsets);
  EXPECT_EQ(result.stats.failed_quantifications, 0u);
  EXPECT_EQ(result.stats.pool_threads, 2u);
  EXPECT_DOUBLE_EQ(result.mcs_seconds, result.stats.generate_seconds);
  EXPECT_DOUBLE_EQ(result.quantify_seconds, result.stats.quantify_seconds);
  EXPECT_EQ(result.mocus_partials, result.stats.source_partials);
  EXPECT_GE(result.stats.total_seconds, 0.0);
}

TEST(EngineStats, HitRate) {
  engine_stats stats;
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.0);
  stats.cache_hits = 3;
  stats.cache_misses = 1;
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.75);
}

TEST(Engine, AnalyzeWrapperMatchesEngineRun) {
  const sd_fault_tree tree = testing::example3_sd();
  analysis_options opts;
  opts.horizon = 24.0;
  analysis_engine engine(opts);
  EXPECT_NEAR(engine.run(tree).failure_probability,
              analyze(tree, opts).failure_probability, 1e-15);
}

}  // namespace
}  // namespace sdft
