#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "obs/obs.hpp"
#include "util/json.hpp"

namespace sdft {
namespace {

// Every test both enables recording and restores the disabled default, so
// the order of tests within this binary does not matter.
struct obs_session {
  obs_session() {
    obs::set_enabled(true);
    obs::trace_recorder::instance().clear();
    obs::metrics_registry::global().reset();
  }
  ~obs_session() { obs::set_enabled(false); }
};

std::vector<obs::span_record> spans_named(
    const std::vector<obs::span_record>& all, const char* name) {
  std::vector<obs::span_record> out;
  for (const auto& s : all) {
    if (std::strcmp(s.name, name) == 0) out.push_back(s);
  }
  return out;
}

TEST(ObsSpans, NestedSpansLinkToEnclosingSpan) {
  const obs_session session;
  {
    obs::span_scope outer("outer", "test");
    obs::span_scope inner("inner", "test");
    obs::span_scope leaf("leaf", "test");
    EXPECT_TRUE(outer.active());
    EXPECT_NE(outer.id(), 0u);
  }
  const auto spans = obs::trace_recorder::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);

  const auto outer = spans_named(spans, "outer").at(0);
  const auto inner = spans_named(spans, "inner").at(0);
  const auto leaf = spans_named(spans, "leaf").at(0);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(leaf.parent, inner.id);

  std::set<std::uint64_t> ids;
  for (const auto& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id";
    EXPECT_GE(s.duration_ns, 0u);
  }
  // Enclosing spans close last, so they last at least as long as children.
  EXPECT_GE(outer.duration_ns, inner.duration_ns);
  EXPECT_GE(inner.duration_ns, leaf.duration_ns);
}

TEST(ObsSpans, SiblingSpansShareOneParent) {
  const obs_session session;
  {
    obs::span_scope parent("parent", "test");
    { obs::span_scope a("a", "test"); }
    { obs::span_scope b("b", "test"); }
  }
  const auto spans = obs::trace_recorder::instance().snapshot();
  const auto parent = spans_named(spans, "parent").at(0);
  EXPECT_EQ(spans_named(spans, "a").at(0).parent, parent.id);
  EXPECT_EQ(spans_named(spans, "b").at(0).parent, parent.id);
}

TEST(ObsSpans, AmbientParentAdoptsSpansOnOtherThreads) {
  const obs_session session;
  std::uint64_t stage_id = 0;
  {
    obs::span_scope stage("stage", "test");
    stage_id = stage.id();
    const obs::ambient_parent_scope ambient(stage.id());
    std::thread worker([] {
      obs::set_thread_label("obs-test-worker");
      obs::span_scope task("task", "test");
    });
    worker.join();
  }
  const auto spans = obs::trace_recorder::instance().snapshot();
  const auto task = spans_named(spans, "task").at(0);
  const auto stage = spans_named(spans, "stage").at(0);
  EXPECT_EQ(task.parent, stage_id);
  EXPECT_NE(task.tid, stage.tid);

  const auto labels = obs::trace_recorder::instance().thread_labels();
  const bool labelled =
      std::any_of(labels.begin(), labels.end(), [&](const auto& kv) {
        return kv.first == task.tid && kv.second == "obs-test-worker";
      });
  EXPECT_TRUE(labelled);
}

TEST(ObsSpans, DisabledRecordingKeepsBufferEmpty) {
  const obs_session session;
  obs::set_enabled(false);
  {
    obs::span_scope span("invisible", "test");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(obs::trace_recorder::instance().size(), 0u);
}

TEST(ObsSpans, ArgsAreCappedAtCapacity) {
  const obs_session session;
  {
    obs::span_scope span("saturated", "test");
    for (int i = 0; i < 10; ++i) span.arg("k", static_cast<double>(i));
  }
  const auto spans = obs::trace_recorder::instance().snapshot();
  EXPECT_EQ(spans.at(0).args.count, obs::span_args::capacity);
}

TEST(ObsSpans, ChromeJsonExportParsesAndCarriesSpanIds) {
  const obs_session session;
  {
    obs::span_scope outer("outer", "test");
    outer.arg("cutsets", 42.0);
    obs::span_scope inner("inner", "test");
  }
  std::ostringstream out;
  obs::trace_recorder::instance().write_chrome_json(out);

  const json::value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  std::size_t complete = 0;
  double outer_id = 0.0;
  for (const auto& e : events) {
    if (e.at("ph").as_string() != "X") continue;
    ++complete;
    EXPECT_GE(e.at("dur").as_number(), 0.0);
    if (e.at("name").as_string() == "outer") {
      outer_id = e.at("args").at("span_id").as_number();
      EXPECT_EQ(e.at("args").at("cutsets").as_number(), 42.0);
    }
  }
  EXPECT_EQ(complete, 2u);
  for (const auto& e : events) {
    if (e.at("ph").as_string() == "X" && e.at("name").as_string() == "inner") {
      EXPECT_EQ(e.at("args").at("parent_id").as_number(), outer_id);
    }
  }
}

TEST(ObsMetrics, CountersGaugesAndHistograms) {
  obs::metrics_registry registry;
  obs::counter& c = registry.get_counter("test.count");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  // Lookup is stable: the same name resolves to the same instrument.
  EXPECT_EQ(&registry.get_counter("test.count"), &c);

  registry.set_gauge("test.gauge", 0.75);
  EXPECT_DOUBLE_EQ(registry.get_gauge("test.gauge").value(), 0.75);

  obs::histogram& h = registry.get_histogram("test.hist");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);

  registry.set_label("test.label", "mocus");
  EXPECT_EQ(registry.label("test.label"), "mocus");

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(registry.label("test.label"), "");
}

TEST(ObsMetrics, JsonDumpRoundTripsThroughParser) {
  obs::metrics_registry registry;
  registry.get_counter("a.count").add(7);
  registry.set_gauge("b.gauge", 2.5);
  registry.get_histogram("c.hist").observe(4.0);
  registry.set_label("d.label", "bdd");

  const json::value doc = json::parse(registry.to_json());
  EXPECT_EQ(doc.at("a.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("b.gauge").as_number(), 2.5);
  EXPECT_EQ(doc.at("c.hist").at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(doc.at("c.hist").at("mean").as_number(), 4.0);
  EXPECT_EQ(doc.at("d.label").as_string(), "bdd");
}

analysis_result run_bwr(std::size_t threads) {
  bwr_options bopt;
  bopt.dynamic_events = true;
  bopt = with_bwr_triggers(bopt, 2);
  analysis_options aopt;
  aopt.cutoff = 1e-10;
  aopt.threads = threads;
  return analyze(make_bwr_model(bopt), aopt);
}

TEST(ObsEngine, BwrRunEmitsOneSpanPerStageWithMatchingParents) {
  const obs_session session;
  const analysis_result result = run_bwr(8);
  ASSERT_GT(result.num_cutsets, 0u);

  const auto spans = obs::trace_recorder::instance().snapshot();
  const auto runs = spans_named(spans, "engine.run");
  ASSERT_EQ(runs.size(), 1u);
  for (const char* stage : {"engine.translate", "engine.generate",
                            "engine.quantify", "engine.sum"}) {
    const auto matches = spans_named(spans, stage);
    ASSERT_EQ(matches.size(), 1u) << stage;
    EXPECT_EQ(matches.at(0).parent, runs.at(0).id) << stage;
    EXPECT_GE(matches.at(0).duration_ns, 0u) << stage;
    EXPECT_LE(matches.at(0).duration_ns, runs.at(0).duration_ns) << stage;
  }
  // Pool-side spans attach below the stages, never float as roots.
  for (const char* worker_span : {"mocus.task", "quant.mcs"}) {
    for (const auto& s : spans_named(spans, worker_span)) {
      EXPECT_NE(s.parent, 0u) << worker_span;
    }
  }
  EXPECT_FALSE(spans_named(spans, "quant.mcs").empty());
}

TEST(ObsEngine, PublishCoversEveryEngineStatsMetric) {
  const obs_session session;
  const analysis_result result = run_bwr(4);
  const auto names = obs::metrics_registry::global().names();
  for (const auto& [name, value] : result.stats.metrics()) {
    (void)value;
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end())
        << "metric '" << name << "' not published";
  }
  EXPECT_EQ(obs::metrics_registry::global().label("engine.backend"), "mocus");
  EXPECT_EQ(obs::metrics_registry::global()
                .get_counter("engine.cutsets")
                .value(),
            result.num_cutsets);
}

TEST(ObsEngine, TracingDoesNotPerturbDeterminism) {
  // Bit-exact across thread counts and across the tracing switch.
  const double p_serial_off = run_bwr(1).failure_probability;
  const obs_session session;
  const double p_traced_8 = run_bwr(8).failure_probability;
  obs::trace_recorder::instance().clear();
  const double p_traced_8_again = run_bwr(8).failure_probability;
  EXPECT_EQ(p_serial_off, p_traced_8);
  EXPECT_EQ(p_traced_8, p_traced_8_again);
}

}  // namespace
}  // namespace sdft
