#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/analyzer.hpp"
#include "ft/parser.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "sdft/classify.hpp"
#include "sdft/translate.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(Bwr, StaticModelShape) {
  const sd_fault_tree tree = make_bwr_model({});
  EXPECT_TRUE(tree.dynamic_events().empty());
  EXPECT_GT(tree.structure().num_basic_events(), 40u);
  EXPECT_GT(tree.structure().num_gates(), 30u);
  const auto mcs = mocus(tree.structure());
  EXPECT_GT(mcs.cutsets.size(), 100u);
}

TEST(Bwr, DynamicVariantHasSameStructure) {
  bwr_options opts;
  opts.dynamic_events = true;
  opts.repair_rate = 0.01;
  const sd_fault_tree dyn = make_bwr_model(opts);
  const sd_fault_tree stat = make_bwr_model({});
  EXPECT_EQ(dyn.structure().size(), stat.structure().size());
  // Pumps (10), diesels (2) and FEED&BLEED (1) are dynamic.
  EXPECT_EQ(dyn.dynamic_events().size(), 13u);
  EXPECT_TRUE(dyn.triggered_events(dyn.structure().find("ECC_T1_F")).empty());
}

TEST(Bwr, TriggerSwitchesWireTrains) {
  bwr_options opts;
  opts.dynamic_events = true;
  opts = with_bwr_triggers(opts, bwr_num_triggers);  // all six triggers
  const sd_fault_tree tree = make_bwr_model(opts);
  const auto& ft = tree.structure();
  // Every system's second-train FIO is triggered by the first train.
  for (const char* sys : {"ECC", "EFW", "RHR", "SWS", "CCW"}) {
    const node_index fio = ft.find(std::string(sys) + "_T2_FIO");
    ASSERT_NE(fio, fault_tree::npos) << sys;
    EXPECT_EQ(tree.trigger_gate_of(fio),
              ft.find(std::string(sys) + "_T1_F"))
        << sys;
  }
  EXPECT_EQ(tree.trigger_gate_of(ft.find("FB_FIO")), ft.find("RHR_F"));
  tree.validate();
}

TEST(Bwr, TriggerClassesMatchPaperSetup) {
  bwr_options opts;
  opts.dynamic_events = true;
  opts = with_bwr_triggers(opts, bwr_num_triggers);
  const sd_fault_tree tree = make_bwr_model(opts);
  const auto& ft = tree.structure();
  // Train gates of ECC (with support systems beneath) have static joins
  // but not static branching: several dynamic inputs under one OR.
  const node_index ecc_t1 = ft.find("ECC_T1_F");
  EXPECT_FALSE(has_static_branching(tree, ecc_t1));
  EXPECT_TRUE(has_static_joins(tree, ecc_t1));
  // The FEED&BLEED trigger (whole RHR system) has static branching.
  EXPECT_TRUE(has_static_branching(tree, ft.find("RHR_F")));
}

TEST(Bwr, CumulativeTriggerCountMatches) {
  for (int count = 0; count <= bwr_num_triggers; ++count) {
    bwr_options opts;
    opts.dynamic_events = true;
    opts = with_bwr_triggers(opts, count);
    const sd_fault_tree tree = make_bwr_model(opts);
    std::size_t triggered = 0;
    for (node_index e : tree.dynamic_events()) {
      if (tree.trigger_gate_of(e) != fault_tree::npos) ++triggered;
    }
    EXPECT_EQ(triggered, static_cast<std::size_t>(count));
  }
}

TEST(Bwr, StaticAndWorstCaseDynamicAgree) {
  // With no repairs and no triggers, the FT-bar of the dynamic model must
  // carry exactly the static model's probabilities (1 - e^{-lambda t}).
  bwr_options opts;
  opts.dynamic_events = true;
  opts.repair_rate = 0.0;
  const sd_fault_tree dyn = make_bwr_model(opts);
  const sd_fault_tree stat = make_bwr_model({});
  const static_translation tr = translate_to_static(dyn, opts.horizon);
  for (node_index e : dyn.dynamic_events()) {
    const node_index same = stat.structure().find(
        dyn.structure().node(e).name);
    ASSERT_NE(same, fault_tree::npos);
    EXPECT_NEAR(tr.worst_case.at(e),
                stat.structure().node(same).probability, 1e-10)
        << dyn.structure().node(e).name;
  }
}

TEST(Bwr, RejectsBadOptions) {
  bwr_options opts;
  opts.phases = 0;
  EXPECT_THROW(make_bwr_model(opts), model_error);
  EXPECT_THROW(with_bwr_triggers({}, 7), model_error);
}

TEST(Industrial, DeterministicForSeed) {
  industrial_options opts;
  opts.seed = 7;
  const industrial_model m1 = generate_industrial(opts);
  const industrial_model m2 = generate_industrial(opts);
  EXPECT_EQ(m1.ft.size(), m2.ft.size());
  EXPECT_EQ(m1.fio_events, m2.fio_events);
  EXPECT_EQ(write_fault_tree(m1.ft), write_fault_tree(m2.ft));
  opts.seed = 8;
  const industrial_model m3 = generate_industrial(opts);
  EXPECT_NE(write_fault_tree(m1.ft), write_fault_tree(m3.ft));
}

TEST(Industrial, ShapeScalesWithOptions) {
  industrial_options small;
  small.num_frontline_systems = 6;
  small.num_initiating_events = 4;
  small.sequences_per_ie = 3;
  const industrial_model m = generate_industrial(small);
  m.ft.validate();
  EXPECT_GT(m.ft.num_basic_events(), 50u);
  EXPECT_GT(m.ft.num_gates(), m.ft.num_basic_events());
  EXPECT_FALSE(m.fio_events.empty());
  for (node_index e : m.fio_events) {
    EXPECT_TRUE(m.ft.is_basic(e));
    EXPECT_GT(m.fio_rate.at(e), 0.0);
    EXPECT_TRUE(m.component_gate.count(e));
  }
}

TEST(Industrial, RedundancyGroupsSpanTrains) {
  industrial_options opts;
  opts.num_frontline_systems = 6;
  opts.num_initiating_events = 4;
  opts.sequences_per_ie = 3;
  const industrial_model m = generate_industrial(opts);
  std::unordered_map<int, int> group_sizes;
  for (node_index e : m.fio_events) ++group_sizes[m.redundancy_group.at(e)];
  // Systems have at least two trains, so every group that exists has at
  // least two symmetric members.
  int multi = 0;
  for (const auto& [group, size] : group_sizes) {
    EXPECT_GE(size, 2) << "group " << group;
    multi += size >= 2;
  }
  EXPECT_GT(multi, 0);
}

class IndustrialAnnotated : public ::testing::Test {
 protected:
  IndustrialAnnotated() {
    industrial_options opts;
    opts.num_frontline_systems = 8;
    opts.num_support_systems = 3;
    opts.num_initiating_events = 5;
    opts.sequences_per_ie = 4;
    opts.seed = 11;
    model_ = generate_industrial(opts);
    mocus_options mopts;
    mopts.cutoff = 1e-15;
    cutsets_ = mocus(model_.ft, mopts).cutsets;
    ranked_ = rank_by_fussell_vesely(model_.ft, cutsets_);
  }

  industrial_model model_;
  std::vector<cutset> cutsets_;
  std::vector<node_index> ranked_;
};

TEST_F(IndustrialAnnotated, FractionControlsDynamicCount) {
  annotation_options a;
  a.dynamic_fraction = 0.25;
  a.trigger_fraction = 0.0;
  const sd_fault_tree tree = annotate_dynamic(model_, ranked_, a);
  const auto expected = static_cast<std::size_t>(
      std::llround(0.25 * static_cast<double>(model_.fio_events.size())));
  EXPECT_EQ(tree.dynamic_events().size(), expected);
}

TEST_F(IndustrialAnnotated, SelectsHighestImportanceEvents) {
  annotation_options a;
  a.dynamic_fraction = 0.2;
  a.trigger_fraction = 0.0;
  const sd_fault_tree tree = annotate_dynamic(model_, ranked_, a);
  // The selected events must be a prefix of the FIO-filtered ranking.
  const std::vector<node_index> dynamic_events = tree.dynamic_events();
  const std::unordered_set<node_index> dynamic(dynamic_events.begin(),
                                               dynamic_events.end());
  std::size_t seen = 0;
  for (node_index b : ranked_) {
    if (!model_.fio_rate.count(b)) continue;
    if (seen < dynamic.size()) {
      EXPECT_TRUE(dynamic.count(b)) << "rank position " << seen;
    }
    if (++seen >= dynamic.size()) break;
  }
}

TEST_F(IndustrialAnnotated, TriggerChainsStayInsideGroups) {
  annotation_options a;
  a.dynamic_fraction = 0.5;
  a.trigger_fraction = 0.3;
  const sd_fault_tree tree = annotate_dynamic(model_, ranked_, a);
  tree.validate();
  std::size_t triggered = 0;
  for (node_index e : tree.dynamic_events()) {
    const node_index g = tree.trigger_gate_of(e);
    if (g == fault_tree::npos) continue;
    ++triggered;
    // The trigger source is the component gate of a same-group event.
    bool found = false;
    for (node_index other : tree.dynamic_events()) {
      if (other != e && model_.component_gate.count(other) &&
          model_.component_gate.at(other) == g) {
        EXPECT_EQ(model_.redundancy_group.at(other),
                  model_.redundancy_group.at(e));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_GT(triggered, 0u);
  // Chained triggers have static branching (component gate = OR of one
  // static FTS and one dynamic FIO).
  const trigger_report report = analyze_triggers(tree);
  for (const auto& entry : report.gates) {
    EXPECT_EQ(entry.cls, trigger_class::static_branching);
  }
  EXPECT_TRUE(report.efficient);
}

TEST_F(IndustrialAnnotated, PipelineRunsEndToEnd) {
  annotation_options a;
  a.dynamic_fraction = 0.3;
  a.trigger_fraction = 0.1;
  const sd_fault_tree tree = annotate_dynamic(model_, ranked_, a);
  analysis_options opts;
  opts.cutoff = 1e-15;
  opts.threads = 4;
  const analysis_result result = analyze(tree, opts);
  EXPECT_GT(result.num_cutsets, 0u);
  EXPECT_GT(result.num_dynamic_cutsets, 0u);
  EXPECT_GT(result.failure_probability, 0.0);
  EXPECT_LT(result.failure_probability, 1.0);
  for (const auto& q : result.cutsets) EXPECT_TRUE(q.error.empty()) << q.error;
}

}  // namespace
}  // namespace sdft
