#include <gtest/gtest.h>

#include <algorithm>

#include "ft/fault_tree.hpp"
#include "mcs/cutset.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sdft {
namespace {

std::vector<cutset> named(const fault_tree& ft,
                          std::vector<std::vector<std::string>> names) {
  std::vector<cutset> out;
  for (auto& set : names) {
    cutset c;
    for (auto& n : set) c.push_back(ft.find(n));
    std::sort(c.begin(), c.end());
    out.push_back(std::move(c));
  }
  return minimize_cutsets(std::move(out));
}

TEST(Mocus, Example7MinimalCutsets) {
  const fault_tree ft = testing::example1_static();
  const auto result = mocus(ft);
  const auto expected =
      named(ft, {{"e"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}});
  EXPECT_EQ(result.cutsets, expected);
  EXPECT_TRUE(are_minimal_cutsets(ft, result.cutsets));
}

TEST(Mocus, MatchesBruteForceOnExample1) {
  const fault_tree ft = testing::example1_static();
  EXPECT_EQ(mocus(ft).cutsets, minimal_cutsets_brute_force(ft));
}

TEST(Mocus, CutoffDiscardsSmallCutsets) {
  const fault_tree ft = testing::example1_static();
  mocus_options opt;
  opt.cutoff = 1e-5;  // keeps {e}? no: 3e-6 < 1e-5. keeps pairs? ~1e-5..9e-6
  const auto result = mocus(ft, opt);
  for (const auto& c : result.cutsets) {
    EXPECT_GE(cutset_probability(ft, c), opt.cutoff);
  }
  EXPECT_GT(result.cutoff_discarded, 0u);
  EXPECT_LT(result.cutsets.size(), 5u);
}

TEST(Mocus, MaxOrderLimitsCutsetSize) {
  const fault_tree ft = testing::example1_static();
  mocus_options opt;
  opt.max_order = 1;
  const auto result = mocus(ft, opt);
  ASSERT_EQ(result.cutsets.size(), 1u);
  EXPECT_EQ(ft.node(result.cutsets[0][0]).name, "e");
}

TEST(Mocus, SubsumptionOnSharedStructure) {
  // top = OR(x, AND(x, y)): {x} subsumes {x, y}.
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.1);
  const node_index y = ft.add_basic_event("y", 0.1);
  const node_index g = ft.add_gate("g", gate_type::and_gate, {x, y});
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {x, g}));
  const auto result = mocus(ft);
  ASSERT_EQ(result.cutsets.size(), 1u);
  EXPECT_EQ(result.cutsets[0], cutset{x});
}

TEST(Mocus, AssumeFailedConditionsEventsAway) {
  const fault_tree ft = testing::example1_static();
  mocus_options opt;
  opt.assume_failed = {ft.find("a")};
  const auto result = mocus(ft, opt);
  // With a certainly failed: {e}, {c}, {d} remain ({b,*} subsumed).
  const auto expected = named(ft, {{"e"}, {"c"}, {"d"}});
  EXPECT_EQ(result.cutsets, expected);
}

TEST(Mocus, AssumeWorkingPrunesBranches) {
  const fault_tree ft = testing::example1_static();
  mocus_options opt;
  opt.assume_working = {ft.find("e"), ft.find("b"), ft.find("d")};
  const auto result = mocus(ft, opt);
  const auto expected = named(ft, {{"a", "c"}});
  EXPECT_EQ(result.cutsets, expected);
}

TEST(Mocus, EmptyCutsetWhenRootForcedFailed) {
  // Root = OR(a, b) with a assumed failed: the empty set is the only MCS.
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", 0.1);
  const node_index b = ft.add_basic_event("b", 0.1);
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {a, b}));
  mocus_options opt;
  opt.assume_failed = {a};
  const auto result = mocus(ft, opt);
  ASSERT_EQ(result.cutsets.size(), 1u);
  EXPECT_TRUE(result.cutsets[0].empty());
}

TEST(Mocus, NoCutsetsWhenRootCannotFail) {
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", 0.1);
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {a}));
  mocus_options opt;
  opt.assume_working = {a};
  EXPECT_TRUE(mocus(ft, opt).cutsets.empty());
}

TEST(Mocus, FromSubtreeRoot) {
  const fault_tree ft = testing::example1_static();
  const auto result = mocus_from(ft, ft.find("PUMP1"));
  const auto expected = named(ft, {{"a"}, {"b"}});
  EXPECT_EQ(result.cutsets, expected);
}

TEST(Mocus, FromBasicEventRoot) {
  const fault_tree ft = testing::example1_static();
  const auto result = mocus_from(ft, ft.find("a"));
  ASSERT_EQ(result.cutsets.size(), 1u);
  EXPECT_EQ(result.cutsets[0], cutset{ft.find("a")});
}

TEST(Mocus, PartialLimitThrows) {
  const fault_tree ft = testing::example1_static();
  mocus_options opt;
  opt.max_partials = 2;
  EXPECT_THROW(mocus(ft, opt), numeric_error);
}

TEST(Mocus, TinyDedupLimitStaysCorrectAndBounded) {
  // Regression for the dedup_limit clearing edge: a bare visited.clear()
  // also forgot the partials still awaiting expansion, so a shared subtree
  // could re-admit a live stack partial (in the worst case the seed) and
  // re-expand its whole region once per clear. The clear now re-primes the
  // visited set with the live stack keys, so arbitrarily small limits must
  // yield the identical cutset list with bounded duplicate work.
  fault_tree ft;  // AND of shared ORs: every pair path reaches shared partials
  std::vector<node_index> ors;
  std::vector<node_index> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(
        ft.add_basic_event("x" + std::to_string(i), 0.1 + 0.01 * i));
  }
  for (int g = 0; g < 3; ++g) {
    ors.push_back(ft.add_gate("or" + std::to_string(g), gate_type::or_gate,
                              {events[g], events[g + 1]}));
  }
  ft.set_top(ft.add_gate("top", gate_type::and_gate, ors));

  const mocus_result baseline = mocus(ft);
  ASSERT_GT(baseline.cutsets.size(), 0u);
  for (const std::size_t limit : {1, 2, 3, 8}) {
    mocus_options opt;
    opt.dedup_limit = limit;
    const mocus_result limited = mocus(ft, opt);
    EXPECT_EQ(limited.cutsets, baseline.cutsets) << "dedup_limit " << limit;
    // Clears may re-expand partials whose keys were forgotten, but never
    // re-admit live stack work: the blowup stays a small constant factor.
    EXPECT_LE(limited.partials_processed, 20 * baseline.partials_processed)
        << "dedup_limit " << limit;
  }

  // Same contract for the sharded parallel driver.
  thread_pool pool(4);
  mocus_options par;
  par.dedup_limit = 2;
  par.pool = &pool;
  const mocus_result parallel = mocus(ft, par);
  EXPECT_EQ(parallel.cutsets, baseline.cutsets);
}

TEST(Mocus, TinyDedupLimitOnRandomTrees) {
  for (const std::uint64_t seed : {2u, 9u, 17u}) {
    const sd_fault_tree tree = testing::make_random_static_tree(seed, 9, 5);
    const fault_tree& ft = tree.structure();
    const std::vector<cutset> expected = mocus(ft).cutsets;
    mocus_options opt;
    opt.dedup_limit = 1;
    EXPECT_EQ(mocus(ft, opt).cutsets, expected) << "seed " << seed;
  }
}

TEST(MinimizeCutsets, RemovesSupersetsAndDuplicates) {
  std::vector<cutset> sets{{1, 2, 3}, {1, 2}, {1, 2}, {2, 3}, {3}};
  const auto minimal = minimize_cutsets(std::move(sets));
  EXPECT_EQ(minimal, (std::vector<cutset>{{3}, {1, 2}}));
}

TEST(MinimizeCutsets, EmptySetSubsumesEverything) {
  std::vector<cutset> sets{{1, 2}, {}, {3}};
  const auto minimal = minimize_cutsets(std::move(sets));
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_TRUE(minimal[0].empty());
}

TEST(CutsetQuantities, RareEventAndMcub) {
  const fault_tree ft = testing::example1_static();
  const auto cuts = mocus(ft).cutsets;
  const double rea = rare_event_probability(ft, cuts);
  const double mcub = min_cut_upper_bound(ft, cuts);
  const double exact = ft.probability_brute_force();
  EXPECT_GE(rea, exact - 1e-18);
  EXPECT_GE(mcub, exact - 1e-18);
  EXPECT_LE(mcub, rea + 1e-18);
  // Expected rare-event value: p_e + 2*(p_a*p_c-ish products).
  const double expected = testing::p_tank +
                          testing::p_fts * testing::p_fts +
                          2 * testing::p_fts * testing::p_fio +
                          testing::p_fio * testing::p_fio;
  EXPECT_NEAR(rea, expected, 1e-15);
}

/// Random coherent fault tree for property testing.
fault_tree random_tree(rng& random, int num_events, int num_gates) {
  fault_tree ft;
  std::vector<node_index> pool;
  for (int i = 0; i < num_events; ++i) {
    pool.push_back(ft.add_basic_event("e" + std::to_string(i),
                                      random.uniform(0.01, 0.3)));
  }
  node_index last = pool[0];
  for (int g = 0; g < num_gates; ++g) {
    const auto type =
        random.chance(0.5) ? gate_type::and_gate : gate_type::or_gate;
    std::vector<node_index> inputs;
    const int arity = static_cast<int>(random.between(2, 3));
    for (int i = 0; i < arity; ++i) {
      inputs.push_back(pool[random.below(pool.size())]);
    }
    last = ft.add_gate("g" + std::to_string(g), type, inputs);
    pool.push_back(last);
  }
  ft.set_top(last);
  return ft;
}

class MocusRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(MocusRandomTrees, MatchesBruteForce) {
  rng random(static_cast<std::uint64_t>(GetParam()));
  const fault_tree ft = random_tree(random, 8, 6);
  const auto via_mocus = mocus(ft).cutsets;
  const auto via_brute = minimal_cutsets_brute_force(ft);
  EXPECT_EQ(via_mocus, via_brute);
  EXPECT_TRUE(are_minimal_cutsets(ft, via_mocus));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MocusRandomTrees, ::testing::Range(0, 25));

}  // namespace
}  // namespace sdft
