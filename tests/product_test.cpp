#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bdd/ft_bdd.hpp"
#include "ctmc/transient.hpp"
#include "product/product_ctmc.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

/// Finds the index of the product state with the given per-event locals,
/// or npos.
state_index find_state(const product_ctmc& p,
                       const std::vector<std::uint16_t>& locals) {
  for (state_index s = 0; s < p.num_states(); ++s) {
    if (p.state_vector(s) == locals) return s;
  }
  return fault_tree::npos;
}

double rate_between(const product_ctmc& p, state_index from, state_index to) {
  for (const auto& [target, rate] : p.chain.transitions_from(from)) {
    if (target == to) return rate;
  }
  return 0.0;
}

/// The running example's product chain. Event order is a, b, c, d, e with
/// local chains: statics (0 = ok, 1 = fail), b repairable (0 = ok,
/// 1 = fail), d the Example 2 pump (0 = off-ok, 1 = off-fail, 2 = on-ok,
/// 3 = on-fail).
class ProductRunningExample : public ::testing::Test {
 protected:
  ProductRunningExample()
      : tree_(testing::example3_sd()), product_(build_product_ctmc(tree_)) {}

  sd_fault_tree tree_;
  product_ctmc product_;
};

TEST_F(ProductRunningExample, AllStatesConsistent) {
  // d must be switched on exactly in states where PUMP1 (a or b) is failed.
  for (state_index s = 0; s < product_.num_states(); ++s) {
    const auto locals = product_.state_vector(s);
    const bool pump1_failed = locals[0] == 1 || locals[1] == 1;
    const bool d_on = locals[3] >= 2;
    EXPECT_EQ(pump1_failed, d_on) << "state " << s;
  }
}

TEST_F(ProductRunningExample, InitialDistributionSumsToOne) {
  EXPECT_NEAR(product_.chain.initial_mass(), 1.0, 1e-12);
}

TEST_F(ProductRunningExample, InitialRedistributionThroughUpdates) {
  // The combination (a failed, everything else fresh) is inconsistent (d
  // must switch on) and its mass lands on the updated state (Example 5/6).
  const state_index updated = find_state(product_, {1, 0, 0, 2, 0});
  ASSERT_NE(updated, fault_tree::npos);
  const double expected = testing::p_fts * (1 - testing::p_fts) *
                          (1 - testing::p_tank);
  EXPECT_NEAR(product_.chain.initial(updated), expected, 1e-15);
  // No consistent state has d switched on without mass flowing as above:
  // the raw off-state combination must not exist.
  EXPECT_EQ(find_state(product_, {1, 0, 0, 0, 0}), fault_tree::npos);
}

TEST_F(ProductRunningExample, Example6Rates) {
  // s1 = tank failed, everything else fresh; b's failure (rate 0.001)
  // leads to s2 where d has been switched on; repair of b (rate 0.05)
  // leads back; d's failure (rate 0.001) leads on to s3.
  const state_index s1 = find_state(product_, {0, 0, 0, 0, 1});
  const state_index s2 = find_state(product_, {0, 1, 0, 2, 1});
  const state_index s3 = find_state(product_, {0, 1, 0, 3, 1});
  ASSERT_NE(s1, fault_tree::npos);
  ASSERT_NE(s2, fault_tree::npos);
  ASSERT_NE(s3, fault_tree::npos);
  EXPECT_NEAR(rate_between(product_, s1, s2), 1e-3, 1e-15);
  EXPECT_NEAR(rate_between(product_, s2, s1), 5e-2, 1e-15);
  EXPECT_NEAR(rate_between(product_, s2, s3), 1e-3, 1e-15);
}

TEST_F(ProductRunningExample, FailedStatesFailTopGate) {
  // Tank failure alone fails the system; a failed alone does not.
  const state_index tank = find_state(product_, {0, 0, 0, 0, 1});
  const state_index a_only = find_state(product_, {1, 0, 0, 2, 0});
  ASSERT_NE(tank, fault_tree::npos);
  ASSERT_NE(a_only, fault_tree::npos);
  EXPECT_TRUE(product_.chain.failed(tank));
  EXPECT_FALSE(product_.chain.failed(a_only));
  // Both pumps down: failed.
  const state_index both = find_state(product_, {1, 0, 1, 2, 0});
  ASSERT_NE(both, fault_tree::npos);
  EXPECT_TRUE(product_.chain.failed(both));
}

TEST_F(ProductRunningExample, FailureProbabilityIsPlausible) {
  const double t = 24.0;
  const double p = exact_failure_probability(tree_, t);
  // Lower bound: the tank alone.
  EXPECT_GT(p, testing::p_tank * 0.99);
  // Upper bound: rare-event-style sum of the five cutset contributions
  // with each dynamic event bounded by its worst case.
  const double p_dyn = 1.0 - std::exp(-1e-3 * t);
  const double bound = testing::p_tank +
                       testing::p_fts * testing::p_fts +
                       2 * testing::p_fts * p_dyn + p_dyn * p_dyn;
  EXPECT_LT(p, bound * 1.01);
  // Monotonicity in t.
  EXPECT_LT(exact_failure_probability(tree_, 1.0), p);
  EXPECT_LT(p, exact_failure_probability(tree_, 96.0));
}

TEST(Product, StaticOnlyTreeMatchesExactProbability) {
  // With only static events the product chain has zero rates and the
  // failure probability equals the static fault tree probability, at any
  // horizon.
  sd_fault_tree tree(testing::example1_static());
  tree.validate();
  const double expected =
      testing::example1_static().probability_brute_force();
  EXPECT_NEAR(exact_failure_probability(tree, 0.0), expected, 1e-12);
  EXPECT_NEAR(exact_failure_probability(tree, 24.0), expected, 1e-12);
}

TEST(Product, StaticOnlyMatchesBdd) {
  sd_fault_tree tree(testing::example1_static());
  const ft_bdd compiled(tree.structure());
  EXPECT_NEAR(exact_failure_probability(tree, 10.0), compiled.probability(),
              1e-12);
}

TEST(Product, UntriggeredDynamicOnly) {
  // top = OR(x) with a repairable x: failure probability is the
  // exponential first-passage law, repairs notwithstanding.
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(0.02, 0.5));
  tree.set_top(tree.add_gate("top", gate_type::or_gate, {x}));
  tree.validate();
  const double t = 13.0;
  EXPECT_NEAR(exact_failure_probability(tree, t),
              1.0 - std::exp(-0.02 * t), 1e-9);
}

TEST(Product, TriggeredSpareSemiAnalytic) {
  // x triggers y (no repairs anywhere, no standby aging): the system
  // AND(x, y) fails when x fails and then y fails; the time to failure is
  // the sum of two exponentials (hypoexponential).
  const double lx = 0.05;
  const double ly = 0.08;
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(lx, 0.0));
  triggered_ctmc spare;
  spare.chain = ctmc(4);
  spare.chain.set_initial(0, 1.0);
  spare.chain.set_failed(3);
  spare.chain.add_rate(2, 3, ly);
  spare.on_state = {0, 0, 1, 1};
  spare.to_on = {2, 3, 0, 0};
  spare.to_off = {0, 0, 0, 1};
  const node_index y = tree.add_dynamic_event("y", spare);
  const node_index gx = tree.add_gate("GX", gate_type::or_gate, {x});
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {gx, y}));
  tree.set_trigger(gx, y);
  tree.validate();

  const double t = 20.0;
  // P[X + Y <= t] for X ~ Exp(lx), Y ~ Exp(ly):
  const double expected =
      1.0 - (ly * std::exp(-lx * t) - lx * std::exp(-ly * t)) / (ly - lx);
  EXPECT_NEAR(exact_failure_probability(tree, t), expected, 1e-9);
}

TEST(Product, StateLimitEnforced) {
  sd_fault_tree tree = testing::example3_sd();
  product_options opts;
  opts.max_states = 2;
  EXPECT_THROW(build_product_ctmc(tree, opts), numeric_error);
}

TEST(Product, EventOrderCoversAllBasicEvents) {
  const sd_fault_tree tree = testing::example3_sd();
  const product_ctmc p = build_product_ctmc(tree);
  EXPECT_EQ(p.events.size(), 5u);
  EXPECT_EQ(p.stride, 5u);
  EXPECT_EQ(p.locals.size(), p.num_states() * p.stride);
}

}  // namespace
}  // namespace sdft
