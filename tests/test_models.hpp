#pragma once

// Shared model builders for the test suite: the paper's running example
// (Examples 1-7) and small structures exercising the trigger classes of
// Figure 1 / Example 9.

#include "ctmc/ctmc.hpp"
#include "ctmc/triggered.hpp"
#include "ft/fault_tree.hpp"
#include "sdft/sd_fault_tree.hpp"

namespace sdft::testing {

/// Probabilities of the running example (paper Example 1).
inline constexpr double p_fts = 3e-3;   // pumps failing to start (a, c)
inline constexpr double p_fio = 1e-3;   // pumps failing in operation (b, d)
inline constexpr double p_tank = 3e-6;  // water tank (e)

/// The static fault tree of Example 1:
///   COOLING = OR(e, PUMPS), PUMPS = AND(PUMP1, PUMP2),
///   PUMP1 = OR(a, b), PUMP2 = OR(c, d).
inline fault_tree example1_static() {
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", p_fts);
  const node_index b = ft.add_basic_event("b", p_fio);
  const node_index c = ft.add_basic_event("c", p_fts);
  const node_index d = ft.add_basic_event("d", p_fio);
  const node_index e = ft.add_basic_event("e", p_tank);
  const node_index pump1 = ft.add_gate("PUMP1", gate_type::or_gate, {a, b});
  const node_index pump2 = ft.add_gate("PUMP2", gate_type::or_gate, {c, d});
  const node_index pumps =
      ft.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
  ft.set_top(ft.add_gate("COOLING", gate_type::or_gate, {e, pumps}));
  return ft;
}

/// The triggered CTMC of the second pump (paper Example 2): states
/// off-ok(0), off-fail(1), on-ok(2), on-fail(3); failure only while on,
/// repair both while on and while off ("a failed pump is being repaired
/// even if it is not required at the moment").
inline triggered_ctmc example2_pump2(double failure_rate = 1e-3,
                                     double repair_rate = 5e-2) {
  triggered_ctmc m;
  m.chain = ctmc(4);
  m.chain.set_initial(0, 1.0);
  m.chain.set_failed(3);
  m.chain.add_rate(2, 3, failure_rate);
  m.chain.add_rate(3, 2, repair_rate);
  m.chain.add_rate(1, 0, repair_rate);
  m.on_state = {0, 0, 1, 1};
  m.to_on = {2, 3, 0, 0};
  m.to_off = {0, 0, 0, 1};
  m.validate();
  return m;
}

/// The SD fault tree of Example 3: a, c, e static; b a repairable
/// untriggered chain; d the triggered chain of Example 2, triggered by the
/// failure of gate PUMP1.
inline sd_fault_tree example3_sd(double failure_rate = 1e-3,
                                 double repair_rate = 5e-2) {
  sd_fault_tree tree;
  const node_index a = tree.add_static_event("a", p_fts);
  const node_index b = tree.add_dynamic_event(
      "b", make_repairable(failure_rate, repair_rate));
  const node_index c = tree.add_static_event("c", p_fts);
  const node_index d = tree.add_dynamic_event(
      "d", example2_pump2(failure_rate, repair_rate));
  const node_index e = tree.add_static_event("e", p_tank);
  const node_index pump1 =
      tree.add_gate("PUMP1", gate_type::or_gate, {a, b});
  const node_index pump2 =
      tree.add_gate("PUMP2", gate_type::or_gate, {c, d});
  const node_index pumps =
      tree.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
  tree.set_top(tree.add_gate("COOLING", gate_type::or_gate, {e, pumps}));
  tree.set_trigger(pump1, d);
  tree.validate();
  return tree;
}

}  // namespace sdft::testing
