#pragma once

// Shared model builders for the test suite: the paper's running example
// (Examples 1-7), small structures exercising the trigger classes of
// Figure 1 / Example 9, and seeded random tree generators for property
// and determinism tests.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/triggered.hpp"
#include "ft/fault_tree.hpp"
#include "sdft/sd_fault_tree.hpp"
#include "util/rng.hpp"

namespace sdft::testing {

/// Probabilities of the running example (paper Example 1).
inline constexpr double p_fts = 3e-3;   // pumps failing to start (a, c)
inline constexpr double p_fio = 1e-3;   // pumps failing in operation (b, d)
inline constexpr double p_tank = 3e-6;  // water tank (e)

/// The static fault tree of Example 1:
///   COOLING = OR(e, PUMPS), PUMPS = AND(PUMP1, PUMP2),
///   PUMP1 = OR(a, b), PUMP2 = OR(c, d).
inline fault_tree example1_static() {
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", p_fts);
  const node_index b = ft.add_basic_event("b", p_fio);
  const node_index c = ft.add_basic_event("c", p_fts);
  const node_index d = ft.add_basic_event("d", p_fio);
  const node_index e = ft.add_basic_event("e", p_tank);
  const node_index pump1 = ft.add_gate("PUMP1", gate_type::or_gate, {a, b});
  const node_index pump2 = ft.add_gate("PUMP2", gate_type::or_gate, {c, d});
  const node_index pumps =
      ft.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
  ft.set_top(ft.add_gate("COOLING", gate_type::or_gate, {e, pumps}));
  return ft;
}

/// The triggered CTMC of the second pump (paper Example 2): states
/// off-ok(0), off-fail(1), on-ok(2), on-fail(3); failure only while on,
/// repair both while on and while off ("a failed pump is being repaired
/// even if it is not required at the moment").
inline triggered_ctmc example2_pump2(double failure_rate = 1e-3,
                                     double repair_rate = 5e-2) {
  triggered_ctmc m;
  m.chain = ctmc(4);
  m.chain.set_initial(0, 1.0);
  m.chain.set_failed(3);
  m.chain.add_rate(2, 3, failure_rate);
  m.chain.add_rate(3, 2, repair_rate);
  m.chain.add_rate(1, 0, repair_rate);
  m.on_state = {0, 0, 1, 1};
  m.to_on = {2, 3, 0, 0};
  m.to_off = {0, 0, 0, 1};
  m.validate();
  return m;
}

/// The SD fault tree of Example 3: a, c, e static; b a repairable
/// untriggered chain; d the triggered chain of Example 2, triggered by the
/// failure of gate PUMP1.
inline sd_fault_tree example3_sd(double failure_rate = 1e-3,
                                 double repair_rate = 5e-2) {
  sd_fault_tree tree;
  const node_index a = tree.add_static_event("a", p_fts);
  const node_index b = tree.add_dynamic_event(
      "b", make_repairable(failure_rate, repair_rate));
  const node_index c = tree.add_static_event("c", p_fts);
  const node_index d = tree.add_dynamic_event(
      "d", example2_pump2(failure_rate, repair_rate));
  const node_index e = tree.add_static_event("e", p_tank);
  const node_index pump1 =
      tree.add_gate("PUMP1", gate_type::or_gate, {a, b});
  const node_index pump2 =
      tree.add_gate("PUMP2", gate_type::or_gate, {c, d});
  const node_index pumps =
      tree.add_gate("PUMPS", gate_type::and_gate, {pump1, pump2});
  tree.set_top(tree.add_gate("COOLING", gate_type::or_gate, {e, pumps}));
  tree.set_trigger(pump1, d);
  tree.validate();
  return tree;
}

/// Random SD fault tree with a guaranteed-acyclic trigger structure:
/// the events are split into a "source" half (static + untriggered
/// dynamic, combined by a random subtree) and a "target" half (whose
/// dynamic events may be triggered by gates of the source subtree).
struct random_sd_tree {
  sd_fault_tree tree;
  std::size_t num_triggered = 0;
};

inline random_sd_tree make_random_sd_tree(std::uint64_t seed) {
  rng random(seed);
  random_sd_tree out;
  sd_fault_tree& tree = out.tree;

  const auto random_gate_type = [&] {
    return random.chance(0.5) ? gate_type::and_gate : gate_type::or_gate;
  };

  // Source half: 3 leaves (static or untriggered dynamic), 2 gates.
  std::vector<node_index> source_pool;
  for (int i = 0; i < 3; ++i) {
    if (random.chance(0.5)) {
      source_pool.push_back(tree.add_static_event(
          "s" + std::to_string(i), random.uniform(0.02, 0.3)));
    } else {
      source_pool.push_back(tree.add_dynamic_event(
          "x" + std::to_string(i),
          make_repairable(random.uniform(0.02, 0.1),
                          random.chance(0.5) ? random.uniform(0.0, 0.3)
                                             : 0.0)));
    }
  }
  std::vector<node_index> source_gates;
  for (int g = 0; g < 2; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 3)); i < n; ++i) {
      inputs.push_back(source_pool[random.below(source_pool.size())]);
    }
    const node_index gate = tree.add_gate("sg" + std::to_string(g),
                                          random_gate_type(), inputs);
    source_pool.push_back(gate);
    source_gates.push_back(gate);
  }

  // Target half: 3 leaves, dynamic ones may be triggered by source gates.
  std::vector<node_index> target_pool;
  for (int i = 0; i < 3; ++i) {
    const int kind = static_cast<int>(random.between(0, 2));
    if (kind == 0) {
      target_pool.push_back(tree.add_static_event(
          "t" + std::to_string(i), random.uniform(0.02, 0.3)));
    } else if (kind == 1) {
      target_pool.push_back(tree.add_dynamic_event(
          "y" + std::to_string(i),
          make_repairable(random.uniform(0.02, 0.1),
                          random.uniform(0.0, 0.3))));
    } else {
      const node_index e = tree.add_dynamic_event(
          "z" + std::to_string(i),
          make_erlang_triggered(static_cast<int>(random.between(1, 2)),
                                random.uniform(0.02, 0.1),
                                random.uniform(0.0, 0.3), 100.0));
      tree.set_trigger(source_gates[random.below(source_gates.size())], e);
      target_pool.push_back(e);
      ++out.num_triggered;
    }
  }
  std::vector<node_index> target_gates;
  for (int g = 0; g < 2; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 3)); i < n; ++i) {
      inputs.push_back(target_pool[random.below(target_pool.size())]);
    }
    const node_index gate = tree.add_gate("tg" + std::to_string(g),
                                          random_gate_type(), inputs);
    target_pool.push_back(gate);
    target_gates.push_back(gate);
  }

  tree.set_top(tree.add_gate(
      "top", random_gate_type(),
      {source_gates.back(), target_gates.back()}));
  tree.validate();
  return out;
}

/// Random purely static SD fault tree: `num_events` basic events combined
/// by a layer of random AND/OR gates; every gate not referenced by a later
/// gate feeds the OR top, so the whole tree is reachable from the top (a
/// requirement of the OpenPSA round trip). Used by the parser round-trip
/// and determinism tests.
inline sd_fault_tree make_random_static_tree(std::uint64_t seed,
                                             std::size_t num_events = 8,
                                             std::size_t num_gates = 5) {
  rng random(seed);
  sd_fault_tree tree;
  std::vector<node_index> pool;
  for (std::size_t i = 0; i < num_events; ++i) {
    pool.push_back(tree.add_static_event("e" + std::to_string(i),
                                         random.uniform(1e-4, 0.3)));
  }
  std::vector<node_index> gates;
  std::vector<node_index> referenced;
  for (std::size_t g = 0; g < num_gates; ++g) {
    std::vector<node_index> inputs;
    const std::size_t n = random.between(2, 4);
    for (std::size_t i = 0; i < n; ++i) {
      node_index pick = pool[random.below(pool.size())];
      if (std::find(inputs.begin(), inputs.end(), pick) == inputs.end()) {
        inputs.push_back(pick);
      }
    }
    if (inputs.size() < 2) inputs.push_back(pool[random.below(num_events)]);
    const node_index gate = tree.add_gate(
        "g" + std::to_string(g),
        random.chance(0.5) ? gate_type::and_gate : gate_type::or_gate,
        inputs);
    referenced.insert(referenced.end(), inputs.begin(), inputs.end());
    pool.push_back(gate);
    gates.push_back(gate);
  }
  std::vector<node_index> top_inputs;
  for (node_index gate : gates) {
    if (std::find(referenced.begin(), referenced.end(), gate) ==
        referenced.end()) {
      top_inputs.push_back(gate);
    }
  }
  if (top_inputs.empty()) top_inputs.push_back(gates.back());
  tree.set_top(tree.add_gate("top", gate_type::or_gate, top_inputs));
  tree.validate();
  return tree;
}

}  // namespace sdft::testing
