// Tests of the stage-3 fast paths: symmetry lumping of exchangeable
// components in the product chain, the packed 64-bit state keys (and their
// vector-key fallback), and the interaction of both with attribution and
// the analysis engine. The central property is exactness: lumping is a
// quotient by model automorphisms, so lumped and unlumped probabilities
// agree up to roundoff.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/mcs_model.hpp"
#include "ctmc/transient.hpp"
#include "engine/engine.hpp"
#include "engine/quant_cache.hpp"
#include "product/product_ctmc.hpp"
#include "test_models.hpp"
#include "util/rng.hpp"

namespace sdft {
namespace {

/// k identical standby trains behind one primary: the trains share the
/// trigger gate GP (they switch on when the primary fails) and sit
/// symmetrically under the top AND, so they form one orbit of size k.
sd_fault_tree make_standby_trains(std::size_t k, double primary_rate,
                                  double failure_rate, double repair_rate) {
  sd_fault_tree tree;
  const node_index primary =
      tree.add_dynamic_event("primary", make_repairable(primary_rate, 0.0));
  const node_index gp =
      tree.add_gate("GP", gate_type::or_gate, {primary});
  std::vector<node_index> top_inputs{gp};
  for (std::size_t i = 0; i < k; ++i) {
    const node_index train = tree.add_dynamic_event(
        "train" + std::to_string(i),
        testing::example2_pump2(failure_rate, repair_rate));
    tree.set_trigger(gp, train);
    top_inputs.push_back(train);
  }
  tree.set_top(tree.add_gate("top", gate_type::and_gate, top_inputs));
  tree.validate();
  return tree;
}

double relative_gap(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

TEST(Lumping, DetectsTheTrainOrbit) {
  const sd_fault_tree tree = make_standby_trains(3, 0.01, 0.002, 0.05);
  const product_ctmc lumped = build_product_ctmc(tree);
  EXPECT_EQ(lumped.lumped_orbits, 1u);
  EXPECT_EQ(lumped.lumped_components, 3u);

  product_options off;
  off.lump_symmetry = false;
  const product_ctmc full = build_product_ctmc(tree, off);
  EXPECT_EQ(full.lumped_orbits, 0u);
  EXPECT_LT(lumped.num_states(), full.num_states());
}

TEST(Lumping, QuotientGrowsPolynomiallyInK) {
  // While the primary works the trains sit fresh in standby (they can
  // only fail while on), so the reachable unlumped space is 1 + 2^k —
  // exponential in k — while the quotient is 1 + (k + 1): the number of
  // failed trains is all that matters.
  product_options off;
  off.lump_symmetry = false;
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    const sd_fault_tree tree = make_standby_trains(k, 0.01, 0.002, 0.05);
    const product_ctmc lumped = build_product_ctmc(tree);
    const product_ctmc full = build_product_ctmc(tree, off);
    EXPECT_EQ(full.num_states(), 1u + (1u << k)) << "k=" << k;
    EXPECT_EQ(lumped.num_states(), k + 2u) << "k=" << k;
  }
}

TEST(Lumping, MatchesUnlumpedProbabilityExactly) {
  // The acceptance bar of this stage: 1e-12 relative agreement between
  // lumped and unlumped solves across k and randomised rates.
  rng random(20260806);
  for (std::size_t k : {2u, 3u, 4u}) {
    for (int trial = 0; trial < 4; ++trial) {
      const double primary_rate = random.uniform(0.005, 0.1);
      const double failure_rate = random.uniform(0.001, 0.05);
      const double repair_rate =
          random.chance(0.5) ? random.uniform(0.0, 0.2) : 0.0;
      const sd_fault_tree tree =
          make_standby_trains(k, primary_rate, failure_rate, repair_rate);

      product_options on;
      product_options off;
      off.lump_symmetry = false;
      const double horizon = random.uniform(10.0, 100.0);
      const double lumped =
          exact_failure_probability(tree, horizon, 1e-14, on);
      const double full =
          exact_failure_probability(tree, horizon, 1e-14, off);
      EXPECT_LT(relative_gap(lumped, full), 1e-12)
          << "k=" << k << " trial=" << trial << " lumped=" << lumped
          << " full=" << full;
    }
  }
}

TEST(Lumping, InitialMassSurvivesOrbitCollapse) {
  // Statics with 0 < p < 1 put mass on every orbit count class; the
  // multinomial weights must reassemble to exactly 1.
  sd_fault_tree tree;
  std::vector<node_index> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(tree.add_static_event("s" + std::to_string(i), 0.3));
  }
  inputs.push_back(tree.add_dynamic_event("x", make_repairable(0.05, 0.0)));
  tree.set_top(tree.add_gate("top", gate_type::and_gate, inputs));
  tree.validate();

  const product_ctmc lumped = build_product_ctmc(tree);
  EXPECT_EQ(lumped.lumped_orbits, 1u);
  EXPECT_EQ(lumped.lumped_components, 4u);
  EXPECT_NEAR(lumped.chain.initial_mass(), 1.0, 1e-12);

  product_options off;
  off.lump_symmetry = false;
  const double horizon = 40.0;
  EXPECT_LT(relative_gap(exact_failure_probability(tree, horizon, 1e-14),
                         exact_failure_probability(tree, horizon, 1e-14, off)),
            1e-12);
}

TEST(Lumping, AsymmetricRatesDoNotLump) {
  // Same shape, but each train gets its own failure rate: no orbit, and
  // the builder must not pretend otherwise.
  sd_fault_tree tree;
  const node_index primary =
      tree.add_dynamic_event("primary", make_repairable(0.01, 0.0));
  const node_index gp = tree.add_gate("GP", gate_type::or_gate, {primary});
  std::vector<node_index> top_inputs{gp};
  for (int i = 0; i < 3; ++i) {
    const node_index train = tree.add_dynamic_event(
        "train" + std::to_string(i),
        testing::example2_pump2(0.002 * (i + 1), 0.05));
    tree.set_trigger(gp, train);
    top_inputs.push_back(train);
  }
  tree.set_top(tree.add_gate("top", gate_type::and_gate, top_inputs));
  tree.validate();

  const product_ctmc p = build_product_ctmc(tree);
  EXPECT_EQ(p.lumped_orbits, 0u);
  EXPECT_EQ(p.lumped_components, 0u);
}

// --- Packed 64-bit state keys --------------------------------------------

TEST(PackedKeys, SameChainAsVectorKeys) {
  // Discovery is BFS in both key modes, so the chains must be
  // bit-identical: same state order, same arena, same rates.
  const sd_fault_tree tree = make_standby_trains(3, 0.01, 0.002, 0.05);
  product_options packed;
  product_options fallback;
  fallback.packed_state_keys = false;
  const product_ctmc a = build_product_ctmc(tree, packed);
  const product_ctmc b = build_product_ctmc(tree, fallback);
  EXPECT_TRUE(a.packed_keys);
  EXPECT_FALSE(b.packed_keys);
  ASSERT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.locals, b.locals);
  EXPECT_EQ(a.events, b.events);
  for (state_index s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.chain.transitions_from(s), b.chain.transitions_from(s));
    EXPECT_EQ(a.chain.initial(s), b.chain.initial(s));
    EXPECT_EQ(a.chain.failed(s), b.chain.failed(s));
  }
  EXPECT_EQ(exact_failure_probability(tree, 24.0, 1e-12, packed),
            exact_failure_probability(tree, 24.0, 1e-12, fallback));
}

TEST(PackedKeys, OverflowFallsBackToVectorKeys) {
  // 65 static components plus one dynamic need more than 64 bits, so the
  // builder must fall back even though packing was requested.
  sd_fault_tree tree;
  std::vector<node_index> inputs;
  for (int i = 0; i < 65; ++i) {
    inputs.push_back(tree.add_static_event("s" + std::to_string(i), 0.0));
  }
  inputs.push_back(tree.add_dynamic_event("x", make_repairable(0.05, 0.02)));
  tree.set_top(tree.add_gate("top", gate_type::or_gate, inputs));
  tree.validate();

  const product_ctmc p = build_product_ctmc(tree);
  EXPECT_FALSE(p.packed_keys);
  const double t = 13.0;
  EXPECT_NEAR(exact_failure_probability(tree, t),
              1.0 - std::exp(-0.05 * t), 1e-9);
}

// --- Attribution (lumping pinned off) ------------------------------------

TEST(Attribution, LumpingDisabledAndMassesSymmetric) {
  // Attribution needs per-component sinks, so the builder disables
  // lumping there: every train keeps its own sink, and exchangeable
  // trains receive (numerically) identical masses.
  const sd_fault_tree tree = make_standby_trains(3, 0.02, 0.004, 0.03);
  const double t = 48.0;
  const attribution_result attr = failure_attribution(tree, t);

  std::vector<double> train_masses;
  for (const auto& [event, mass] : attr.by_event) {
    if (tree.structure().node(event).name.rfind("train", 0) == 0) {
      train_masses.push_back(mass);
    }
  }
  ASSERT_EQ(train_masses.size(), 3u);
  EXPECT_NEAR(train_masses[0], train_masses[1], 1e-12);
  EXPECT_NEAR(train_masses[1], train_masses[2], 1e-12);

  // Total first-failure mass agrees with the (lumped) reachability.
  EXPECT_NEAR(attr.total, exact_failure_probability(tree, t), 1e-8);
}

// --- Engine integration ---------------------------------------------------

TEST(Lumping, EngineAggregatesCountersAndAgreesWithUnlumped) {
  const sd_fault_tree tree = make_standby_trains(3, 0.01, 0.002, 0.05);
  analysis_options on;
  on.cache_quantifications = false;
  analysis_options off = on;
  off.lump_symmetry = false;

  const analysis_result lumped = analyze(tree, on);
  const analysis_result full = analyze(tree, off);
  EXPECT_LT(relative_gap(lumped.failure_probability,
                         full.failure_probability),
            1e-10);
  EXPECT_GT(lumped.stats.lumped_orbits, 0u);
  EXPECT_GT(lumped.stats.lumped_cutsets, 0u);
  EXPECT_EQ(full.stats.lumped_orbits, 0u);
  EXPECT_GT(lumped.stats.packed_key_chains, 0u);
  EXPECT_EQ(lumped.stats.vector_key_chains, 0u);
}

TEST(Lumping, SignatureSeparatesLumpingModes) {
  // Lumped and unlumped solves agree only up to roundoff, so the
  // quantification cache must never alias them.
  const sd_fault_tree tree = make_standby_trains(2, 0.01, 0.002, 0.05);
  const cutset every_event = [&] {
    cutset c;
    for (node_index b : tree.structure().basic_events()) c.push_back(b);
    return c;
  }();
  const mcs_model model =
      build_mcs_model(tree, every_event, approx_mode::as_classified);
  const std::string lumped =
      mcs_model_signature(model, 24.0, 1e-10, /*lump_symmetry=*/true);
  const std::string full =
      mcs_model_signature(model, 24.0, 1e-10, /*lump_symmetry=*/false);
  EXPECT_NE(lumped, full);
}

}  // namespace
}  // namespace sdft
