// Determinism regression tests for the parallel cutset-generation stage:
// the engine must produce the identical sorted cutset list and the
// bit-identical failure probability for every thread count, for both
// cutset backends, with or without the quantification cache, with the
// prep rewrite/modularization layer on or off, and for every BDD variable
// ordering (the canonical cutset list is ordering-independent). Exercised
// on the BWR example study, random SD trees and a small industrial model.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/thread_pool.hpp"

namespace sdft {
namespace {

/// One analysis configuration of the determinism matrix.
struct config {
  std::size_t threads;
  cutset_backend backend;
  bool cache;
  bool prep;
  bdd_ordering ordering;

  std::string label() const {
    return std::string(to_string(backend)) + " threads=" +
           std::to_string(threads) + (cache ? " cache" : " no-cache") +
           (prep ? " prep" : " no-prep") + " ordering=" + to_string(ordering);
  }
};

std::vector<config> matrix() {
  std::vector<config> out;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (bool prep : {false, true}) {
      for (bool cache : {false, true}) {
        out.push_back(
            {threads, cutset_backend::mocus, cache, prep, bdd_ordering::dfs});
        out.push_back(
            {threads, cutset_backend::bdd, cache, prep, bdd_ordering::dfs});
      }
      // BDD variable orderings only change BDD shape, never the canonical
      // cutset list — every ordering must reproduce the reference bit for
      // bit (one cache setting keeps the matrix affordable).
      for (bdd_ordering ordering : {bdd_ordering::natural, bdd_ordering::weight,
                                    bdd_ordering::sift}) {
        out.push_back({threads, cutset_backend::bdd, true, prep, ordering});
      }
    }
  }
  return out;
}

/// The full sorted cutset list of a run (the engine's canonical order).
std::vector<cutset> cutset_list(const analysis_result& result) {
  std::vector<cutset> out;
  out.reserve(result.cutsets.size());
  for (const auto& q : result.cutsets) out.push_back(q.events);
  return out;
}

/// Runs every configuration of the matrix on `tree` and asserts the cutset
/// list and the failure probability are identical (EXPECT_EQ on doubles:
/// bit-identical) to the serial MOCUS reference.
void expect_deterministic(const sd_fault_tree& tree, double horizon,
                          double cutoff, const std::string& model) {
  analysis_options opts;
  opts.horizon = horizon;
  opts.cutoff = cutoff;
  opts.keep_cutset_details = true;
  opts.threads = 1;
  opts.backend = cutset_backend::mocus;
  opts.cache_quantifications = false;
  opts.prep.enabled = false;
  const analysis_result reference = analyze(tree, opts);
  ASSERT_GT(reference.num_cutsets, 0u) << model;
  const std::vector<cutset> reference_list = cutset_list(reference);

  for (const config& c : matrix()) {
    opts.threads = c.threads;
    opts.backend = c.backend;
    opts.cache_quantifications = c.cache;
    opts.prep.enabled = c.prep;
    opts.bdd_ordering = c.ordering;
    const analysis_result r = analyze(tree, opts);
    EXPECT_EQ(cutset_list(r), reference_list) << model << ": " << c.label();
    EXPECT_EQ(r.failure_probability, reference.failure_probability)
        << model << ": " << c.label();
  }
}

TEST(Determinism, BwrDynamicStudy) {
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  const sd_fault_tree tree = make_bwr_model(with_bwr_triggers(opt, 2));
  expect_deterministic(tree, 24.0, 1e-12, "bwr");
}

TEST(Determinism, RandomSdTrees) {
  for (int seed : {3, 7, 12}) {
    const testing::random_sd_tree r =
        testing::make_random_sd_tree(0x5d + static_cast<std::uint64_t>(seed));
    expect_deterministic(r.tree, 12.0, 0.0,
                         "random seed " + std::to_string(seed));
  }
}

TEST(Determinism, IndustrialAnnotatedModel) {
  industrial_options gopt;
  gopt.seed = 5;
  gopt.num_frontline_systems = 6;
  gopt.num_support_systems = 2;
  gopt.num_initiating_events = 4;
  gopt.sequences_per_ie = 3;
  gopt.components_per_train = 3;
  const industrial_model model = generate_industrial(gopt);
  // This downsized study multiplies enough small probabilities that its
  // cutsets sit below the paper's 1e-15 cutoff; 1e-20 keeps ~2000 of them.
  mocus_options mopts;
  mopts.cutoff = 1e-18;
  const mocus_result mcs = mocus(model.ft, mopts);
  ASSERT_GT(mcs.cutsets.size(), 0u);
  annotation_options an;
  an.dynamic_fraction = 0.3;
  an.trigger_fraction = 0.1;
  an.repair_rate = 0.01;
  const sd_fault_tree tree = annotate_dynamic(
      model, rank_by_fussell_vesely(model.ft, mcs.cutsets), an);
  expect_deterministic(tree, 24.0, 1e-20, "industrial");
}

TEST(Determinism, McBackendThreadInvariant) {
  // The mc backend dimension of the matrix: estimates must be
  // bit-identical for every thread count and batch size at a fixed seed,
  // for every estimator family. Streams are keyed by global trajectory
  // index (or replication/stage/slot) and batch partials reduce in index
  // order, so the schedule can never leak into the result.
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  const sd_fault_tree tree = make_bwr_model(with_bwr_triggers(opt, 2));
  for (sim::mc_method method :
       {sim::mc_method::crude, sim::mc_method::forcing,
        sim::mc_method::splitting}) {
    analysis_options opts;
    opts.horizon = 24.0;
    opts.backend = cutset_backend::mc;
    opts.mc.method = method;
    opts.mc.trajectories = 20'000;
    opts.mc.seed = 31;
    opts.threads = 1;
    const analysis_result reference = analyze(tree, opts);
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      opts.threads = threads;
      const analysis_result r = analyze(tree, opts);
      EXPECT_EQ(r.failure_probability, reference.failure_probability)
          << to_string(method) << " threads=" << threads;
      EXPECT_EQ(r.mc.std_error, reference.mc.std_error)
          << to_string(method) << " threads=" << threads;
      EXPECT_EQ(r.mc.failures, reference.mc.failures)
          << to_string(method) << " threads=" << threads;
    }
    opts.threads = 8;
    opts.mc.batch = 512;
    const analysis_result rebatched = analyze(tree, opts);
    EXPECT_EQ(rebatched.failure_probability, reference.failure_probability)
        << to_string(method) << " batch=512";
  }
}

TEST(Determinism, RawMocusParallelMatchesSerial) {
  // Below the engine: the raw MOCUS driver itself must emit the identical
  // result structure for the serial and the work-stealing parallel path.
  const industrial_model model = generate_industrial(industrial_options{});
  mocus_options serial_opts;
  serial_opts.cutoff = 1e-15;
  const mocus_result serial = mocus(model.ft, serial_opts);

  thread_pool pool(8);
  mocus_options par_opts = serial_opts;
  par_opts.pool = &pool;
  const mocus_result parallel = mocus(model.ft, par_opts);

  EXPECT_EQ(parallel.cutsets, serial.cutsets);
  EXPECT_EQ(parallel.threads_used, pool.size());
  EXPECT_EQ(serial.threads_used, 1u);
}

}  // namespace
}  // namespace sdft
