#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bdd/ft_bdd.hpp"
#include "ft/ccf.hpp"
#include "ft/modules.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sdft {
namespace {

// --- CCF expansion -------------------------------------------------------

/// Two redundant pumps in an AND (system fails when both fail).
struct two_pump {
  fault_tree ft;
  node_index p1, p2;

  explicit two_pump(double q = 1e-2) {
    p1 = ft.add_basic_event("P1", q);
    p2 = ft.add_basic_event("P2", q);
    ft.set_top(ft.add_gate("SYS", gate_type::and_gate, {p1, p2}));
  }
};

TEST(Ccf, BetaFactorExpansionStructure) {
  const two_pump model;
  ccf_group group;
  group.name = "PUMPS";
  group.members = {model.p1, model.p2};
  group.beta = 0.1;
  const fault_tree expanded = expand_ccf(model.ft, {group});
  expanded.validate();

  // The group event appears once, member events became independent parts.
  const node_index ccf = expanded.find("PUMPS_CCF");
  ASSERT_NE(ccf, fault_tree::npos);
  EXPECT_NEAR(expanded.node(ccf).probability, 0.1 * 1e-2, 1e-18);
  const node_index p1i = expanded.find("P1_I");
  ASSERT_NE(p1i, fault_tree::npos);
  EXPECT_NEAR(expanded.node(p1i).probability, 0.9 * 1e-2, 1e-18);

  // {CCF} is now a singleton minimal cutset.
  const auto cutsets = mocus(expanded).cutsets;
  ASSERT_EQ(cutsets.size(), 2u);
  EXPECT_EQ(cutsets[0], cutset{ccf});
}

TEST(Ccf, BetaFactorProbability) {
  const double q = 1e-2;
  const double beta = 0.2;
  const two_pump model(q);
  ccf_group group;
  group.name = "PUMPS";
  group.members = {model.p1, model.p2};
  group.beta = beta;
  const fault_tree expanded = expand_ccf(model.ft, {group});
  // P(both fail) = P(ccf or (i1 and i2))
  //              = b q + (1 - b q) (0.8 q)^2 with b = 0.2.
  const double qi = (1 - beta) * q;
  const double expected = beta * q + (1 - beta * q) * qi * qi;
  EXPECT_NEAR(expanded.probability_brute_force(), expected, 1e-15);
  // And the coupling dominates the independent-only model.
  EXPECT_GT(expanded.probability_brute_force(),
            model.ft.probability_brute_force());
}

TEST(Ccf, AlphaFactorThreeTrainGroup) {
  fault_tree ft;
  const double q = 3e-3;
  const node_index a = ft.add_basic_event("A", q);
  const node_index b = ft.add_basic_event("B", q);
  const node_index c = ft.add_basic_event("C", q);
  ft.set_top(ft.add_gate("SYS", gate_type::and_gate, {a, b, c}));

  ccf_group group;
  group.name = "G";
  group.members = {a, b, c};
  group.model = ccf_group::parametric_model::alpha_factor;
  group.alpha = {0.95, 0.04, 0.01};
  const fault_tree expanded = expand_ccf(ft, {group});
  expanded.validate();

  // Q_k = k / C(n-1, k-1) * alpha_k / alpha_t * q.
  const double alpha_t = 1 * 0.95 + 2 * 0.04 + 3 * 0.01;
  const double q1 = 0.95 / alpha_t * q;
  const double q2 = 2.0 / 2.0 * 0.04 / alpha_t * q;
  const double q3 = 3.0 / 1.0 * 0.01 / alpha_t * q;
  EXPECT_NEAR(expanded.node(expanded.find("A_I")).probability, q1, 1e-15);
  EXPECT_NEAR(expanded.node(expanded.find("G_CCF_A_B")).probability, q2,
              1e-15);
  EXPECT_NEAR(expanded.node(expanded.find("G_CCF_A_B_C")).probability, q3,
              1e-15);
  // Three pairwise events plus the triple event exist.
  EXPECT_NE(expanded.find("G_CCF_A_C"), fault_tree::npos);
  EXPECT_NE(expanded.find("G_CCF_B_C"), fault_tree::npos);
  // The triple event alone fails the 2-out-of-3... here 3-out-of-3 system.
  const auto cutsets = mocus(expanded).cutsets;
  EXPECT_EQ(cutsets.front(), cutset{expanded.find("G_CCF_A_B_C")});
}

TEST(Ccf, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(binomial(2, 3), 0.0);
}

TEST(Ccf, RejectsIllFormedGroups) {
  const two_pump model;
  ccf_group group;
  group.name = "G";
  group.members = {model.p1};
  EXPECT_THROW(expand_ccf(model.ft, {group}), model_error);  // too small

  group.members = {model.p1, model.p1};
  EXPECT_THROW(expand_ccf(model.ft, {group}), model_error);  // duplicate

  group.members = {model.p1, model.p2};
  group.beta = 1.5;
  EXPECT_THROW(expand_ccf(model.ft, {group}), model_error);  // bad beta

  group.beta = 0.1;
  group.model = ccf_group::parametric_model::alpha_factor;
  group.alpha = {0.5, 0.4};  // does not sum to 1
  EXPECT_THROW(expand_ccf(model.ft, {group}), model_error);
}

TEST(Ccf, RejectsAsymmetricMembers) {
  fault_tree ft;
  const node_index a = ft.add_basic_event("A", 1e-2);
  const node_index b = ft.add_basic_event("B", 2e-2);
  ft.set_top(ft.add_gate("SYS", gate_type::and_gate, {a, b}));
  ccf_group group;
  group.name = "G";
  group.members = {a, b};
  EXPECT_THROW(expand_ccf(ft, {group}), model_error);
}

// --- Modularisation ------------------------------------------------------

TEST(Modules, SharedNodesBreakModules) {
  // g1 contains a node shared with g2: g1 and g2 are not modules, but the
  // top is.
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.1);
  const node_index y = ft.add_basic_event("y", 0.2);
  const node_index z = ft.add_basic_event("z", 0.3);
  const node_index g1 = ft.add_gate("g1", gate_type::or_gate, {x, y});
  const node_index g2 = ft.add_gate("g2", gate_type::or_gate, {y, z});
  const node_index top = ft.add_gate("top", gate_type::and_gate, {g1, g2});
  ft.set_top(top);
  const auto modules = find_modules(ft);
  EXPECT_EQ(modules, std::vector<node_index>{top});
}

TEST(Modules, IndependentSubtreesAreModules) {
  const fault_tree ft = testing::example1_static();
  auto modules = find_modules(ft);
  std::sort(modules.begin(), modules.end());
  // PUMP1, PUMP2, PUMPS and COOLING are all modules (no sharing at all).
  EXPECT_EQ(modules.size(), 4u);
}

TEST(Modules, ModularProbabilityMatchesBdd) {
  const fault_tree ft = testing::example1_static();
  EXPECT_NEAR(modular_probability(ft), ft_bdd(ft).probability(), 1e-15);
}

TEST(Modules, ModularProbabilityOnSharedDag) {
  fault_tree ft;
  const node_index x = ft.add_basic_event("x", 0.1);
  const node_index y = ft.add_basic_event("y", 0.2);
  const node_index z = ft.add_basic_event("z", 0.3);
  const node_index g1 = ft.add_gate("g1", gate_type::or_gate, {x, y});
  const node_index g2 = ft.add_gate("g2", gate_type::or_gate, {y, z});
  ft.set_top(ft.add_gate("top", gate_type::and_gate, {g1, g2}));
  EXPECT_NEAR(modular_probability(ft), ft.probability_brute_force(), 1e-15);
}

class ModularRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(ModularRandomTrees, MatchesBruteForce) {
  rng random(0x30d + static_cast<std::uint64_t>(GetParam()));
  fault_tree ft;
  std::vector<node_index> pool;
  for (int i = 0; i < 9; ++i) {
    pool.push_back(ft.add_basic_event("e" + std::to_string(i),
                                      random.uniform(0.05, 0.4)));
  }
  node_index last = fault_tree::npos;
  for (int g = 0; g < 7; ++g) {
    std::vector<node_index> inputs;
    for (int i = 0, n = static_cast<int>(random.between(2, 3)); i < n; ++i) {
      inputs.push_back(pool[random.below(pool.size())]);
    }
    last = ft.add_gate("g" + std::to_string(g),
                       random.chance(0.5) ? gate_type::and_gate
                                          : gate_type::or_gate,
                       inputs);
    pool.push_back(last);
  }
  ft.set_top(last);
  EXPECT_NEAR(modular_probability(ft), ft.probability_brute_force(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularRandomTrees, ::testing::Range(0, 20));

}  // namespace
}  // namespace sdft
