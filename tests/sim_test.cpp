#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/analyzer.hpp"
#include "gen/bwr.hpp"
#include "product/product_ctmc.hpp"
#include "sim/simulator.hpp"
#include "sim/stream_rng.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(Simulator, MatchesExponentialClosedForm) {
  // Single untriggered event: P = 1 - e^{-lambda t}.
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(0.05, 0.4));
  tree.set_top(tree.add_gate("top", gate_type::or_gate, {x}));
  const double t = 10.0;
  const double exact = 1.0 - std::exp(-0.05 * t);

  simulation_options opts;
  opts.runs = 60'000;
  opts.seed = 43;  // retuned for the per-trajectory stream scheme
  const simulation_result r = simulate_failure_probability(tree, t, opts);
  EXPECT_TRUE(r.consistent_with(exact))
      << r.estimate << " vs " << exact << " [" << r.ci_low << ", "
      << r.ci_high << "]";
  EXPECT_NEAR(r.estimate, exact, 5 * r.std_error);
}

TEST(Simulator, MatchesStaticProbability) {
  sd_fault_tree tree(testing::example1_static());
  const double exact =
      testing::example1_static().probability_brute_force();
  simulation_options opts;
  opts.runs = 2'000'000;  // exact ~ 1.9e-5: rare, needs many runs
  opts.seed = 7;
  const simulation_result r = simulate_failure_probability(tree, 5.0, opts);
  EXPECT_TRUE(r.consistent_with(exact))
      << r.estimate << " vs " << exact;
}

TEST(Simulator, MatchesExactProductOnRunningExample) {
  // Faster pumps than the paper's data so the failure probability is
  // large enough for a tight Monte-Carlo comparison.
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  const double t = 24.0;
  const double exact = exact_failure_probability(tree, t);
  EXPECT_GT(exact, 0.05);  // sanity: commensurate with runs below

  simulation_options opts;
  opts.runs = 40'000;
  opts.seed = 11;
  const simulation_result r = simulate_failure_probability(tree, t, opts);
  EXPECT_TRUE(r.consistent_with(exact))
      << r.estimate << " vs " << exact << " [" << r.ci_low << ", "
      << r.ci_high << "]";
}

TEST(Simulator, TriggeredSpareDelaysFailure) {
  // The spare's chain only runs once triggered: simulated failure within a
  // short horizon must be well below the always-on worst case.
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.0);
  simulation_options opts;
  opts.runs = 30'000;
  opts.seed = 3;
  const simulation_result r =
      simulate_failure_probability(tree, 24.0, opts);
  const double exact = exact_failure_probability(tree, 24.0);
  EXPECT_TRUE(r.consistent_with(exact));
}

TEST(Simulator, DeterministicPerSeed) {
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  simulation_options opts;
  opts.runs = 5'000;
  opts.seed = 123;
  const auto a = simulate_failure_probability(tree, 12.0, opts);
  const auto b = simulate_failure_probability(tree, 12.0, opts);
  EXPECT_EQ(a.failures, b.failures);
  opts.seed = 124;
  const auto c = simulate_failure_probability(tree, 12.0, opts);
  EXPECT_NE(a.failures, c.failures);
}

TEST(Simulator, ZeroHorizonOnlyCountsInitialFailures) {
  sd_fault_tree tree(testing::example1_static());
  simulation_options opts;
  opts.runs = 500'000;
  opts.seed = 5;
  const simulation_result r = simulate_failure_probability(tree, 0.0, opts);
  EXPECT_TRUE(
      r.consistent_with(testing::example1_static().probability_brute_force()));
}

TEST(Simulator, AgreesWithPipelineOnChainedTriggers) {
  // Chain: TRAIN1 triggers P2, TRAIN2 triggers P3 (the sequential-trains
  // scenario). The pipeline's rare-event sum must land on or above the
  // simulated truth.
  sd_fault_tree tree;
  const node_index f1 =
      tree.add_dynamic_event("P1", make_erlang_active(1, 0.05, 0.1));
  const node_index t1 = tree.add_gate("T1", gate_type::or_gate, {f1});
  const node_index f2 = tree.add_dynamic_event(
      "P2", make_erlang_triggered(1, 0.05, 0.1, 100.0));
  const node_index t2 = tree.add_gate("T2", gate_type::or_gate, {f2});
  const node_index f3 = tree.add_dynamic_event(
      "P3", make_erlang_triggered(1, 0.05, 0.1, 100.0));
  const node_index t3 = tree.add_gate("T3", gate_type::or_gate, {f3});
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {t1, t2, t3}));
  tree.set_trigger(t1, f2);
  tree.set_trigger(t2, f3);
  tree.validate();

  const double t = 48.0;
  analysis_options aopts;
  aopts.horizon = t;
  const double pipeline = analyze(tree, aopts).failure_probability;

  simulation_options sopts;
  sopts.runs = 60'000;
  sopts.seed = 9;
  const simulation_result r = simulate_failure_probability(tree, t, sopts);
  // Single cutset: the pipeline is exact here. Use a 4-sigma band rather
  // than the strict 95% CI so the test does not flake on seed luck.
  EXPECT_NEAR(r.estimate, pipeline, 4 * r.std_error)
      << r.estimate << " vs " << pipeline;
}

TEST(Simulator, CrossValidatesStaticBwrStudy) {
  // Engine (rare-event sum over relevant MCSs) vs Monte Carlo on the
  // static BWR study. At this horizon the event probabilities are small
  // enough that the rare-event approximation sits inside the Monte-Carlo
  // confidence interval; at much longer horizons it over-approximates
  // beyond the CI by construction.
  const sd_fault_tree tree = make_bwr_model({});
  const double t = 200.0;
  analysis_options aopts;
  aopts.horizon = t;
  const double analytic = analyze(tree, aopts).failure_probability;
  EXPECT_GT(analytic, 0.0);

  simulation_options sopts;
  sopts.runs = 2'000'000;
  sopts.seed = 1;
  const simulation_result r = simulate_failure_probability(tree, t, sopts);
  EXPECT_TRUE(r.consistent_with(analytic))
      << r.estimate << " vs " << analytic << " [" << r.ci_low << ", "
      << r.ci_high << "]";
}

TEST(Simulator, CrossValidatesDynamicBwrStudy) {
  // The fully triggered dynamic BWR variant: the pipeline's per-MCS chain
  // quantification against the event simulator.
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  const sd_fault_tree tree =
      make_bwr_model(with_bwr_triggers(opt, bwr_num_triggers));
  const double t = 500.0;
  analysis_options aopts;
  aopts.horizon = t;
  aopts.cutoff = 1e-12;
  const double analytic = analyze(tree, aopts).failure_probability;
  EXPECT_GT(analytic, 0.0);

  simulation_options sopts;
  sopts.runs = 1'000'000;
  sopts.seed = 1;
  const simulation_result r = simulate_failure_probability(tree, t, sopts);
  EXPECT_TRUE(r.consistent_with(analytic))
      << r.estimate << " vs " << analytic << " [" << r.ci_low << ", "
      << r.ci_high << "]";
}

TEST(Simulator, StreamAdditivityAcrossCampaigns) {
  // Regression for the per-run seeding bug: earlier revisions walked one
  // sequential rng across all runs, so a campaign's draws depended on how
  // many runs preceded them. With per-trajectory substreams the campaigns
  // [0, n) and [n, n + m) concatenate to exactly the campaign [0, n + m).
  const sd_fault_tree tree = testing::example3_sd(0.05, 0.2);
  simulation_options opts;
  opts.runs = 2'000;
  opts.seed = 21;
  const simulation_result whole =
      simulate_failure_probability(tree, 12.0, opts);
  opts.runs = 1'000;
  const simulation_result first =
      simulate_failure_probability(tree, 12.0, opts);
  opts.first_trajectory = 1'000;
  const simulation_result second =
      simulate_failure_probability(tree, 12.0, opts);
  EXPECT_EQ(first.failures + second.failures, whole.failures);
  EXPECT_NE(first.failures, second.failures);  // the halves truly differ
}

TEST(Simulator, TrajectorySubstreamsAreDecorrelated) {
  // Regression for overlapping-stream correlation: the first draws of
  // adjacent trajectory substreams must look like independent uniforms
  // (mean 1/2, variance 1/12, vanishing lag-1 autocorrelation), not like
  // shifted windows of one underlying sequence.
  constexpr int n = 20'000;
  std::vector<double> draw(n);
  for (int i = 0; i < n; ++i) {
    rng stream = sim::substream(123, static_cast<std::uint64_t>(i));
    draw[static_cast<std::size_t>(i)] = stream.uniform();
  }
  double mean = 0;
  for (double d : draw) mean += d;
  mean /= n;
  double var = 0, lag1 = 0;
  for (int i = 0; i < n; ++i) {
    var += (draw[i] - mean) * (draw[i] - mean);
    if (i + 1 < n) lag1 += (draw[i] - mean) * (draw[i + 1] - mean);
  }
  var /= n;
  lag1 /= (n - 1) * var;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
  EXPECT_LT(std::abs(lag1), 0.02);
}

TEST(Simulator, RejectsZeroRuns) {
  sd_fault_tree tree(testing::example1_static());
  simulation_options opts;
  opts.runs = 0;
  EXPECT_THROW(simulate_failure_probability(tree, 1.0, opts), model_error);
}

}  // namespace
}  // namespace sdft
