#include <gtest/gtest.h>

#include <cmath>

#include "bdd/ft_bdd.hpp"
#include "ft/voting.hpp"
#include "mcs/mocus.hpp"
#include "product/product_ctmc.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

// --- Voting gates --------------------------------------------------------

TEST(Voting, TwoOutOfThreeClosedForm) {
  fault_tree ft;
  const double p = 0.1;
  std::vector<node_index> pumps;
  for (int i = 0; i < 3; ++i) {
    pumps.push_back(ft.add_basic_event("P" + std::to_string(i), p));
  }
  ft.set_top(add_voting_gate(ft, "2oo3", 2, pumps));
  // P[at least 2 of 3] = 3 p^2 (1-p) + p^3.
  const double expected = 3 * p * p * (1 - p) + p * p * p;
  EXPECT_NEAR(ft.probability_brute_force(), expected, 1e-12);
  EXPECT_NEAR(ft_bdd(ft).probability(), expected, 1e-12);
  // Minimal cutsets: the three pairs.
  const auto cutsets = mocus(ft).cutsets;
  ASSERT_EQ(cutsets.size(), 3u);
  for (const auto& c : cutsets) EXPECT_EQ(c.size(), 2u);
}

TEST(Voting, DegenerateCasesCollapse) {
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", 0.2);
  const node_index b = ft.add_basic_event("b", 0.3);
  const node_index any = add_voting_gate(ft, "1oo2", 1, {a, b});
  const node_index all = add_voting_gate(ft, "2oo2", 2, {a, b});
  EXPECT_EQ(ft.node(any).type, gate_type::or_gate);
  EXPECT_EQ(ft.node(all).type, gate_type::and_gate);
  ft.set_top(ft.add_gate("top", gate_type::or_gate, {any, all}));
  EXPECT_NEAR(ft.probability_brute_force(), 1 - 0.8 * 0.7, 1e-12);
}

TEST(Voting, ThreeOutOfFiveCounts) {
  fault_tree ft;
  std::vector<node_index> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(ft.add_basic_event("e" + std::to_string(i), 0.5));
  }
  ft.set_top(add_voting_gate(ft, "3oo5", 3, events));
  // With p = 1/2 every pattern is equally likely: P = #patterns(>=3)/32.
  double expected = 0.0;
  for (int k = 3; k <= 5; ++k) {
    double combos = 1;
    for (int i = 0; i < k; ++i) combos = combos * (5 - i) / (i + 1);
    expected += combos;
  }
  expected /= 32.0;
  EXPECT_NEAR(ft.probability_brute_force(), expected, 1e-12);
  EXPECT_EQ(mocus(ft).cutsets.size(), 10u);  // C(5,3)
}

TEST(Voting, RejectsBadParameters) {
  fault_tree ft;
  const node_index a = ft.add_basic_event("a", 0.1);
  EXPECT_THROW(add_voting_gate(ft, "g", 0, {a}), model_error);
  EXPECT_THROW(add_voting_gate(ft, "g", 2, {a}), model_error);
  EXPECT_THROW(add_voting_gate(ft, "g", 1, {}), model_error);
}

// --- First-failure attribution -------------------------------------------

TEST(Attribution, SingleEventTakesAllMass) {
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(0.05, 0.0));
  tree.set_top(tree.add_gate("top", gate_type::or_gate, {x}));
  const double t = 12.0;
  const attribution_result a = failure_attribution(tree, t);
  EXPECT_NEAR(a.total, 1 - std::exp(-0.05 * t), 1e-9);
  EXPECT_NEAR(a.by_event.at(x), a.total, 1e-12);
  EXPECT_DOUBLE_EQ(a.initially_failed, 0.0);
}

TEST(Attribution, RaceUnderAndGate) {
  // AND(x, y) without repairs: the completing event is the one failing
  // last. P(y last, both <= t) = int_0^t ly e^{-ly u}(1 - e^{-lx u}) du.
  const double lx = 0.10;
  const double ly = 0.04;
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(lx, 0.0));
  const node_index y =
      tree.add_dynamic_event("y", make_repairable(ly, 0.0));
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {x, y}));
  const double t = 30.0;

  const auto last_is = [&](double la, double lb) {
    // P(a fails last and both within t), a ~ Exp(la), b ~ Exp(lb):
    // int_0^t la e^{-la u}(1 - e^{-lb u}) du.
    return (1 - std::exp(-la * t)) -
           la / (la + lb) * (1 - std::exp(-(la + lb) * t));
  };
  const attribution_result a = failure_attribution(tree, t);
  EXPECT_NEAR(a.by_event.at(x), last_is(lx, ly), 1e-9);
  EXPECT_NEAR(a.by_event.at(y), last_is(ly, lx), 1e-9);
  EXPECT_NEAR(a.total, exact_failure_probability(tree, t), 1e-9);
}

TEST(Attribution, StaticFailuresCountAsInitial) {
  sd_fault_tree tree(testing::example1_static());
  const double t = 7.0;
  const attribution_result a = failure_attribution(tree, t);
  // Purely static tree: everything that fails is failed at time 0.
  EXPECT_TRUE(a.by_event.empty());
  EXPECT_NEAR(a.initially_failed,
              testing::example1_static().probability_brute_force(), 1e-12);
}

TEST(Attribution, RunningExampleTotalsMatchExact) {
  const sd_fault_tree tree = testing::example3_sd();
  const double t = 24.0;
  const attribution_result a = failure_attribution(tree, t);
  EXPECT_NEAR(a.total, exact_failure_probability(tree, t), 1e-9);
  // The tank never completes a failure dynamically (it is static), and
  // dynamic completions come from pump events only.
  for (const auto& [event, mass] : a.by_event) {
    EXPECT_TRUE(tree.is_dynamic(event));
    EXPECT_GT(mass, 0.0);
  }
  // Initial mass: tank failed at t=0 plus both pumps failing to start etc.
  EXPECT_GT(a.initially_failed, testing::p_tank * 0.9);
}

TEST(Attribution, TriggeredSpareCompletesTheSequence) {
  // x triggers y, top = AND(GX, y): y always fails last.
  sd_fault_tree tree;
  const node_index x =
      tree.add_dynamic_event("x", make_repairable(0.05, 0.0));
  const node_index gx = tree.add_gate("GX", gate_type::or_gate, {x});
  const node_index y = tree.add_dynamic_event(
      "y", make_erlang_triggered(1, 0.08, 0.0, 0.0));
  tree.set_top(tree.add_gate("top", gate_type::and_gate, {gx, y}));
  tree.set_trigger(gx, y);
  const attribution_result a = failure_attribution(tree, 24.0);
  EXPECT_EQ(a.by_event.size(), 1u);
  EXPECT_GT(a.by_event.at(y), 0.0);
  EXPECT_DOUBLE_EQ(a.initially_failed, 0.0);
}

}  // namespace
}  // namespace sdft
