#include <gtest/gtest.h>

#include "bdd/ft_bdd.hpp"
#include "ft/openpsa.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"
#include "util/error.hpp"
#include "util/xml.hpp"

namespace sdft {
namespace {

TEST(Xml, ParsesElementsAttributesAndComments) {
  const xml_node root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<root a=\"1\" b='two'>\n"
      "  <child name=\"x &amp; y\"/>\n"
      "  <child name=\"z\"><inner/></child>\n"
      "</root>\n");
  EXPECT_EQ(root.tag, "root");
  EXPECT_EQ(root.attribute("a"), "1");
  EXPECT_EQ(root.attribute("b"), "two");
  ASSERT_EQ(root.children_of("child").size(), 2u);
  EXPECT_EQ(root.children_of("child")[0]->attribute("name"), "x & y");
  EXPECT_NE(root.children_of("child")[1]->child("inner"), nullptr);
  EXPECT_EQ(root.child("absent"), nullptr);
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_xml("<a><b></a>"), model_error);       // mismatched
  EXPECT_THROW(parse_xml("<a attr=oops/>"), model_error);   // unquoted
  EXPECT_THROW(parse_xml("<a/><b/>"), model_error);         // two roots
  EXPECT_THROW(parse_xml("<a"), model_error);               // truncated
  EXPECT_THROW(parse_xml("<a x=\"&weird;\"/>"), model_error);
}

TEST(Xml, EscapeRoundTrip) {
  const std::string nasty = "a&b<c>d\"e";
  const xml_node n =
      parse_xml("<x v=\"" + xml_escape(nasty) + "\"/>");
  EXPECT_EQ(n.attribute("v"), nasty);
}

TEST(OpenPsa, ParsesHandWrittenDocument) {
  const fault_tree ft = parse_openpsa(R"(<?xml version="1.0"?>
<opsa-mef>
  <define-fault-tree name="two-pump">
    <define-gate name="COOLING">
      <or> <basic-event name="tank"/> <gate name="PUMPS"/> </or>
    </define-gate>
    <define-gate name="PUMPS">
      <and> <gate name="P1"/> <gate name="P2"/> </and>
    </define-gate>
    <define-gate name="P1">
      <or> <basic-event name="a"/> <basic-event name="b"/> </or>
    </define-gate>
    <define-gate name="P2">
      <or> <basic-event name="c"/> <basic-event name="d"/> </or>
    </define-gate>
  </define-fault-tree>
  <model-data>
    <define-basic-event name="a"><float value="3e-3"/></define-basic-event>
    <define-basic-event name="b"><float value="1e-3"/></define-basic-event>
    <define-basic-event name="c"><float value="3e-3"/></define-basic-event>
    <define-basic-event name="d"><float value="1e-3"/></define-basic-event>
    <define-basic-event name="tank"><float value="3e-6"/></define-basic-event>
  </model-data>
</opsa-mef>)");
  EXPECT_EQ(ft.node(ft.top()).name, "COOLING");
  // This is exactly the running example: same probability and 5 MCSs.
  EXPECT_NEAR(ft.probability_brute_force(),
              testing::example1_static().probability_brute_force(), 1e-15);
  EXPECT_EQ(mocus(ft).cutsets.size(), 5u);
}

TEST(OpenPsa, AtleastGatesExpand) {
  const fault_tree ft = parse_openpsa(R"(
<opsa-mef>
  <define-fault-tree name="voting">
    <define-gate name="top">
      <atleast min="2">
        <basic-event name="a"/> <basic-event name="b"/>
        <basic-event name="c"/>
      </atleast>
    </define-gate>
  </define-fault-tree>
  <model-data>
    <define-basic-event name="a"><float value="0.1"/></define-basic-event>
    <define-basic-event name="b"><float value="0.1"/></define-basic-event>
    <define-basic-event name="c"><float value="0.1"/></define-basic-event>
  </model-data>
</opsa-mef>)");
  const double p = 0.1;
  EXPECT_NEAR(ft.probability_brute_force(),
              3 * p * p * (1 - p) + p * p * p, 1e-12);
}

TEST(OpenPsa, RoundTripsRunningExample) {
  const fault_tree original = testing::example1_static();
  const std::string xml = write_openpsa(original, "example1");
  const fault_tree parsed = parse_openpsa(xml);
  EXPECT_EQ(parsed.num_basic_events(), original.num_basic_events());
  EXPECT_EQ(parsed.num_gates(), original.num_gates());
  EXPECT_NEAR(ft_bdd(parsed).probability(),
              ft_bdd(original).probability(), 1e-15);
  EXPECT_EQ(mocus(parsed).cutsets.size(), mocus(original).cutsets.size());
}

class OpenPsaRandomTrees : public ::testing::TestWithParam<int> {};

TEST_P(OpenPsaRandomTrees, RoundTripsRandomStaticTrees) {
  // parse(write(ft)) must reproduce the structure and the probability;
  // write o parse must be a fixpoint on the document text.
  const fault_tree original = testing::make_random_static_tree(
                                  0x40c + static_cast<std::uint64_t>(GetParam()))
                                  .structure();
  const std::string xml = write_openpsa(original, "random");
  const fault_tree parsed = parse_openpsa(xml);
  EXPECT_EQ(parsed.num_basic_events(), original.num_basic_events());
  EXPECT_EQ(parsed.num_gates(), original.num_gates());
  EXPECT_NEAR(ft_bdd(parsed).probability(), ft_bdd(original).probability(),
              1e-15);
  EXPECT_EQ(mocus(parsed).cutsets.size(), mocus(original).cutsets.size());
  // The parser numbers events in document order, so the written form is a
  // verbatim fixpoint of write o parse.
  EXPECT_EQ(write_openpsa(parsed, "random"), xml);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenPsaRandomTrees, ::testing::Range(0, 12));

TEST(OpenPsa, RejectsBrokenModels) {
  // Undefined reference.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top"><or><basic-event name="ghost"/></or></define-gate>
</define-fault-tree></opsa-mef>)"),
               model_error);
  // Two unreferenced gates: ambiguous top.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="t1"><or><basic-event name="a"/></or></define-gate>
  <define-gate name="t2"><or><basic-event name="a"/></or></define-gate>
  <define-basic-event name="a"><float value="0.1"/></define-basic-event>
</define-fault-tree></opsa-mef>)"),
               model_error);
  // Unsupported connective.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top"><not><basic-event name="a"/></not></define-gate>
  <define-basic-event name="a"><float value="0.1"/></define-basic-event>
</define-fault-tree></opsa-mef>)"),
               model_error);
  // Probability out of range.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top"><or><basic-event name="a"/></or></define-gate>
  <define-basic-event name="a"><float value="1.5"/></define-basic-event>
</define-fault-tree></opsa-mef>)"),
               model_error);
}

TEST(OpenPsa, RejectsTruncatedDocuments) {
  // Cut off mid-element: the XML layer must reject it, not crash or
  // silently return a partial tree.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top"><or><basic-event name="a"/></or>)"),
               error);
  EXPECT_THROW(parse_openpsa("<opsa-mef><define-fault-tree"), error);
  EXPECT_THROW(parse_openpsa(""), error);
}

TEST(OpenPsa, RejectsMalformedProbabilities) {
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top"><or><basic-event name="a"/></or></define-gate>
  <define-basic-event name="a"><float value="oops"/></define-basic-event>
</define-fault-tree></opsa-mef>)"),
               model_error);
}

TEST(OpenPsa, RejectsOutOfRangeAtleastMin) {
  // min larger than the number of inputs can never be satisfied.
  EXPECT_THROW(parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-gate name="top">
    <atleast min="3"><basic-event name="a"/><basic-event name="b"/></atleast>
  </define-gate>
  <define-basic-event name="a"><float value="0.1"/></define-basic-event>
  <define-basic-event name="b"><float value="0.1"/></define-basic-event>
</define-fault-tree></opsa-mef>)"),
               model_error);
}

TEST(OpenPsa, BasicEventsMayLiveInsideFaultTree) {
  const fault_tree ft = parse_openpsa(R"(
<opsa-mef><define-fault-tree name="x">
  <define-basic-event name="a"><float value="0.25"/></define-basic-event>
  <define-gate name="top"><or><basic-event name="a"/></or></define-gate>
</define-fault-tree></opsa-mef>)");
  EXPECT_NEAR(ft.probability_brute_force(), 0.25, 1e-15);
}

}  // namespace
}  // namespace sdft
