// Sweep determinism tests: an N-point batched sweep must be bit-identical
// to N independent one-shot analyses of the perturbed trees, across
// backends, thread counts and structure-cache settings — on the BWR
// example study and a downsized annotated industrial model. Plus unit
// coverage of the sweep parsers, grid expansion and error taxonomy.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sweep.hpp"
#include "gen/bwr.hpp"
#include "gen/industrial.hpp"
#include "mcs/importance.hpp"
#include "mcs/mocus.hpp"
#include "test_models.hpp"

namespace sdft {
namespace {

using namespace sdft::testing;

std::vector<cutset> cutset_list(const analysis_result& result) {
  std::vector<cutset> out;
  out.reserve(result.cutsets.size());
  for (const auto& q : result.cutsets) out.push_back(q.events);
  return out;
}

sd_fault_tree bwr_tree() {
  bwr_options opt;
  opt.dynamic_events = true;
  opt.repair_rate = 0.1;
  return make_bwr_model(with_bwr_triggers(opt, 2));
}

/// The downsized industrial study of the determinism suite.
sd_fault_tree industrial_tree() {
  industrial_options gopt;
  gopt.seed = 5;
  gopt.num_frontline_systems = 6;
  gopt.num_support_systems = 2;
  gopt.num_initiating_events = 4;
  gopt.sequences_per_ie = 3;
  gopt.components_per_train = 3;
  const industrial_model model = generate_industrial(gopt);
  mocus_options mopts;
  mopts.cutoff = 1e-18;
  const mocus_result mcs = mocus(model.ft, mopts);
  annotation_options an;
  an.dynamic_fraction = 0.3;
  an.trigger_fraction = 0.1;
  an.repair_rate = 0.01;
  return annotate_dynamic(model,
                          rank_by_fussell_vesely(model.ft, mcs.cutsets), an);
}

/// First static basic event of `tree` (SD index), for building sweeps on
/// generated models whose event names vary.
std::string first_static_event(const sd_fault_tree& tree) {
  const fault_tree& ft = tree.structure();
  for (node_index n = 0; n < ft.size(); ++n) {
    if (ft.is_basic(n) && tree.is_static(n)) {
      return ft.node(n).name;
    }
  }
  ADD_FAILURE() << "no static basic event";
  return {};
}

/// Asserts every sweep point is bit-identical to a one-shot analysis of
/// the same perturbed tree on a fresh engine.
void expect_sweep_matches_oneshots(const sd_fault_tree& tree,
                                   const sweep_spec& spec,
                                   const analysis_options& opts,
                                   const std::string& label) {
  analysis_engine engine(opts);
  const sweep_result swept = run_sweep(engine, tree, spec);
  ASSERT_EQ(swept.points.size(), spec.points.size()) << label;

  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    sd_fault_tree perturbed = tree;
    for (const auto& [e, p] : spec.points[i].overrides) {
      perturbed.structure().set_probability(e, p);
    }
    analysis_options point_opts = opts;
    if (spec.points[i].horizon > 0) point_opts.horizon = spec.points[i].horizon;
    const analysis_result fresh = analyze(perturbed, point_opts);
    EXPECT_EQ(swept.points[i].failure_probability, fresh.failure_probability)
        << label << ": point " << i << " (" << spec.points[i].label << ")";
    EXPECT_EQ(cutset_list(swept.points[i]), cutset_list(fresh))
        << label << ": point " << i;
  }
}

TEST(SweepParse, RangesGrammar) {
  const sweep_description d = parse_sweep_ranges(
      {"PUMP=0.001:0.01:3:log", "TANK=0.1:0.3:2"});
  ASSERT_EQ(d.ranges.size(), 2u);
  EXPECT_EQ(d.ranges[0].event, "PUMP");
  EXPECT_TRUE(d.ranges[0].log_scale);
  EXPECT_EQ(d.ranges[0].count, 3u);
  EXPECT_FALSE(d.ranges[1].log_scale);

  EXPECT_THROW(parse_sweep_ranges({"PUMP"}), error);
  EXPECT_THROW(parse_sweep_ranges({"PUMP=1:2"}), error);
  EXPECT_THROW(parse_sweep_ranges({"PUMP=a:b:c"}), error);
  EXPECT_THROW(parse_sweep_ranges({"PUMP=0:1:0"}), error);
  EXPECT_THROW(parse_sweep_ranges({"PUMP=0:1:2:cubic"}), error);
  EXPECT_THROW(parse_sweep_ranges({"=0:1:2"}), error);
}

TEST(SweepParse, JsonGrammar) {
  const sweep_description params = parse_sweep_json(
      R"({"params":[{"name":"A","lo":1e-4,"hi":1e-2,"n":8,"scale":"log"}]})");
  ASSERT_EQ(params.ranges.size(), 1u);
  EXPECT_EQ(params.ranges[0].count, 8u);

  const sweep_description points = parse_sweep_json(
      R"({"points":[{"overrides":{"A":0.1},"horizon":48,"label":"hi"},
                    {"overrides":{"A":0.2}}]})");
  ASSERT_EQ(points.points.size(), 2u);
  EXPECT_EQ(points.points[0].horizon, 48.0);
  EXPECT_EQ(points.points[0].label, "hi");

  EXPECT_THROW(parse_sweep_json("{}"), error);
  EXPECT_THROW(parse_sweep_json("[1,2]"), error);
  EXPECT_THROW(parse_sweep_json("{nope"), error);
  EXPECT_THROW(
      parse_sweep_json(
          R"({"points":[],"params":[],"x":1})"),
      error);
  EXPECT_THROW(
      parse_sweep_json(
          R"({"points":[{"overrides":{"A":0.1}}],
              "params":[{"name":"A","lo":0,"hi":1,"n":2}]})"),
      error);
}

TEST(SweepResolve, GridExpansionAndErrors) {
  const sd_fault_tree tree = example3_sd();
  sweep_description d =
      parse_sweep_ranges({"a=0.001:0.01:3:log", "c=0.1:0.2:2"});
  const sweep_spec spec = resolve_sweep(d, tree);
  ASSERT_EQ(spec.points.size(), 6u);  // 3 x 2 cartesian grid
  // Log axis endpoints are exact; the middle point is the geometric mean.
  EXPECT_EQ(spec.points[0].overrides[0].second, 0.001);
  EXPECT_EQ(spec.points[5].overrides[0].second, 0.01);
  EXPECT_NEAR(spec.points[2].overrides[0].second, std::sqrt(0.001 * 0.01),
              1e-12);
  EXPECT_EQ(spec.points[0].overrides[1].second, 0.1);
  EXPECT_EQ(spec.points[1].overrides[1].second, 0.2);
  EXPECT_FALSE(spec.points[0].label.empty());

  EXPECT_THROW(resolve_sweep(parse_sweep_ranges({"nope=0:1:2"}), tree),
               model_error);
  // b is dynamic: its parameters live in its chain.
  EXPECT_THROW(resolve_sweep(parse_sweep_ranges({"b=0:1:2"}), tree),
               model_error);
  EXPECT_THROW(resolve_sweep(parse_sweep_ranges({"a=0:2:2"}), tree),
               model_error);  // probability above 1
  EXPECT_THROW(
      resolve_sweep(parse_sweep_ranges({"a=0:1:2", "a=0:1:2"}), tree),
      model_error);  // duplicate axis
  EXPECT_THROW(resolve_sweep(parse_sweep_ranges({"a=0:0.01:3:log"}), tree),
               model_error);  // log axis needs positive bounds
  EXPECT_THROW(resolve_sweep(sweep_description{}, tree), model_error);
}

TEST(SweepDeterminism, BwrAcrossBackendsThreadsAndCache) {
  const sd_fault_tree tree = bwr_tree();
  const sweep_spec spec = resolve_sweep(
      parse_sweep_ranges({"DG1_FTS=0.001:0.05:3:log", "CST=1e-7:1e-5:2:log"}),
      tree);

  for (const cutset_backend backend :
       {cutset_backend::mocus, cutset_backend::bdd}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bool struct_cache : {true, false}) {
        analysis_options opts;
        opts.horizon = 24.0;
        opts.cutoff = 1e-12;
        opts.threads = threads;
        opts.backend = backend;
        opts.use_structure_cache = struct_cache;
        expect_sweep_matches_oneshots(
            tree, spec, opts,
            std::string("bwr ") + to_string(backend) + " threads=" +
                std::to_string(threads) +
                (struct_cache ? " cache" : " no-cache"));
      }
    }
  }
}

TEST(SweepDeterminism, IndustrialAnnotatedModel) {
  const sd_fault_tree tree = industrial_tree();
  const std::string event = first_static_event(tree);
  const sweep_spec spec = resolve_sweep(
      parse_sweep_ranges({event + "=1e-4:5e-2:4:log"}), tree);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    analysis_options opts;
    opts.horizon = 24.0;
    opts.cutoff = 1e-20;
    opts.threads = threads;
    expect_sweep_matches_oneshots(
        tree, spec, opts,
        "industrial threads=" + std::to_string(threads));
  }
}

TEST(SweepDeterminism, PerPointHorizons) {
  // Horizon-varying sweeps prime at the maximum horizon (reachability
  // probabilities are monotone in t), and every point must still match
  // its one-shot.
  const sd_fault_tree tree = example3_sd();
  sweep_description d;
  for (const double h : {6.0, 24.0, 96.0}) {
    sweep_description::named_point p;
    p.overrides.emplace_back("a", 0.005);
    p.horizon = h;
    d.points.push_back(std::move(p));
  }
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-9;
  expect_sweep_matches_oneshots(tree, resolve_sweep(d, tree), opts,
                                "per-point horizons");
}

TEST(SweepDeterminism, SharedStructureIsReused) {
  const sd_fault_tree tree = bwr_tree();
  analysis_options opts;
  opts.horizon = 24.0;
  opts.cutoff = 1e-12;
  analysis_engine engine(opts);
  const sweep_spec spec = resolve_sweep(
      parse_sweep_ranges({"DG1_FTS=0.001:0.01:8:log"}), tree);
  const sweep_result r = run_sweep(engine, tree, spec);
  // Every point replays the primed structure: N hits, one miss (the
  // envelope prime), no per-point regeneration.
  EXPECT_EQ(r.struct_cache_hits, spec.points.size());
  EXPECT_EQ(engine.structures().misses(), 1u);
  EXPECT_EQ(r.aggregate.struct_cache_hits, spec.points.size());
  EXPECT_EQ(r.points.size(), static_cast<std::size_t>(8));
}

TEST(SweepDeterminism, RunSweepRejectsEmptySpec) {
  const sd_fault_tree tree = example3_sd();
  analysis_engine engine;
  EXPECT_THROW(run_sweep(engine, tree, sweep_spec{}), model_error);
}

}  // namespace
}  // namespace sdft
