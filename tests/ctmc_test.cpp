#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"
#include "ctmc/triggered.hpp"
#include "ctmc/uniformised.hpp"
#include "test_models.hpp"
#include "util/error.hpp"

namespace sdft {
namespace {

TEST(Ctmc, BuildAndAccumulateRates) {
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.add_rate(0, 1, 0.5);
  chain.add_rate(0, 1, 0.25);  // accumulates
  chain.add_rate(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 1.75);
  EXPECT_DOUBLE_EQ(chain.max_exit_rate(), 1.75);
  ASSERT_EQ(chain.transitions_from(0).size(), 2u);
}

TEST(Ctmc, RejectsBadInput) {
  ctmc chain(2);
  EXPECT_THROW(chain.add_rate(0, 0, 1.0), model_error);   // self loop
  EXPECT_THROW(chain.add_rate(0, 5, 1.0), model_error);   // range
  EXPECT_THROW(chain.add_rate(0, 1, -1.0), model_error);  // negative
  EXPECT_THROW(chain.set_initial(0, 1.5), model_error);
  chain.set_initial(0, 0.5);
  EXPECT_THROW(chain.validate(), model_error);  // mass != 1
}

TEST(Ctmc, FactoryChains) {
  const ctmc rep = make_repairable(0.2, 2.0);
  rep.validate();
  EXPECT_EQ(rep.failed_states(), std::vector<state_index>{1});

  const ctmc stat = make_static_event(0.3);
  stat.validate();
  EXPECT_DOUBLE_EQ(stat.initial(1), 0.3);
  EXPECT_DOUBLE_EQ(stat.max_exit_rate(), 0.0);
}

TEST(Transient, PureFailureMatchesExponential) {
  // 2-state absorbing chain: P[fail by t] = 1 - exp(-lambda t).
  const double lambda = 0.37;
  ctmc chain = make_repairable(lambda, 0.0);
  for (double t : {0.0, 0.5, 3.0, 20.0}) {
    EXPECT_NEAR(reach_failed_probability(chain, t),
                1.0 - std::exp(-lambda * t), 1e-9)
        << "t=" << t;
  }
}

TEST(Transient, ZeroRateChainKeepsInitialDistribution) {
  const ctmc chain = make_static_event(0.25);
  const auto dist = transient_distribution(chain, 17.0);
  EXPECT_NEAR(dist[0], 0.75, 1e-12);
  EXPECT_NEAR(dist[1], 0.25, 1e-12);
  EXPECT_NEAR(reach_failed_probability(chain, 5.0), 0.25, 1e-12);
}

TEST(Transient, RepairableAvailabilityClosedForm) {
  // Transient unavailability of a repairable unit:
  // q(t) = lambda/(lambda+mu) * (1 - exp(-(lambda+mu) t)).
  const double lambda = 0.1;
  const double mu = 1.2;
  const ctmc chain = make_repairable(lambda, mu);
  for (double t : {0.3, 1.0, 4.0, 50.0}) {
    const auto dist = transient_distribution(chain, t);
    const double expected =
        lambda / (lambda + mu) * (1.0 - std::exp(-(lambda + mu) * t));
    EXPECT_NEAR(dist[1], expected, 1e-9) << "t=" << t;
  }
}

TEST(Transient, ReachBeatsTransientWithRepairs) {
  // With repairs, having *visited* the failed state is more likely than
  // being there at time t.
  const ctmc chain = make_repairable(0.2, 1.0);
  const double t = 5.0;
  const double visit = reach_failed_probability(chain, t);
  const double there = transient_distribution(chain, t)[1];
  EXPECT_GT(visit, there);
  EXPECT_LE(visit, 1.0);
}

TEST(Transient, ErlangCdfClosedForm) {
  // k-phase Erlang with rate k*lambda per phase; P[T <= t] =
  // 1 - sum_{i<k} exp(-k l t) (k l t)^i / i!.
  const int k = 4;
  const double lambda = 0.05;
  const ctmc chain = make_erlang_active(k, lambda, 0.0);
  const double t = 30.0;
  double expected = 1.0;
  double term = std::exp(-k * lambda * t);
  for (int i = 0; i < k; ++i) {
    expected -= term;
    term *= k * lambda * t / (i + 1);
  }
  EXPECT_NEAR(reach_failed_probability(chain, t), expected, 1e-9);
}

TEST(Transient, ErlangPreservesMeanTimeToFailure) {
  // Mean time to failure is 1/lambda for every phase count; at t = MTTF
  // the failure probabilities are comparable but the distributions differ.
  const double lambda = 0.01;
  const double t = 100.0;
  const double p1 =
      reach_failed_probability(make_erlang_active(1, lambda, 0.0), t);
  const double p4 =
      reach_failed_probability(make_erlang_active(4, lambda, 0.0), t);
  EXPECT_NEAR(p1, 1.0 - std::exp(-1.0), 1e-9);
  EXPECT_GT(p4, 0.3);
  EXPECT_LT(p4, p1);  // Erlang concentrates around the mean
}

TEST(Transient, DistributionSumsToOne) {
  const ctmc chain = make_erlang_active(3, 0.2, 0.5);
  const auto dist = transient_distribution(chain, 7.0);
  double sum = 0.0;
  for (double p : dist) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Transient, RejectsNegativeHorizon) {
  const ctmc chain = make_repairable(0.1, 0.0);
  EXPECT_THROW(reach_failed_probability(chain, -1.0), model_error);
}

TEST(Triggered, ValidateAcceptsExamplePump) {
  EXPECT_NO_THROW(testing::example2_pump2().validate());
}

TEST(Triggered, ValidateRejectsFailedOffStates) {
  triggered_ctmc m = testing::example2_pump2();
  m.chain.set_failed(1);  // off-fail marked failed: violates F subset S_on
  EXPECT_THROW(m.validate(), model_error);
}

TEST(Triggered, ValidateRejectsInitialOnStates) {
  triggered_ctmc m = testing::example2_pump2();
  m.chain.set_initial(0, 0.0);
  m.chain.set_initial(2, 1.0);  // initial mass on an on-state
  EXPECT_THROW(m.validate(), model_error);
}

TEST(Triggered, ValidateRejectsWrongSideMaps) {
  triggered_ctmc m = testing::example2_pump2();
  m.to_on[0] = 1;  // maps off-state to off-state
  EXPECT_THROW(m.validate(), model_error);
}

TEST(Triggered, WorstCaseEqualsAlwaysOnChain) {
  // Worst case of the Example 2 pump = plain repairable chain from time 0.
  const double lambda = 1e-3;
  const double mu = 5e-2;
  const triggered_ctmc m = testing::example2_pump2(lambda, mu);
  const double t = 24.0;
  const double expected =
      reach_failed_probability(make_repairable(lambda, mu), t);
  EXPECT_NEAR(worst_case_failure_probability(m, t), expected, 1e-10);
}

TEST(Triggered, ErlangTriggeredShape) {
  const int k = 3;
  const triggered_ctmc m = make_erlang_triggered(k, 0.01, 0.1, 100.0);
  EXPECT_EQ(m.chain.num_states(), 2u * (k + 1));
  // Starts passive in phase 0.
  EXPECT_DOUBLE_EQ(m.chain.initial(k + 1), 1.0);
  // Only the active failed phase is failed.
  EXPECT_EQ(m.chain.failed_states(), std::vector<state_index>{k});
  // Passive aging is 100x slower.
  EXPECT_NEAR(m.chain.exit_rate(k + 1), k * 0.01 / 100.0, 1e-12);
  EXPECT_NEAR(m.chain.exit_rate(0), k * 0.01, 1e-12);
  // No repair while passive.
  EXPECT_TRUE(m.chain.transitions_from(2 * k + 1).empty());
}

TEST(Triggered, ZeroPassiveFactorDisablesStandbyAging) {
  const triggered_ctmc m = make_erlang_triggered(2, 0.01, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(m.chain.exit_rate(3), 0.0);  // passive phase 0
  m.validate();
}

TEST(Triggered, WorstCaseOfErlangMatchesActiveChain) {
  const triggered_ctmc trig = make_erlang_triggered(2, 0.02, 0.05, 100.0);
  const ctmc active = make_erlang_active(2, 0.02, 0.05);
  EXPECT_NEAR(worst_case_failure_probability(trig, 24.0),
              reach_failed_probability(active, 24.0), 1e-10);
}

// --- Uniformised CSR (explicit counting pass) ----------------------------

TEST(Uniformised, RowStartIsMonotoneAndConsistent) {
  // Mixed chain: a transient state, an absorbing-by-flag state with
  // outgoing rates (they must be dropped), and a rateless state.
  ctmc chain(4);
  chain.set_initial(0, 1.0);
  chain.add_rate(0, 1, 0.5);
  chain.add_rate(0, 2, 0.25);
  chain.add_rate(1, 0, 1.0);
  chain.add_rate(1, 3, 2.0);
  chain.add_rate(2, 3, 0.125);  // dropped: state 2 is made absorbing
  const std::vector<char> absorbing = {0, 0, 1, 0};
  const uniformised_dtmc dtmc(chain, absorbing);

  ASSERT_EQ(dtmc.row_start.size(), chain.num_states() + 1);
  EXPECT_EQ(dtmc.row_start.front(), 0u);
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    EXPECT_LE(dtmc.row_start[s], dtmc.row_start[s + 1]) << "row " << s;
  }
  EXPECT_EQ(dtmc.row_start.back(), dtmc.col.size());
  EXPECT_EQ(dtmc.col.size(), dtmc.value.size());

  // Row populations: 2 entries for state 0, 2 for state 1, none for the
  // absorbing state 2 or the rateless state 3.
  EXPECT_EQ(dtmc.row_start[1] - dtmc.row_start[0], 2u);
  EXPECT_EQ(dtmc.row_start[2] - dtmc.row_start[1], 2u);
  EXPECT_TRUE(dtmc.absorbing_row(2));
  EXPECT_TRUE(dtmc.absorbing_row(3));
  EXPECT_FALSE(dtmc.absorbing_row(0));
}

TEST(Uniformised, RowsAreStochasticAndAbsorbingRowsAreUnitVectors) {
  ctmc chain(3);
  chain.set_initial(0, 1.0);
  chain.set_failed(2);
  chain.add_rate(0, 1, 0.4);
  chain.add_rate(1, 2, 0.7);
  chain.add_rate(2, 0, 0.9);  // repair out of the failed state
  const std::vector<char> absorbing = {0, 0, 1};
  const uniformised_dtmc dtmc(chain, absorbing);

  for (state_index s = 0; s < chain.num_states(); ++s) {
    double row_sum = dtmc.diagonal[s];
    for (std::size_t k = dtmc.row_start[s]; k < dtmc.row_start[s + 1]; ++k) {
      EXPECT_GE(dtmc.value[k], 0.0);
      row_sum += dtmc.value[k];
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-12) << "row " << s;
    EXPECT_LE(row_sum, 1.0 + 1e-12) << "row " << s;
  }
  // The absorbing row keeps all its mass on the diagonal.
  EXPECT_DOUBLE_EQ(dtmc.diagonal[2], 1.0);
  EXPECT_TRUE(dtmc.absorbing_row(2));
}

TEST(Uniformised, DenseStepPreservesMass) {
  const ctmc chain = testing::example2_pump2(0.3, 0.7).chain;
  const std::vector<char> none(chain.num_states(), 0);
  const uniformised_dtmc dtmc(chain, none);
  std::vector<double> in(chain.num_states(), 0.0);
  in[2] = 0.75;
  in[3] = 0.25;
  std::vector<double> out(chain.num_states(), 0.0);
  dtmc.step(in, out);
  double mass = 0.0;
  for (double v : out) mass += v;
  EXPECT_NEAR(mass, 1.0 * 0.75 + 1.0 * 0.25, 1e-14);
}

// --- Early termination and steady-state detection ------------------------

TEST(Transient, EarlyTerminationMatchesFullRunOnAbsorption) {
  // Long horizon: everything is absorbed long before the Poisson window
  // closes, so the absorbed-mass bound must fire and save steps.
  ctmc chain(2);
  chain.set_initial(0, 1.0);
  chain.set_failed(1);
  chain.add_rate(0, 1, 2.0);
  const double t = 500.0;

  transient_stats stats;
  transient_controls on;
  on.stats = &stats;
  const double fast = reach_failed_probability(chain, t, 1e-10, on);

  transient_controls off;
  off.early_termination = false;
  off.steady_state_detection = false;
  const double slow = reach_failed_probability(chain, t, 1e-10, off);

  EXPECT_NEAR(fast, slow, 1e-10);
  EXPECT_NEAR(fast, 1.0, 1e-9);
  EXPECT_TRUE(stats.early_terminated || stats.steady_state);
  EXPECT_GT(stats.steps_saved(), 0u);
  EXPECT_LT(stats.steps_taken, stats.steps_planned);
}

TEST(Transient, SteadyStateDetectionOnRepairableChain) {
  // A fast repairable chain reaches its stationary distribution quickly;
  // with failed states *not* absorbing (plain transient distribution) the
  // iterate stops moving and steady-state detection must freeze it.
  const ctmc chain = make_repairable(4.0, 6.0);
  const double t = 200.0;

  transient_stats stats;
  transient_controls on;
  on.stats = &stats;
  const auto fast = transient_distribution(chain, t, 1e-10, on);

  transient_controls off;
  off.early_termination = false;
  off.steady_state_detection = false;
  const auto slow = transient_distribution(chain, t, 1e-10, off);

  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t s = 0; s < fast.size(); ++s) {
    EXPECT_NEAR(fast[s], slow[s], 1e-10);
  }
  // Stationary split is lambda/(lambda+mu) failed.
  EXPECT_NEAR(fast[1], 4.0 / 10.0, 1e-9);
  EXPECT_TRUE(stats.steady_state);
  EXPECT_GT(stats.steps_saved(), 0u);
}

TEST(Transient, ControlsOffReproducesPlannedStepCount) {
  const ctmc chain = make_repairable(0.5, 0.25);
  transient_stats stats;
  transient_controls off;
  off.early_termination = false;
  off.steady_state_detection = false;
  off.stats = &stats;
  (void)reach_failed_probability(chain, 8.0, 1e-10, off);
  EXPECT_EQ(stats.steps_taken, stats.steps_planned);
  EXPECT_FALSE(stats.early_terminated);
  EXPECT_FALSE(stats.steady_state);
  EXPECT_EQ(stats.steps_saved(), 0u);
  EXPECT_GT(stats.peak_frontier, 0u);
}

}  // namespace
}  // namespace sdft
